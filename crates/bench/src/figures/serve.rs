//! E34: serving loadtest — concurrent sessions over loopback TCP vs.
//! aggregate throughput and feed latency.
//!
//! The paper's §5 opinion is that the chip is the easy part; the host
//! interface decides whether the engine ever sees enough text to
//! matter. `pm-serve` is that interface, and this figure is its load
//! test: many client connections, each multiplexing a share of the
//! sessions, all feeding chunked text concurrently into one
//! [`MatchServer`] on loopback. Every session's match events are
//! compared bit-for-bit against the offline
//! [`DictionaryMatcher::find_all`](pm_chip::dictionary::DictionaryMatcher::find_all)
//! oracle on the concatenation of its
//! chunks — the chunked `feed` path must make the network invisible
//! to correctness.
//!
//! Three numbers go to `BENCH_serve.json` (override the path with
//! `PM_SERVE_JSON`):
//!
//! * `serve_chars_per_sec` — aggregate characters matched per second
//!   across all sessions (advisory: machine-dependent);
//! * `serve_delivery_ratio` — events delivered over the wire divided
//!   by oracle events (enforced: must hold 1.0 on any machine);
//! * `serve_mean_over_p99` — mean per-feed round-trip latency divided
//!   by the p99 (enforced as a ratio: it is ≤ 1 by construction and
//!   collapses toward 0 when the tail degrades, so "higher is better"
//!   fits the gate's regression direction).
//!
//! Session count defaults to 1024 in release builds (the north star
//! is "thousands of sessions") and is overridable with
//! `PM_SERVE_SESSIONS`.

use pm_chip::dictionary::PatternDictionary;
use pm_serve::client::MatchClient;
use pm_serve::config::ServeConfig;
use pm_serve::protocol::Match;
use pm_serve::server::MatchServer;
use pm_systolic::superplane::simd_level;
use pm_systolic::symbol::{Alphabet, Pattern, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Client connections; sessions are spread evenly across them.
const CONNS: usize = 16;
/// Bytes per `FEED` chunk. Small enough that a session's stream takes
/// several round trips (so chunk-boundary carry is really exercised).
const CHUNK: usize = 512;
/// Chunks each session streams.
const CHUNKS: usize = if cfg!(debug_assertions) { 4 } else { 8 };

/// Sessions held open concurrently: `PM_SERVE_SESSIONS` wins, else
/// 1024 in release (the acceptance bar) and a quick 64 in debug.
fn session_count() -> usize {
    std::env::var("PM_SERVE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= CONNS)
        .unwrap_or(if cfg!(debug_assertions) { 64 } else { 1024 })
}

/// The loadtest dictionary: literal byte strings plus one wildcard
/// pattern, so events cite several ids and the wild path is on the
/// wire too.
fn patterns() -> Vec<(Vec<u8>, Option<u8>)> {
    vec![
        (b"systolic".to_vec(), None),
        (b"vlsi".to_vec(), None),
        (b"pattern".to_vec(), None),
        (b"ch?p".to_vec(), Some(b'?')),
    ]
}

/// One session's full stream: seeded random bytes with every pattern
/// planted at spread offsets (pure random bytes would rarely match).
fn session_text(session: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0x34_000 + session as u64);
    let mut text: Vec<u8> = (0..CHUNK * CHUNKS)
        .map(|_| rng.gen_range(0..256u16) as u8)
        .collect();
    for (n, (bytes, wild)) in patterns().iter().enumerate() {
        // Offsets differ per session and straddle chunk boundaries for
        // some sessions by construction (CHUNK is not a multiple of
        // the stride).
        let at = (n + 1) * 97 + session * 13 % CHUNK;
        if at + bytes.len() <= text.len() {
            for (d, &b) in bytes.iter().enumerate() {
                // Plant a literal for wildcard positions too: any byte
                // matches there, so 'x' keeps the plant deterministic.
                text[at + d] = if Some(b) == *wild { b'x' } else { b };
            }
        }
    }
    text
}

/// What one client thread brings home.
struct ThreadReport {
    /// `(session index, events delivered over the wire)` pairs.
    events: Vec<(usize, Vec<Match>)>,
    /// Per-feed round-trip latencies.
    latencies: Vec<Duration>,
    /// Characters fed (equals text length × sessions on success).
    chars: u64,
}

/// Drives `sessions` (global indices) over one connection: open all,
/// rendezvous, feed round-robin so every session is mid-stream at
/// once, close all.
fn drive(
    addr: std::net::SocketAddr,
    sessions: Vec<usize>,
    opened: Arc<Barrier>,
    feeding: Arc<Barrier>,
) -> ThreadReport {
    let mut client = MatchClient::connect(addr).expect("connect");
    for (bytes, wild) in patterns() {
        client.add_pattern(&bytes, wild).expect("add pattern");
    }
    let mut ids = Vec::with_capacity(sessions.len());
    for _ in &sessions {
        ids.push(client.open_session_with_retry(64).expect("open session"));
    }
    opened.wait(); // every session in the test is now open at once
    feeding.wait();

    let texts: Vec<Vec<u8>> = sessions.iter().map(|&s| session_text(s)).collect();
    let mut report = ThreadReport {
        events: sessions.iter().map(|&s| (s, Vec::new())).collect(),
        latencies: Vec::with_capacity(sessions.len() * CHUNKS),
        chars: 0,
    };
    for chunk in 0..CHUNKS {
        for (i, &id) in ids.iter().enumerate() {
            let bytes = &texts[i][chunk * CHUNK..(chunk + 1) * CHUNK];
            let t = Instant::now();
            let (events, _consumed) = client
                .feed_with_retry(id, bytes, 64)
                .expect("feed survives backpressure");
            report.latencies.push(t.elapsed());
            report.chars += bytes.len() as u64;
            report.events[i].1.extend(events);
        }
    }
    for &id in &ids {
        client.close_session(id).expect("close");
    }
    client.bye().expect("bye");
    report
}

/// Renders the E34 loadtest and writes `BENCH_serve.json` (path
/// overridable via `PM_SERVE_JSON`).
pub fn serve_figure() -> String {
    let path =
        std::env::var("PM_SERVE_JSON").unwrap_or_else(|_| crate::snapshot_path("BENCH_serve.json"));
    serve_to(&path)
}

/// As [`serve_figure`], with the JSON destination passed explicitly so
/// tests can route it to a temp path. Write errors are ignored so
/// read-only checkouts can still render.
pub fn serve_to(json_path: &str) -> String {
    let sessions = session_count();
    let per_conn = sessions / CONNS;
    let sessions = per_conn * CONNS; // exact spread
    let mut out = String::new();
    writeln!(
        out,
        "Serving loadtest (E34): {sessions} concurrent sessions over {CONNS} loopback \
         connections, {CHUNKS} x {CHUNK}-byte chunks per session, SIMD dispatch: {}",
        simd_level(),
    )
    .unwrap();

    let server = MatchServer::start(ServeConfig {
        max_sessions: sessions.max(4096),
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let opened = Arc::new(Barrier::new(CONNS + 1));
    let feeding = Arc::new(Barrier::new(CONNS + 1));
    let handles: Vec<_> = (0..CONNS)
        .map(|c| {
            let ids: Vec<usize> = (c * per_conn..(c + 1) * per_conn).collect();
            let (opened, feeding) = (Arc::clone(&opened), Arc::clone(&feeding));
            std::thread::spawn(move || drive(addr, ids, opened, feeding))
        })
        .collect();

    opened.wait();
    let concurrent = server.open_sessions();
    let t0 = Instant::now();
    feeding.wait();
    let reports: Vec<ThreadReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = t0.elapsed();
    server.shutdown();

    // Offline oracle: the same dictionary over each session's
    // concatenated stream, single-shot.
    let compiled: Vec<Pattern> = patterns()
        .iter()
        .map(|(bytes, wild)| {
            Pattern::from_bytes(bytes, *wild, Alphabet::EIGHT_BIT).expect("loadtest pattern")
        })
        .collect();
    let oracle = PatternDictionary::new(&compiled, Default::default()).matcher();
    let mut exact = true;
    let mut delivered = 0u64;
    let mut expected = 0u64;
    for report in &reports {
        for (session, events) in &report.events {
            let symbols: Vec<Symbol> = session_text(*session)
                .iter()
                .map(|&b| Symbol::new(b))
                .collect();
            let want: Vec<Match> = oracle
                .find_all(&symbols)
                .iter()
                .map(|m| Match {
                    pattern: m.pattern as u32,
                    end: m.end as u64,
                })
                .collect();
            expected += want.len() as u64;
            delivered += events.len() as u64;
            if *events != want {
                exact = false;
            }
        }
    }
    let delivery_ratio = if expected > 0 {
        delivered as f64 / expected as f64
    } else {
        0.0
    };

    let mut latencies: Vec<Duration> = reports.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort_unstable();
    let feeds = latencies.len();
    let mean = latencies.iter().sum::<Duration>().as_secs_f64() / feeds as f64;
    let p50 = latencies[feeds / 2].as_secs_f64();
    let p99 = latencies[(feeds - 1).min(feeds * 99 / 100)].as_secs_f64();
    let mean_over_p99 = mean / p99;
    let chars: u64 = reports.iter().map(|r| r.chars).sum();
    let rate = chars as f64 / wall.as_secs_f64();

    writeln!(
        out,
        "\n  sessions concurrently open at rendezvous: {concurrent} (target {sessions})"
    )
    .unwrap();
    writeln!(
        out,
        "  aggregate: {chars} chars in {:.3} s = {:.2} Mchar/s across {feeds} feeds",
        wall.as_secs_f64(),
        rate / 1e6,
    )
    .unwrap();
    writeln!(
        out,
        "  feed latency: mean {:.3} ms | p50 {:.3} ms | p99 {:.3} ms | mean/p99 {mean_over_p99:.3}",
        mean * 1e3,
        p50 * 1e3,
        p99 * 1e3,
    )
    .unwrap();
    writeln!(
        out,
        "  events: {delivered} delivered vs {expected} oracle (ratio {delivery_ratio:.3})"
    )
    .unwrap();

    // JSON for the CI gate: the rate is advisory; the two ratios are
    // hardware-independent and enforced.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"serve_chars_per_sec\": {rate:.1},");
    let _ = writeln!(json, "  \"serve_delivery_ratio\": {delivery_ratio:.3},");
    let _ = writeln!(json, "  \"serve_mean_over_p99\": {mean_over_p99:.3},");
    let _ = writeln!(json, "  \"serve_sessions\": {sessions},");
    let _ = writeln!(json, "  \"simd_level\": \"{}\",", simd_level());
    let _ = writeln!(json, "  \"chunk_bytes\": {CHUNK},");
    let _ = writeln!(json, "  \"chunks_per_session\": {CHUNKS}");
    json.push_str("}\n");
    let wrote = std::fs::write(json_path, &json).is_ok();
    writeln!(
        out,
        "\n  JSON snapshot ({} bytes) {} {json_path}",
        json.len(),
        if wrote {
            "written to"
        } else {
            "NOT written to"
        },
    )
    .unwrap();

    writeln!(
        out,
        "\n  all sessions admitted concurrently: {}",
        concurrent == sessions
    )
    .unwrap();
    writeln!(out, "  serve events equal offline oracle: {exact}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn serve_figure_is_exact() {
        let path = std::env::temp_dir().join("pm_test_serve.json");
        let text = super::serve_to(path.to_str().unwrap());
        assert!(
            text.contains("serve events equal offline oracle: true"),
            "{text}"
        );
        assert!(
            text.contains("all sessions admitted concurrently: true"),
            "{text}"
        );
    }
}
