//! E29: aggregate throughput — scalar array vs. bit-plane batch engine
//! vs. threaded scheduler, against the paper's 4.0 Mchar/s silicon.
//!
//! The paper's §1 rate describes one chip serving one stream; the
//! ROADMAP's "heavy traffic" scenario wants many streams at once. This
//! figure measures how far the software reproduction gets by exploiting
//! what the silicon could not: the per-cell state is one bit, so 64
//! streams ride one machine word (`pm_systolic::batch`), and worker
//! threads multiply that again (`pm_chip::throughput`).

use crate::workloads;
use pm_chip::throughput::{Job, ThroughputEngine};
use pm_chip::timing::ClockModel;
use pm_systolic::batch::BatchMatcher;
use pm_systolic::matcher::SystolicMatcher;
use pm_systolic::spec::match_spec;
use pm_systolic::symbol::{Alphabet, Symbol};
use std::fmt::Write;
use std::time::Instant;

/// Streams per batch workload: one full word of lanes plus a ragged
/// tail, so the measurement covers the `N % 64 ≠ 0` case the property
/// tests pin down.
const STREAMS: usize = 96;
/// Characters per stream.
const STREAM_LEN: usize = 4_096;
/// Pattern length (`k+1`).
const PATTERN_LEN: usize = 16;
/// Streams the scalar beat-simulator is timed on (it is slow enough
/// that a subset gives a stable rate; the rate is per character, so the
/// comparison is fair).
const SCALAR_STREAMS: usize = 8;

/// Renders the E29 throughput comparison.
pub fn throughput() -> String {
    let mut out = String::new();
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, PATTERN_LEN, 10, 29);
    let texts: Vec<Vec<Symbol>> = (0..STREAMS)
        .map(|i| workloads::random_text(alphabet, STREAM_LEN, 2900 + i as u64))
        .collect();

    writeln!(
        out,
        "Aggregate throughput (E29): {STREAMS} streams × {STREAM_LEN} chars, \
         pattern of {PATTERN_LEN} ({} wild cards)",
        pattern.symbols().iter().filter(|s| s.is_wild()).count()
    )
    .unwrap();

    // Scalar: the beat-accurate array simulator, one stream at a time.
    let mut scalar = SystolicMatcher::new(&pattern).expect("pattern is valid");
    let started = Instant::now();
    let mut scalar_results = Vec::new();
    for t in texts.iter().take(SCALAR_STREAMS) {
        scalar_results.push(scalar.match_symbols(t));
    }
    let scalar_chars = (SCALAR_STREAMS * STREAM_LEN) as f64;
    let scalar_rate = scalar_chars / started.elapsed().as_secs_f64();

    // Batched: 64 lanes per word, single thread.
    let batch = BatchMatcher::new(&pattern);
    let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
    let started = Instant::now();
    let batch_results = batch
        .match_streams(&lanes)
        .expect("lane chunking is automatic");
    let total_chars = (STREAMS * STREAM_LEN) as f64;
    let batch_rate = total_chars / started.elapsed().as_secs_f64();

    // Threaded: the job scheduler over the same streams.
    let workers = 4;
    let jobs: Vec<Job> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| Job::new(i as u64, pattern.clone(), t.clone()))
        .collect();
    let engine = ThroughputEngine::new(workers, 16);
    let report = engine
        .run(&jobs)
        .expect("scheduler never overfills a batch");
    let threaded_rate = report.totals.chars_per_sec();

    // Golden check: every engine agrees with the executable spec.
    let mut agree = true;
    for (i, t) in texts.iter().enumerate() {
        let spec = match_spec(t, &pattern);
        if i < SCALAR_STREAMS && scalar_results[i].bits() != spec {
            agree = false;
        }
        if batch_results[i].bits() != spec || report.outputs[i].hits.bits() != spec {
            agree = false;
        }
    }

    let silicon = ClockModel::prototype().chars_per_second();
    writeln!(
        out,
        "\n  engine               |   Mchar/s | × scalar | × silicon"
    )
    .unwrap();
    writeln!(
        out,
        "  ---------------------+-----------+----------+----------"
    )
    .unwrap();
    for (name, rate) in [
        ("scalar beat simulator", scalar_rate),
        ("bit-plane batch (×64)", batch_rate),
        (
            &format!("scheduler ({workers} threads)") as &str,
            threaded_rate,
        ),
    ] {
        writeln!(
            out,
            "  {name:<21}| {:>9.2} | {:>8.1} | {:>8.1}",
            rate / 1e6,
            rate / scalar_rate,
            rate / silicon
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (silicon = the paper's derived {:.1} Mchar/s for ONE stream)",
        silicon / 1e6
    )
    .unwrap();

    writeln!(
        out,
        "\n  scheduler: {} batches, {:.0} % lane occupancy, cache {:.0} % hits \
         ({} distinct pattern)",
        report.totals.batches,
        report.totals.lane_occupancy() * 100.0,
        report.totals.cache_hit_rate() * 100.0,
        report.totals.cache_misses,
    )
    .unwrap();
    for w in &report.workers {
        writeln!(
            out,
            "  worker {}: {} jobs, {:.2} Mchar/s, {:.0} % occupancy",
            w.worker,
            w.jobs,
            w.chars_per_sec() / 1e6,
            w.lane_occupancy() * 100.0
        )
        .unwrap();
    }

    writeln!(out, "\n  all engines equal specification: {agree}").unwrap();
    writeln!(
        out,
        "  batched ≥10× scalar: {}",
        batch_rate >= 10.0 * scalar_rate
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn throughput_figure_reports_agreement() {
        let text = super::throughput();
        assert!(text.contains("equal specification: true"), "{text}");
    }
}
