//! Figures 3-5, 3-6 and the plates: the NMOS hardware views.

use pm_layout::drc::DesignRules;
use pm_layout::floorplan::ChipFloorplan;
use pm_layout::render::{render_cell, render_sticks};
use pm_layout::sticks::positive_comparator_sticks;
use pm_nmos::cells::ComparatorCell;
use pm_nmos::chip::PatternChip;
use pm_nmos::level::Level;
use pm_nmos::shiftreg::DynamicShiftRegister;
use pm_systolic::spec::match_spec;
use pm_systolic::symbol::{text_from_letters, Pattern};
use std::fmt::Write;

/// Figure 3-5: the dynamic NMOS shift register — data marching through
/// inverter/pass-transistor stages, and rotting when the clock stops.
pub fn fig3_5() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 3-5: dynamic shift register (4 stages, switch-level sim)"
    )
    .unwrap();
    let mut sr = DynamicShiftRegister::new(4);
    sr.sim_mut().set_max_hold_beats(6);
    let bits = [true, false, true, true];
    writeln!(out, "  beat | in | taps q0..q3 (each stage inverts)").unwrap();
    for beat in 0..8 {
        let inject = bits[(beat / 2).min(bits.len() - 1)];
        sr.shift(inject).unwrap();
        let taps: String = (0..4).map(|i| sr.tap(i).to_string()).collect();
        writeln!(out, "  {beat:>4} |  {} | {}", u8::from(inject), taps).unwrap();
    }
    writeln!(out, "  -- clock stopped: charge decays (§3.3.3) --").unwrap();
    for beat in 8..16 {
        sr.stall().unwrap();
        let taps: String = (0..4).map(|i| sr.tap(i).to_string()).collect();
        writeln!(out, "  {beat:>4} |  - | {}", taps).unwrap();
    }
    out
}

/// Figure 3-6: the positive comparator circuit, exercised exhaustively
/// at switch level.
pub fn fig3_6() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 3-6: positive comparator circuit (switch-level truth table)"
    )
    .unwrap();
    let mut cell = ComparatorCell::new(false);
    writeln!(
        out,
        "  devices: {} (3 pass + 2 inverters + XNOR + NAND)",
        cell.device_count()
    )
    .unwrap();
    writeln!(out, "  p s d | p' s' d_out = d AND (p=s)").unwrap();
    for p in [false, true] {
        for s in [false, true] {
            for d in [false, true] {
                let (po, so, do_) = cell.step(p, s, d).unwrap();
                writeln!(
                    out,
                    "  {} {} {} | {}  {}  {}",
                    u8::from(p),
                    u8::from(s),
                    u8::from(d),
                    u8::from(po),
                    u8::from(so),
                    u8::from(do_)
                )
                .unwrap();
            }
        }
    }
    out
}

/// Plate 1: the stick diagram of the positive comparator cell.
pub fn plate1() -> String {
    let sticks = positive_comparator_sticks();
    let mut out = String::new();
    writeln!(
        out,
        "Plate 1: stick diagram of the positive comparator cell"
    )
    .unwrap();
    writeln!(
        out,
        "  sticks: {} segments, {} contacts",
        sticks.sticks.len(),
        sticks.contacts.len()
    )
    .unwrap();
    writeln!(
        out,
        "  poly-over-diffusion crossings (transistors): {}",
        sticks.device_count()
    )
    .unwrap();
    writeln!(
        out,
        "  depletion pullups (implant marks): {}",
        sticks.pullup_sites().len()
    )
    .unwrap();
    writeln!(
        out,
        "  metal-metal crossings: {} (single metal layer: must be zero)",
        sticks.metal_metal_crossings().len()
    )
    .unwrap();
    writeln!(
        out,
        "  legend: M=metal(blue) P=poly(red) D=diffusion(green) T=transistor +=depletion O=contact\n"
    )
    .unwrap();
    for line in render_sticks(&sticks).lines() {
        writeln!(out, "    {line}").unwrap();
    }
    writeln!(
        out,
        "\n  and the mechanically generated λ layout of the same cell:\n"
    )
    .unwrap();
    for line in render_cell(&pm_layout::cell::comparator_cell()).lines() {
        writeln!(out, "    {line}").unwrap();
    }
    out
}

/// Plate 2: the fabricated prototype — 8 cells × 2-bit characters —
/// co-simulated at transistor level against the specification, plus
/// its layout statistics.
pub fn plate2() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Plate 2: the prototype pattern matching chip (8 cells, 2-bit chars)"
    )
    .unwrap();

    let chip = PatternChip::new(8, 2);
    writeln!(
        out,
        "  switch-level netlist: {} devices",
        chip.device_count()
    )
    .unwrap();

    let pattern = Pattern::parse("ABCAABCA").expect("valid pattern");
    let text = text_from_letters("ABCAABCAABCAABCA").expect("valid text");
    let got = chip.match_pattern(&pattern, &text).expect("chip settles");
    let spec = match_spec(&text, &pattern);
    writeln!(out, "  pattern {pattern} over 16 chars of text:").unwrap();
    write!(out, "    silicon : ").unwrap();
    for b in &got {
        write!(out, "{}", u8::from(*b)).unwrap();
    }
    write!(out, "\n    spec    : ").unwrap();
    for b in &spec {
        write!(out, "{}", u8::from(*b)).unwrap();
    }
    writeln!(out, "\n    agree   : {}", got == spec).unwrap();

    let plan = ChipFloorplan::new(8, 2);
    let drc = plan.drc(&DesignRules::default());
    writeln!(
        out,
        "  layout: die {}x{} λ, area {} λ², {} pads, DRC violations: {}",
        plan.die().width(),
        plan.die().height(),
        plan.area(),
        plan.pads(),
        drc.len()
    )
    .unwrap();
    out
}

/// Helper for tests: the Level type is re-exported here so the figure
/// modules compile standalone.
#[allow(dead_code)]
fn _level(_: Level) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_5_shows_decay() {
        let text = fig3_5();
        assert!(text.contains('X'), "decay must appear:\n{text}");
    }

    #[test]
    fn plate2_silicon_agrees() {
        let text = plate2();
        assert!(text.contains("agree   : true"), "{text}");
        assert!(text.contains("DRC violations: 0"), "{text}");
    }
}
