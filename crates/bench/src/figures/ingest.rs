//! E36: zero-copy ingestion through the sharded memory system — a
//! file-backed corpus paged through [`PagedCorpus`], windowed by the
//! [`OverlapChunker`], and routed across shards at the 64-worker
//! design point.
//!
//! The paper's §1 headline is that the array outruns "the memory
//! bandwidth of most conventional computers" — the bottleneck is
//! feeding it, not matching. E36 measures the reproduction's feeding
//! path end to end and checks the two claims the PR 10 gate enforces:
//!
//! 1. **exactness** — the streamed, sharded scan (ragged pages, the
//!    `kmax − 1` boundary carry, affinity routing) reports exactly the
//!    events the offline Aho–Corasick oracle finds on the whole
//!    corpus;
//! 2. **overhead** — router assignment plus every shard planner's cost
//!    (`RouterReport::planner_overhead_frac`, aggregated over the
//!    stream) stays below 5 % of batch wall-clock at 64 workers. The
//!    fraction is same-run cost over same-run wall-clock, so it is
//!    hardware-independent; `bench_gate` holds the JSON snapshot to
//!    the 0.05 ceiling absolutely.
//!
//! The figure writes `BENCH_ingest.json` (override the path with
//! `PM_INGEST_JSON`) carrying `planner_overhead_frac` and
//! `ingest_chars_per_sec` for the CI gate.

use crate::workloads;
use pm_chip::ingest::{OverlapChunker, PagedCorpus};
use pm_chip::shard::{Router, RouterConfig};
use pm_chip::throughput::JobRef;
use pm_matchers::aho_corasick::{AhoCorasick, DictMatch};
use pm_systolic::superplane::simd_level;
use pm_systolic::symbol::{Alphabet, Pattern, Symbol};
use std::fmt::Write;
use std::time::Instant;

/// Corpus size on disk. Large enough that engine work dominates the
/// per-window routing cost it is compared against.
const CORPUS_BYTES: usize = 512 << 10;
/// Page size the corpus is read at — each page becomes one routed
/// batch of per-pattern jobs. Sized so each routed batch amortises
/// its grouping-and-assignment cost over ~2 KiB lanes.
const PAGE_BYTES: usize = 128 << 10;
/// Dictionary size; every pattern scans every page.
const PATTERNS: usize = 16;
/// Shards × workers per shard = the 64-worker design point.
const SHARDS: usize = 4;
const WORKERS_PER_SHARD: usize = 16;
/// Sub-slices each page region is cut into, so every pattern group
/// fills a whole `u64` lane word instead of wasting 63 of its 64 bit
/// planes on one long stream.
const SUBLANES: usize = 64;

/// Cuts `slice` into up to `lanes` sub-slices overlapping by
/// `overlap` symbols, as `(sub, min_end, offset)` triples — the
/// [`ChunkView::regions`](pm_chip::ingest::ChunkView::regions)
/// keep-discipline applied a second time, to pack superplane lanes:
/// scan `sub`, keep match ends ≥ `min_end`, report at
/// `offset + position` within `slice`.
fn lane_cuts(slice: &[Symbol], lanes: usize, overlap: usize) -> Vec<(&[Symbol], usize, usize)> {
    let len = slice.len();
    let step = len.div_ceil(lanes.max(1)).max(overlap + 1);
    let mut cuts = Vec::new();
    let mut at = 0;
    while at < len {
        let start = at.saturating_sub(overlap);
        let end = (at + step).min(len);
        cuts.push((&slice[start..end], at - start, start));
        at = end;
    }
    cuts
}

/// Renders the E36 ingestion figure and writes `BENCH_ingest.json`
/// (path overridable via `PM_INGEST_JSON`).
pub fn ingest_figure() -> String {
    let path = std::env::var("PM_INGEST_JSON")
        .unwrap_or_else(|_| crate::snapshot_path("BENCH_ingest.json"));
    ingest_to(&path)
}

/// As [`ingest_figure`], with the JSON destination passed explicitly
/// so tests can route the snapshot to a temp path. Write errors are
/// ignored so read-only checkouts can still render.
pub fn ingest_to(json_path: &str) -> String {
    let mut out = String::new();
    let alphabet = Alphabet::TWO_BIT;

    // The corpus: deterministic symbols written to a real file, so the
    // measured path includes the paged positional reads.
    let corpus: Vec<Symbol> = workloads::random_text(alphabet, CORPUS_BYTES, 3600);
    let bytes: Vec<u8> = corpus.iter().map(|s| s.value()).collect();
    let corpus_path =
        std::env::temp_dir().join(format!("pm_e36_corpus_{}.bin", std::process::id()));
    std::fs::write(&corpus_path, &bytes).expect("temp corpus is writable");

    // Literal dictionary (AC-comparable), lengths 4..=12.
    let patterns: Vec<Pattern> = (0..PATTERNS)
        .map(|i| workloads::random_pattern(alphabet, 4 + i % 9, 0, 3700 + i as u64))
        .collect();
    let kmax = patterns.iter().map(Pattern::len).max().unwrap_or(1);

    writeln!(
        out,
        "Zero-copy ingestion (E36): {} KiB corpus in {} KiB pages, \
         {PATTERNS} patterns (kmax {kmax}), {SHARDS} shards × \
         {WORKERS_PER_SHARD} workers = {} workers, SIMD dispatch: {}",
        CORPUS_BYTES >> 10,
        PAGE_BYTES >> 10,
        SHARDS * WORKERS_PER_SHARD,
        simd_level(),
    )
    .unwrap();

    // Offline oracle: Aho–Corasick over the whole in-memory corpus.
    let oracle = AhoCorasick::new(&patterns).expect("literal patterns");
    let offline = {
        let t = Instant::now();
        let events = oracle.find_all(&corpus);
        (events, t.elapsed())
    };

    // Streamed path: file → pages → overlap windows → routed jobs.
    let router = Router::new(RouterConfig {
        shards: SHARDS,
        workers_per_shard: WORKERS_PER_SHARD,
        ..RouterConfig::default()
    });
    let source = PagedCorpus::open(&corpus_path, PAGE_BYTES).expect("corpus just written");
    let mut chunker = OverlapChunker::new(source, kmax);
    let mut streamed: Vec<DictMatch> = Vec::new();
    let mut windows = 0u64;
    let mut jobs_total = 0u64;
    let mut chars_total = 0u64;
    let mut plan_micros = 0u64;
    let mut route_micros = 0u64;
    let mut wall_micros = 0u64;
    let mut steals = 0u64;
    let started = Instant::now();
    while let Some(view) = chunker.next_window().expect("in-memory tmpfs read") {
        windows += 1;
        let mut refs: Vec<JobRef<'_>> = Vec::new();
        let mut meta: Vec<(usize, usize, usize)> = Vec::new();
        for (slice, min_end, base) in view.regions() {
            for (sub, sub_min, off) in lane_cuts(slice, SUBLANES, kmax - 1) {
                // Combine both keep-disciplines: the window's (skip
                // ends the previous window reported) and the cut's
                // (skip ends the previous cut reported).
                let keep_from = sub_min.max(min_end.saturating_sub(off));
                for (id, pattern) in patterns.iter().enumerate() {
                    refs.push(JobRef {
                        id: refs.len() as u64,
                        pattern,
                        text: sub,
                    });
                    meta.push((id, keep_from, base + off));
                }
            }
        }
        let report = router.run_refs(&refs).expect("no fault plan armed");
        jobs_total += refs.len() as u64;
        chars_total += report.total_chars();
        plan_micros += report.plan_micros();
        route_micros += report.route_micros;
        wall_micros += report.wall_micros;
        steals += report.steals();
        for (job, &(pattern, min_end, base)) in report.outputs.iter().zip(&meta) {
            for end in job.hits.ending_positions() {
                if end >= min_end {
                    streamed.push(DictMatch {
                        pattern,
                        end: base + end,
                    });
                }
            }
        }
    }
    let elapsed = started.elapsed();
    std::fs::remove_file(&corpus_path).ok();

    streamed.sort_unstable();
    let exact = streamed == offline.0;
    let overhead = if wall_micros == 0 {
        0.0
    } else {
        plan_micros as f64 / wall_micros as f64
    };
    let rate = chars_total as f64 / elapsed.as_secs_f64();
    let corpus_rate = CORPUS_BYTES as f64 / elapsed.as_secs_f64();

    writeln!(
        out,
        "\n  streamed windows: {windows} ({jobs_total} routed jobs, \
         {chars_total} chars scanned, {steals} batch steals)"
    )
    .unwrap();
    writeln!(
        out,
        "  events: {} streamed, {} offline (AC oracle scanned in {:.1} ms)",
        streamed.len(),
        offline.0.len(),
        offline.1.as_secs_f64() * 1e3
    )
    .unwrap();
    writeln!(
        out,
        "  scan rate: {:.1} Mchar/s across patterns ({:.1} Mchar/s of corpus)",
        rate / 1e6,
        corpus_rate / 1e6
    )
    .unwrap();
    writeln!(
        out,
        "\n  planner overhead: {plan_micros} µs planning ({route_micros} µs \
         routing) over {wall_micros} µs of batch wall-clock = {:.2} % \
         (< 5 % holds: {})",
        overhead * 100.0,
        overhead < 0.05
    )
    .unwrap();

    // JSON for the CI gate: the 0.05 ceiling on `planner_overhead_frac`
    // is enforced absolutely by bench_gate; the rates are advisory.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"planner_overhead_frac\": {overhead:.5},");
    let _ = writeln!(json, "  \"ingest_chars_per_sec\": {rate:.1},");
    let _ = writeln!(json, "  \"corpus_chars_per_sec\": {corpus_rate:.1},");
    let _ = writeln!(json, "  \"corpus_bytes\": {CORPUS_BYTES},");
    let _ = writeln!(json, "  \"page_bytes\": {PAGE_BYTES},");
    let _ = writeln!(json, "  \"patterns\": {PATTERNS},");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"workers_per_shard\": {WORKERS_PER_SHARD},");
    let _ = writeln!(json, "  \"simd_level\": \"{}\"", simd_level());
    json.push_str("}\n");
    let wrote = std::fs::write(json_path, &json).is_ok();
    writeln!(
        out,
        "\n  JSON snapshot ({} bytes) {} {json_path}",
        json.len(),
        if wrote {
            "written to"
        } else {
            "NOT written to"
        },
    )
    .unwrap();

    writeln!(out, "\n  equal offline oracle: {exact}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ingest_figure_is_exact() {
        let path = std::env::temp_dir().join("pm_test_ingest.json");
        let text = super::ingest_to(path.to_str().unwrap());
        assert!(text.contains("equal offline oracle: true"), "{text}");
        assert!(text.contains("planner overhead:"), "{text}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"planner_overhead_frac\":"), "{json}");
        std::fs::remove_file(&path).ok();
    }
}
