//! Engineering-margin experiments beyond the figures: fault coverage,
//! wafer-scale yield, the two comparator organisations, and the host
//! interface of Figure 1-1.

use pm_chip::host::HostBus;
use pm_chip::wafer::{yield_curve, Wafer};
use pm_nmos::charchip::CharChip;
use pm_nmos::chip::PatternChip;
use pm_nmos::faults::{coverage_multi, enumerate_faults, standard_test_program};
use pm_systolic::symbol::Pattern;
use std::fmt::Write;

/// E20: single-stuck-at fault coverage of the standard production test
/// (§4's testability consideration).
pub fn fault_coverage() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fault coverage (§4): single-stuck-at simulation, sampled sites"
    )
    .unwrap();
    writeln!(
        out,
        "  chip | faults | detected | coverage   (single-stuck-at)"
    )
    .unwrap();
    for (columns, bits, sample) in [(2usize, 1u32, 1usize), (3, 2, 6)] {
        let chip = PatternChip::new(columns, bits);
        let program = standard_test_program(columns, bits);
        let faults = enumerate_faults(&chip, sample);
        let report = coverage_multi(&chip, &program, &faults);
        writeln!(
            out,
            "  {columns}x{bits} | {:>6} | {:>8} | {:>7.0}%",
            report.total,
            report.detected,
            100.0 * report.coverage()
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (one streaming test exercises every cell: the regularity dividend of §2)"
    )
    .unwrap();
    out
}

/// E19: wafer-scale yield (§5) — monolithic all-or-nothing versus
/// harvest-and-reconnect.
pub fn wafer_yield() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Wafer-scale integration (§5): 8x32 cell wafer, bypass limit 2"
    )
    .unwrap();
    writeln!(out, "  defect rate | monolithic yield | harvested cells").unwrap();
    for p in yield_curve(8, 32, &[0.0, 0.01, 0.02, 0.05, 0.10, 0.20], 2, 50, 2024) {
        writeln!(
            out,
            "  {:>11.0}% | {:>16.0}% | {:>14.0}%",
            100.0 * p.defect_rate,
            100.0 * p.monolithic_yield,
            100.0 * p.harvested_fraction
        )
        .unwrap();
    }
    // One concrete wafer, end to end.
    let wafer = Wafer::fabricate(8, 32, 0.1, 7);
    let harvest = wafer.harvest(2);
    writeln!(
        out,
        "\n  example wafer: {}/{} cells working, {} harvested into one array, {} stranded",
        wafer.working_cells(),
        wafer.cells(),
        harvest.chain.len(),
        harvest.stranded
    )
    .unwrap();
    writeln!(
        out,
        "  (\"a defective circuit is replaced by a functioning one on the same wafer\")"
    )
    .unwrap();
    out
}

/// The two comparator organisations of §3.2.1 at transistor level:
/// whole-character (Figure 3-3) vs bit-serial (Figure 3-4).
pub fn organisations() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Comparator organisations: character-level (Fig 3-3) vs bit-serial (Fig 3-4)"
    )
    .unwrap();
    writeln!(
        out,
        "  bits | char-level devices | bit-serial devices | acc latency (beats)"
    )
    .unwrap();
    for bits in [1u32, 2, 4] {
        let char_level = CharChip::new(8, bits).device_count();
        let bit_serial = PatternChip::new(8, bits).device_count();
        writeln!(
            out,
            "  {bits:>4} | {char_level:>18} | {bit_serial:>18} | 1 vs {bits}"
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (bit-serial wins the paper's argument: simple identical cells, narrow\n\
         data paths, at the price of b-beat deeper pipelining)"
    )
    .unwrap();
    out
}

/// Figure 1-1: the chip as a host peripheral — load pattern, stream,
/// take interrupts.
pub fn host_interface() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 1-1: the matcher as a peripheral of a general-purpose computer"
    )
    .unwrap();
    let mut bus = HostBus::new(8);
    let pattern = Pattern::parse("AXC").expect("valid");
    bus.load_pattern(&pattern).expect("fits the card");
    writeln!(out, "  loaded pattern {pattern} into an 8-cell card").unwrap();
    let text: Vec<u8> = vec![0, 1, 2, 0, 0, 2, 2, 0, 1];
    bus.write(&text).expect("alphabet ok");
    bus.flush().expect("loaded");
    writeln!(
        out,
        "  streamed {} bytes; IRQ pending: {}",
        bus.bytes_streamed(),
        bus.irq_pending()
    )
    .unwrap();
    while let Some(ev) = bus.read_event() {
        writeln!(out, "    match event: bytes {}..={}", ev.start, ev.end).unwrap();
    }
    writeln!(out, "  IRQ cleared: {}", !bus.irq_pending()).unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_report_has_high_coverage() {
        let text = fault_coverage();
        // Both rows report a percentage; none should be zero.
        assert!(!text.contains(" 0%"), "{text}");
    }

    #[test]
    fn wafer_yield_shows_the_gap() {
        let text = wafer_yield();
        assert!(text.contains("monolithic"), "{text}");
    }

    #[test]
    fn host_demo_reports_three_matches() {
        let text = host_interface();
        assert_eq!(text.matches("match event").count(), 3, "{text}");
    }
}
