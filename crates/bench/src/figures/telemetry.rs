//! E30: beat-level telemetry — exact event counters over the throughput
//! scheduler, both exposition formats, and the zero-cost-when-disabled
//! claim for the beat-accurate path.
//!
//! The paper's silicon had exactly one observable: the match output pin.
//! The reproduction threads a [`TraceSink`](pm_systolic::telemetry)
//! through its engines instead, and this figure demonstrates the two
//! promises that design makes: folded counters are *exact* (they equal
//! the ground truth the engines return, not an estimate), and a
//! disabled sink costs nothing (the `NullSink` A/B on the beat-accurate
//! `PlaneDriver`). It also writes the `BENCH_telemetry.json` snapshot
//! the CI bench-regression gate compares against its committed
//! baseline.

use crate::workloads;
use pm_chip::telemetry::MetricsRegistry;
use pm_chip::throughput::{Job, ThroughputEngine};
use pm_systolic::batch::PlaneDriver;
use pm_systolic::spec::match_spec;
use pm_systolic::symbol::{Alphabet, Pattern, Symbol};
use pm_systolic::telemetry::{NullSink, SinkHandle};
use std::fmt::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Streams in the scheduler workload: one full word of lanes plus a
/// ragged tail, same shape as E29.
const STREAMS: usize = 96;
/// Characters per stream.
const STREAM_LEN: usize = 4_096;
/// Pattern length (`k+1`).
const PATTERN_LEN: usize = 16;
/// Worker threads for the scheduler run.
const WORKERS: usize = 4;
/// Scheduler repetitions; the best-of-N rate is the regression-gate
/// headline, which rejects most scheduler noise on shared CI boxes.
const SCHED_REPS: usize = 3;
/// Repetitions for the NullSink A/B; the minimum over repeats rejects
/// scheduler noise on a shared box.
const AB_REPS: usize = 9;
/// Lanes and characters for the A/B workload (the beat-accurate driver
/// is the slow path; a modest size keeps the figure quick).
const AB_LANES: usize = 64;
const AB_LEN: usize = 1_024;

/// Renders the E30 telemetry figure and writes `BENCH_telemetry.json`
/// (path overridable via `PM_TELEMETRY_JSON`; write errors are
/// ignored so read-only checkouts can still render the figure).
pub fn telemetry() -> String {
    let mut out = String::new();
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, PATTERN_LEN, 10, 30);
    // Matches are planted every 512 characters so the match counter has
    // real events to mirror (a 16-char pattern over random 2-bit text
    // matches with probability ≈ 4⁻¹⁶ otherwise).
    let texts: Vec<Vec<Symbol>> = (0..STREAMS)
        .map(|i| workloads::planted_text(&pattern, STREAM_LEN, 512, 3000 + i as u64).0)
        .collect();

    writeln!(
        out,
        "Beat-level telemetry (E30): {STREAMS} streams × {STREAM_LEN} chars, \
         pattern of {PATTERN_LEN}, {WORKERS} workers"
    )
    .unwrap();

    // Instrumented scheduler runs: every event folds into the registry.
    // Each repetition gets a fresh engine + registry (so the exactness
    // check below compares one run against one run's ground truth); the
    // fastest repetition becomes the regression-gate headline.
    let jobs: Vec<Job> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| Job::new(i as u64, pattern.clone(), t.clone()))
        .collect();
    let mut metrics = Arc::new(MetricsRegistry::new());
    let mut engine = ThroughputEngine::with_sink(WORKERS, 16, SinkHandle::new(metrics.clone()));
    let mut report = engine
        .run(&jobs)
        .expect("scheduler never overfills a batch");
    let mut chars_per_sec = report.totals.chars_per_sec();
    for _ in 1..SCHED_REPS {
        let m = Arc::new(MetricsRegistry::new());
        let e = ThroughputEngine::with_sink(WORKERS, 16, SinkHandle::new(m.clone()));
        let r = e.run(&jobs).expect("scheduler never overfills a batch");
        let rate = r.totals.chars_per_sec();
        if rate > chars_per_sec {
            (metrics, engine, report, chars_per_sec) = (m, e, r, rate);
        }
    }

    let mut agree = true;
    for (i, t) in texts.iter().enumerate() {
        if report.outputs[i].hits.bits() != match_spec(t, &pattern) {
            agree = false;
        }
    }

    let snap = metrics.snapshot();
    let truth_chars: u64 = jobs.iter().map(|j| j.text.len() as u64).sum();
    let truth_matches: u64 = report.outputs.iter().map(|o| o.hits.count() as u64).sum();
    let exact = snap.jobs_started == jobs.len() as u64
        && snap.jobs_completed == jobs.len() as u64
        && snap.chars == truth_chars
        && snap.matches == truth_matches
        && snap.batches == report.totals.batches
        && snap.lane_slots_used == report.totals.lane_slots_used
        && snap.cache_hits == report.totals.cache_hits
        && snap.cache_misses == report.totals.cache_misses;

    writeln!(
        out,
        "\n  scheduler rate: {:.2} Mchar/s, best of {SCHED_REPS} \
         (windowed {:.2} Mchar/s over {:?})",
        chars_per_sec / 1e6,
        engine.windowed_chars_per_sec() / 1e6,
        Duration::from_secs(30),
    )
    .unwrap();
    writeln!(out, "\n  counters folded from the event stream:").unwrap();
    for (name, value, truth) in [
        ("jobs started", snap.jobs_started, jobs.len() as u64),
        ("jobs completed", snap.jobs_completed, jobs.len() as u64),
        ("chars", snap.chars, truth_chars),
        ("matches", snap.matches, truth_matches),
        ("batches", snap.batches, report.totals.batches),
        (
            "lane slots used",
            snap.lane_slots_used,
            report.totals.lane_slots_used,
        ),
        ("cache hits", snap.cache_hits, report.totals.cache_hits),
        (
            "cache misses",
            snap.cache_misses,
            report.totals.cache_misses,
        ),
    ] {
        writeln!(
            out,
            "    {name:<16} {value:>10}   (ground truth {truth:>10})"
        )
        .unwrap();
    }
    writeln!(
        out,
        "  batch occupancy histogram: {} batches, mean {:.1} lanes",
        snap.batch_occupancy.count,
        if snap.batch_occupancy.count > 0 {
            snap.batch_occupancy.sum as f64 / snap.batch_occupancy.count as f64
        } else {
            0.0
        }
    )
    .unwrap();

    // Prometheus exposition excerpt: enough lines to show the format
    // without flooding the figure.
    let prom = snap.to_prometheus();
    writeln!(out, "\n  Prometheus exposition (excerpt):").unwrap();
    for line in prom
        .lines()
        .filter(|l| {
            l.contains("pm_jobs_completed")
                || l.contains("pm_chars_total")
                || l.contains("pm_batch_occupancy_bucket{le=\"64\"}")
                || l.contains("pm_batch_occupancy_count")
        })
        .take(8)
    {
        writeln!(out, "    {line}").unwrap();
    }

    // JSON snapshot for the CI regression gate.
    let json = snap.to_json(chars_per_sec);
    let path = std::env::var("PM_TELEMETRY_JSON")
        .unwrap_or_else(|_| crate::snapshot_path("BENCH_telemetry.json"));
    let wrote = std::fs::write(&path, &json).is_ok();
    writeln!(
        out,
        "\n  JSON snapshot ({} bytes) {} {path}",
        json.len(),
        if wrote {
            "written to"
        } else {
            "NOT written to"
        },
    )
    .unwrap();

    // NullSink A/B on the beat-accurate path: `run` is the untouched
    // PR 2 baseline; `run_with_sink(&NullSink)` is the traced twin
    // monomorphised over a sink that is constantly disabled.
    let ab_pattern = workloads::random_pattern(alphabet, PATTERN_LEN, 10, 31);
    let ab_patterns: Vec<Pattern> = (0..AB_LANES).map(|_| ab_pattern.clone()).collect();
    let ab_texts: Vec<Vec<Symbol>> = (0..AB_LANES)
        .map(|i| workloads::random_text(alphabet, AB_LEN, 3100 + i as u64))
        .collect();
    let lanes: Vec<&[Symbol]> = ab_texts.iter().map(|t| t.as_slice()).collect();
    let mut driver = PlaneDriver::new(&ab_patterns).expect("uniform pattern lengths");

    let mut base = Duration::MAX;
    let mut nulled = Duration::MAX;
    for _ in 0..AB_REPS {
        let t = Instant::now();
        let a = driver.run(&lanes).expect("lane count matches");
        base = base.min(t.elapsed());
        let t = Instant::now();
        let b = driver
            .run_with_sink(&lanes, &NullSink)
            .expect("lane count matches");
        nulled = nulled.min(t.elapsed());
        assert_eq!(a, b, "traced twin must be bit-identical");
    }
    let overhead =
        (nulled.as_secs_f64() - base.as_secs_f64()).max(0.0) / base.as_secs_f64().max(1e-12);
    writeln!(
        out,
        "\n  NullSink A/B (beat-accurate PlaneDriver, {AB_LANES} lanes × {AB_LEN} chars, \
         min of {AB_REPS}):"
    )
    .unwrap();
    writeln!(
        out,
        "    baseline run       : {:>8.3} ms",
        base.as_secs_f64() * 1e3
    )
    .unwrap();
    writeln!(
        out,
        "    run_with_sink(Null): {:>8.3} ms",
        nulled.as_secs_f64() * 1e3
    )
    .unwrap();
    writeln!(
        out,
        "    disabled-sink overhead: {:.2} % (within 1 %: {})",
        overhead * 100.0,
        overhead < 0.01
    )
    .unwrap();

    writeln!(out, "\n  all outputs equal specification: {agree}").unwrap();
    writeln!(out, "  telemetry equals ground truth: {exact}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn telemetry_figure_is_exact() {
        // Route the JSON somewhere harmless for the test run.
        std::env::set_var("PM_TELEMETRY_JSON", "/tmp/pm_test_telemetry.json");
        let text = super::telemetry();
        assert!(text.contains("equal specification: true"), "{text}");
        assert!(
            text.contains("telemetry equals ground truth: true"),
            "{text}"
        );
        assert!(text.contains("chars"), "{text}");
    }
}
