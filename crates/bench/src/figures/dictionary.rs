//! E33: dictionary throughput — the superplane chip farm vs. the
//! Aho–Corasick software baseline, across dictionary sizes.
//!
//! §3.4's composition argument is that matcher chips cascade: many
//! chips, one text pass. `pm_chip::dictionary` realises it by holding
//! up to `W × 64` patterns resident per superplane group and streaming
//! the text through every group once. The natural software opponent
//! for that workload is Aho–Corasick — also one text pass, any number
//! of patterns — so this figure races the farm against
//! `pm_matchers::aho_corasick` at dictionary sizes 10 / 100 / 1k / 10k
//! and farm widths W1 / W4 / W8, on one shared random byte text with
//! planted matches.
//!
//! The byte alphabet is the realistic dictionary regime (scanners and
//! filters match byte strings) and also where the architectural
//! difference shows: Aho–Corasick's per-character cost is a dependent
//! walk through a goto/fail table whose footprint grows with the
//! dictionary, while the farm's is a handful of superplane ANDs
//! bounded by the live-prefix depth — the same constant-per-character
//! argument the paper makes for the systolic array itself.
//!
//! Three claims are checked in one run:
//!
//! 1. **crossover** — at the 1k-pattern point, the W≥4 farm sustains
//!    at least the Aho–Corasick character rate (asserted under the same
//!    conditions as E31's speedup bar: release build, runtime dispatch
//!    ≥ AVX2, overridable with `PM_ENFORCE_SPEEDUP`);
//! 2. **exactness** — farm events ≡ Aho–Corasick events at every size
//!    and width, and ≡ the scalar spec where the spec is cheap enough
//!    to compute;
//! 3. **planning** — the prefix-dedup trie and length buckets report
//!    sane stats (resident ≤ submitted, occupancy ≤ 1).
//!
//! The figure writes `BENCH_dictionary.json` (override with
//! `PM_DICTIONARY_JSON`) carrying `dictionary_chars_per_sec` (advisory,
//! machine-dependent) and `dict_10k_speedup_over_ac` — a same-run
//! ratio the CI bench gate enforces like `w8_speedup_over_u64`.

use crate::workloads;
use pm_chip::dictionary::PatternDictionary;
use pm_chip::throughput::SuperWidth;
use pm_matchers::aho_corasick::{AhoCorasick, DictMatch};
use pm_systolic::spec::match_spec;
use pm_systolic::superplane::{simd_level, SimdLevel};
use pm_systolic::symbol::{Alphabet, Pattern, Symbol};
use std::fmt::Write;
use std::time::Instant;

/// Dictionary sizes swept (the 10k point feeds the gated ratio).
const SIZES: [usize; 4] = [10, 100, 1_000, 10_000];
/// Shared text length: long enough that per-chunk setup amortises,
/// short enough that a debug test run stays quick.
const TEXT_LEN: usize = if cfg!(debug_assertions) {
    2_048
} else {
    1 << 16
};
/// Repetitions per engine; best-of-N rejects scheduler noise. The
/// gated 10k ratio divides two best-of-N rates, so N is higher than
/// E31's: the Aho–Corasick side's cache behaviour at 10k patterns is
/// the noisiest measurement in the figures suite.
const REPS: usize = if cfg!(debug_assertions) { 2 } else { 9 };
/// Full scalar-spec verification is O(size × text); cap it where it
/// stays cheap. Above the cap the Aho–Corasick oracle (itself
/// spec-checked below the cap and property-tested in `pm-chip`)
/// carries the ground truth.
const SPEC_CAP: usize = 100;

/// Distinct literal byte patterns with deliberate structure: seeded
/// pseudo-random bytes, lengths cycling 8..=15 (ragged buckets), and
/// every 20th pattern a duplicate of an earlier one so the dedup path
/// is exercised, not just available.
fn dictionary(size: usize) -> Vec<Pattern> {
    (0..size)
        .map(|i| {
            let j = if i % 20 == 19 { i / 2 } else { i };
            let len = 8 + j % 8;
            workloads::random_pattern(Alphabet::EIGHT_BIT, len, 0, 33_000 + j as u64)
        })
        .collect()
}

/// Splices occurrences of the first few dictionary patterns into the
/// text at spread offsets, so the sweep measures match *reporting* as
/// well as scanning (random byte text alone would never match).
fn plant(text: &mut [Symbol], pats: &[Pattern]) {
    let plants = 32.min(pats.len());
    for (n, p) in pats.iter().take(plants).enumerate() {
        let at = (n + 1) * text.len() / (plants + 1);
        for (d, sym) in p.symbols().iter().enumerate() {
            if let Some(s) = sym.literal() {
                text[at + d] = s;
            }
        }
    }
}

/// Best-of-`REPS` character rate for one matcher closure.
fn best_rate<F: FnMut() -> Vec<DictMatch>>(mut f: F) -> (f64, Vec<DictMatch>) {
    let mut best = 0.0f64;
    let mut events = Vec::new();
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        let rate = TEXT_LEN as f64 / t.elapsed().as_secs_f64();
        if rate > best || events.is_empty() {
            best = best.max(rate);
            events = r;
        }
    }
    (best, events)
}

/// Same bar as E31: the crossover assertion binds optimised builds on
/// hardware whose dispatch reaches AVX2; `PM_ENFORCE_SPEEDUP` forces
/// it on (`1`) or off (`0`) anywhere.
fn enforce_speedup() -> bool {
    match std::env::var("PM_ENFORCE_SPEEDUP").ok().as_deref() {
        Some("0") => false,
        Some(_) => true,
        None => cfg!(not(debug_assertions)) && simd_level() >= SimdLevel::Avx2,
    }
}

/// Renders the E33 dictionary sweep and writes `BENCH_dictionary.json`
/// (path overridable via `PM_DICTIONARY_JSON`).
pub fn dictionary_figure() -> String {
    let path = std::env::var("PM_DICTIONARY_JSON")
        .unwrap_or_else(|_| crate::snapshot_path("BENCH_dictionary.json"));
    dictionary_to(&path)
}

/// As [`dictionary_figure`], with the JSON destination passed
/// explicitly so tests can route it to a temp path. Write errors are
/// ignored so read-only checkouts can still render.
pub fn dictionary_to(json_path: &str) -> String {
    let mut out = String::new();
    let mut text = workloads::random_text(Alphabet::EIGHT_BIT, TEXT_LEN, 3301);
    plant(&mut text, &dictionary(32));
    let text = text;
    writeln!(
        out,
        "Dictionary throughput (E33): sizes {SIZES:?} on one {TEXT_LEN}-char byte text \
         with planted matches, chip farm at W1/W4/W8 vs Aho-Corasick, SIMD dispatch: {}",
        simd_level(),
    )
    .unwrap();
    writeln!(
        out,
        "\n  patterns | resident | groups(W8) | occupancy |  AC Mchar/s |  W1 Mchar/s |  W4 Mchar/s |  W8 Mchar/s | W8/AC"
    )
    .unwrap();
    writeln!(
        out,
        "  ---------+----------+------------+-----------+-------------+-------------+-------------+-------------+------"
    )
    .unwrap();

    let mut agree = true;
    let mut crossover_1k = (0.0f64, 0.0f64); // (W4/AC, W8/AC) at 1k
    let mut headline = (0.0f64, 1.0f64); // (W8 rate, W8/AC) at the largest size
    for size in SIZES {
        let pats = dictionary(size);
        let oracle = AhoCorasick::new(&pats).expect("literal dictionary");
        let (ac_rate, ac_events) = best_rate(|| oracle.find_all(&text));

        if size <= SPEC_CAP {
            let mut spec_events: Vec<DictMatch> = Vec::new();
            for (id, p) in pats.iter().enumerate() {
                for (end, hit) in match_spec(&text, p).iter().enumerate() {
                    if *hit {
                        spec_events.push(DictMatch { pattern: id, end });
                    }
                }
            }
            spec_events.sort_unstable();
            if ac_events != spec_events {
                agree = false;
            }
        }

        let mut rates = [0.0f64; 3];
        let mut stats = None;
        for (i, width) in [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8]
            .into_iter()
            .enumerate()
        {
            let dict = PatternDictionary::new(&pats, width);
            let matcher = dict.matcher();
            let (rate, events) = best_rate(|| matcher.find_all(&text));
            rates[i] = rate;
            if events != ac_events {
                agree = false;
            }
            if width == SuperWidth::W8 {
                let s = *dict.stats();
                if s.resident > s.patterns || s.occupancy() > 1.0 {
                    agree = false;
                }
                stats = Some(s);
            }
        }
        let stats = stats.expect("W8 always planned");
        let ratio = rates[2] / ac_rate;
        writeln!(
            out,
            "  {size:>8} | {:>8} | {:>10} | {:>8.0}% | {:>11.2} | {:>11.2} | {:>11.2} | {:>11.2} | {ratio:>5.2}",
            stats.resident,
            stats.groups,
            stats.occupancy() * 100.0,
            ac_rate / 1e6,
            rates[0] / 1e6,
            rates[1] / 1e6,
            rates[2] / 1e6,
        )
        .unwrap();

        if size == 1_000 {
            crossover_1k = (rates[1] / ac_rate, rates[2] / ac_rate);
        }
        headline = (rates[2], ratio);
    }

    let enforced = enforce_speedup();
    writeln!(
        out,
        "\n  1k-pattern crossover: W4/AC {:.2}x, W8/AC {:.2}x (>= 1x on W>=4 holds: {}, enforced here: {enforced})",
        crossover_1k.0,
        crossover_1k.1,
        crossover_1k.0 >= 1.0 && crossover_1k.1 >= 1.0,
    )
    .unwrap();
    if enforced {
        assert!(
            crossover_1k.0 >= 1.0 && crossover_1k.1 >= 1.0,
            "the W>=4 farm must sustain at least the Aho-Corasick rate at \
             1k patterns, measured W4/AC {:.2}x, W8/AC {:.2}x",
            crossover_1k.0,
            crossover_1k.1,
        );
    }

    // JSON for the CI gate: the headline rate (advisory) and the
    // same-run ratio at the largest size (enforced off-portable).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"dictionary_chars_per_sec\": {:.1},", headline.0);
    let _ = writeln!(json, "  \"dict_10k_speedup_over_ac\": {:.3},", headline.1);
    let _ = writeln!(json, "  \"dict_1k_w8_over_ac\": {:.3},", crossover_1k.1);
    let _ = writeln!(json, "  \"simd_level\": \"{}\",", simd_level());
    let _ = writeln!(json, "  \"sizes\": [10, 100, 1000, 10000],");
    let _ = writeln!(json, "  \"text_len\": {TEXT_LEN}");
    json.push_str("}\n");
    let wrote = std::fs::write(json_path, &json).is_ok();
    writeln!(
        out,
        "\n  JSON snapshot ({} bytes) {} {json_path}",
        json.len(),
        if wrote {
            "written to"
        } else {
            "NOT written to"
        },
    )
    .unwrap();

    writeln!(out, "\n  dictionary events equal specification: {agree}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn dictionary_figure_is_exact() {
        // Explicit temp path, not the process environment (other tests
        // may read env concurrently).
        let path = std::env::temp_dir().join("pm_test_dictionary.json");
        let text = super::dictionary_to(path.to_str().unwrap());
        assert!(text.contains("equal specification: true"), "{text}");
        assert!(text.contains("dict_10k_speedup_over_ac") || text.contains("JSON snapshot"));
    }
}
