//! Methodology-level reproductions: linear products, the on-chip clock
//! generator, design-iteration economics and the hierarchical mask
//! description.

use pm_correlator::prelude::*;
use pm_correlator::products::linear_product_spec;
use pm_design::figure41::figure_4_1;
use pm_design::rework::{expected_days, tangled_version};
use pm_layout::cell::{accumulator_cell, comparator_cell};
use pm_layout::hier::HierLayout;
use pm_nmos::clockgen::ClockGenerator;
use pm_nmos::level::Level;
use std::fmt::Write;

/// §3.1's "linear product problems": the same array computing boolean,
/// arithmetic and tropical products.
pub fn products() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Linear products over semirings (§3.1, Fischer-Paterson)"
    )
    .unwrap();
    let text = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
    let pattern = vec![1i64, 0, -1];
    writeln!(out, "  text    {text:?}").unwrap();
    writeln!(out, "  pattern {pattern:?}").unwrap();

    let mut dot = LinearProduct::new(SumProduct, pattern.clone()).expect("ok");
    let got = dot.compute(&text);
    writeln!(out, "  (+, x)  sliding dot products : {:?}", &got[2..]).unwrap();
    assert_eq!(got, linear_product_spec(&SumProduct, &text, &pattern));

    let mut mp = LinearProduct::new(MaxPlus, pattern.clone()).expect("ok");
    let got = mp.compute(&text);
    writeln!(out, "  (max,+) best alignment score: {:?}", &got[2..]).unwrap();

    let mut mn = LinearProduct::new(MinPlus, pattern.clone()).expect("ok");
    let got = mn.compute(&text);
    writeln!(out, "  (min,+) cheapest pairing    : {:?}", &got[2..]).unwrap();
    writeln!(
        out,
        "  (same cells, same choreography — only the meet rule changes)"
    )
    .unwrap();
    out
}

/// §4 "Data Flow Control Circuit": generating the two-phase clock on
/// chip and proving the phases never overlap.
pub fn clock_generator() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "On-chip two-phase clock generator (§4 data-flow control)"
    )
    .unwrap();
    let mut gen = ClockGenerator::new(2);
    writeln!(
        out,
        "  cross-coupled NOR + delay chains: {} devices",
        gen.device_count()
    )
    .unwrap();
    writeln!(out, "  clk | φ1 φ2").unwrap();
    let mut overlap = false;
    for cycle in 0..4 {
        for &level in &[true, false] {
            let (p1, p2) = gen.drive(level).expect("settles");
            overlap |= p1 == Level::High && p2 == Level::High;
            writeln!(
                out,
                "   {}  |  {}  {}   (cycle {cycle})",
                u8::from(level),
                p1,
                p2
            )
            .unwrap();
        }
    }
    writeln!(out, "  overlap observed: {overlap} (must be false)").unwrap();
    out
}

/// §4's design-iteration economics: narrow interfaces localise rework.
pub fn rework() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Design iterations (§4): rework cost vs dependency structure"
    )
    .unwrap();
    let (g, _) = figure_4_1();
    let tangled = tangled_version(&g).expect("DAG");
    writeln!(out, "  slip rate | Fig 4-1 days | tangled days").unwrap();
    for slip in [0.0, 0.2, 0.4, 0.8] {
        let clean = expected_days(&g, slip, 300, 11).expect("DAG");
        let messy = expected_days(&tangled, slip, 300, 11).expect("DAG");
        writeln!(
            out,
            "  {:>9.0}% | {clean:>12.1} | {messy:>12.1}",
            100.0 * slip
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (\"these design iterations will be easier if the interactions\n\
         between subtasks are few\")"
    )
    .unwrap();
    out
}

/// §2's modularity at mask level: hierarchical CIF records vs flat.
pub fn hierarchy() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Hierarchical mask description (§2 modularity, CIF DS/C)"
    )
    .unwrap();
    writeln!(
        out,
        "  columns | flat records | hierarchical records | ratio"
    )
    .unwrap();
    for columns in [8usize, 32, 128] {
        let mut h = HierLayout::new();
        let cmp = h.define(&comparator_cell());
        let acc = h.define(&accumulator_cell());
        for v in 0..2i64 {
            for c in 0..columns as i64 {
                h.place(cmp, c * 400, 100 + v * 40);
            }
        }
        for c in 0..columns as i64 {
            h.place(acc, c * 400, 20);
        }
        let flat = h.flatten().len();
        let hier = h.description_records();
        writeln!(
            out,
            "  {columns:>7} | {flat:>12} | {hier:>20} | {:.1}x",
            flat as f64 / hier as f64
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (\"a large chip can be designed by combining the designs of small chips\")"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_never_overlaps() {
        assert!(clock_generator().contains("overlap observed: false"));
    }

    #[test]
    fn rework_table_monotone_in_slip() {
        let text = rework();
        assert!(text.contains("0%"), "{text}");
    }

    #[test]
    fn hierarchy_ratio_grows() {
        let text = hierarchy();
        assert!(text.contains("ratio"), "{text}");
    }
}
