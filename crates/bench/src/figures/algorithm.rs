//! Figures 3-1 … 3-4: the algorithm-level views.

use pm_systolic::bitserial::BitSerialMatcher;
use pm_systolic::engine::Driver;
use pm_systolic::matcher::SystolicMatcher;
use pm_systolic::semantics::BooleanMatch;
use pm_systolic::symbol::{text_from_letters, Pattern};
use pm_systolic::trace::TraceRecorder;
use std::fmt::Write;

/// Figure 3-1: the data streams to and from the pattern matcher — the
/// pattern `AXC` against the text of the figure, with the result bits
/// the paper calls out (`r2`, `r5`, `r6`).
pub fn fig3_1() -> String {
    let pattern = Pattern::parse("AXC").expect("valid pattern");
    let text = "ABCAACCAB";
    let symbols = text_from_letters(text).expect("valid text");
    let mut m = SystolicMatcher::new(&pattern).expect("valid matcher");
    let bits = m.match_symbols(&symbols);

    let mut out = String::new();
    writeln!(out, "Figure 3-1: data to and from the pattern matcher").unwrap();
    writeln!(out, "  pattern : {pattern}").unwrap();
    writeln!(
        out,
        "  text    : {}",
        text.chars().map(|c| format!("{c} ")).collect::<String>()
    )
    .unwrap();
    write!(out, "  results : ").unwrap();
    for i in 0..symbols.len() {
        write!(out, "{} ", u8::from(bits.bit(i))).unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "  matches end at {:?} (paper: r2, r5, r6)",
        bits.ending_positions()
    )
    .unwrap();
    out
}

/// Figure 3-2: the flow of characters — a beat-by-beat trace of the
/// pattern marching right and the text marching left with alternate
/// cells idle.
pub fn fig3_2() -> String {
    let pattern = Pattern::parse("ABCA").expect("valid pattern");
    let text = text_from_letters("ABCAABCA").expect("valid text");
    let mut driver =
        Driver::new(BooleanMatch, pattern.symbols().to_vec(), &[4]).expect("valid driver");
    let mut rec = TraceRecorder::new();
    for _ in 0..14 {
        let is_text_beat =
            driver.beat() >= driver.phase() && (driver.beat() - driver.phase()).is_multiple_of(2);
        let inject = if is_text_beat {
            let i = ((driver.beat() - driver.phase()) / 2) as usize;
            text.get(i).copied()
        } else {
            None
        };
        driver.advance_beat(inject);
        rec.capture(&driver);
    }
    format!(
        "Figure 3-2: the flow of characters (pattern {pattern} rightward, text leftward,\n\
         `*` marks the λ character, `^` marks cells that computed this beat)\n\n{}",
        rec.render()
    )
}

/// Figure 3-3: comparators over accumulators — the same match run at
/// character level, showing the `λ`/`x` control bits riding with the
/// pattern and the per-cell temporary results.
pub fn fig3_3() -> String {
    let pattern = Pattern::parse("AXC").expect("valid pattern");
    let text = text_from_letters("ABCAACCAB").expect("valid text");
    let mut driver =
        Driver::new(BooleanMatch, pattern.symbols().to_vec(), &[3]).expect("valid driver");

    let mut out = String::new();
    writeln!(
        out,
        "Figure 3-3: comparators (top) and accumulators (bottom)"
    )
    .unwrap();
    writeln!(
        out,
        "  pattern {pattern}: λ rides with 'C', x with the wild card\n"
    )
    .unwrap();
    writeln!(out, "  beat | cell: p(λ,x)         | acc t").unwrap();
    for beat in 0..16u64 {
        let is_text_beat =
            driver.beat() >= driver.phase() && (driver.beat() - driver.phase()).is_multiple_of(2);
        let inject = if is_text_beat {
            let i = ((driver.beat() - driver.phase()) / 2) as usize;
            text.get(i).copied()
        } else {
            None
        };
        driver.advance_beat(inject);
        let seg = &driver.segments()[0];
        let mut row = String::new();
        let mut accs = String::new();
        for c in 0..seg.cells() {
            match seg.pattern_slot(c) {
                Some(item) => {
                    let lam = if item.lambda { "λ" } else { " " };
                    let x = if item.payload.is_wild() { "x" } else { " " };
                    write!(row, " {}{}{} ", item.payload, lam, x).unwrap();
                }
                None => row.push_str("  .  "),
            }
            write!(accs, "  {}  ", u8::from(*seg.acc(c))).unwrap();
        }
        writeln!(out, "  {beat:>4} | {row} | {accs}").unwrap();
    }
    out
}

/// Figure 3-4: comparators for single bits — the checkerboard of
/// active one-bit comparator cells over several beats.
pub fn fig3_4() -> String {
    let pattern = Pattern::parse("ABCA").expect("valid pattern");
    let text = text_from_letters("ABCAABCAABCA").expect("valid text");
    let m = BitSerialMatcher::new(&pattern).expect("valid matcher");

    let mut out = String::new();
    writeln!(
        out,
        "Figure 3-4: one-bit comparators, {} rows x {} columns; '#' = active cell",
        m.rows(),
        m.cells()
    )
    .unwrap();
    let rows = m.rows() as usize;
    let cols = m.cells();
    let mut boards: Vec<String> = Vec::new();
    m.match_symbols_observed(&text, |view| {
        if (6..12).contains(&view.beat) {
            let mut board = format!("  beat {:>2}:\n", view.beat);
            for v in 0..rows {
                board.push_str("    ");
                for c in 0..cols {
                    board.push(if view.active.contains(&(v, c)) {
                        '#'
                    } else {
                        '.'
                    });
                }
                board.push('\n');
            }
            boards.push(board);
        }
    });
    for b in boards {
        out.push_str(&b);
    }
    out.push_str("  (active cells form a checkerboard: no two adjacent)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_1_reports_the_papers_positions() {
        let text = fig3_1();
        assert!(text.contains("[2, 5, 6]"), "{text}");
    }

    #[test]
    fn fig3_2_shows_lambda_and_activity() {
        let text = fig3_2();
        assert!(text.contains('*'));
        assert!(text.contains('^'));
    }

    #[test]
    fn fig3_4_has_active_cells() {
        let text = fig3_4();
        assert!(text.contains('#'), "{text}");
    }
}
