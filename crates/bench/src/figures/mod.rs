//! One renderer per paper figure / claim. Each function returns the
//! reproduction as printable text; the `figures` binary prints them.

pub mod algorithm;
pub mod chaos;
pub mod dictionary;
pub mod engineering;
pub mod evaluation;
pub mod extensions;
pub mod hardware;
pub mod ingest;
pub mod inventory;
pub mod methodology;
pub mod resilience;
pub mod serve;
pub mod superwide;
pub mod telemetry;
pub mod throughput;

/// A named figure renderer.
pub type FigureEntry = (&'static str, fn() -> String);

/// The full registry of figure renderers, in paper order: the name
/// accepted on the `figures` binary's command line, and the renderer.
pub fn all() -> Vec<FigureEntry> {
    vec![
        ("fig3_1", algorithm::fig3_1 as fn() -> String),
        ("fig3_2", algorithm::fig3_2),
        ("fig3_3", algorithm::fig3_3),
        ("fig3_4", algorithm::fig3_4),
        ("fig3_5", hardware::fig3_5),
        ("fig3_6", hardware::fig3_6),
        ("plate1", hardware::plate1),
        ("plate2", hardware::plate2),
        ("rate", evaluation::data_rate),
        ("throughput", throughput::throughput),
        ("telemetry", telemetry::telemetry),
        ("superwide", superwide::superwide),
        ("chaos", chaos::chaos),
        ("dictionary", dictionary::dictionary_figure),
        ("ingest", ingest::ingest_figure),
        ("serve", serve::serve_figure),
        ("fig3_7", extensions::fig3_7),
        ("multipass", extensions::multipass),
        ("counting", extensions::counting),
        ("correlation", extensions::correlation),
        ("fir", extensions::fir),
        ("alternatives", evaluation::alternatives),
        ("wildcards", evaluation::wildcard_scaling),
        ("area", evaluation::area_scaling),
        ("selftimed", evaluation::selftimed),
        ("fig4_1", evaluation::fig4_1),
        ("faults", engineering::fault_coverage),
        ("wafer", engineering::wafer_yield),
        ("healing", resilience::healing),
        ("organisations", engineering::organisations),
        ("fig1_1", engineering::host_interface),
        ("inventory", inventory::inventory),
        ("products", methodology::products),
        ("clockgen", methodology::clock_generator),
        ("rework", methodology::rework),
        ("hierarchy", methodology::hierarchy),
    ]
}

/// Renders one figure by name.
pub fn render(name: &str) -> Option<String> {
    all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders_nonempty() {
        for (name, f) in all() {
            let out = f();
            assert!(out.len() > 40, "{name} rendered almost nothing:\n{out}");
        }
    }

    #[test]
    fn render_by_name() {
        assert!(render("fig3_1").is_some());
        assert!(render("nope").is_none());
    }
}
