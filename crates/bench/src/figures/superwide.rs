//! E31: superwide throughput — scalar vs. `u64` bit-planes vs. 256- and
//! 512-lane superplanes, on the E29 workload scaled to 512 streams.
//!
//! E29 established that packing 64 streams into the bit positions of a
//! `u64` buys an order of magnitude over the scalar beat simulator.
//! This figure measures the next widening step: the same recurrence
//! over `[u64; W]` superplanes ([`pm_systolic::superplane`]), whose
//! strip-mined kernel runtime-dispatches to AVX2/AVX-512 where the CPU
//! offers them. Three claims are checked in one run:
//!
//! 1. **speed** — the width-8 superplane sustains ≥ 2× the `u64`
//!    engine's chars/sec on ≥ 384 streams (here 512, a fully occupied
//!    512-lane batch; asserted in release builds on hardware whose
//!    runtime dispatch reaches at least AVX2 — on portable/non-x86
//!    hosts, or under `PM_ENFORCE_SPEEDUP=0`, the ratio is reported
//!    but a dip does not abort the figures run);
//! 2. **exactness** — every width is bit-identical to the executable
//!    spec on the same workload (no "fast but wrong" regressions);
//! 3. **free telemetry** — the beat-accurate
//!    [`SuperplaneDriver`]'s traced twin with a [`NullSink`] costs
//!    ≈ 0 % against its un-instrumented baseline, same discipline as
//!    E30.
//!
//! The figure also writes `BENCH_superwide.json` (override the path
//! with `PM_SUPERWIDE_JSON`) carrying `superplane_chars_per_sec` and
//! `u64_chars_per_sec` for the CI bench-regression gate.

use crate::workloads;
use pm_systolic::batch::BatchMatcher;
use pm_systolic::matcher::SystolicMatcher;
use pm_systolic::spec::match_spec;
use pm_systolic::superplane::{simd_level, SimdLevel, SuperMatcher, SuperplaneDriver};
use pm_systolic::symbol::{Alphabet, Pattern, Symbol};
use pm_systolic::telemetry::NullSink;
use std::fmt::Write;
use std::time::{Duration, Instant};

/// Streams: eight full 64-lane words — every width runs fully
/// occupied (8 u64 batches, 2 width-4 superplanes, 1 width-8
/// superplane), so the ≥ 2× claim is measured at the widest engine's
/// design point rather than on a ¾-filled batch whose dead lanes it
/// still pays for. (At 384 streams the W=8 batch is ¾-occupied and
/// its ratio over u64 sits right at the 2× line.)
const STREAMS: usize = 512;
/// Characters per stream.
const STREAM_LEN: usize = 4_096;
/// Pattern length (`k+1`), as in E29/E30.
const PATTERN_LEN: usize = 16;
/// Streams the scalar beat-simulator is timed on (rate is per
/// character, so the subset keeps the comparison fair and the figure
/// quick).
const SCALAR_STREAMS: usize = 8;
/// Repetitions per engine; best-of-N rejects scheduler noise (the
/// asserted speedup is a ratio of two best-of-N rates, so N must be
/// large enough that neither side keeps a lucky outlier).
const REPS: usize = 7;
/// Lanes and characters for the SuperplaneDriver NullSink A/B.
const AB_LANES: usize = 192;
const AB_LEN: usize = 1_024;
/// A/B repetitions; minimum over repeats rejects noise.
const AB_REPS: usize = 7;

/// Best-of-`REPS` character rate for one engine closure, which must
/// return its results so the caller can golden-check them.
fn best_rate<F: FnMut() -> Vec<pm_systolic::engine::MatchBits>>(
    total_chars: f64,
    mut f: F,
) -> (f64, Vec<pm_systolic::engine::MatchBits>) {
    let mut best = 0.0f64;
    let mut results = Vec::new();
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        let rate = total_chars / t.elapsed().as_secs_f64();
        if rate > best || results.is_empty() {
            best = best.max(rate);
            results = r;
        }
    }
    (best, results)
}

/// Renders the E31 superwide comparison and writes
/// `BENCH_superwide.json` (path overridable via `PM_SUPERWIDE_JSON`).
pub fn superwide() -> String {
    let path = std::env::var("PM_SUPERWIDE_JSON")
        .unwrap_or_else(|_| crate::snapshot_path("BENCH_superwide.json"));
    superwide_to(&path)
}

/// Whether a measured W=8-over-u64 ratio below 2× should abort the run.
///
/// The acceptance bar binds optimised builds on hardware where the wide
/// kernel actually has 256-bit registers to use; a debug build is
/// dominated by bounds checks, and on portable/non-x86 hosts (or a
/// noisy shared runner) the ratio is load- and ISA-dependent, so there
/// it is reported, not enforced. `PM_ENFORCE_SPEEDUP=1` forces the
/// assertion anywhere, `PM_ENFORCE_SPEEDUP=0` disables it anywhere.
fn enforce_speedup() -> bool {
    match std::env::var("PM_ENFORCE_SPEEDUP").ok().as_deref() {
        Some("0") => false,
        Some(_) => true,
        None => cfg!(not(debug_assertions)) && simd_level() >= SimdLevel::Avx2,
    }
}

/// As [`superwide`], but with the JSON snapshot destination passed
/// explicitly (the env var is read once by the caller, so tests can
/// route the snapshot to a temp path without mutating process-global
/// state). Write errors are ignored so read-only checkouts can still
/// render.
pub fn superwide_to(json_path: &str) -> String {
    let mut out = String::new();
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, PATTERN_LEN, 10, 31);
    let texts: Vec<Vec<Symbol>> = (0..STREAMS)
        .map(|i| workloads::random_text(alphabet, STREAM_LEN, 3100 + i as u64))
        .collect();
    let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
    let total_chars = (STREAMS * STREAM_LEN) as f64;

    writeln!(
        out,
        "Superwide throughput (E31): {STREAMS} streams × {STREAM_LEN} chars, \
         pattern of {PATTERN_LEN} ({} wild cards), SIMD dispatch: {}",
        pattern.symbols().iter().filter(|s| s.is_wild()).count(),
        simd_level(),
    )
    .unwrap();

    // Scalar: the beat-accurate array simulator on a subset.
    let mut scalar = SystolicMatcher::new(&pattern).expect("pattern is valid");
    let started = Instant::now();
    let scalar_results: Vec<_> = texts
        .iter()
        .take(SCALAR_STREAMS)
        .map(|t| scalar.match_symbols(t))
        .collect();
    let scalar_rate = (SCALAR_STREAMS * STREAM_LEN) as f64 / started.elapsed().as_secs_f64();

    // One plane width per engine, best of REPS each.
    let narrow = BatchMatcher::new(&pattern);
    let (u64_rate, narrow_results) =
        best_rate(total_chars, || narrow.match_streams(&lanes).unwrap());
    let wide4 = SuperMatcher::<4>::new(&pattern);
    let (w4_rate, w4_results) = best_rate(total_chars, || wide4.match_streams(&lanes).unwrap());
    let wide8 = SuperMatcher::<8>::new(&pattern);
    let (w8_rate, w8_results) = best_rate(total_chars, || wide8.match_streams(&lanes).unwrap());

    // Golden check: every engine, every stream, against the spec.
    let mut agree = true;
    for (i, t) in texts.iter().enumerate() {
        let spec = match_spec(t, &pattern);
        if i < SCALAR_STREAMS && scalar_results[i].bits() != spec {
            agree = false;
        }
        if narrow_results[i].bits() != spec
            || w4_results[i].bits() != spec
            || w8_results[i].bits() != spec
        {
            agree = false;
        }
    }

    writeln!(
        out,
        "\n  engine                 |   Mchar/s | × scalar |  × u64"
    )
    .unwrap();
    writeln!(
        out,
        "  -----------------------+-----------+----------+-------"
    )
    .unwrap();
    for (name, rate) in [
        ("scalar beat simulator", scalar_rate),
        ("u64 bit-plane (64)", u64_rate),
        ("superplane W=4 (256)", w4_rate),
        ("superplane W=8 (512)", w8_rate),
    ] {
        writeln!(
            out,
            "  {name:<23}| {:>9.2} | {:>8.1} | {:>6.2}",
            rate / 1e6,
            rate / scalar_rate,
            rate / u64_rate,
        )
        .unwrap();
    }

    let speedup = w8_rate / u64_rate;
    let enforced = enforce_speedup();
    writeln!(
        out,
        "\n  W=8 speedup over u64: {speedup:.2}× (≥ 2× holds: {}, enforced here: {enforced})",
        speedup >= 2.0
    )
    .unwrap();
    if enforced {
        assert!(
            speedup >= 2.0,
            "width-8 superplane must be ≥ 2× the u64 engine on \
             {STREAMS} streams, measured {speedup:.2}×"
        );
    }

    // NullSink A/B on the beat-accurate superplane driver, same
    // discipline as E30's PlaneDriver A/B.
    let ab_pattern = workloads::random_pattern(alphabet, PATTERN_LEN, 10, 32);
    let ab_patterns: Vec<Pattern> = (0..AB_LANES).map(|_| ab_pattern.clone()).collect();
    let ab_texts: Vec<Vec<Symbol>> = (0..AB_LANES)
        .map(|i| workloads::random_text(alphabet, AB_LEN, 3200 + i as u64))
        .collect();
    let ab_lanes: Vec<&[Symbol]> = ab_texts.iter().map(|t| t.as_slice()).collect();
    let mut driver = SuperplaneDriver::<8>::new(&ab_patterns).expect("uniform pattern lengths");
    let mut base = Duration::MAX;
    let mut nulled = Duration::MAX;
    for _ in 0..AB_REPS {
        let t = Instant::now();
        let a = driver.run(&ab_lanes).expect("lane count matches");
        base = base.min(t.elapsed());
        let t = Instant::now();
        let b = driver
            .run_with_sink(&ab_lanes, &NullSink)
            .expect("lane count matches");
        nulled = nulled.min(t.elapsed());
        assert_eq!(a, b, "traced twin must be bit-identical");
    }
    let overhead =
        (nulled.as_secs_f64() - base.as_secs_f64()).max(0.0) / base.as_secs_f64().max(1e-12);
    writeln!(
        out,
        "\n  NullSink A/B (SuperplaneDriver<8>, {AB_LANES} lanes × {AB_LEN} chars, \
         min of {AB_REPS}):"
    )
    .unwrap();
    writeln!(
        out,
        "    baseline run       : {:>8.3} ms",
        base.as_secs_f64() * 1e3
    )
    .unwrap();
    writeln!(
        out,
        "    run_with_sink(Null): {:>8.3} ms",
        nulled.as_secs_f64() * 1e3
    )
    .unwrap();
    writeln!(
        out,
        "    disabled-sink overhead: {:.2} % (within 1 %: {})",
        overhead * 100.0,
        overhead < 0.01
    )
    .unwrap();

    // JSON for the CI regression gate: the superplane headline plus the
    // u64 rate it is compared against.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"superplane_chars_per_sec\": {w8_rate:.1},");
    let _ = writeln!(json, "  \"u64_chars_per_sec\": {u64_rate:.1},");
    let _ = writeln!(json, "  \"superplane4_chars_per_sec\": {w4_rate:.1},");
    let _ = writeln!(json, "  \"scalar_chars_per_sec\": {scalar_rate:.1},");
    let _ = writeln!(json, "  \"w8_speedup_over_u64\": {speedup:.3},");
    let _ = writeln!(json, "  \"simd_level\": \"{}\",", simd_level());
    let _ = writeln!(json, "  \"streams\": {STREAMS},");
    let _ = writeln!(json, "  \"stream_len\": {STREAM_LEN}");
    json.push_str("}\n");
    let wrote = std::fs::write(json_path, &json).is_ok();
    writeln!(
        out,
        "\n  JSON snapshot ({} bytes) {} {json_path}",
        json.len(),
        if wrote {
            "written to"
        } else {
            "NOT written to"
        },
    )
    .unwrap();

    writeln!(out, "\n  all engines equal specification: {agree}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn superwide_figure_is_exact() {
        // Route the JSON somewhere harmless for the test run, via the
        // explicit path parameter — not the process environment, which
        // other tests may be reading concurrently.
        let path = std::env::temp_dir().join("pm_test_superwide.json");
        let text = super::superwide_to(path.to_str().unwrap());
        assert!(text.contains("equal specification: true"), "{text}");
        assert!(text.contains("SIMD dispatch"), "{text}");
    }
}
