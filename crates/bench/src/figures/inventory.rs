//! The system inventory: one table collecting every hardware model's
//! vital statistics — the reproduction's "Table 0".

use pm_chip::datasheet::DataSheet;
use pm_layout::cell::{accumulator_cell, comparator_cell};
use pm_layout::floorplan::ChipFloorplan;
use pm_nmos::cells::{AccumulatorCell, ComparatorCell};
use pm_nmos::charchip::CharChip;
use pm_nmos::chip::PatternChip;
use pm_nmos::corrchip::CorrChip;
use pm_nmos::countchip::CountChip;
use pm_nmos::timing::{analyse, StageDelays};
use std::fmt::Write;

/// Every model of the same hardware, side by side.
pub fn inventory() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "System inventory — the same chip at every abstraction level"
    )
    .unwrap();

    writeln!(out, "\n  cells (devices):").unwrap();
    writeln!(
        out,
        "    one-bit comparator  : {:>4}   (Plate 1 sticks: 15, layout: {})",
        ComparatorCell::new(false).device_count(),
        comparator_cell().device_count()
    )
    .unwrap();
    writeln!(
        out,
        "    boolean accumulator : {:>4}   (layout: {})",
        AccumulatorCell::new(false, false).device_count(),
        accumulator_cell().device_count()
    )
    .unwrap();

    writeln!(out, "\n  chips (switch-level devices):").unwrap();
    let rows: Vec<(&str, usize)> = vec![
        (
            "bit-serial matcher, 8 cells x 2 bits (the prototype)",
            PatternChip::new(8, 2).device_count(),
        ),
        (
            "character-level matcher, 8 cells x 2 bits",
            CharChip::new(8, 2).device_count(),
        ),
        (
            "counting chip, 8 cells x 2 bits, 4-bit counters",
            CountChip::new(8, 2, 4).device_count(),
        ),
        (
            "SSD correlator, 4 cells, 4-bit samples",
            CorrChip::new(4, 4, 12).device_count(),
        ),
    ];
    for (name, devices) in rows {
        writeln!(out, "    {name:55}: {devices:>6}").unwrap();
    }

    writeln!(out, "\n  timing (derived from the netlist):").unwrap();
    let mut nl = pm_nmos::netlist::Netlist::new();
    let pins: Vec<_> = (0..6)
        .map(|i| {
            let n = nl.node(format!("in{i}"));
            nl.input(n);
            n
        })
        .collect();
    pm_nmos::cells::build_accumulator(
        &mut nl, "acc", pins[0], pins[1], pins[2], pins[3], pins[4], pins[5], false, false,
    );
    let t = analyse(&nl, &StageDelays::default());
    writeln!(
        out,
        "    critical cell depth : {} gate stages -> {:.0} ns phase",
        t.depth, t.phase_ns
    )
    .unwrap();

    writeln!(out, "\n  layout:").unwrap();
    let plan = ChipFloorplan::new(8, 2);
    writeln!(
        out,
        "    prototype die       : {}x{} λ, {} pads, {} mask shapes, DRC clean",
        plan.die().width(),
        plan.die().height(),
        plan.pads(),
        plan.shapes().len()
    )
    .unwrap();

    writeln!(out, "\n  data sheet:").unwrap();
    for line in DataSheet::compile(8, 2).to_string().lines() {
        writeln!(out, "    {line}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn inventory_is_consistent() {
        let text = super::inventory();
        assert!(text.contains("(Plate 1 sticks: 15, layout: 15)"), "{text}");
        assert!(text.contains("DRC clean"), "{text}");
        assert!(text.contains("250 ns"), "{text}");
    }
}
