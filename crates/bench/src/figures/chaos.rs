//! E32: chaos harness — the fault-tolerant scheduler under seeded
//! fault campaigns, and the price of protection when nothing fails.
//!
//! The paper's §4 discipline is that a special-purpose part earns its
//! keep only if its failure modes are *testable*: single-stuck-at
//! faults, detected by exercising the comparator lattice against known
//! answers. E32 carries that discipline up to the scheduler: the
//! resilient layer ([`pm_chip::throughput::ResiliencePolicy`]) buys
//! sampled-lane scrubbing, a stall watchdog, exit known-answer tests
//! and a degradation ladder — and this figure measures two claims
//! about it:
//!
//! 1. **zero-fault overhead** — on a fault-free run the resilient
//!    scheduler sustains ≈ the fast path's chars/sec. The same-run
//!    ratio `chaos_zero_fault_ratio` (resilient ÷ fast, both
//!    best-of-N on identical hardware) goes to `BENCH_chaos.json`
//!    for the CI gate, which allows ≤ 3 % dilution;
//! 2. **exactness under fire** — seeded campaigns at increasing fault
//!    densities (lane upsets, stuck comparators, cache poison, stalls,
//!    panics) always commit output bit-identical to the scalar spec.
//!
//! The campaign seed folds in `PM_CHAOS_SEED` when set, so the CI seed
//! matrix replays distinct deterministic campaigns. Override the JSON
//! destination with `PM_CHAOS_JSON`.

use crate::workloads;
use pm_chip::faults::FaultPlan;
use pm_chip::throughput::{Job, ResiliencePolicy, SuperWidth, ThroughputEngine};
use pm_systolic::spec::match_spec;
use pm_systolic::superplane::simd_level;
use pm_systolic::symbol::{Alphabet, Pattern};
use std::fmt::Write;
use std::time::{Duration, Instant};

/// Jobs in the timing workload: eight full 512-lane batches at W=8
/// (two per pattern group), so the stealing queue has enough grain
/// that one descheduled worker does not set the whole run's wall
/// clock.
const JOBS: usize = if cfg!(debug_assertions) { 512 } else { 4_096 };
/// Characters per job text. The protection cost worth reporting is the
/// *sustained* dilution, not the fixed per-run gate (each worker runs
/// one exit known-answer test however long the run was), so the
/// release workload is long enough to amortise it the way a real
/// service run would; the debug build — where the figure runs only as
/// a smoke test and the ratio is advisory — keeps the workload small.
const STREAM_LEN: usize = if cfg!(debug_assertions) { 1_024 } else { 4_096 };
/// Distinct patterns cycled across the jobs (the cache keeps each
/// worker's compile cost at one per distinct pattern).
const PATTERN_LEN: usize = 12;
const PATTERNS: usize = 4;
/// Scheduler worker threads.
const WORKERS: usize = 4;
/// Repetitions per timing leg; the reported rate is the best, so one
/// descheduled rep cannot fake a protection overhead. Runs are short
/// (tens of milliseconds in release), so the pair count is set high
/// enough that "every single pair got disturbed" stops being a
/// plausible event.
const REPS: usize = if cfg!(debug_assertions) { 2 } else { 9 };
/// Fault densities (‰ per worker) for the campaign legs.
const CAMPAIGNS: [u32; 3] = [250, 500, 1000];

/// The CI seed-matrix contribution, as in the chaos proptests.
fn env_seed() -> u64 {
    std::env::var("PM_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A resilience policy for timing runs: the watchdog is opened far
/// beyond any honest batch (a debug-build batch is slow, not stalled),
/// so a false condemnation can never pollute the overhead ratio.
fn figure_policy() -> ResiliencePolicy {
    ResiliencePolicy {
        watchdog: Duration::from_secs(30),
        ..ResiliencePolicy::default()
    }
}

fn engine(resilient: bool, plan: Option<FaultPlan>) -> ThroughputEngine {
    let mut e = ThroughputEngine::new(WORKERS, PATTERNS * 2);
    e.set_width(SuperWidth::W8);
    e.set_resilience(resilient.then(figure_policy));
    e.set_fault_plan(plan);
    e
}

/// One timed run on a fresh engine (so ladder state cannot leak
/// between reps), in chars/sec.
fn timed_run(jobs: &[Job], total_chars: f64, resilient: bool) -> f64 {
    let e = engine(resilient, None);
    let t = Instant::now();
    e.run(jobs).expect("figure workloads are valid");
    total_chars / t.elapsed().as_secs_f64()
}

/// Best-of-[`REPS`] rates for the fast and resilient paths, measured
/// *interleaved* (fast, resilient, fast, resilient, …) after one
/// unmeasured warm-up of each, plus the protection ratio taken as the
/// best over back-to-back *pairs*. Two estimators, one reason: on a
/// shared machine the baseline drifts by more than the quantity under
/// test, and a pair of adjacent runs shares its machine conditions
/// where two independent bests do not. The resilient path does
/// strictly more work than the fast path, so the true ratio bounds
/// every pair's ratio from above and the best pair — like best-of-N
/// for a rate — is the least-disturbed estimate, not a lucky one. The
/// same bound caps the report at 1.0: a pair whose ratio lands above
/// that only proves its fast run was the disturbed one.
fn paired_rates(jobs: &[Job], total_chars: f64) -> (f64, f64, f64) {
    timed_run(jobs, total_chars, false);
    timed_run(jobs, total_chars, true);
    let (mut fast, mut resilient, mut ratio) = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..REPS {
        let f = timed_run(jobs, total_chars, false);
        let r = timed_run(jobs, total_chars, true);
        fast = fast.max(f);
        resilient = resilient.max(r);
        ratio = ratio.max(r / f);
    }
    (fast, resilient, ratio.min(1.0))
}

/// Renders the E32 chaos figure and writes `BENCH_chaos.json` (path
/// overridable via `PM_CHAOS_JSON`).
pub fn chaos() -> String {
    let path =
        std::env::var("PM_CHAOS_JSON").unwrap_or_else(|_| crate::snapshot_path("BENCH_chaos.json"));
    chaos_to(&path)
}

/// As [`chaos`], but with the JSON snapshot destination passed
/// explicitly (tests route it to a temp path without touching the
/// process environment). Write errors are ignored so read-only
/// checkouts can still render.
pub fn chaos_to(json_path: &str) -> String {
    let mut out = String::new();
    let alphabet = Alphabet::TWO_BIT;
    let patterns: Vec<Pattern> = (0..PATTERNS)
        .map(|i| workloads::random_pattern(alphabet, PATTERN_LEN, 10, 3_201 + i as u64))
        .collect();
    let jobs: Vec<Job> = (0..JOBS)
        .map(|i| {
            Job::new(
                i as u64,
                patterns[i % PATTERNS].clone(),
                workloads::random_text(alphabet, STREAM_LEN, 3_300 + i as u64),
            )
        })
        .collect();
    let total_chars = (JOBS * STREAM_LEN) as f64;
    let seed = 1_980 ^ env_seed();

    writeln!(
        out,
        "Chaos harness (E32): {JOBS} jobs × {STREAM_LEN} chars, {PATTERNS} patterns \
         of {PATTERN_LEN}, {WORKERS} workers at W=8, SIMD dispatch: {}, seed {seed}",
        simd_level(),
    )
    .unwrap();

    // Leg 1: zero-fault overhead — fast path vs. resilient path, no
    // fault plan installed, interleaved best of REPS each.
    let (fast_rate, resilient_rate, ratio) = paired_rates(&jobs, total_chars);
    writeln!(
        out,
        "\n  zero-fault overhead (best of {REPS}):\n\
         \x20   fast path      : {:>9.2} Mchar/s\n\
         \x20   resilient path : {:>9.2} Mchar/s\n\
         \x20   chaos_zero_fault_ratio: {ratio:.3} (≥ 0.97 holds: {})",
        fast_rate / 1e6,
        resilient_rate / 1e6,
        ratio >= 0.97,
    )
    .unwrap();

    // Leg 2: seeded fault campaigns — every committed bit must equal
    // the scalar specification, whatever the density.
    let mut agree = true;
    writeln!(
        out,
        "\n  campaign ‰ | faults | scrub | quarantined | recovered | fallback | ladder"
    )
    .unwrap();
    writeln!(
        out,
        "  -----------+--------+-------+-------------+-----------+----------+-------"
    )
    .unwrap();
    for permille in CAMPAIGNS {
        // Onset 0: a faulted worker is defective from its first batch
        // (the timing workload plans few batches per worker, so a late
        // onset would never fire).
        let plan = FaultPlan::new(seed)
            .with_worker_fault_permille(permille)
            .with_max_onset_batches(0)
            .with_stall_millis(1);
        let e = engine(true, Some(plan));
        let report = e.run(&jobs).expect("resilient runs contain faults");
        for (job, out) in jobs.iter().zip(&report.outputs) {
            if out.hits.bits() != match_spec(&job.text, &job.pattern) {
                agree = false;
            }
        }
        let res = report.resilience.expect("resilient run reports");
        writeln!(
            out,
            "  {permille:>10} | {:>6} | {:>5} | {:>11} | {:>9} | {:>8} | W×{}",
            res.faults_injected,
            res.scrub_mismatches,
            res.quarantined.len(),
            res.recovered_jobs,
            res.fallback_jobs,
            res.ladder_words,
        )
        .unwrap();
    }

    // JSON for the CI regression gate: the hardware-independent
    // protection ratio (both sides measured in this process), plus the
    // advisory absolute rates behind it.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"chaos_zero_fault_ratio\": {ratio:.3},");
    let _ = writeln!(json, "  \"resilient_chars_per_sec\": {resilient_rate:.1},");
    let _ = writeln!(json, "  \"fast_chars_per_sec\": {fast_rate:.1},");
    let _ = writeln!(json, "  \"simd_level\": \"{}\",", simd_level());
    let _ = writeln!(json, "  \"jobs\": {JOBS},");
    let _ = writeln!(json, "  \"stream_len\": {STREAM_LEN}");
    json.push_str("}\n");
    let wrote = std::fs::write(json_path, &json).is_ok();
    writeln!(
        out,
        "\n  JSON snapshot ({} bytes) {} {json_path}",
        json.len(),
        if wrote {
            "written to"
        } else {
            "NOT written to"
        },
    )
    .unwrap();

    writeln!(
        out,
        "\n  all committed campaign output equal specification: {agree}"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn chaos_figure_is_exact() {
        let path = std::env::temp_dir().join("pm_test_chaos.json");
        let text = super::chaos_to(path.to_str().unwrap());
        assert!(text.contains("equal specification: true"), "{text}");
        assert!(text.contains("chaos_zero_fault_ratio"), "{text}");
    }
}
