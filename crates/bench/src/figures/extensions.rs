//! Figure 3-7 and the §3.4 extensions.

use crate::workloads;
use pm_chip::cascade::ChipCascade;
use pm_chip::multipass::MultipassMatcher;
use pm_correlator::prelude::*;
use pm_systolic::matcher::{SystolicCounter, SystolicMatcher};
use pm_systolic::spec::{correlation_spec, count_spec, match_spec};
use pm_systolic::symbol::{Alphabet, Pattern};
use std::fmt::Write;

/// Figure 3-7: a five-chip pattern matcher — 5 × 8 cells matching a
/// 33-character pattern, bit-identical to one 40-cell array.
pub fn fig3_7() -> String {
    let mut out = String::new();
    let pattern = workloads::random_pattern(Alphabet::TWO_BIT, 33, 10, 42);
    let (text, planted) = workloads::planted_text(&pattern, 200, 61, 43);

    let mut cascade = ChipCascade::new(&pattern, 5, 8).expect("fits");
    let got = cascade.match_symbols(&text);
    let mut mono = SystolicMatcher::with_cells(&pattern, 40).expect("fits");
    let mono_bits = mono.match_symbols(&text);

    writeln!(out, "Figure 3-7: a five chip pattern matcher").unwrap();
    writeln!(
        out,
        "  5 chips x 8 cells = capacity {} chars; pattern length {}",
        cascade.capacity(),
        pattern.len()
    )
    .unwrap();
    writeln!(
        out,
        "  chip pins: {} ({}), wires between chips: {}",
        cascade.chip_pins().total_pins(),
        cascade
            .chip_pins()
            .smallest_package()
            .map(|p| p.to_string())
            .unwrap_or_else(|| "no DIP".into()),
        cascade.wires_between_chips()
    )
    .unwrap();
    writeln!(out, "  planted matches at {planted:?}").unwrap();
    writeln!(out, "  cascade found     {:?}", got.ending_positions()).unwrap();
    writeln!(
        out,
        "  equals monolithic 40-cell array: {}",
        got == mono_bits
    )
    .unwrap();
    writeln!(
        out,
        "  equals specification: {}",
        got.bits() == match_spec(&text, &pattern)
    )
    .unwrap();
    out
}

/// §3.4 multi-pass operation: a pattern three times the system size.
pub fn multipass() -> String {
    let mut out = String::new();
    let pattern = workloads::random_pattern(Alphabet::TWO_BIT, 24, 5, 7);
    let (text, planted) = workloads::planted_text(&pattern, 240, 80, 8);
    let cells = 8;
    let m = MultipassMatcher::new(&pattern, cells).expect("non-empty");
    let got = m.match_symbols(&text);

    writeln!(
        out,
        "Multi-pass matching (§3.4): pattern of {} chars on {} cells",
        pattern.len(),
        cells
    )
    .unwrap();
    writeln!(
        out,
        "  passes over the text: {}",
        m.passes_needed(text.len())
    )
    .unwrap();
    writeln!(out, "  planted matches at {planted:?}").unwrap();
    writeln!(out, "  found             {:?}", got.ending_positions()).unwrap();
    writeln!(
        out,
        "  equals specification: {}",
        got.bits() == match_spec(&text, &pattern)
    )
    .unwrap();
    out
}

/// §3.4 counting cells: how many characters of each window agree —
/// behavioural array and the transistor-level counting chip.
pub fn counting() -> String {
    let mut out = String::new();
    let pattern = Pattern::parse("AXCA").expect("valid");
    let text = workloads::random_text(Alphabet::TWO_BIT, 24, 11);
    let mut counter = SystolicCounter::new(&pattern).expect("valid");
    let got = counter.count_symbols(&text);
    let spec = count_spec(&text, &pattern);

    writeln!(
        out,
        "Counting cells (§3.4): per-window agreement counts for {pattern}"
    )
    .unwrap();
    write!(out, "  text  : ").unwrap();
    for s in &text {
        write!(out, "{s}").unwrap();
    }
    write!(out, "\n  counts: ").unwrap();
    for c in &got {
        write!(out, "{c}").unwrap();
    }
    writeln!(out, "\n  equals specification: {}", got == spec).unwrap();

    // And the same computation in silicon: the comparator grid over
    // 3-bit counting cells.
    let chip = pm_nmos::countchip::CountChip::new(pattern.len(), 2, 3);
    let silicon = chip.count(&pattern, &text).expect("chip settles");
    writeln!(
        out,
        "  transistor-level counting chip ({} devices) agrees: {}",
        chip.device_count(),
        silicon == got
    )
    .unwrap();
    out
}

/// §3.4 correlation: difference + adder cells computing the sum of
/// squared differences.
pub fn correlation() -> String {
    let mut out = String::new();
    let reference = vec![3, -1, 4, 1];
    let mut signal = workloads::random_signal(32, 5, 13);
    // Plant two exact copies of the reference.
    for (offset, _) in [(6, ()), (20, ())] {
        signal[offset..offset + 4].copy_from_slice(&reference);
    }
    let mut corr = SystolicCorrelator::new(reference.clone()).expect("non-empty");
    let got = corr.correlate(&signal);
    let spec = correlation_spec(&signal, &reference);
    let zeroes: Vec<usize> = got
        .iter()
        .enumerate()
        .skip(3)
        .filter(|(_, &v)| v == 0)
        .map(|(i, _)| i)
        .collect();

    writeln!(
        out,
        "Correlation (§3.4): reference {reference:?} against a 32-sample signal"
    )
    .unwrap();
    writeln!(out, "  SSD per window: {:?}", &got[3..15]).unwrap();
    writeln!(out, "  exact matches end at {zeroes:?} (planted: [9, 23])").unwrap();
    writeln!(out, "  equals specification: {}", got == spec).unwrap();

    // The same computation in silicon: difference-square cells over
    // adder cells (4-bit samples, 12-bit accumulators).
    let chip = pm_nmos::corrchip::CorrChip::new(reference.len(), 4, 12);
    let silicon = chip.correlate(&reference, &signal).expect("chip settles");
    writeln!(
        out,
        "  transistor-level correlator ({} devices) agrees: {}",
        chip.device_count(),
        silicon == got
    )
    .unwrap();
    out
}

/// §3.4 convolution / FIR filtering on the same dataflow.
pub fn fir() -> String {
    let mut out = String::new();
    // A 5-tap smoothing filter over a noisy step.
    let taps = vec![1, 2, 3, 2, 1];
    let mut f = FirFilter::new(taps.clone()).expect("non-empty");
    let mut signal = vec![0i64; 10];
    signal.extend(vec![9i64; 10]);
    let smoothed = f.filter(&signal);

    let mut conv = SystolicConvolver::new(vec![1, -1]).expect("non-empty");
    let edges = conv.convolve(&signal);

    writeln!(
        out,
        "FIR filtering and convolution (§3.4), same systolic dataflow"
    )
    .unwrap();
    writeln!(out, "  step input : {signal:?}").unwrap();
    writeln!(out, "  {taps:?}-smoothed: {smoothed:?}").unwrap();
    writeln!(out, "  [1,-1]-convolved (edge detector): {edges:?}").unwrap();
    writeln!(
        out,
        "  convolver equals direct computation: {}",
        conv.convolve(&signal) == convolve_direct(&signal, &[1, -1])
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_7_agrees_everywhere() {
        let text = fig3_7();
        assert!(
            text.contains("equals monolithic 40-cell array: true"),
            "{text}"
        );
        assert!(text.contains("equals specification: true"), "{text}");
    }

    #[test]
    fn multipass_agrees() {
        assert!(multipass().contains("equals specification: true"));
    }

    #[test]
    fn numeric_extensions_agree() {
        assert!(counting().contains("equals specification: true"));
        assert!(correlation().contains("equals specification: true"));
        assert!(fir().contains("equals direct computation: true"));
    }
}
