//! The quantitative claims: data rate, rejected alternatives,
//! wild-card scaling, area scaling, clock discipline, and Figure 4-1.

use crate::workloads;
use pm_chip::timing::ClockModel;
use pm_design::figure41::figure_4_1;
use pm_layout::drc::DesignRules;
use pm_layout::floorplan::ChipFloorplan;
use pm_matchers::comm::CommunicationProfile;
use pm_matchers::prelude::*;
use pm_systolic::handshake::HandshakeArray;
use pm_systolic::selftimed::{sweep, TimingParams};
use pm_systolic::symbol::Alphabet;
use std::fmt::Write;
use std::time::Instant;

/// §1's headline: "a data rate of one character every 250 ns, which is
/// higher than the memory bandwidth of most conventional computers."
pub fn data_rate() -> String {
    let mut out = String::new();
    let clock = ClockModel::prototype();
    writeln!(out, "Data rate (§1): derived from the cell critical path").unwrap();
    writeln!(out, "  beat (one clock phase) : {:.0} ns", clock.beat_ns()).unwrap();
    writeln!(
        out,
        "  character period       : {:.0} ns  (paper: 250 ns)",
        clock.char_period_ns()
    )
    .unwrap();
    writeln!(
        out,
        "  sustained rate         : {:.2} Mchar/s",
        clock.chars_per_second() / 1e6
    )
    .unwrap();
    writeln!(out, "\n  rate vs pattern length (1M chars of text):").unwrap();
    writeln!(out, "  cells | effective Mchar/s").unwrap();
    for cells in [1usize, 8, 64, 512] {
        writeln!(
            out,
            "  {cells:>5} | {:.3}",
            clock.effective_rate(1_000_000, cells) / 1e6
        )
        .unwrap();
    }
    writeln!(out, "  (independent of pattern length: the paper's point)").unwrap();

    // Cross-check: the same phase derived from the transistor netlist
    // by static timing analysis, not from the hand-listed path.
    let mut nl = pm_nmos::netlist::Netlist::new();
    let pins: Vec<_> = (0..6)
        .map(|i| {
            let n = nl.node(format!("in{i}"));
            nl.input(n);
            n
        })
        .collect();
    pm_nmos::cells::build_accumulator(
        &mut nl, "acc", pins[0], pins[1], pins[2], pins[3], pins[4], pins[5], false, false,
    );
    let report = pm_nmos::timing::analyse(&nl, &pm_nmos::timing::StageDelays::default());
    writeln!(
        out,
        "\n  netlist-derived check: accumulator logic depth {} stages -> {:.0} ns phase\n\
         (static timing analysis over the switch-level netlist agrees with the budget)",
        report.depth, report.phase_ns
    )
    .unwrap();
    out
}

/// §3.3.1's design-space table: the communication costs that got the
/// alternatives rejected, plus measured runtimes of each matcher.
pub fn alternatives() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Alternatives (§3.3.1): structural costs at n = 64 cells"
    )
    .unwrap();
    writeln!(
        out,
        "  {:32} {:>8} {:>6} {:>8} {:>9} {:>11}",
        "architecture", "fan-out", "wire", "loading", "on-line?", "driver load"
    )
    .unwrap();
    for p in [
        CommunicationProfile::systolic(64),
        CommunicationProfile::broadcast(64),
        CommunicationProfile::unidirectional(64),
    ] {
        writeln!(
            out,
            "  {:32} {:>8} {:>6} {:>8} {:>9} {:>11.1}",
            p.architecture,
            p.max_fanout,
            p.wire_length,
            p.loading_beats,
            if p.on_line_pattern_change {
                "yes"
            } else {
                "no"
            },
            p.max_driver_load()
        )
        .unwrap();
    }

    writeln!(
        out,
        "\n  functional cross-check + software runtime, 20k chars, pattern 16:"
    )
    .unwrap();
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 16, 12, 5);
    let text = workloads::random_text(alphabet, 20_000, 6);
    let reference = NaiveMatcher
        .find(&text, &pattern)
        .expect("naive accepts all");
    writeln!(
        out,
        "  {:20} {:>10} {:>8}",
        "algorithm", "time (ms)", "agrees"
    )
    .unwrap();
    for m in all_matchers() {
        let start = Instant::now();
        match m.find(&text, &pattern) {
            Ok(bits) => {
                let ms = start.elapsed().as_secs_f64() * 1e3;
                writeln!(
                    out,
                    "  {:20} {:>10.2} {:>8}",
                    m.name(),
                    ms,
                    bits == reference
                )
                .unwrap();
            }
            Err(e) => {
                writeln!(out, "  {:20} {:>10} {:>8}", m.name(), "-", format!("({e})")).unwrap();
            }
        }
    }
    out
}

/// §3.1: wild cards break the fast sequential algorithms; the
/// convolution method is super-linear; the systolic array stays linear.
pub fn wildcard_scaling() -> String {
    let mut out = String::new();
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 12, 25, 21);
    writeln!(
        out,
        "Wild-card scaling (§3.1): pattern of 12 chars, 25% wild cards"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>8} | {:>12} {:>12} {:>12} | per-char growth",
        "text", "naive (ms)", "fft (ms)", "systolic (ms)"
    )
    .unwrap();
    let mut last: Option<(f64, f64, f64, usize)> = None;
    for &n in &[4_000usize, 16_000, 64_000] {
        let text = workloads::random_text(alphabet, n, 22);
        let time = |m: &dyn PatternMatcher| {
            let start = Instant::now();
            let _ = m.find(&text, &pattern).expect("supports wild cards");
            start.elapsed().as_secs_f64() * 1e3
        };
        let naive = time(&NaiveMatcher);
        let fft = time(&FischerPatersonMatcher);
        let sys = time(&SystolicAlgorithm);
        let growth = match last {
            Some((ln, lf, ls, lsize)) => {
                let scale = n as f64 / lsize as f64;
                format!(
                    "naive x{:.1}, fft x{:.1}, systolic x{:.1} (linear = x{scale:.0})",
                    naive / ln,
                    fft / lf,
                    sys / ls
                )
            }
            None => String::new(),
        };
        writeln!(
            out,
            "  {n:>8} | {naive:>12.2} {fft:>12.2} {sys:>12.2} | {growth}"
        )
        .unwrap();
        last = Some((naive, fft, sys, n));
    }
    writeln!(
        out,
        "\n  kmp/boyer-moore on this pattern: {:?}",
        KmpMatcher
            .find(&[], &pattern)
            .err()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "accepted?!".into())
    )
    .unwrap();

    // The fairest software response: Boyer-Moore around the wild cards.
    // Its advantage collapses as wild cards shorten the literal anchor.
    writeln!(
        out,
        "\n  segment-hybrid degradation with wild-card density (64k chars):"
    )
    .unwrap();
    writeln!(out, "  wild% | hybrid (ms) | naive (ms)").unwrap();
    let text = workloads::random_text(alphabet, 64_000, 23);
    for &pct in &[0u32, 25, 50, 75] {
        let p = workloads::random_pattern(alphabet, 12, pct, 31);
        let t0 = Instant::now();
        let _ = SegmentHybridMatcher.find(&text, &p).expect("wild cards ok");
        let hybrid_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let _ = NaiveMatcher.find(&text, &p).expect("ok");
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;
        writeln!(out, "  {pct:>5} | {hybrid_ms:>11.2} | {naive_ms:>10.2}").unwrap();
    }
    out
}

/// E17: layout area scales linearly with cell count (Plate 2's
/// modularity dividend).
pub fn area_scaling() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Area scaling (Plate 2 / E17): full-chip floorplans, 2-bit characters"
    )
    .unwrap();
    writeln!(out, "  cells | die (λ x λ) | area (λ²) | Δarea | DRC").unwrap();
    let mut last = None;
    for cells in [8usize, 16, 24, 32] {
        let plan = ChipFloorplan::new(cells, 2);
        let area = plan.area();
        let delta = last.map(|l: i64| area - l).unwrap_or(0);
        let drc = plan.drc(&DesignRules::default()).len();
        writeln!(
            out,
            "  {cells:>5} | {:>5} x {:<5} | {area:>9} | {delta:>6} | {drc} violations",
            plan.die().width(),
            plan.die().height()
        )
        .unwrap();
        last = Some(area);
    }
    writeln!(
        out,
        "  (constant Δarea per 8 cells: replication, not redesign)"
    )
    .unwrap();
    out
}

/// §3.3.2: clocked vs self-timed — small arrays prefer the clock,
/// large arrays the handshake.
pub fn selftimed() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Clocked vs self-timed (§3.3.2): 400 beats, Monte-Carlo delays"
    )
    .unwrap();
    writeln!(
        out,
        "  cells | clocked (µs) | self-timed (µs) | self-timed speedup"
    )
    .unwrap();
    for cmp in sweep(
        &[4, 8, 32, 128, 512, 2048],
        400,
        TimingParams::default(),
        99,
    ) {
        writeln!(
            out,
            "  {:>5} | {:>12.1} | {:>15.1} | x{:.2}{}",
            cmp.cells,
            cmp.clocked_ns / 1e3,
            cmp.selftimed_ns / 1e3,
            cmp.selftimed_speedup(),
            if cmp.selftimed_speedup() > 1.0 {
                "  <- handshake wins"
            } else {
                ""
            }
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (the paper: \"for systems that are small enough to use a common clock …\n\
         the clocked data flow implementation should be chosen\")"
    )
    .unwrap();

    // And an *operational* self-timed run (event-driven handshakes),
    // cross-validating the model above.
    let pattern = pm_systolic::symbol::Pattern::parse("ABCAABCA").expect("valid");
    let text = pm_systolic::symbol::text_from_letters(&"ABCA".repeat(8)).expect("valid");
    let hs = HandshakeArray::new(&pattern, TimingParams::default(), 5).expect("valid");
    let run = hs.run(&text);
    writeln!(
        out,
        "\n  event-driven handshake run: {} firings, completed in {:.1} µs,\n\
         out-of-order firing observed: {}, results equal clocked array: {}",
        run.firings,
        run.completion_ns / 1e3,
        run.out_of_order,
        {
            let mut clocked = pm_systolic::matcher::SystolicMatcher::new(&pattern).expect("valid");
            run.bits == clocked.match_symbols(&text).bits()
        }
    )
    .unwrap();
    out
}

/// Figure 4-1: the task dependency graph, its order and critical path.
pub fn fig4_1() -> String {
    let mut out = String::new();
    let (g, _) = figure_4_1();
    writeln!(out, "Figure 4-1: task dependency graph for the chip design").unwrap();
    writeln!(out, "  topological order (days):").unwrap();
    for id in g.topological_order().expect("DAG") {
        writeln!(out, "    {:34} {:>4.0}", g.name(id), g.days(id)).unwrap();
    }
    let (path, days) = g.critical_path().expect("DAG");
    writeln!(
        out,
        "  critical path: {} tasks, {days:.0} designer-days",
        path.len()
    )
    .unwrap();
    writeln!(
        out,
        "  total effort: {:.0} days ≈ two man-months (paper §5: \"took only about\n\
         two man-months\"), algorithm share {:.0}%",
        g.total_days(),
        100.0 * 15.0 / g.total_days()
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_rate_reports_250ns() {
        let text = data_rate();
        assert!(text.contains("250 ns"), "{text}");
    }

    #[test]
    fn alternatives_all_agree() {
        let text = alternatives();
        // Seven wild-card-capable algorithms agree; three refuse
        // (KMP, Boyer-Moore and Aho-Corasick are literal-only).
        assert_eq!(text.matches("true").count(), 7, "{text}");
        assert_eq!(text.matches("wild cards").count(), 3, "{text}");
    }

    #[test]
    fn area_is_drc_clean() {
        let text = area_scaling();
        assert!(!text.contains("1 violations"), "{text}");
    }
}
