//! E28: the self-healing fault-injection campaign — §5's replacement
//! argument exercised end to end on the Figure 3-7 cascade.

use crate::workloads;
use pm_chip::recovery::{ChipFault, Mode, RecoveryEvent, RecoveryPolicy, SelfHealingCascade};
use pm_systolic::spec::match_spec;
use pm_systolic::symbol::Alphabet;
use std::fmt::Write;

/// E28: inject every modelled chip fault mid-stream into the five-chip
/// cascade (with spares) and report detection latency, recovery time
/// and stream correctness before / during / after recovery.
pub fn healing() -> String {
    let mut out = String::new();
    let pattern = workloads::random_pattern(Alphabet::TWO_BIT, 33, 0, 42);
    let (text, _) = workloads::planted_text(&pattern, 400, 61, 43);
    let golden = match_spec(&text, &pattern);

    writeln!(
        out,
        "Self-healing campaign (§5): five-chip Figure 3-7 cascade + 2 spares"
    )
    .unwrap();
    writeln!(
        out,
        "  pattern 33 chars on 5x8 cells; fault injected at char 200 of 400"
    )
    .unwrap();
    writeln!(
        out,
        "  fault            | detect (beats) | recover (beats) | spares left | stream"
    )
    .unwrap();

    let faults: [(&str, ChipFault); 5] = [
        ("result stuck-at-1", ChipFault::ResultStuck(true)),
        ("result stuck-at-0", ChipFault::ResultStuck(false)),
        ("result line dead ", ChipFault::ResultDead),
        ("text bus stuck   ", ChipFault::TextStuck(0)),
        ("pattern bus stuck", ChipFault::PatternStuck(1)),
    ];
    for (name, fault) in faults {
        let policy = RecoveryPolicy {
            scrub_interval_chars: 48,
            ..RecoveryPolicy::default()
        };
        let mut board = SelfHealingCascade::new(&pattern, 5, 8, 2, policy).expect("board builds");
        let bound = board.detection_bound_beats();
        board.write_all(&text[..200]).expect("healthy half streams");
        let injected_at = board.beat();
        board.inject_fault(2, fault);
        board
            .write_all(&text[200..])
            .expect("recovery absorbs the fault");
        let bits = board.finish().expect("stream completes");

        let detected_at = board.log().iter().find_map(|e| match e {
            RecoveryEvent::BistFailed { beat, .. } => Some(*beat),
            _ => None,
        });
        // The attach-time bring-up also logs a Remapped entry; recovery
        // time is measured to the first remap *after* detection.
        let recovered_at = detected_at.and_then(|d| {
            board.log().iter().find_map(|e| match e {
                RecoveryEvent::Remapped { beat, .. } if *beat >= d => Some(*beat),
                _ => None,
            })
        });
        let detect = detected_at.map(|b| b - injected_at);
        let recover = match (detected_at, recovered_at) {
            (Some(d), Some(r)) => Some(r - d),
            _ => None,
        };
        let ok = bits.bits() == golden && board.mode() == Mode::Hardware;
        writeln!(
            out,
            "  {name} | {:>14} | {:>15} | {:>11} | {}",
            detect.map_or_else(|| "none".into(), |b| b.to_string()),
            recover.map_or_else(|| "none".into(), |b| b.to_string()),
            board.spares_remaining(),
            if ok { "golden" } else { "MISMATCH" }
        )
        .unwrap();
        if let Some(d) = detect {
            if d > bound {
                writeln!(out, "  detection bound exceeded: MISMATCH").unwrap();
            }
        }
    }

    // Exhaustion leg: more dead chips than spares forces the software
    // fallback, which must still reproduce the golden stream.
    let policy = RecoveryPolicy {
        scrub_interval_chars: 48,
        ..RecoveryPolicy::default()
    };
    let mut board = SelfHealingCascade::new(&pattern, 5, 8, 1, policy).expect("board builds");
    board.write_all(&text[..200]).expect("healthy half streams");
    board.inject_fault(0, ChipFault::ResultStuck(true));
    board.inject_fault(1, ChipFault::ResultStuck(false));
    board.inject_fault(5, ChipFault::ResultDead); // kill the only spare
    board
        .write_all(&text[200..])
        .expect("fallback absorbs exhaustion");
    let bits = board.finish().expect("stream completes");
    let fallback = board.log().iter().find_map(|e| match e {
        RecoveryEvent::FallbackEngaged { algorithm, beat } => Some((*algorithm, *beat)),
        _ => None,
    });
    match fallback {
        Some((algorithm, beat)) => writeln!(
            out,
            "  exhaustion leg: spares gone at beat {beat}; fallback `{algorithm}` stream {}",
            if bits.bits() == golden && board.mode() == Mode::Degraded {
                "golden"
            } else {
                "MISMATCH"
            }
        )
        .unwrap(),
        None => writeln!(out, "  exhaustion leg never engaged fallback: MISMATCH").unwrap(),
    }
    writeln!(
        out,
        "  (detect = injection to first failed self-test; recover = failed\n   \
         self-test to resumed streaming; commit discipline keeps every\n   \
         delivered result equal to the fault-free reference)"
    )
    .unwrap();
    out
}
