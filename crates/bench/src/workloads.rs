//! Deterministic workload generation shared by figures and benches.

use pm_systolic::symbol::{Alphabet, PatSym, Pattern, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random text of `len` symbols over `alphabet`, deterministic in
/// `seed`.
pub fn random_text(alphabet: Alphabet, len: usize, seed: u64) -> Vec<Symbol> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Symbol::new(rng.gen_range(0..alphabet.size() as u16) as u8))
        .collect()
}

/// A random pattern of `len` characters with roughly `wildcard_pct`
/// percent wild cards.
pub fn random_pattern(alphabet: Alphabet, len: usize, wildcard_pct: u32, seed: u64) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let symbols = (0..len)
        .map(|_| {
            if rng.gen_range(0..100) < wildcard_pct {
                PatSym::Wild
            } else {
                PatSym::Lit(Symbol::new(rng.gen_range(0..alphabet.size() as u16) as u8))
            }
        })
        .collect();
    Pattern::new(symbols, alphabet).expect("len > 0")
}

/// A text guaranteed to contain the pattern as a substring at known
/// positions (planted every `stride` characters where it fits).
pub fn planted_text(
    pattern: &Pattern,
    len: usize,
    stride: usize,
    seed: u64,
) -> (Vec<Symbol>, Vec<usize>) {
    let mut text = random_text(pattern.alphabet(), len, seed);
    let mut ends = Vec::new();
    let plen = pattern.len();
    let mut at = 0;
    while at + plen <= len {
        for (i, p) in pattern.symbols().iter().enumerate() {
            if let Some(lit) = p.literal() {
                text[at + i] = lit;
            }
        }
        ends.push(at + plen - 1);
        at += stride.max(plen);
    }
    (text, ends)
}

/// A random integer signal in `[-range, range]`.
pub fn random_signal(len: usize, range: i64, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_f42d);
    (0..len).map(|_| rng.gen_range(-range..=range)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;

    #[test]
    fn deterministic_for_seed() {
        let a = random_text(Alphabet::TWO_BIT, 50, 7);
        let b = random_text(Alphabet::TWO_BIT, 50, 7);
        assert_eq!(a, b);
        assert_ne!(a, random_text(Alphabet::TWO_BIT, 50, 8));
    }

    #[test]
    fn pattern_respects_wildcard_pct() {
        let none = random_pattern(Alphabet::TWO_BIT, 64, 0, 1);
        assert!(!none.has_wildcards());
        let all = random_pattern(Alphabet::TWO_BIT, 64, 100, 1);
        assert!(all.symbols().iter().all(|s| s.is_wild()));
    }

    #[test]
    fn planted_text_actually_matches() {
        let p = random_pattern(Alphabet::TWO_BIT, 5, 20, 3);
        let (text, ends) = planted_text(&p, 100, 17, 3);
        let spec = match_spec(&text, &p);
        for end in ends {
            assert!(spec[end], "planted match at {end} missing");
        }
    }

    #[test]
    fn signal_within_range() {
        let s = random_signal(100, 10, 0);
        assert!(s.iter().all(|&v| (-10..=10).contains(&v)));
    }
}
