//! Regenerates the paper's figures from the live models.
//!
//! ```text
//! cargo run -p pm-bench --bin figures            # all figures
//! cargo run -p pm-bench --bin figures fig3_1 …   # a selection
//! cargo run -p pm-bench --bin figures --list     # names only
//! cargo run -p pm-bench --bin figures --verify   # CI self-check
//! ```

use pm_bench::figures;

/// Substrings that indicate a reproduction failed to agree with its
/// reference. Used by `--verify`.
const FAILURE_MARKERS: &[&str] = &[
    "agrees: false",
    "equals specification: false",
    "agree   : false",
    "equals monolithic 40-cell array: false",
    "equals direct computation: false",
    "equals clocked array: false",
    "overlap observed: true",
    "equal specification: false",
    "≥10× scalar: false",
    "telemetry equals ground truth: false",
    "equal offline oracle: false",
    "admitted concurrently: false",
    "MISMATCH",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (name, _) in figures::all() {
            println!("{name}");
        }
        return;
    }
    if args.iter().any(|a| a == "--verify") {
        let mut bad = 0;
        for (name, render) in figures::all() {
            let text = render();
            for marker in FAILURE_MARKERS {
                if text.contains(marker) {
                    eprintln!("VERIFY FAIL [{name}]: found {marker:?}");
                    bad += 1;
                }
            }
        }
        if bad > 0 {
            std::process::exit(1);
        }
        println!("all {} figures verified", figures::all().len());
        return;
    }
    let selected: Vec<&str> = args.iter().map(String::as_str).collect();
    let mut failed = false;
    for (name, render) in figures::all() {
        if !selected.is_empty() && !selected.contains(&name) {
            continue;
        }
        println!("==================== {name} ====================");
        println!("{}", render());
    }
    for want in &selected {
        if !figures::all().iter().any(|(n, _)| n == want) {
            eprintln!("unknown figure: {want} (try --list)");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
