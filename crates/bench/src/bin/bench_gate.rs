//! CI bench-regression gate: compares the throughput metrics in a
//! freshly generated snapshot (`BENCH_telemetry.json`,
//! `BENCH_superwide.json`) against the committed baseline and fails if
//! any shared metric regressed by more than the allowed fraction.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_regression]
//! ```
//!
//! `max_regression` defaults to 0.15 (15 %): CI runners are noisy, so
//! the gate is deliberately loose — it exists to catch "someone put a
//! mutex in the hot loop", not 2 % jitter. Improvements always pass and
//! are reported so the baseline can be refreshed.
//!
//! Absolute character rates are machine-dependent: a baseline captured
//! on an AVX-512 box says nothing about what an AVX2 or portable
//! runner should sustain, and even same-ISA machines differ by integer
//! factors in core count and clock. By default absolute rates are
//! therefore *advisory* — printed with their change, never a failure.
//! Setting `PM_GATE_RATES=1` (for a dedicated, hardware-stable runner
//! whose baseline was captured on the same class of machine) enforces
//! them, and then only when both snapshots report the same SIMD
//! dispatch level (an explicit `"simd_level"` field, or the
//! `pm_dispatch_*_total` counters). What *is* enforced everywhere is
//! the `w8_speedup_over_u64` ratio: a same-run comparison of two
//! engines on identical hardware, immune to the machine's absolute
//! speed (skipped only on portable hosts, where the wide kernel has no
//! vector registers to earn the ratio with).
//!
//! Every metric key known to the gate that appears in *both* files is
//! compared (so one baseline schema can gate both snapshot documents);
//! it is an error for the files to share none. The JSON is scanned with
//! plain string matching (the repo vendors no JSON parser); the `"` in
//! the search key prevents one metric's name matching inside another's
//! (`"chars_per_sec"` must not match `"superplane_chars_per_sec"`).

use std::process::ExitCode;

/// Absolute rate metrics (chars/sec): advisory unless `PM_GATE_RATES=1`
/// *and* baseline and current snapshots dispatched at the same SIMD
/// level.
const RATE_METRICS: &[&str] = &[
    "chars_per_sec",
    "superplane_chars_per_sec",
    "u64_chars_per_sec",
    "dictionary_chars_per_sec",
];

/// Dimensionless same-run ratios: hardware-independent by construction
/// (both sides of the ratio ran on the same machine in the same
/// process), enforced whenever the current run reaches AVX2 or wider.
const RATIO_METRICS: &[&str] = &[
    "w8_speedup_over_u64",
    "chaos_zero_fault_ratio",
    "dict_10k_speedup_over_ac",
];

/// Extracts the number following `"{key}":` from a snapshot document.
fn metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The SIMD level a snapshot was captured at: the explicit
/// `"simd_level"` string if present, else the nonzero
/// `pm_dispatch_*_total` counter, else unknown.
fn dispatch_level(json: &str) -> Option<&'static str> {
    for level in ["portable", "avx2", "avx512"] {
        let needle = format!("\"simd_level\": \"{level}\"");
        if json.contains(&needle) {
            return Some(level);
        }
    }
    for level in ["portable", "avx2", "avx512"] {
        if metric(json, &format!("pm_dispatch_{level}_total")).is_some_and(|v| v > 0.0) {
            return Some(level);
        }
    }
    None
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [max_regression]");
        return ExitCode::from(2);
    }
    let max_regression: f64 = args
        .get(2)
        .map(|s| s.parse().expect("max_regression must be a number"))
        .unwrap_or(0.15);

    let (baseline_doc, current_doc) = match (read(&args[0]), read(&args[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let baseline_level = dispatch_level(&baseline_doc);
    let current_level = dispatch_level(&current_doc);
    // Unknown levels count as matching, preserving the pre-dispatch
    // behaviour for snapshots that predate the level markers.
    let levels_match = match (baseline_level, current_level) {
        (Some(b), Some(c)) => b == c,
        _ => true,
    };
    let gate_rates = std::env::var("PM_GATE_RATES").ok().as_deref() == Some("1");
    if gate_rates && !levels_match {
        println!(
            "bench_gate: PM_GATE_RATES=1, but baseline was captured at SIMD level {} \
             and the current run dispatched to {} — absolute chars/sec stay advisory",
            baseline_level.unwrap_or("unknown"),
            current_level.unwrap_or("unknown"),
        );
    }

    let mut compared = 0usize;
    let mut failed = false;
    for (kind, keys) in [("rate", RATE_METRICS), ("ratio", RATIO_METRICS)] {
        for key in keys {
            let (baseline, current) = match (metric(&baseline_doc, key), metric(&current_doc, key))
            {
                (Some(b), Some(c)) => (b, c),
                _ => continue, // metric absent from one side: not gated
            };
            compared += 1;
            let enforced = if kind == "rate" {
                gate_rates && levels_match
            } else {
                current_level != Some("portable")
            };
            let change = if baseline > 0.0 {
                (current - baseline) / baseline
            } else {
                0.0
            };
            let (scale, unit) = if kind == "rate" {
                (1e6, " Mchar/s")
            } else {
                (1.0, "×")
            };
            println!(
                "bench_gate: {key}: baseline {:.2}{unit}, current {:.2}{unit}, \
                 change {:+.1} % ({}: -{:.0} %)",
                baseline / scale,
                current / scale,
                change * 100.0,
                if enforced { "gate" } else { "advisory" },
                max_regression * 100.0
            );
            if change < -max_regression && enforced {
                eprintln!(
                    "bench_gate: FAIL — {key} regressed {:.1} % (> {:.0} % allowed)",
                    -change * 100.0,
                    max_regression * 100.0
                );
                failed = true;
            } else if change > max_regression && enforced {
                println!(
                    "bench_gate: note — {key} improved {:.1} %; consider refreshing \
                     the committed baseline",
                    change * 100.0
                );
            }
        }
    }

    if compared == 0 {
        eprintln!(
            "bench_gate: no known metric ({}) present in both {} and {}",
            RATE_METRICS
                .iter()
                .chain(RATIO_METRICS)
                .copied()
                .collect::<Vec<_>>()
                .join(", "),
            args[0],
            args[1]
        );
        return ExitCode::from(2);
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("bench_gate: PASS ({compared} metric(s) compared)");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{dispatch_level, metric};

    #[test]
    fn extracts_the_rate() {
        let json = "{\n  \"chars_per_sec\": 108625454.9,\n  \"counters\": {}\n}";
        assert_eq!(metric(json, "chars_per_sec"), Some(108625454.9));
        assert_eq!(metric("{}", "chars_per_sec"), None);
        assert_eq!(
            metric("{\"chars_per_sec\": 0.0}", "chars_per_sec"),
            Some(0.0)
        );
    }

    #[test]
    fn superplane_key_does_not_satisfy_the_plain_key() {
        // The quote in the needle stops "chars_per_sec" matching inside
        // "superplane_chars_per_sec".
        let json = "{\n  \"superplane_chars_per_sec\": 500000000.0\n}";
        assert_eq!(metric(json, "chars_per_sec"), None);
        assert_eq!(metric(json, "superplane_chars_per_sec"), Some(500000000.0));
    }

    #[test]
    fn negative_and_exponent_forms_parse() {
        let json = "{\"u64_chars_per_sec\": 1.25e8}";
        assert_eq!(metric(json, "u64_chars_per_sec"), Some(1.25e8));
    }

    #[test]
    fn dispatch_level_reads_field_then_counters() {
        assert_eq!(dispatch_level("{\"simd_level\": \"avx2\"}"), Some("avx2"));
        let counters = "{\"pm_dispatch_portable_total\": 0,\n\
                        \"pm_dispatch_avx2_total\": 0,\n\
                        \"pm_dispatch_avx512_total\": 3}";
        assert_eq!(dispatch_level(counters), Some("avx512"));
        assert_eq!(dispatch_level("{\"chars_per_sec\": 1.0}"), None);
    }
}
