//! CI bench-regression gate: compares the throughput metrics in a
//! freshly generated snapshot (`BENCH_telemetry.json`,
//! `BENCH_superwide.json`) against the committed baseline and fails if
//! any shared metric regressed by more than the allowed fraction.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_regression]
//! ```
//!
//! `max_regression` defaults to 0.15 (15 %): CI runners are noisy, so
//! the gate is deliberately loose — it exists to catch "someone put a
//! mutex in the hot loop", not 2 % jitter. Improvements always pass and
//! are reported so the baseline can be refreshed.
//!
//! Every metric key known to the gate that appears in *both* files is
//! compared (so one baseline schema can gate both snapshot documents);
//! it is an error for the files to share none. The JSON is scanned with
//! plain string matching (the repo vendors no JSON parser); the `"` in
//! the search key prevents one metric's name matching inside another's
//! (`"chars_per_sec"` must not match `"superplane_chars_per_sec"`).

use std::process::ExitCode;

/// Rate metrics the gate knows how to compare, in report order.
const METRICS: &[&str] = &[
    "chars_per_sec",
    "superplane_chars_per_sec",
    "u64_chars_per_sec",
];

/// Extracts the number following `"{key}":` from a snapshot document.
fn metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [max_regression]");
        return ExitCode::from(2);
    }
    let max_regression: f64 = args
        .get(2)
        .map(|s| s.parse().expect("max_regression must be a number"))
        .unwrap_or(0.15);

    let (baseline_doc, current_doc) = match (read(&args[0]), read(&args[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let mut compared = 0usize;
    let mut failed = false;
    for key in METRICS {
        let (baseline, current) = match (metric(&baseline_doc, key), metric(&current_doc, key)) {
            (Some(b), Some(c)) => (b, c),
            _ => continue, // metric absent from one side: not gated
        };
        compared += 1;
        let change = if baseline > 0.0 {
            (current - baseline) / baseline
        } else {
            0.0
        };
        println!(
            "bench_gate: {key}: baseline {:.2} Mchar/s, current {:.2} Mchar/s, \
             change {:+.1} % (gate: -{:.0} %)",
            baseline / 1e6,
            current / 1e6,
            change * 100.0,
            max_regression * 100.0
        );
        if change < -max_regression {
            eprintln!(
                "bench_gate: FAIL — {key} regressed {:.1} % (> {:.0} % allowed)",
                -change * 100.0,
                max_regression * 100.0
            );
            failed = true;
        } else if change > max_regression {
            println!(
                "bench_gate: note — {key} improved {:.1} %; consider refreshing \
                 the committed baseline",
                change * 100.0
            );
        }
    }

    if compared == 0 {
        eprintln!(
            "bench_gate: no known metric ({}) present in both {} and {}",
            METRICS.join(", "),
            args[0],
            args[1]
        );
        return ExitCode::from(2);
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("bench_gate: PASS ({compared} metric(s) compared)");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::metric;

    #[test]
    fn extracts_the_rate() {
        let json = "{\n  \"chars_per_sec\": 108625454.9,\n  \"counters\": {}\n}";
        assert_eq!(metric(json, "chars_per_sec"), Some(108625454.9));
        assert_eq!(metric("{}", "chars_per_sec"), None);
        assert_eq!(
            metric("{\"chars_per_sec\": 0.0}", "chars_per_sec"),
            Some(0.0)
        );
    }

    #[test]
    fn superplane_key_does_not_satisfy_the_plain_key() {
        // The quote in the needle stops "chars_per_sec" matching inside
        // "superplane_chars_per_sec".
        let json = "{\n  \"superplane_chars_per_sec\": 500000000.0\n}";
        assert_eq!(metric(json, "chars_per_sec"), None);
        assert_eq!(metric(json, "superplane_chars_per_sec"), Some(500000000.0));
    }

    #[test]
    fn negative_and_exponent_forms_parse() {
        let json = "{\"u64_chars_per_sec\": 1.25e8}";
        assert_eq!(metric(json, "u64_chars_per_sec"), Some(1.25e8));
    }
}
