//! CI bench-regression gate: compares the throughput metrics in one or
//! more freshly generated snapshots (`BENCH_telemetry.json`,
//! `BENCH_superwide.json`, `BENCH_serve.json`, …) against the committed
//! baseline and fails if any shared metric regressed by more than the
//! allowed fraction.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_regression]
//! bench_gate <baseline.json> --gate <current.json>[=slack] ...
//! ```
//!
//! The second form gates several snapshots in one invocation, each with
//! its own slack (`BENCH_superwide.json=0.15 BENCH_chaos.json=0.25`);
//! a snapshot without `=slack` uses the 0.15 default. The exit code is
//! the worst outcome across all snapshots, so one CI step can replace a
//! copy-pasted step per snapshot.
//!
//! `max_regression`/slack defaults to 0.15 (15 %): CI runners are
//! noisy, so the gate is deliberately loose — it exists to catch
//! "someone put a mutex in the hot loop", not 2 % jitter. Improvements
//! always pass and are reported so the baseline can be refreshed.
//!
//! Absolute character rates are machine-dependent: a baseline captured
//! on an AVX-512 box says nothing about what an AVX2 or portable
//! runner should sustain, and even same-ISA machines differ by integer
//! factors in core count and clock. By default absolute rates are
//! therefore *advisory* — printed with their change, never a failure.
//! Setting `PM_GATE_RATES=1` (for a dedicated, hardware-stable runner
//! whose baseline was captured on the same class of machine) enforces
//! them, and then only when both snapshots report the same SIMD
//! dispatch level (an explicit `"simd_level"` field, or the
//! `pm_dispatch_*_total` counters). What *is* enforced everywhere is
//! the same-run ratios (`w8_speedup_over_u64`,
//! `serve_delivery_ratio`, …): each compares two measurements from the
//! same process on identical hardware, immune to the machine's
//! absolute speed (skipped only on portable hosts, where the wide
//! kernel has no vector registers to earn its ratios with).
//!
//! Every metric key known to the gate that appears in *both* files is
//! compared (so one baseline schema can gate many snapshot documents);
//! it is an error for a snapshot to share none with the baseline. The
//! JSON is scanned with plain string matching (the repo vendors no
//! JSON parser); the `"` in the search key prevents one metric's name
//! matching inside another's (`"chars_per_sec"` must not match
//! `"superplane_chars_per_sec"`).

use std::process::ExitCode;

/// Absolute rate metrics (chars/sec): advisory unless `PM_GATE_RATES=1`
/// *and* baseline and current snapshots dispatched at the same SIMD
/// level.
const RATE_METRICS: &[&str] = &[
    "chars_per_sec",
    "superplane_chars_per_sec",
    "u64_chars_per_sec",
    "dictionary_chars_per_sec",
    "serve_chars_per_sec",
    "ingest_chars_per_sec",
];

/// Dimensionless same-run ratios: hardware-independent by construction
/// (both sides of the ratio ran on the same machine in the same
/// process), enforced whenever the current run reaches AVX2 or wider.
/// `serve_delivery_ratio` is events-delivered over oracle events
/// (exactness, must hold 1.0); `serve_mean_over_p99` is mean feed
/// latency over the p99 (collapses toward 0 when the tail degrades,
/// so "higher is better" matches the gate's direction).
const RATIO_METRICS: &[&str] = &[
    "w8_speedup_over_u64",
    "chaos_zero_fault_ratio",
    "dict_10k_speedup_over_ac",
    "serve_delivery_ratio",
    "serve_mean_over_p99",
];

/// Absolute ceilings: metrics where the current snapshot must stay at
/// or below a fixed bound, regardless of the baseline or the slack.
/// These are same-run fractions (cost over wall-clock from one
/// process), so like the ratios they are hardware-independent — but
/// unlike the ratios the acceptance bar is a constant, not a
/// comparison: `planner_overhead_frac` is the E36 bound that routing
/// and batch planning together stay under 5 % of batch wall-clock.
const CEILING_METRICS: &[(&str, f64)] = &[("planner_overhead_frac", 0.05)];

/// Default allowed regression fraction.
const DEFAULT_SLACK: f64 = 0.15;

/// Extracts the number following `"{key}":` from a snapshot document.
fn metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The SIMD level a snapshot was captured at: the explicit
/// `"simd_level"` string if present, else the nonzero
/// `pm_dispatch_*_total` counter, else unknown.
fn dispatch_level(json: &str) -> Option<&'static str> {
    for level in ["portable", "avx2", "avx512"] {
        let needle = format!("\"simd_level\": \"{level}\"");
        if json.contains(&needle) {
            return Some(level);
        }
    }
    for level in ["portable", "avx2", "avx512"] {
        if metric(json, &format!("pm_dispatch_{level}_total")).is_some_and(|v| v > 0.0) {
            return Some(level);
        }
    }
    None
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// One snapshot to gate: its path and the allowed regression fraction.
struct GateSpec {
    path: String,
    slack: f64,
}

impl GateSpec {
    /// Parses `path` or `path=slack`.
    fn parse(arg: &str) -> Result<Self, String> {
        match arg.rsplit_once('=') {
            Some((path, slack)) => Ok(GateSpec {
                path: path.to_string(),
                slack: slack
                    .parse()
                    .map_err(|_| format!("bad slack in {arg:?}: {slack:?} is not a number"))?,
            }),
            None => Ok(GateSpec {
                path: arg.to_string(),
                slack: DEFAULT_SLACK,
            }),
        }
    }
}

/// Gates one snapshot against the baseline. Returns the number of
/// metrics compared (0 means the files share none — the caller treats
/// that as a usage error) and whether any enforced metric regressed.
fn gate_one(
    baseline_doc: &str,
    current_path: &str,
    current_doc: &str,
    slack: f64,
) -> (usize, bool) {
    let baseline_level = dispatch_level(baseline_doc);
    let current_level = dispatch_level(current_doc);
    // Unknown levels count as matching, preserving the pre-dispatch
    // behaviour for snapshots that predate the level markers.
    let levels_match = match (baseline_level, current_level) {
        (Some(b), Some(c)) => b == c,
        _ => true,
    };
    let gate_rates = std::env::var("PM_GATE_RATES").ok().as_deref() == Some("1");
    if gate_rates && !levels_match {
        println!(
            "bench_gate: PM_GATE_RATES=1, but baseline was captured at SIMD level {} \
             and {current_path} dispatched to {} — absolute chars/sec stay advisory",
            baseline_level.unwrap_or("unknown"),
            current_level.unwrap_or("unknown"),
        );
    }

    let mut compared = 0usize;
    let mut failed = false;
    for (kind, keys) in [("rate", RATE_METRICS), ("ratio", RATIO_METRICS)] {
        for key in keys {
            let (baseline, current) = match (metric(baseline_doc, key), metric(current_doc, key)) {
                (Some(b), Some(c)) => (b, c),
                _ => continue, // metric absent from one side: not gated
            };
            compared += 1;
            let enforced = if kind == "rate" {
                gate_rates && levels_match
            } else {
                current_level != Some("portable")
            };
            let change = if baseline > 0.0 {
                (current - baseline) / baseline
            } else {
                0.0
            };
            let (scale, unit) = if kind == "rate" {
                (1e6, " Mchar/s")
            } else {
                (1.0, "×")
            };
            println!(
                "bench_gate: {current_path}: {key}: baseline {:.2}{unit}, current {:.2}{unit}, \
                 change {:+.1} % ({}: -{:.0} %)",
                baseline / scale,
                current / scale,
                change * 100.0,
                if enforced { "gate" } else { "advisory" },
                slack * 100.0
            );
            if change < -slack && enforced {
                eprintln!(
                    "bench_gate: FAIL — {current_path}: {key} regressed {:.1} % (> {:.0} % allowed)",
                    -change * 100.0,
                    slack * 100.0
                );
                failed = true;
            } else if change > slack && enforced {
                println!(
                    "bench_gate: note — {key} improved {:.1} %; consider refreshing \
                     the committed baseline",
                    change * 100.0
                );
            }
        }
    }
    for &(key, ceiling) in CEILING_METRICS {
        let Some(current) = metric(current_doc, key) else {
            continue; // metric absent: not gated
        };
        compared += 1;
        println!(
            "bench_gate: {current_path}: {key}: current {current:.4}, \
             ceiling {ceiling:.4} (gate: absolute)"
        );
        if current > ceiling {
            eprintln!(
                "bench_gate: FAIL — {current_path}: {key} is {current:.4}, \
                 above the {ceiling:.4} ceiling"
            );
            failed = true;
        }
    }
    (compared, failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: bench_gate <baseline.json> <current.json> [max_regression]\n\
                 \x20      bench_gate <baseline.json> --gate <current.json>[=slack] ...";
    if args.len() < 2 {
        eprintln!("{usage}");
        return ExitCode::from(2);
    }

    // Both CLI forms normalise to a list of (snapshot, slack) specs.
    let specs: Vec<GateSpec> = if args[1] == "--gate" {
        let parsed: Result<Vec<_>, _> = args[2..]
            .iter()
            .filter(|a| *a != "--gate") // a repeated flag is tolerated
            .map(|a| GateSpec::parse(a))
            .collect();
        match parsed {
            Ok(specs) if !specs.is_empty() => specs,
            Ok(_) => {
                eprintln!("bench_gate: --gate needs at least one snapshot\n{usage}");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let slack: f64 = match args.get(2) {
            Some(s) => match s.parse() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("bench_gate: max_regression must be a number, got {s:?}");
                    return ExitCode::from(2);
                }
            },
            None => DEFAULT_SLACK,
        };
        vec![GateSpec {
            path: args[1].clone(),
            slack,
        }]
    };

    let baseline_doc = match read(&args[0]) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut total_compared = 0usize;
    let mut failed = false;
    for spec in &specs {
        let current_doc = match read(&spec.path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        };
        let (compared, snapshot_failed) =
            gate_one(&baseline_doc, &spec.path, &current_doc, spec.slack);
        if compared == 0 {
            eprintln!(
                "bench_gate: no known metric ({}) present in both {} and {}",
                RATE_METRICS
                    .iter()
                    .chain(RATIO_METRICS)
                    .copied()
                    .collect::<Vec<_>>()
                    .join(", "),
                args[0],
                spec.path
            );
            return ExitCode::from(2);
        }
        total_compared += compared;
        failed |= snapshot_failed;
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "bench_gate: PASS ({total_compared} metric(s) compared across {} snapshot(s))",
        specs.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{dispatch_level, gate_one, metric, GateSpec, DEFAULT_SLACK};

    #[test]
    fn extracts_the_rate() {
        let json = "{\n  \"chars_per_sec\": 108625454.9,\n  \"counters\": {}\n}";
        assert_eq!(metric(json, "chars_per_sec"), Some(108625454.9));
        assert_eq!(metric("{}", "chars_per_sec"), None);
        assert_eq!(
            metric("{\"chars_per_sec\": 0.0}", "chars_per_sec"),
            Some(0.0)
        );
    }

    #[test]
    fn superplane_key_does_not_satisfy_the_plain_key() {
        // The quote in the needle stops "chars_per_sec" matching inside
        // "superplane_chars_per_sec".
        let json = "{\n  \"superplane_chars_per_sec\": 500000000.0\n}";
        assert_eq!(metric(json, "chars_per_sec"), None);
        assert_eq!(metric(json, "superplane_chars_per_sec"), Some(500000000.0));
    }

    #[test]
    fn negative_and_exponent_forms_parse() {
        let json = "{\"u64_chars_per_sec\": 1.25e8}";
        assert_eq!(metric(json, "u64_chars_per_sec"), Some(1.25e8));
    }

    #[test]
    fn dispatch_level_reads_field_then_counters() {
        assert_eq!(dispatch_level("{\"simd_level\": \"avx2\"}"), Some("avx2"));
        let counters = "{\"pm_dispatch_portable_total\": 0,\n\
                        \"pm_dispatch_avx2_total\": 0,\n\
                        \"pm_dispatch_avx512_total\": 3}";
        assert_eq!(dispatch_level(counters), Some("avx512"));
        assert_eq!(dispatch_level("{\"chars_per_sec\": 1.0}"), None);
    }

    #[test]
    fn gate_spec_parses_slack_and_defaults() {
        let spec = GateSpec::parse("BENCH_chaos.json=0.25").unwrap();
        assert_eq!(spec.path, "BENCH_chaos.json");
        assert_eq!(spec.slack, 0.25);
        let spec = GateSpec::parse("BENCH_serve.json").unwrap();
        assert_eq!(spec.slack, DEFAULT_SLACK);
        assert!(GateSpec::parse("x.json=wide").is_err());
    }

    #[test]
    fn ratio_regression_fails_only_within_slack() {
        let baseline = "{\"w8_speedup_over_u64\": 2.0, \"simd_level\": \"avx2\"}";
        let ok = "{\"w8_speedup_over_u64\": 1.8, \"simd_level\": \"avx2\"}";
        let bad = "{\"w8_speedup_over_u64\": 1.0, \"simd_level\": \"avx2\"}";
        let (compared, failed) = gate_one(baseline, "ok.json", ok, 0.15);
        assert_eq!((compared, failed), (1, false));
        let (compared, failed) = gate_one(baseline, "bad.json", bad, 0.15);
        assert_eq!((compared, failed), (1, true));
        // Portable hosts don't enforce ratios.
        let portable = "{\"w8_speedup_over_u64\": 1.0, \"simd_level\": \"portable\"}";
        let (_, failed) = gate_one(baseline, "p.json", portable, 0.15);
        assert!(!failed);
    }

    #[test]
    fn planner_overhead_ceiling_is_absolute() {
        // The ceiling binds the *current* snapshot against a constant:
        // the baseline value is irrelevant and no SIMD level exempts it.
        let baseline = "{\"planner_overhead_frac\": 0.2}";
        let under = "{\"planner_overhead_frac\": 0.049, \"simd_level\": \"portable\"}";
        let over = "{\"planner_overhead_frac\": 0.051, \"simd_level\": \"portable\"}";
        let (compared, failed) = gate_one(baseline, "u.json", under, 0.15);
        assert_eq!((compared, failed), (1, false));
        let (compared, failed) = gate_one(baseline, "o.json", over, 0.15);
        assert_eq!((compared, failed), (1, true));
        // Absent from the snapshot: not gated, not counted.
        let (compared, _) = gate_one(
            "{\"chars_per_sec\": 1.0}",
            "n.json",
            "{\"chars_per_sec\": 1.0}",
            0.15,
        );
        assert_eq!(compared, 1, "only the advisory rate");
    }

    #[test]
    fn serve_ratios_are_known_to_the_gate() {
        let baseline = "{\"serve_delivery_ratio\": 1.0, \"serve_mean_over_p99\": 0.2,\n\
                        \"simd_level\": \"avx2\"}";
        let dropped_events = "{\"serve_delivery_ratio\": 0.5, \"serve_mean_over_p99\": 0.2,\n\
                              \"simd_level\": \"avx2\"}";
        let (compared, failed) = gate_one(baseline, "s.json", dropped_events, 0.15);
        assert_eq!((compared, failed), (2, true));
        let (_, failed) = gate_one(baseline, "s.json", baseline, 0.15);
        assert!(!failed);
    }
}
