//! CI bench-regression gate: compares the `chars_per_sec` headline in a
//! freshly generated `BENCH_telemetry.json` against the committed
//! baseline and fails if throughput regressed by more than the allowed
//! fraction.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_regression]
//! ```
//!
//! `max_regression` defaults to 0.15 (15 %): CI runners are noisy, so
//! the gate is deliberately loose — it exists to catch "someone put a
//! mutex in the hot loop", not 2 % jitter. Improvements always pass and
//! are reported so the baseline can be refreshed.
//!
//! The JSON is scanned with plain string matching (the repo vendors no
//! JSON parser); the snapshot writer in `pm_chip::telemetry` emits the
//! `"chars_per_sec": <number>` field this reads.

use std::process::ExitCode;

/// Extracts the `"chars_per_sec"` number from a telemetry snapshot.
fn chars_per_sec(json: &str) -> Option<f64> {
    let key = "\"chars_per_sec\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn read_rate(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    chars_per_sec(&text).ok_or_else(|| format!("no \"chars_per_sec\" field in {path}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [max_regression]");
        return ExitCode::from(2);
    }
    let max_regression: f64 = args
        .get(2)
        .map(|s| s.parse().expect("max_regression must be a number"))
        .unwrap_or(0.15);

    let (baseline, current) = match (read_rate(&args[0]), read_rate(&args[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let change = if baseline > 0.0 {
        (current - baseline) / baseline
    } else {
        0.0
    };
    println!(
        "bench_gate: baseline {:.2} Mchar/s, current {:.2} Mchar/s, change {:+.1} % \
         (gate: -{:.0} %)",
        baseline / 1e6,
        current / 1e6,
        change * 100.0,
        max_regression * 100.0
    );
    if change < -max_regression {
        eprintln!(
            "bench_gate: FAIL — throughput regressed {:.1} % (> {:.0} % allowed)",
            -change * 100.0,
            max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    if change > max_regression {
        println!(
            "bench_gate: note — throughput improved {:.1} %; consider refreshing \
             ci/bench_baseline.json",
            change * 100.0
        );
    }
    println!("bench_gate: PASS");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::chars_per_sec;

    #[test]
    fn extracts_the_rate() {
        let json = "{\n  \"chars_per_sec\": 108625454.9,\n  \"counters\": {}\n}";
        assert_eq!(chars_per_sec(json), Some(108625454.9));
        assert_eq!(chars_per_sec("{}"), None);
        assert_eq!(chars_per_sec("{\"chars_per_sec\": 0.0}"), Some(0.0));
    }
}
