//! # pm-bench — regenerating every figure and claim of the paper
//!
//! The ISCA 1980 paper has no numeric tables; its evaluation is the
//! worked figures 3-1 … 3-7 and 4-1, the plates, and the measured
//! 250 ns/character data rate. This crate regenerates all of them:
//!
//! * the [`figures`] module renders each figure from the live models
//!   (run `cargo run -p pm-bench --bin figures` for all of them, or
//!   pass figure names);
//! * the Criterion benches (`cargo bench`) measure the quantitative
//!   claims: throughput scaling (E8/E15), the rejected-alternative
//!   costs (E14), layout area scaling (E17), the clocked/self-timed
//!   crossover (E18) and the switch-level simulator itself.
//!
//! [`workloads`] supplies the deterministic random texts and patterns
//! every experiment shares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod workloads;

/// Canonical location for a `BENCH_*.json` snapshot: the repository
/// root, regardless of the working directory the figure runs from.
/// (Figures used to write cwd-relative paths, which left duplicate
/// snapshots behind when run from `crates/bench`.) The per-figure
/// `PM_*_JSON` environment overrides still win over this default.
pub fn snapshot_path(file_name: &str) -> String {
    format!("{}/../../{file_name}", env!("CARGO_MANIFEST_DIR"))
}
