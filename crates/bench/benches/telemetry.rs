//! E30 support: the telemetry overhead A/B.
//!
//! Two comparisons, matching the two sink architectures:
//!
//! * beat-accurate `PlaneDriver`: `run` (the untouched baseline) vs.
//!   `run_with_sink(&NullSink)` (the traced twin monomorphised over a
//!   disabled sink) — the zero-cost-when-disabled claim;
//! * scheduler: a null `SinkHandle` vs. a live `MetricsRegistry` — the
//!   price of actually collecting, which the EXPERIMENTS table reports
//!   alongside the free disabled path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pm_bench::workloads;
use pm_chip::telemetry::MetricsRegistry;
use pm_chip::throughput::{Job, ThroughputEngine};
use pm_systolic::batch::PlaneDriver;
use pm_systolic::symbol::{Alphabet, Pattern, Symbol};
use pm_systolic::telemetry::{NullSink, SinkHandle};
use std::sync::Arc;

fn bench_plane_driver_null_sink(c: &mut Criterion) {
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 16, 10, 31);
    let patterns: Vec<Pattern> = (0..64).map(|_| pattern.clone()).collect();
    let texts: Vec<Vec<Symbol>> = (0..64)
        .map(|i| workloads::random_text(alphabet, 1_024, 3100 + i as u64))
        .collect();
    let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
    let total = (texts.len() * 1_024) as u64;

    let mut group = c.benchmark_group("plane_driver_sink_ab");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    group.bench_function("baseline_run", |b| {
        let mut d = PlaneDriver::new(&patterns).expect("ok");
        b.iter(|| d.run(&lanes).expect("ok"))
    });
    group.bench_function("null_sink", |b| {
        let mut d = PlaneDriver::new(&patterns).expect("ok");
        b.iter(|| d.run_with_sink(&lanes, &NullSink).expect("ok"))
    });
    group.finish();
}

fn bench_scheduler_sink_ab(c: &mut Criterion) {
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 16, 10, 30);
    let texts: Vec<Vec<Symbol>> = (0..96)
        .map(|i| workloads::random_text(alphabet, 4_096, 3000 + i as u64))
        .collect();
    let jobs: Vec<Job> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| Job::new(i as u64, pattern.clone(), t.clone()))
        .collect();
    let total = (texts.len() * 4_096) as u64;

    let mut group = c.benchmark_group("scheduler_sink_ab");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    for (name, sink) in [
        ("null_handle", SinkHandle::null()),
        (
            "metrics_registry",
            SinkHandle::new(Arc::new(MetricsRegistry::new())),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &sink, |b, sink| {
            let engine = ThroughputEngine::with_sink(4, 16, sink.clone());
            b.iter(|| engine.run(&jobs).expect("ok"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_plane_driver_null_sink,
    bench_scheduler_sink_ab
);
criterion_main!(benches);
