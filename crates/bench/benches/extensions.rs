//! E11–E13: the §3.4 extensions — counting, correlation, convolution,
//! FIR — on the shared systolic dataflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pm_bench::workloads;
use pm_correlator::prelude::*;
use pm_systolic::matcher::SystolicCounter;
use pm_systolic::symbol::Alphabet;

fn bench_counting(c: &mut Criterion) {
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 8, 20, 7);
    let text = workloads::random_text(alphabet, 4_096, 8);
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(text.len() as u64));
    group.bench_function("counting_cells", |b| {
        let mut counter = SystolicCounter::new(&pattern).expect("ok");
        b.iter(|| counter.count_symbols(&text))
    });
    group.finish();
}

fn bench_correlation(c: &mut Criterion) {
    let signal = workloads::random_signal(4_096, 100, 11);
    let mut group = c.benchmark_group("correlation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(signal.len() as u64));
    for &taps in &[4usize, 16] {
        let reference = workloads::random_signal(taps, 100, 12);
        group.bench_with_input(BenchmarkId::new("ssd", taps), &taps, |b, _| {
            let mut corr = SystolicCorrelator::new(reference.clone()).expect("ok");
            b.iter(|| corr.correlate(&signal))
        });
    }
    group.finish();
}

fn bench_fir_and_convolution(c: &mut Criterion) {
    let signal = workloads::random_signal(4_096, 100, 13);
    let mut group = c.benchmark_group("fir_convolution");
    group.sample_size(10);
    group.throughput(Throughput::Elements(signal.len() as u64));
    let taps = workloads::random_signal(8, 10, 14);
    group.bench_function("fir_block", |b| {
        let mut f = FirFilter::new(taps.clone()).expect("ok");
        b.iter(|| f.filter(&signal))
    });
    group.bench_function("convolve_systolic", |b| {
        let mut conv = SystolicConvolver::new(taps.clone()).expect("ok");
        b.iter(|| conv.convolve(&signal))
    });
    group.bench_function("convolve_direct", |b| {
        b.iter(|| convolve_direct(&signal, &taps))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_counting,
    bench_correlation,
    bench_fir_and_convolution
);
criterion_main!(benches);
