//! E8: simulator beat rate and the modelled chip data rate, plus E18's
//! clocked/self-timed sweep and E29's batched/threaded aggregate rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pm_bench::workloads;
use pm_chip::multipass::MultipassMatcher;
use pm_chip::throughput::{Job, ThroughputEngine};
use pm_chip::timing::ClockModel;
use pm_systolic::batch::BatchMatcher;
use pm_systolic::matcher::SystolicMatcher;
use pm_systolic::selftimed::{compare, TimingParams};
use pm_systolic::symbol::{Alphabet, Symbol};

fn bench_beat_rate(c: &mut Criterion) {
    // How many text characters per second the *behavioural simulator*
    // sustains (the chip model's number is analytic: 4 Mchar/s).
    let alphabet = Alphabet::TWO_BIT;
    let mut group = c.benchmark_group("simulator_char_rate");
    group.sample_size(10);
    for &cells in &[8usize, 32] {
        let pattern = workloads::random_pattern(alphabet, cells, 10, 3);
        let text = workloads::random_text(alphabet, 4_096, 4);
        group.throughput(Throughput::Elements(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            let mut m = SystolicMatcher::new(&pattern).expect("ok");
            b.iter(|| m.match_symbols(&text))
        });
    }
    group.finish();

    // Sanity anchor for EXPERIMENTS.md: the modelled silicon rate.
    let clock = ClockModel::prototype();
    assert!((clock.char_period_ns() - 250.0).abs() < 5.0);
}

fn bench_batched_rate(c: &mut Criterion) {
    // E29: the bit-plane engine's aggregate rate on a 64-stream
    // workload, and the threaded scheduler on top of it.
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 16, 10, 3);
    let texts: Vec<Vec<Symbol>> = (0..64)
        .map(|i| workloads::random_text(alphabet, 4_096, 100 + i as u64))
        .collect();
    let total = (texts.len() * 4_096) as u64;

    let mut group = c.benchmark_group("batched_char_rate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    group.bench_function("bit_plane_64_lanes", |b| {
        let m = BatchMatcher::new(&pattern);
        let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
        b.iter(|| m.match_streams(&lanes).expect("ok"))
    });
    for &workers in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("scheduler", workers),
            &workers,
            |b, &workers| {
                let jobs: Vec<Job> = texts
                    .iter()
                    .enumerate()
                    .map(|(i, t)| Job::new(i as u64, pattern.clone(), t.clone()))
                    .collect();
                let engine = ThroughputEngine::new(workers, 8);
                b.iter(|| engine.run(&jobs).expect("ok"))
            },
        );
    }
    group.finish();
}

fn bench_superwide_rate(c: &mut Criterion) {
    // E31: the superplane engines against the u64 baseline on a
    // 384-stream workload (six words wide — 1.5 × W=4, 0.75 × W=8).
    use pm_systolic::superplane::SuperMatcher;
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 16, 10, 3);
    let texts: Vec<Vec<Symbol>> = (0..384)
        .map(|i| workloads::random_text(alphabet, 4_096, 200 + i as u64))
        .collect();
    let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
    let total = (texts.len() * 4_096) as u64;

    let mut group = c.benchmark_group("superwide_char_rate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    group.bench_function("u64_64_lanes", |b| {
        let m = BatchMatcher::new(&pattern);
        b.iter(|| m.match_streams(&lanes).expect("ok"))
    });
    group.bench_function("superplane_w4_256_lanes", |b| {
        let m = SuperMatcher::<4>::new(&pattern);
        b.iter(|| m.match_streams(&lanes).expect("ok"))
    });
    group.bench_function("superplane_w8_512_lanes", |b| {
        let m = SuperMatcher::<8>::new(&pattern);
        b.iter(|| m.match_streams(&lanes).expect("ok"))
    });
    group.finish();
}

fn bench_multipass(c: &mut Criterion) {
    // §3.4 multi-pass cost: the same text, patterns larger than the
    // array by growing factors.
    let alphabet = Alphabet::TWO_BIT;
    let text = workloads::random_text(alphabet, 2_048, 9);
    let mut group = c.benchmark_group("multipass_pattern_factor");
    group.sample_size(10);
    for &factor in &[1usize, 2, 4] {
        let pattern = workloads::random_pattern(alphabet, 8 * factor, 10, factor as u64);
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, _| {
            let m = MultipassMatcher::new(&pattern, 8).expect("ok");
            b.iter(|| m.match_symbols(&text))
        });
    }
    group.finish();
}

fn bench_selftimed_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("selftimed_model");
    group.sample_size(10);
    for &cells in &[8usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, &cells| {
            b.iter(|| compare(cells, 200, TimingParams::default(), 1))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_beat_rate,
    bench_batched_rate,
    bench_superwide_rate,
    bench_multipass,
    bench_selftimed_model
);
criterion_main!(benches);
