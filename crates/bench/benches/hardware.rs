//! E5–E7, E17: the hardware substrates — switch-level simulation cost
//! and layout generation/DRC cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_bench::workloads;
use pm_layout::drc::DesignRules;
use pm_layout::floorplan::ChipFloorplan;
use pm_nmos::cells::ComparatorCell;
use pm_nmos::chip::PatternChip;
use pm_nmos::shiftreg::DynamicShiftRegister;
use pm_systolic::symbol::Alphabet;

fn bench_switch_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("nmos");
    group.sample_size(10);

    group.bench_function("comparator_cell_beat", |b| {
        let mut cell = ComparatorCell::new(false);
        b.iter(|| cell.step(true, false, true).expect("settles"))
    });

    group.bench_function("shiftreg_8_beat", |b| {
        let mut sr = DynamicShiftRegister::new(8);
        b.iter(|| sr.shift(true).expect("settles"))
    });

    for &cells in &[4usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("chip_match_16_chars", cells),
            &cells,
            |b, &cells| {
                let pattern = workloads::random_pattern(Alphabet::TWO_BIT, cells, 10, 1);
                let text = workloads::random_text(Alphabet::TWO_BIT, 16, 2);
                let chip = PatternChip::new(cells, 2);
                b.iter(|| chip.match_pattern(&pattern, &text).expect("settles"))
            },
        );
    }

    // The §3.4 extension chips: counting and correlation in silicon.
    group.bench_function("countchip_3x2_w3_12_chars", |b| {
        let pattern = workloads::random_pattern(Alphabet::TWO_BIT, 3, 10, 4);
        let text = workloads::random_text(Alphabet::TWO_BIT, 12, 5);
        let chip = pm_nmos::countchip::CountChip::new(3, 2, 3);
        b.iter(|| chip.count(&pattern, &text).expect("settles"))
    });
    group.bench_function("corrchip_2cell_w3_8_samples", |b| {
        let chip = pm_nmos::corrchip::CorrChip::new(2, 3, 8);
        let reference = [2i64, -1];
        let signal = workloads::random_signal(8, 3, 6);
        b.iter(|| chip.correlate(&reference, &signal).expect("settles"))
    });
    group.finish();
}

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    group.sample_size(10);
    for &cells in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::new("floorplan", cells), &cells, |b, &cells| {
            b.iter(|| ChipFloorplan::new(cells, 2))
        });
        group.bench_with_input(
            BenchmarkId::new("full_chip_drc", cells),
            &cells,
            |b, &cells| {
                let plan = ChipFloorplan::new(cells, 2);
                let rules = DesignRules::default();
                b.iter(|| plan.drc(&rules))
            },
        );
    }
    group.bench_function("cif_emit_8_cells", |b| {
        let plan = ChipFloorplan::new(8, 2);
        b.iter(|| plan.to_cif())
    });
    group.finish();
}

criterion_group!(benches, bench_switch_level, bench_layout);
criterion_main!(benches);
