//! Ablations over the design choices DESIGN.md calls out: array
//! oversizing, wafer bypass wiring, and the FFT matcher's alphabet
//! dependence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_bench::workloads;
use pm_chip::wafer::Wafer;
use pm_matchers::prelude::*;
use pm_systolic::matcher::SystolicMatcher;
use pm_systolic::symbol::Alphabet;

fn bench_oversize_overhead(c: &mut Criterion) {
    // §3.2.1 says arrays larger than the pattern work (redundant
    // recomputation); this measures what that redundancy costs the
    // simulator.
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 8, 10, 5);
    let text = workloads::random_text(alphabet, 2_048, 6);
    let mut group = c.benchmark_group("oversize_factor");
    group.sample_size(10);
    for &factor in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            let mut m = SystolicMatcher::with_cells(&pattern, 8 * f).expect("fits");
            b.iter(|| m.match_symbols(&text))
        });
    }
    group.finish();
}

fn bench_wafer_bypass(c: &mut Criterion) {
    // §5: how much working silicon each extra bypass wire recovers,
    // and what the harvesting pass costs.
    let mut group = c.benchmark_group("wafer_bypass");
    group.sample_size(20);
    let wafer = Wafer::fabricate(16, 64, 0.12, 99);
    for &bypass in &[0usize, 1, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(bypass), &bypass, |b, &k| {
            b.iter(|| wafer.harvest(k))
        });
    }
    group.finish();
}

fn bench_fft_alphabet_width(c: &mut Criterion) {
    // Fischer–Paterson runs 2 convolutions per alphabet bit: cost is
    // linear in log |Σ|, unlike the systolic array.
    let mut group = c.benchmark_group("fft_alphabet_bits");
    group.sample_size(10);
    for &bits in &[1u32, 4, 8] {
        let alphabet = Alphabet::new(bits).expect("valid");
        let pattern = workloads::random_pattern(alphabet, 8, 10, bits as u64);
        let text = workloads::random_text(alphabet, 8_192, 7);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| FischerPatersonMatcher.find(&text, &pattern).expect("ok"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_oversize_overhead,
    bench_wafer_bypass,
    bench_fft_alphabet_width
);
criterion_main!(benches);
