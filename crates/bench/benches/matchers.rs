//! E14/E15: algorithm comparison and wild-card scaling.
//!
//! Regenerates the paper's §3.1/§3.3.1 argument as timings: the
//! systolic simulation and the naive scan grow linearly in text length,
//! the Fischer–Paterson convolution method grows as n·log n (and with
//! the alphabet width), and the word-parallel Shift-Or baseline shows
//! what 64-bit hardware buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pm_bench::workloads;
use pm_matchers::prelude::*;
use pm_systolic::symbol::Alphabet;

fn bench_algorithms(c: &mut Criterion) {
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 12, 25, 21);
    let mut group = c.benchmark_group("wildcard_matchers");
    group.sample_size(10);
    for &n in &[4_096usize, 16_384] {
        let text = workloads::random_text(alphabet, n, 22);
        group.throughput(Throughput::Elements(n as u64));
        for matcher in all_matchers() {
            if !matcher.supports_wildcards() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(matcher.name(), n), &text, |b, text| {
                b.iter(|| matcher.find(text, &pattern).expect("accepts wild cards"))
            });
        }
    }
    group.finish();
}

fn bench_wildcard_free(c: &mut Criterion) {
    // KMP and Boyer–Moore join once the pattern is literal (E14).
    let alphabet = Alphabet::TWO_BIT;
    let pattern = workloads::random_pattern(alphabet, 12, 0, 33);
    let text = workloads::random_text(alphabet, 16_384, 34);
    let mut group = c.benchmark_group("literal_matchers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(text.len() as u64));
    for matcher in all_matchers() {
        group.bench_function(matcher.name(), |b| {
            b.iter(|| matcher.find(&text, &pattern).expect("literal pattern"))
        });
    }
    group.finish();
}

fn bench_pattern_length(c: &mut Criterion) {
    // Systolic cell count grows with the pattern; software cost per
    // character does too. The chip's data rate would not (E8).
    let alphabet = Alphabet::TWO_BIT;
    let text = workloads::random_text(alphabet, 4_096, 50);
    let mut group = c.benchmark_group("pattern_length");
    group.sample_size(10);
    for &k in &[4usize, 16, 48] {
        let pattern = workloads::random_pattern(alphabet, k, 10, k as u64);
        group.bench_with_input(BenchmarkId::new("systolic", k), &pattern, |b, p| {
            b.iter(|| SystolicAlgorithm.find(&text, p).expect("ok"))
        });
        group.bench_with_input(BenchmarkId::new("naive", k), &pattern, |b, p| {
            b.iter(|| NaiveMatcher.find(&text, p).expect("ok"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_wildcard_free,
    bench_pattern_length
);
criterion_main!(benches);
