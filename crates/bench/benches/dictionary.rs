//! E33 support: `dictionary_char_rate` — the chip farm's streaming
//! character rate as the dictionary grows, against the Aho–Corasick
//! software baseline on the same text.
//!
//! Throughput is reported per *text character* (the text is streamed
//! once regardless of dictionary size), so the interesting read-out is
//! how slowly the rate decays with size: the farm pays `kmax` vector
//! ops per resident group per character, Aho–Corasick pays a
//! state-table walk whose footprint grows with the dictionary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pm_bench::workloads;
use pm_chip::dictionary::PatternDictionary;
use pm_chip::throughput::SuperWidth;
use pm_matchers::aho_corasick::AhoCorasick;
use pm_systolic::symbol::{Alphabet, Pattern};

const TEXT_LEN: usize = 1 << 14;

/// Same deliberately structured byte dictionaries as the E33 figure:
/// seeded pseudo-random bytes, ragged lengths 8..=15, every 20th
/// pattern a duplicate.
fn dictionary(size: usize) -> Vec<Pattern> {
    (0..size)
        .map(|i| {
            let j = if i % 20 == 19 { i / 2 } else { i };
            let len = 8 + j % 8;
            workloads::random_pattern(Alphabet::EIGHT_BIT, len, 0, 33_000 + j as u64)
        })
        .collect()
}

fn bench_dictionary_char_rate(c: &mut Criterion) {
    let text = workloads::random_text(Alphabet::EIGHT_BIT, TEXT_LEN, 3301);
    let mut group = c.benchmark_group("dictionary_char_rate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TEXT_LEN as u64));
    for size in [10usize, 100, 1_000, 10_000] {
        let pats = dictionary(size);
        let oracle = AhoCorasick::new(&pats).expect("literal dictionary");
        group.bench_with_input(BenchmarkId::new("aho_corasick", size), &size, |b, _| {
            b.iter(|| oracle.find_all(&text))
        });
        for width in [SuperWidth::W4, SuperWidth::W8] {
            let matcher = PatternDictionary::new(&pats, width).matcher();
            group.bench_with_input(
                BenchmarkId::new(format!("farm_{}", width.label()), size),
                &size,
                |b, _| b.iter(|| matcher.find_all(&text)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dictionary_char_rate);
criterion_main!(benches);
