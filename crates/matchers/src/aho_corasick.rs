//! Aho–Corasick: the classic multi-pattern automaton, as the software
//! baseline for the dictionary workload ("the chip farm").
//!
//! Foster & Kung's §3.4 composes matcher chips by cascading — many
//! chips, one text pass. The software analogue of that pass is
//! Aho–Corasick: all patterns are compiled into one goto/fail automaton
//! and the text streams through it once, each character costing one
//! transition regardless of dictionary size. `pm_chip::dictionary`
//! uses [`AhoCorasick`] two ways:
//!
//! * as the **differential oracle** — the dictionary matcher's merged
//!   `(pattern_id, end)` stream must equal [`find_all`](AhoCorasick::find_all)
//!   on every literal dictionary (the proptests in
//!   `crates/chip/tests/dictionary_props.rs`);
//! * as the **CPU baseline** the E33 figure races the superplane
//!   resident groups against.
//!
//! Like KMP and Boyer–Moore, the automaton leans on the transitivity
//! of "matches": the failure function is the longest proper suffix
//! that is also a dictionary prefix, which is meaningless once a wild
//! card makes matching non-transitive (`AC` and `XB` both match `AX`
//! but not each other — the paper's §3.3.1 argument). Accordingly the
//! constructor refuses wild-card patterns with
//! [`MatchError::WildcardsUnsupported`]; the systolic dictionary has
//! no such restriction, which is part of the reproduction's point.
//!
//! ```
//! use pm_matchers::aho_corasick::AhoCorasick;
//! use pm_systolic::symbol::{text_from_letters, Pattern};
//!
//! # fn main() -> Result<(), pm_matchers::MatchError> {
//! let dict = [Pattern::parse("AB").unwrap(), Pattern::parse("BCA").unwrap()];
//! let ac = AhoCorasick::new(&dict)?;
//! let text = text_from_letters("ABCAB").unwrap();
//! let hits: Vec<(usize, usize)> = ac
//!     .find_all(&text)
//!     .iter()
//!     .map(|m| (m.pattern, m.end))
//!     .collect();
//! // "AB" ends at 1 and 4; "BCA" ends at 3.
//! assert_eq!(hits, vec![(0, 1), (1, 3), (0, 4)]);
//! # Ok(())
//! # }
//! ```

use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{PatSym, Pattern, Symbol};
use std::cmp::Ordering;
use std::collections::VecDeque;

/// One match event in a multi-pattern stream: dictionary pattern
/// `pattern` matched the text window **ending** at position `end`
/// (inclusive, the paper's result-bit convention). Ordered by
/// `(end, pattern)`, the order a streaming pass emits events in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DictMatch {
    /// Index of the matching pattern in the dictionary it was compiled
    /// from.
    pub pattern: usize,
    /// Text position of the match's last character.
    pub end: usize,
}

impl Ord for DictMatch {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.end, self.pattern).cmp(&(other.end, other.pattern))
    }
}

impl PartialOrd for DictMatch {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Alphabets up to this many symbols get a dense full-DFA transition
/// table (one indexed load per character); wider alphabets keep the
/// sparse goto lists and walk failure links at match time.
const DENSE_MAX: usize = 64;

/// The Aho–Corasick multi-pattern automaton over [`Symbol`] values.
///
/// Construction is `O(Σ pattern lengths)`; matching streams the text
/// once. With a dense table (alphabets of ≤ 64 symbols — every
/// [`Alphabet`](pm_systolic::symbol::Alphabet) up to 6 bits) each
/// character is a single table transition; wider alphabets use the
/// textbook sparse goto + failure walk, still amortised linear.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Alphabet columns (`max alphabet size` across the dictionary).
    size: usize,
    /// Sorted `(symbol, child)` goto edges per state.
    children: Vec<Vec<(u8, u32)>>,
    /// Failure links (`fail[0] == 0`).
    fail: Vec<u32>,
    /// Pattern ids whose last character lands on this state.
    outputs: Vec<Vec<u32>>,
    /// Nearest proper-suffix state with output (`u32::MAX` = none), so
    /// emission per position is proportional to matches, not depth.
    out_link: Vec<u32>,
    /// Full DFA `delta[state * size + symbol]`, built when
    /// `size <= DENSE_MAX`.
    dense: Option<Vec<u32>>,
    patterns: usize,
}

impl AhoCorasick {
    /// Compiles `patterns` (dictionary order = pattern ids) into one
    /// automaton. Duplicate patterns are fine: each keeps its own id
    /// and all of them are reported at every match site.
    ///
    /// # Errors
    ///
    /// [`MatchError::WildcardsUnsupported`] if any pattern contains a
    /// wild card — the failure function needs "matches" to be
    /// transitive, exactly the KMP/Boyer–Moore limitation of §3.3.1.
    pub fn new(patterns: &[Pattern]) -> Result<Self, MatchError> {
        let mut ac = AhoCorasick {
            size: patterns
                .iter()
                .map(|p| p.alphabet().size())
                .max()
                .unwrap_or(1),
            children: vec![Vec::new()],
            fail: Vec::new(),
            outputs: vec![Vec::new()],
            out_link: Vec::new(),
            dense: None,
            patterns: patterns.len(),
        };
        for (id, pattern) in patterns.iter().enumerate() {
            let mut state = 0u32;
            for sym in pattern.symbols() {
                let c = match sym {
                    PatSym::Lit(s) => s.value(),
                    PatSym::Wild => {
                        return Err(MatchError::WildcardsUnsupported {
                            algorithm: "aho-corasick",
                        })
                    }
                };
                let next = ac.children.len() as u32;
                let edges = &mut ac.children[state as usize];
                state = match edges.binary_search_by_key(&c, |e| e.0) {
                    Ok(i) => edges[i].1,
                    Err(i) => {
                        edges.insert(i, (c, next));
                        ac.children.push(Vec::new());
                        ac.outputs.push(Vec::new());
                        next
                    }
                };
            }
            ac.outputs[state as usize].push(id as u32);
        }
        ac.link();
        Ok(ac)
    }

    /// BFS over the trie: failure links, output links, and (for small
    /// alphabets) the dense full-DFA table.
    fn link(&mut self) {
        let states = self.children.len();
        self.fail = vec![0; states];
        self.out_link = vec![u32::MAX; states];
        let mut dense = (self.size <= DENSE_MAX).then(|| vec![0u32; states * self.size]);
        let mut queue = VecDeque::new();
        for &(c, child) in &self.children[0] {
            queue.push_back(child);
            if let Some(d) = dense.as_mut() {
                d[c as usize] = child;
            }
        }
        while let Some(s) = queue.pop_front() {
            let f = self.fail[s as usize];
            self.out_link[s as usize] = if self.outputs[f as usize].is_empty() {
                self.out_link[f as usize]
            } else {
                f
            };
            // Children edges are read and written disjointly (child
            // fail links), so clone the short edge list.
            for (c, child) in self.children[s as usize].clone() {
                self.fail[child as usize] = self.next_sparse(f, c);
                queue.push_back(child);
            }
            if let Some(d) = dense.as_mut() {
                // BFS order guarantees the failure state's row is final.
                for c in 0..self.size {
                    d[s as usize * self.size + c] = d[f as usize * self.size + c];
                }
                for &(c, child) in &self.children[s as usize] {
                    d[s as usize * self.size + c as usize] = child;
                }
            }
        }
        self.dense = dense;
    }

    /// Goto with failure fallback (used during construction and by the
    /// sparse match loop).
    fn next_sparse(&self, mut state: u32, c: u8) -> u32 {
        loop {
            let edges = &self.children[state as usize];
            if let Ok(i) = edges.binary_search_by_key(&c, |e| e.0) {
                return edges[i].1;
            }
            if state == 0 {
                return 0;
            }
            state = self.fail[state as usize];
        }
    }

    /// Number of dictionary patterns the automaton was compiled from.
    pub fn pattern_count(&self) -> usize {
        self.patterns
    }

    /// Number of automaton states (trie nodes incl. the root) — the
    /// shared-prefix footprint the dictionary compiler's dedup ratio is
    /// compared against.
    pub fn state_count(&self) -> usize {
        self.children.len()
    }

    /// Streams `text` through the automaton once and returns every
    /// match of every pattern, sorted by `(end, pattern)`. Symbols
    /// outside the dictionary's alphabet match nothing and reset the
    /// relevant suffixes, as an impossible character should.
    pub fn find_all(&self, text: &[Symbol]) -> Vec<DictMatch> {
        let mut hits = Vec::new();
        let mut state = 0u32;
        for (i, sym) in text.iter().enumerate() {
            let c = sym.value();
            state = match &self.dense {
                Some(d) if (c as usize) < self.size => d[state as usize * self.size + c as usize],
                Some(_) => 0,
                None => self.next_sparse(state, c),
            };
            let mut s = if self.outputs[state as usize].is_empty() {
                self.out_link[state as usize]
            } else {
                state
            };
            while s != u32::MAX {
                for &id in &self.outputs[s as usize] {
                    hits.push(DictMatch {
                        pattern: id as usize,
                        end: i,
                    });
                }
                s = self.out_link[s as usize];
            }
        }
        hits.sort_unstable();
        hits
    }
}

/// [`PatternMatcher`] adapter: the automaton on a one-pattern
/// dictionary, for the cross-check registry and benchmark tables.
/// Rejects wild cards like its single-pattern cousins KMP and
/// Boyer–Moore, and for the same reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AhoCorasickMatcher;

impl PatternMatcher for AhoCorasickMatcher {
    fn name(&self) -> &'static str {
        "aho-corasick"
    }

    fn supports_wildcards(&self) -> bool {
        false
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let ac = AhoCorasick::new(std::slice::from_ref(pattern))?;
        let mut out = vec![false; text.len()];
        for m in ac.find_all(text) {
            out[m.end] = true;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::{text_from_letters, Alphabet};

    fn letters(s: &str) -> Vec<Symbol> {
        text_from_letters(s).unwrap()
    }

    #[test]
    fn overlapping_and_nested_patterns_all_fire() {
        let dict = [
            Pattern::parse("A").unwrap(),
            Pattern::parse("AB").unwrap(),
            Pattern::parse("BAB").unwrap(),
            Pattern::parse("AB").unwrap(), // duplicate keeps its own id
        ];
        let ac = AhoCorasick::new(&dict).unwrap();
        let hits = ac.find_all(&letters("ABAB"));
        let expect = vec![
            DictMatch { pattern: 0, end: 0 },
            DictMatch { pattern: 1, end: 1 },
            DictMatch { pattern: 3, end: 1 },
            DictMatch { pattern: 0, end: 2 },
            DictMatch { pattern: 1, end: 3 },
            DictMatch { pattern: 2, end: 3 },
            DictMatch { pattern: 3, end: 3 },
        ];
        assert_eq!(hits, expect);
    }

    #[test]
    fn per_pattern_events_equal_the_scalar_spec() {
        let dict = [
            Pattern::parse("ABCA").unwrap(),
            Pattern::parse("BC").unwrap(),
            Pattern::parse("CAB").unwrap(),
            Pattern::parse("AAAA").unwrap(),
        ];
        let ac = AhoCorasick::new(&dict).unwrap();
        let text = letters("ABCABCAAAABCAB");
        let hits = ac.find_all(&text);
        for (id, p) in dict.iter().enumerate() {
            let spec = match_spec(&text, p);
            let got: Vec<usize> = hits
                .iter()
                .filter(|m| m.pattern == id)
                .map(|m| m.end)
                .collect();
            let want: Vec<usize> = spec
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i))
                .collect();
            assert_eq!(got, want, "pattern {id}");
        }
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        // An 8-bit alphabet (256 > DENSE_MAX) exercises the sparse walk;
        // re-interpreting the same byte strings over 2 bits gets the
        // dense table. Events must agree where alphabets allow.
        let wide: Vec<Pattern> = [b"\x00\x01".as_slice(), b"\x01\x02\x00", b"\x00\x00"]
            .iter()
            .map(|b| Pattern::from_bytes(b, None, Alphabet::EIGHT_BIT).unwrap())
            .collect();
        let narrow: Vec<Pattern> = [b"\x00\x01".as_slice(), b"\x01\x02\x00", b"\x00\x00"]
            .iter()
            .map(|b| Pattern::from_bytes(b, None, Alphabet::TWO_BIT).unwrap())
            .collect();
        let text: Vec<Symbol> = [0u8, 1, 2, 0, 0, 1, 2, 0, 0]
            .iter()
            .map(|&b| Symbol::new(b))
            .collect();
        let sparse = AhoCorasick::new(&wide).unwrap();
        let dense = AhoCorasick::new(&narrow).unwrap();
        assert!(sparse.dense.is_none());
        assert!(dense.dense.is_some());
        assert_eq!(sparse.find_all(&text), dense.find_all(&text));
    }

    #[test]
    fn out_of_alphabet_symbols_reset_cleanly() {
        let dict = [Pattern::parse("AA").unwrap()];
        let ac = AhoCorasick::new(&dict).unwrap();
        // Symbol 7 is outside the 2-bit alphabet: no match may span it.
        let text: Vec<Symbol> = [0u8, 0, 7, 0, 0].iter().map(|&b| Symbol::new(b)).collect();
        let ends: Vec<usize> = ac.find_all(&text).iter().map(|m| m.end).collect();
        assert_eq!(ends, vec![1, 4]);
    }

    #[test]
    fn wildcards_are_refused() {
        let dict = [Pattern::parse("AXB").unwrap()];
        assert_eq!(
            AhoCorasick::new(&dict).unwrap_err(),
            MatchError::WildcardsUnsupported {
                algorithm: "aho-corasick"
            }
        );
        assert!(!AhoCorasickMatcher.supports_wildcards());
    }

    #[test]
    fn empty_dictionary_matches_nothing() {
        let ac = AhoCorasick::new(&[]).unwrap();
        assert_eq!(ac.pattern_count(), 0);
        assert_eq!(ac.state_count(), 1);
        assert!(ac.find_all(&letters("ABC")).is_empty());
    }

    #[test]
    fn shared_prefixes_share_states() {
        let dict: Vec<Pattern> = ["ABCA", "ABCB", "ABCC", "ABC"]
            .iter()
            .map(|s| Pattern::parse(s).unwrap())
            .collect();
        let ac = AhoCorasick::new(&dict).unwrap();
        // Root + "A","AB","ABC" + three leaves: 7 states, not 15.
        assert_eq!(ac.state_count(), 7);
    }

    #[test]
    fn dict_match_orders_by_end_then_pattern() {
        let a = DictMatch { pattern: 9, end: 1 };
        let b = DictMatch { pattern: 0, end: 2 };
        let c = DictMatch { pattern: 1, end: 2 };
        assert!(a < b && b < c);
    }
}
