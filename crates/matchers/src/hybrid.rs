//! A segment hybrid: Boyer–Moore around the wild cards.
//!
//! The paper says the fast sequential algorithms "break down" with wild
//! cards (§3.1). The strongest software rebuttal available in 1980 was
//! the obvious hybrid: split the pattern at its wild cards, scan the
//! text for the *longest literal segment* with Boyer–Moore, and verify
//! each candidate window directly. This module implements that, to make
//! the benchmark comparison fair:
//!
//! * with few wild cards the hybrid keeps most of Boyer–Moore's
//!   sublinear skipping;
//! * as wild cards multiply, the longest literal run shrinks and the
//!   hybrid degrades toward the naive scan — quantitatively confirming
//!   the paper's point rather than merely asserting it.

use crate::boyer_moore::BoyerMooreMatcher;
use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{PatSym, Pattern, Symbol};

/// Boyer–Moore on the longest literal segment + window verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentHybridMatcher;

impl SegmentHybridMatcher {
    /// The longest run of literal characters: `(offset, literals)`.
    fn longest_literal_run(pattern: &Pattern) -> (usize, Vec<Symbol>) {
        let mut best: (usize, usize) = (0, 0); // (offset, len)
        let mut cur_start = 0usize;
        let mut cur_len = 0usize;
        for (i, p) in pattern.symbols().iter().enumerate() {
            match p {
                PatSym::Lit(_) => {
                    if cur_len == 0 {
                        cur_start = i;
                    }
                    cur_len += 1;
                    if cur_len > best.1 {
                        best = (cur_start, cur_len);
                    }
                }
                PatSym::Wild => cur_len = 0,
            }
        }
        let (off, len) = best;
        let literals = pattern.symbols()[off..off + len]
            .iter()
            .map(|p| p.literal().expect("run is literal"))
            .collect();
        (off, literals)
    }

    /// Verifies the full pattern at window start `start`.
    fn window_matches(text: &[Symbol], pattern: &Pattern, start: usize) -> bool {
        pattern
            .symbols()
            .iter()
            .zip(&text[start..start + pattern.len()])
            .all(|(p, &s)| p.matches(s))
    }
}

impl PatternMatcher for SegmentHybridMatcher {
    fn name(&self) -> &'static str {
        "segment-hybrid"
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let m = pattern.len();
        let k = m - 1;
        let mut out = vec![false; text.len()];
        if text.len() < m {
            return Ok(out);
        }

        let (offset, run) = Self::longest_literal_run(pattern);
        if run.is_empty() {
            // All wild cards: every complete window matches.
            for bit in out.iter_mut().skip(k) {
                *bit = true;
            }
            return Ok(out);
        }

        // Scan for the anchor segment with Boyer–Moore, then verify.
        let anchor = Pattern::new(
            run.iter().map(|&s| PatSym::Lit(s)).collect(),
            pattern.alphabet(),
        )
        .expect("non-empty run");
        let hits = BoyerMooreMatcher.find(text, &anchor)?;
        for (end, &hit) in hits.iter().enumerate() {
            if !hit {
                continue;
            }
            // Anchor occupies [end-len+1 ..= end]; window start follows.
            let seg_start = end + 1 - anchor.len();
            let Some(start) = seg_start.checked_sub(offset) else {
                continue;
            };
            if start + m <= text.len() && Self::window_matches(text, pattern, start) {
                out[start + k] = true;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn check(pattern: &str, text: &str) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        assert_eq!(
            SegmentHybridMatcher.find(&t, &p).unwrap(),
            match_spec(&t, &p),
            "pattern={pattern} text={text}"
        );
    }

    #[test]
    fn literal_patterns_are_plain_boyer_moore() {
        check("ABC", "ABCABCABC");
        check("AA", "AAAA");
    }

    #[test]
    fn wildcard_patterns_verified() {
        check("AXC", "ABCAACCAB");
        check("XABX", "AABBAABBA");
        check("AXXA", "ABBABCBA");
    }

    #[test]
    fn all_wildcards_match_every_window() {
        check("XXX", "ABCD");
    }

    #[test]
    fn leading_and_trailing_wildcards() {
        check("XAB", "CABCAB");
        check("ABX", "ABCABC");
    }

    #[test]
    fn longest_run_selection() {
        let p = Pattern::parse("AXBCXD").unwrap();
        let (off, run) = SegmentHybridMatcher::longest_literal_run(&p);
        assert_eq!(off, 2);
        assert_eq!(run.len(), 2); // "BC"
    }

    #[test]
    fn anchor_near_text_edges() {
        // Candidate windows that would start before 0 or run past the
        // end must be skipped, not panic.
        check("XXA", "A");
        check("AXX", "ABA");
    }
}
