//! # pm-matchers — baseline and alternative pattern-matching algorithms
//!
//! Section 3.3.1 of Foster & Kung surveys the design space the systolic
//! array was chosen from. This crate implements every algorithm the
//! paper names (and two natural modern baselines), all behind one
//! [`PatternMatcher`] trait so they can be cross-checked against each
//! other and against the systolic array:
//!
//! | Module | Algorithm | Wild cards | Paper's verdict |
//! |---|---|---|---|
//! | [`naive`] | character-by-character scan | yes | implicit baseline |
//! | [`kmp`] | Knuth–Morris–Pratt | **no** | "breaks down" with wild cards |
//! | [`boyer_moore`] | Boyer–Moore | **no** | ditto |
//! | [`shift_or`] | bit-parallel Shift-Or | yes | (modern baseline) |
//! | [`fischer_paterson`] | FFT linear products | yes | "more than linear time" |
//! | [`broadcast`] | Mukhopadhyay cellular machine | yes | rejected: broadcast wiring |
//! | [`unidirectional`] | static-pattern linear array | yes | rejected: pattern loading |
//! | [`systolic`] | adapter over `pm-systolic` | yes | the chosen design |
//! | [`hybrid`] | Boyer–Moore around the wild cards | yes | (fairest 1980 software) |
//! | [`aho_corasick`] | Aho–Corasick multi-pattern automaton | **no** | (the §3.4 "chip farm" software baseline) |
//!
//! The hardware-shaped alternatives ([`broadcast`], [`unidirectional`],
//! [`systolic`]) also expose a [`comm::CommunicationProfile`] quantifying
//! the wiring arguments of §3.3.1 — fan-out, wire length, loading time —
//! which benchmark E14 tabulates.
//!
//! ```
//! use pm_matchers::prelude::*;
//! use pm_systolic::prelude::{Pattern, Symbol};
//!
//! # fn main() -> Result<(), pm_matchers::MatchError> {
//! let pattern = Pattern::parse("AXC").unwrap();
//! let text: Vec<Symbol> = [0u8, 1, 2, 0, 0, 2, 2].iter().map(|&b| Symbol::new(b)).collect();
//! let hits = NaiveMatcher.find(&text, &pattern)?;
//! assert_eq!(hits, vec![false, false, true, false, false, true, true]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aho_corasick;
pub mod boyer_moore;
pub mod broadcast;
pub mod comm;
pub mod fft;
pub mod fischer_paterson;
pub mod hybrid;
pub mod kmp;
pub mod naive;
pub mod shift_or;
pub mod systolic;
pub mod unidirectional;

use pm_systolic::symbol::{Pattern, Symbol};
use std::fmt;

/// Errors a matcher can report for inputs it cannot handle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatchError {
    /// The algorithm cannot handle wild-card characters. The paper's
    /// point about KMP/Boyer–Moore: "when wild card characters exist in
    /// the pattern these methods break down, since the 'matches'
    /// relation is no longer transitive".
    WildcardsUnsupported {
        /// Name of the algorithm that refused.
        algorithm: &'static str,
    },
    /// The pattern exceeds an algorithm-specific length limit (e.g. the
    /// machine word of the Shift-Or matcher).
    PatternTooLong {
        /// Name of the algorithm that refused.
        algorithm: &'static str,
        /// Its maximum supported pattern length.
        max: usize,
    },
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::WildcardsUnsupported { algorithm } => {
                write!(f, "{algorithm} cannot match patterns containing wild cards")
            }
            MatchError::PatternTooLong { algorithm, max } => {
                write!(
                    f,
                    "{algorithm} supports patterns of at most {max} characters"
                )
            }
        }
    }
}

impl std::error::Error for MatchError {}

/// A string pattern matcher producing the paper's result-bit stream:
/// `out[i]` is true iff the substring ending at text position `i`
/// matches the pattern.
pub trait PatternMatcher {
    /// Human-readable algorithm name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Whether the algorithm handles the wild-card character.
    fn supports_wildcards(&self) -> bool {
        true
    }

    /// Computes the result bits for `text` against `pattern`.
    ///
    /// # Errors
    ///
    /// [`MatchError::WildcardsUnsupported`] or
    /// [`MatchError::PatternTooLong`] for inputs outside the
    /// algorithm's domain.
    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError>;
}

/// All matchers in this crate, boxed, for exhaustive cross-checking.
pub fn all_matchers() -> Vec<Box<dyn PatternMatcher>> {
    vec![
        Box::new(naive::NaiveMatcher),
        Box::new(kmp::KmpMatcher),
        Box::new(boyer_moore::BoyerMooreMatcher),
        Box::new(shift_or::ShiftOrMatcher),
        Box::new(fischer_paterson::FischerPatersonMatcher),
        Box::new(broadcast::BroadcastMatcher),
        Box::new(unidirectional::UnidirectionalMatcher),
        Box::new(systolic::SystolicAlgorithm),
        Box::new(hybrid::SegmentHybridMatcher),
        Box::new(aho_corasick::AhoCorasickMatcher),
    ]
}

/// The software matcher a degraded host driver falls back to when the
/// hardware cascade runs out of spare chips (§5: graceful degradation
/// beats a dead board).
///
/// Literal patterns get Knuth–Morris–Pratt — the strongest software
/// baseline the paper names. Patterns with wild cards get the naive
/// scanner, because with wild cards "the 'matches' relation is no
/// longer transitive" and KMP's prefix function is unsound; the naive
/// scanner handles them exactly. Either way the returned matcher's
/// output is golden-checked against `match_spec` by the cross-check
/// suites, so a fallback result stream is bit-identical to what a
/// healthy array would have produced.
pub fn software_fallback(pattern: &Pattern) -> Box<dyn PatternMatcher> {
    if pattern.has_wildcards() {
        Box::new(naive::NaiveMatcher)
    } else {
        Box::new(kmp::KmpMatcher)
    }
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::aho_corasick::{AhoCorasick, AhoCorasickMatcher, DictMatch};
    pub use crate::boyer_moore::BoyerMooreMatcher;
    pub use crate::broadcast::BroadcastMatcher;
    pub use crate::comm::CommunicationProfile;
    pub use crate::fischer_paterson::FischerPatersonMatcher;
    pub use crate::hybrid::SegmentHybridMatcher;
    pub use crate::kmp::KmpMatcher;
    pub use crate::naive::NaiveMatcher;
    pub use crate::shift_or::ShiftOrMatcher;
    pub use crate::systolic::SystolicAlgorithm;
    pub use crate::unidirectional::UnidirectionalMatcher;
    pub use crate::{all_matchers, software_fallback, MatchError, PatternMatcher};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = MatchError::WildcardsUnsupported { algorithm: "kmp" };
        assert!(e.to_string().contains("kmp"));
        let e = MatchError::PatternTooLong {
            algorithm: "shift-or",
            max: 64,
        };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn registry_has_all_ten() {
        let names: Vec<&str> = all_matchers().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 10);
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 10, "{names:?}");
    }

    #[test]
    fn fallback_picks_kmp_unless_wildcards_force_naive() {
        use pm_systolic::spec::match_spec;
        use pm_systolic::symbol::text_from_letters;

        let literal = Pattern::parse("ABCA").unwrap();
        assert_eq!(software_fallback(&literal).name(), "kmp");
        let wild = Pattern::parse("AXCA").unwrap();
        assert_eq!(software_fallback(&wild).name(), "naive");

        let text = text_from_letters("ABCABCAADCA").unwrap();
        for pattern in [literal, wild] {
            let m = software_fallback(&pattern);
            assert_eq!(
                m.find(&text, &pattern).unwrap(),
                match_spec(&text, &pattern),
                "fallback must be golden for {pattern:?}"
            );
        }
    }

    #[test]
    fn wildcard_support_flags() {
        for m in all_matchers() {
            let expected = !matches!(m.name(), "kmp" | "boyer-moore" | "aho-corasick");
            assert_eq!(m.supports_wildcards(), expected, "{}", m.name());
        }
    }
}
