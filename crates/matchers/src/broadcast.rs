//! Mukhopadhyay's broadcast cellular matcher (paper §3.3.1).
//!
//! "Mukhopadhyay has proposed several machines in which each cell stores
//! a character of the pattern, and the text string is broadcast
//! character by character to all cells." Functionally the machine is a
//! hardware NFA for the pattern: cell `j` holds `p_j` and a match
//! flip-flop; on every broadcast the flip-flop of cell `j` becomes
//! *match-in from cell j−1* AND *p_j matches the broadcast character*.
//! The flip-flop of the last cell is the result bit.
//!
//! The simulation is cell-accurate (one flip-flop per cell, one
//! broadcast per text character) so the structural costs —
//! linear fan-out on the broadcast bus, a pattern-loading phase — are
//! real properties of the model, reported via
//! [`CommunicationProfile::broadcast`](crate::comm::CommunicationProfile::broadcast).

use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{PatSym, Pattern, Symbol};

/// The broadcast machine as a [`PatternMatcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BroadcastMatcher;

/// A stateful instance of the machine, usable for streaming.
#[derive(Debug, Clone)]
pub struct BroadcastMachine {
    /// Pattern characters stored statically in the cells.
    cells: Vec<PatSym>,
    /// Match flip-flops, one per cell.
    flip_flops: Vec<bool>,
    /// Count of broadcasts performed (each drives all cells).
    broadcasts: u64,
}

impl BroadcastMachine {
    /// Loads the pattern into the cells. On real hardware this is the
    /// serial loading phase the paper objects to; it costs
    /// `pattern.len()` beats before any text can be matched.
    pub fn load(pattern: &Pattern) -> Self {
        BroadcastMachine {
            cells: pattern.symbols().to_vec(),
            flip_flops: vec![false; pattern.len()],
            broadcasts: 0,
        }
    }

    /// Broadcasts one text character to every cell and returns the
    /// result bit (true iff a match ends at this character).
    pub fn broadcast(&mut self, s: Symbol) -> bool {
        self.broadcasts += 1;
        // All cells update simultaneously from the previous state.
        let prev = self.flip_flops.clone();
        for j in 0..self.cells.len() {
            let carry_in = if j == 0 { true } else { prev[j - 1] };
            self.flip_flops[j] = carry_in && self.cells[j].matches(s);
        }
        *self.flip_flops.last().expect("patterns are non-empty")
    }

    /// Number of cells (pattern length).
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Total cell-input events so far: every broadcast drives every
    /// cell, which is the fan-out cost of §3.3.1 in action.
    pub fn cell_drive_events(&self) -> u64 {
        self.broadcasts * self.cells.len() as u64
    }
}

impl PatternMatcher for BroadcastMatcher {
    fn name(&self) -> &'static str {
        "broadcast"
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let mut machine = BroadcastMachine::load(pattern);
        Ok(text.iter().map(|&s| machine.broadcast(s)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn check(pattern: &str, text: &str) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        assert_eq!(
            BroadcastMatcher.find(&t, &p).unwrap(),
            match_spec(&t, &p),
            "pattern={pattern} text={text}"
        );
    }

    #[test]
    fn agrees_with_spec() {
        check("AXC", "ABCAACCAB");
        check("AA", "AAAA");
        check("ABAB", "ABABABAB");
        check("A", "BAB");
    }

    #[test]
    fn streaming_interface() {
        let p = Pattern::parse("AB").unwrap();
        let mut m = BroadcastMachine::load(&p);
        assert!(!m.broadcast(Symbol::new(0))); // A
        assert!(m.broadcast(Symbol::new(1))); // B → match ends here
        assert!(!m.broadcast(Symbol::new(1))); // B
    }

    #[test]
    fn drive_events_equal_broadcasts_times_cells() {
        let p = Pattern::parse("ABC").unwrap();
        let mut m = BroadcastMachine::load(&p);
        for _ in 0..10 {
            m.broadcast(Symbol::new(0));
        }
        assert_eq!(m.cell_drive_events(), 30);
    }

    #[test]
    fn overlapping_matches_tracked_by_flip_flop_chain() {
        // Pattern AAA over AAAAA: matches end at 2, 3, 4.
        check("AAA", "AAAAA");
    }
}
