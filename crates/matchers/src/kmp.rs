//! Knuth–Morris–Pratt (the paper's [Knuth et al. 77] reference).
//!
//! Linear time on a random-access machine by exploiting self-overlap of
//! the pattern — exactly the information the paper points out becomes
//! *irrelevant* once wild cards are allowed, because "matches" stops
//! being transitive (`AC` and `XB` both match `AX` but not each other).
//! Accordingly [`KmpMatcher`] refuses patterns with wild cards, which is
//! itself part of the reproduction: the design-space argument of §3.3.1.

use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{PatSym, Pattern, Symbol};

/// The Knuth–Morris–Pratt matcher. Rejects wild cards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KmpMatcher;

impl KmpMatcher {
    /// The failure function: `fail[m]` is the length of the longest
    /// proper border of `pat[..=m]`.
    fn failure(pat: &[Symbol]) -> Vec<usize> {
        let mut fail = vec![0usize; pat.len()];
        let mut len = 0;
        for m in 1..pat.len() {
            while len > 0 && pat[m] != pat[len] {
                len = fail[len - 1];
            }
            if pat[m] == pat[len] {
                len += 1;
            }
            fail[m] = len;
        }
        fail
    }

    /// Extracts the literal symbols, failing on any wild card.
    fn literals(pattern: &Pattern) -> Result<Vec<Symbol>, MatchError> {
        pattern
            .symbols()
            .iter()
            .map(|s| match s {
                PatSym::Lit(sym) => Ok(*sym),
                PatSym::Wild => Err(MatchError::WildcardsUnsupported { algorithm: "kmp" }),
            })
            .collect()
    }
}

impl PatternMatcher for KmpMatcher {
    fn name(&self) -> &'static str {
        "kmp"
    }

    fn supports_wildcards(&self) -> bool {
        false
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let pat = Self::literals(pattern)?;
        let fail = Self::failure(&pat);
        let mut out = vec![false; text.len()];
        let mut len = 0; // chars of the pattern currently matched
        for (i, &s) in text.iter().enumerate() {
            while len > 0 && s != pat[len] {
                len = fail[len - 1];
            }
            if s == pat[len] {
                len += 1;
            }
            if len == pat.len() {
                out[i] = true;
                len = fail[len - 1];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    #[test]
    fn failure_function_of_classic_pattern() {
        // "ABABAC"-style: borders grow and reset.
        let pat: Vec<Symbol> = text_from_letters("ABABAC").unwrap();
        assert_eq!(KmpMatcher::failure(&pat), vec![0, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn finds_overlapping_matches() {
        let p = Pattern::parse("AA").unwrap();
        let t = text_from_letters("AAAA").unwrap();
        assert_eq!(KmpMatcher.find(&t, &p).unwrap(), match_spec(&t, &p));
    }

    #[test]
    fn agrees_with_spec_on_periodic_text() {
        let p = Pattern::parse("ABAB").unwrap();
        let t = text_from_letters("ABABABABAB").unwrap();
        assert_eq!(KmpMatcher.find(&t, &p).unwrap(), match_spec(&t, &p));
    }

    #[test]
    fn refuses_wildcards() {
        let p = Pattern::parse("AXB").unwrap();
        let t = text_from_letters("AAB").unwrap();
        assert_eq!(
            KmpMatcher.find(&t, &p),
            Err(MatchError::WildcardsUnsupported { algorithm: "kmp" })
        );
    }
}
