//! Bit-parallel Shift-And matching (a modern word-RAM baseline).
//!
//! Not in the 1979 paper — it post-dates it — but it is the natural
//! software competitor today and it handles wild cards gracefully, so
//! the benchmark tables include it to show where the systolic argument
//! stands against word-level parallelism: Shift-And is linear only while
//! the pattern fits in one machine word.

use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{Pattern, Symbol};

/// Bit-parallel matcher; patterns limited to 64 characters (one `u64`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShiftOrMatcher;

impl ShiftOrMatcher {
    /// Maximum supported pattern length (bits of the state word).
    pub const MAX_PATTERN: usize = 64;
}

impl PatternMatcher for ShiftOrMatcher {
    fn name(&self) -> &'static str {
        "shift-or"
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let m = pattern.len();
        if m > Self::MAX_PATTERN {
            return Err(MatchError::PatternTooLong {
                algorithm: "shift-or",
                max: Self::MAX_PATTERN,
            });
        }
        // mask[a] bit j is set iff pattern position j matches symbol a.
        let mut masks = vec![0u64; pattern.alphabet().size()];
        for (j, p) in pattern.symbols().iter().enumerate() {
            for (a, mask) in masks.iter_mut().enumerate() {
                if p.matches(Symbol::new(a as u8)) {
                    *mask |= 1u64 << j;
                }
            }
        }
        let goal = 1u64 << (m - 1);
        let mut state = 0u64;
        Ok(text
            .iter()
            .map(|s| {
                state = ((state << 1) | 1) & masks[s.value() as usize];
                state & goal != 0
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::{text_from_letters, Alphabet, PatSym};

    #[test]
    fn wildcards_work() {
        let p = Pattern::parse("AXC").unwrap();
        let t = text_from_letters("ABCAACCAB").unwrap();
        assert_eq!(ShiftOrMatcher.find(&t, &p).unwrap(), match_spec(&t, &p));
    }

    #[test]
    fn sixty_four_char_pattern_is_accepted() {
        let syms = vec![PatSym::Lit(Symbol::new(0)); 64];
        let p = Pattern::new(syms, Alphabet::TWO_BIT).unwrap();
        let t = vec![Symbol::new(0); 100];
        let r = ShiftOrMatcher.find(&t, &p).unwrap();
        assert_eq!(r.iter().filter(|&&b| b).count(), 100 - 63);
    }

    #[test]
    fn sixty_five_char_pattern_is_rejected() {
        let syms = vec![PatSym::Lit(Symbol::new(0)); 65];
        let p = Pattern::new(syms, Alphabet::TWO_BIT).unwrap();
        assert_eq!(
            ShiftOrMatcher.find(&[], &p),
            Err(MatchError::PatternTooLong {
                algorithm: "shift-or",
                max: 64
            })
        );
    }

    #[test]
    fn overlapping_matches() {
        let p = Pattern::parse("AAA").unwrap();
        let t = text_from_letters("AAAAAB").unwrap();
        assert_eq!(ShiftOrMatcher.find(&t, &p).unwrap(), match_spec(&t, &p));
    }
}
