//! The unidirectional static-pattern array (paper §3.3.1).
//!
//! "An algorithm that is similar to ours uses a linear array of cells
//! with data flowing in only one direction. The pattern is permanently
//! stored in the array of cells, and the text string moves past it.
//! Partial results move at half the speed of the text so that they
//! accumulate results from an entire substring match. This algorithm
//! was rejected because of the static storage of the pattern."
//!
//! The simulation is beat- and cell-accurate: cell `j` statically holds
//! `p_j`; text items move one cell per beat; each partial result spends
//! two beats per cell (absorbing the comparison on its first beat
//! there), so the result for the window starting at text position `w`
//! meets exactly the pairs `(p_j, s_{w+j})`. A `pattern.len()`-beat
//! loading phase precedes matching, which is the cost the paper
//! objects to.

use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{PatSym, Pattern, Symbol};

/// The unidirectional array as a [`PatternMatcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnidirectionalMatcher;

/// A text item moving through the array (one cell per beat).
#[derive(Debug, Clone, Copy)]
struct TxtItem {
    sym: Symbol,
    seq: u64,
}

/// A partial result moving at half speed (two beats per cell).
#[derive(Debug, Clone, Copy)]
struct ResItem {
    /// True while every absorbed pair matched.
    acc: bool,
    /// Window start position `w`.
    start: u64,
    /// Beats spent in the current cell (0 on arrival, moves at 2).
    age: u8,
    /// True once the pair in this result's current cell was absorbed.
    absorbed_here: bool,
}

/// A stateful instance of the array.
#[derive(Debug, Clone)]
pub struct UnidirectionalArray {
    /// Statically stored pattern, one character per cell.
    cells: Vec<PatSym>,
    /// Text register of each cell.
    text: Vec<Option<TxtItem>>,
    /// Partial results present in each cell (at half speed, up to two
    /// can share a cell — one old, one new).
    results: Vec<Vec<ResItem>>,
    beat: u64,
    /// Beats spent loading the pattern before matching began.
    loading_beats: u64,
    next_window: u64,
}

impl UnidirectionalArray {
    /// Loads the pattern, paying one beat per cell (serial shift-in).
    pub fn load(pattern: &Pattern) -> Self {
        let n = pattern.len();
        UnidirectionalArray {
            cells: pattern.symbols().to_vec(),
            text: vec![None; n],
            results: vec![Vec::new(); n],
            beat: 0,
            loading_beats: n as u64,
            next_window: 0,
        }
    }

    /// Number of beats spent loading before the first text character.
    pub fn loading_beats(&self) -> u64 {
        self.loading_beats
    }

    /// Advances one beat: text items move right one cell; results age
    /// and move right every second beat; new text enters cell 0 along
    /// with a fresh partial result for the window starting there.
    ///
    /// Returns `(end_position, matched)` for any result completed this
    /// beat (its window's last pair was just absorbed in the final
    /// cell).
    pub fn step(&mut self, incoming: Option<Symbol>) -> Option<(u64, bool)> {
        let n = self.cells.len();

        // Results that have been in their cell for 2 beats move right;
        // those finishing cell n-1 complete.
        let mut completed = None;
        for j in (0..n).rev() {
            let mut stay = Vec::new();
            for mut r in std::mem::take(&mut self.results[j]) {
                if r.age >= 1 && r.absorbed_here {
                    if j + 1 == n {
                        completed = Some((r.start + n as u64 - 1, r.acc));
                    } else {
                        r.age = 0;
                        r.absorbed_here = false;
                        self.results[j + 1].push(r);
                    }
                } else {
                    r.age += 1;
                    stay.push(r);
                }
            }
            self.results[j].extend(stay);
        }

        // Text moves right one cell per beat; the last register's item
        // simply leaves the array.
        for j in (1..n).rev() {
            self.text[j] = self.text[j - 1];
        }
        self.text[0] = incoming.map(|sym| TxtItem {
            sym,
            seq: self.next_window,
        });

        // A new partial result is born in cell 0 with each text item.
        if self.text[0].is_some() {
            self.results[0].push(ResItem {
                acc: true,
                start: self.next_window,
                age: 0,
                absorbed_here: false,
            });
            self.next_window += 1;
        }

        // Absorption: a result meets the text character of its window in
        // the cell it just entered.
        for j in 0..n {
            let txt = self.text[j];
            for r in &mut self.results[j] {
                if r.absorbed_here {
                    continue;
                }
                if let Some(t) = txt {
                    // The co-location invariant: in cell j a result for
                    // window w meets s_{w+j}.
                    if t.seq == r.start + j as u64 {
                        r.acc = r.acc && self.cells[j].matches(t.sym);
                        r.absorbed_here = true;
                    }
                }
            }
        }

        self.beat += 1;
        completed
    }
}

impl PatternMatcher for UnidirectionalMatcher {
    fn name(&self) -> &'static str {
        "unidirectional"
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let mut arr = UnidirectionalArray::load(pattern);
        let mut out = vec![false; text.len()];
        // Text streams in at full rate (one character per beat — the
        // variant's selling point); results lag at half speed behind it.
        let total = text.len() + 2 * pattern.len() + 8;
        let mut fed = 0usize;
        for _ in 0..total {
            let inject = if fed < text.len() {
                let s = text[fed];
                fed += 1;
                Some(s)
            } else {
                None
            };
            if let Some((end, matched)) = arr.step(inject) {
                let end = end as usize;
                if end < out.len() {
                    out[end] = matched;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn check(pattern: &str, text: &str) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        assert_eq!(
            UnidirectionalMatcher.find(&t, &p).unwrap(),
            match_spec(&t, &p),
            "pattern={pattern} text={text}"
        );
    }

    #[test]
    fn agrees_with_spec() {
        check("AXC", "ABCAACCAB");
        check("AA", "AAAA");
        check("ABAB", "ABABABAB");
        check("A", "BAB");
        check("ABC", "CABCABC");
    }

    #[test]
    fn loading_cost_is_pattern_length() {
        let p = Pattern::parse("ABCDE").unwrap();
        assert_eq!(UnidirectionalArray::load(&p).loading_beats(), 5);
    }

    #[test]
    fn empty_text() {
        let p = Pattern::parse("AB").unwrap();
        assert_eq!(
            UnidirectionalMatcher.find(&[], &p).unwrap(),
            Vec::<bool>::new()
        );
    }
}
