//! A self-contained radix-2 complex FFT.
//!
//! The Fischer–Paterson matcher (the paper's "fastest algorithm known
//! for string matching with wild card characters … based on
//! multiplication of large integers") needs fast convolution. Rather
//! than pull in a dependency, this module implements the standard
//! iterative Cooley–Tukey transform over a minimal complex type — large
//! integer multiplication and convolution are the same algorithm.
//!
//! Accuracy: values in the matcher's convolutions are 0/1 indicators
//! summing to at most the text length, so `f64` round-off is far below
//! the 0.5 rounding threshold for any realistic input (`n ≲ 2^40`).

use std::ops::{Add, Mul, Sub};

/// A bare-bones complex number; just enough for the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 FFT. `inverse` applies the conjugate
/// transform and divides by the length.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for idx in 0..len / 2 {
                let u = data[start + idx];
                let v = data[start + idx + len / 2] * w;
                data[start + idx] = u + v;
                data[start + idx + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }

    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= scale;
            x.im *= scale;
        }
    }
}

/// Linear convolution of two real sequences via FFT, rounded to the
/// nearest integer (inputs are assumed integral).
pub fn convolve_integer(a: &[f64], b: &[f64]) -> Vec<i64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fa.resize(n, Complex::default());
    fb.resize(n, Complex::default());
    fft(&mut fa, false);
    fft(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = *x * *y;
    }
    fft(&mut fa, true);
    fa.truncate(out_len);
    fa.iter().map(|c| c.re.round() as i64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_roundtrip_recovers_input() {
        let orig: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * 3 % 7) as f64))
            .collect();
        let mut data = orig.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data, false);
        for c in data {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_panics() {
        let mut data = vec![Complex::default(); 6];
        fft(&mut data, false);
    }

    #[test]
    fn convolution_matches_schoolbook() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0];
        // (1+2x+3x²)(4+5x) = 4 + 13x + 22x² + 15x³
        assert_eq!(convolve_integer(&a, &b), vec![4, 13, 22, 15]);
    }

    #[test]
    fn convolution_as_bignum_multiply() {
        // 123 × 45 = 5535 via digit convolution with carries.
        let a = [3.0, 2.0, 1.0];
        let b = [5.0, 4.0];
        let raw = convolve_integer(&a, &b);
        let mut value = 0i64;
        for (i, d) in raw.iter().enumerate() {
            value += d * 10i64.pow(i as u32);
        }
        assert_eq!(value, 123 * 45);
    }

    #[test]
    fn empty_convolution() {
        assert!(convolve_integer(&[], &[1.0]).is_empty());
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(9), 16);
    }
}
