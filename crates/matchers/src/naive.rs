//! The obvious quadratic matcher: compare every window directly.
//!
//! `O(n·k)` comparisons on a random-access machine. This is both the
//! simplest correct implementation (it *is* the executable spec,
//! restated) and the software baseline the paper's chip is implicitly
//! compared against: a conventional computer doing one comparison at a
//! time, memory-bandwidth bound.

use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{Pattern, Symbol};

/// Character-by-character window scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveMatcher;

impl PatternMatcher for NaiveMatcher {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let k = pattern.k();
        Ok((0..text.len())
            .map(|i| {
                i >= k
                    && pattern
                        .symbols()
                        .iter()
                        .zip(&text[i - k..=i])
                        .all(|(p, &s)| p.matches(s))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    #[test]
    fn agrees_with_spec_on_figure_example() {
        let p = Pattern::parse("AXC").unwrap();
        let t = text_from_letters("ABCAACCAB").unwrap();
        assert_eq!(NaiveMatcher.find(&t, &p).unwrap(), match_spec(&t, &p));
    }

    #[test]
    fn empty_text_gives_empty_result() {
        let p = Pattern::parse("A").unwrap();
        assert_eq!(NaiveMatcher.find(&[], &p).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn supports_wildcards() {
        assert!(NaiveMatcher.supports_wildcards());
    }
}
