//! Communication-cost profiles for the hardware-shaped architectures.
//!
//! §3.3.1 rejects Mukhopadhyay's broadcast machines because "each cell
//! requires a connection to the broadcast channel, which either
//! increases the power requirements of the system as a whole or
//! decreases its speed", and rejects the unidirectional static-pattern
//! array because "loading the cells in preparation for a pattern match
//! would require extra time and circuitry". This module turns those
//! sentences into numbers for benchmark table E14.

/// Static wiring and setup costs of one matcher architecture with `n`
/// character cells, in abstract units (wire segments of one cell pitch;
/// beats for times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommunicationProfile {
    /// Architecture name.
    pub architecture: &'static str,
    /// Number of character cells.
    pub cells: usize,
    /// Largest fan-out any single driver must support. Local-only
    /// designs keep this constant; a broadcast design drives all cells.
    pub max_fanout: usize,
    /// Total length of data wiring, in cell pitches. A broadcast bus
    /// spans the whole array *in addition to* local connections.
    pub wire_length: usize,
    /// Beats of setup work before matching can begin (pattern loading).
    pub loading_beats: usize,
    /// Whether the pattern can be changed without pausing the text
    /// stream (the systolic design's recirculation allows this).
    pub on_line_pattern_change: bool,
}

/// §3.3.1's power objection to broadcast — a connection to every cell
/// "either increases the power requirements of the system as a whole or
/// decreases its speed" — is about the *single worst driver*: it must
/// charge its whole fan-out plus the bus capacitance each beat, so it
/// needs to be physically large (power) or accept a slow edge (speed).
impl CommunicationProfile {
    /// Relative load on the most burdened driver: gate loads on its
    /// fan-out plus the capacitance of the wire it drives (half a unit
    /// per cell pitch). Constant for local-only designs; linear in the
    /// array for a broadcast bus.
    pub fn max_driver_load(&self) -> f64 {
        let bus_span = if self.max_fanout > 1 {
            // The broadcast wire spans the whole array.
            self.cells as f64
        } else {
            1.0 // one cell pitch to the neighbour
        };
        self.max_fanout as f64 + 0.5 * bus_span
    }
}

impl CommunicationProfile {
    /// The bidirectional systolic array of the paper: purely local
    /// neighbour wiring (pattern, text, result, λ, x — five signals per
    /// boundary), no loading phase.
    pub fn systolic(cells: usize) -> Self {
        CommunicationProfile {
            architecture: "systolic (Foster-Kung)",
            cells,
            // Each cell drives only its neighbour.
            max_fanout: 1,
            // Five inter-cell signals, each crossing n-1 boundaries.
            wire_length: 5 * cells.saturating_sub(1),
            loading_beats: 0,
            on_line_pattern_change: true,
        }
    }

    /// Mukhopadhyay's broadcast machine: the text character is broadcast
    /// to every cell each beat.
    pub fn broadcast(cells: usize) -> Self {
        CommunicationProfile {
            architecture: "broadcast (Mukhopadhyay)",
            cells,
            // The text driver sees every cell.
            max_fanout: cells,
            // The broadcast bus spans the array, plus the match-bit
            // chain (1 signal) between neighbours.
            wire_length: cells + cells.saturating_sub(1),
            // The pattern must be loaded into the cells first.
            loading_beats: cells,
            on_line_pattern_change: false,
        }
    }

    /// The unidirectional static-pattern array: local wiring (text and
    /// half-speed results), but the pattern is preloaded.
    pub fn unidirectional(cells: usize) -> Self {
        CommunicationProfile {
            architecture: "unidirectional (static pattern)",
            cells,
            max_fanout: 1,
            // Text, result and a result-phase signal between neighbours.
            wire_length: 3 * cells.saturating_sub(1),
            loading_beats: cells,
            on_line_pattern_change: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systolic_fanout_is_constant() {
        assert_eq!(CommunicationProfile::systolic(8).max_fanout, 1);
        assert_eq!(CommunicationProfile::systolic(4096).max_fanout, 1);
    }

    #[test]
    fn broadcast_fanout_grows_linearly() {
        for n in [1usize, 8, 64, 1024] {
            assert_eq!(CommunicationProfile::broadcast(n).max_fanout, n);
        }
    }

    #[test]
    fn only_systolic_avoids_loading() {
        assert_eq!(CommunicationProfile::systolic(8).loading_beats, 0);
        assert!(CommunicationProfile::broadcast(8).loading_beats > 0);
        assert!(CommunicationProfile::unidirectional(8).loading_beats > 0);
    }

    #[test]
    fn broadcast_driver_load_grows_linearly() {
        // The §3.3.1 power/speed argument: the systolic design's worst
        // driver is constant; the broadcast bus driver grows with n.
        let sys_small = CommunicationProfile::systolic(8).max_driver_load();
        let sys_large = CommunicationProfile::systolic(1024).max_driver_load();
        assert!((sys_small - sys_large).abs() < 1e-9);
        let bc_small = CommunicationProfile::broadcast(8).max_driver_load();
        let bc_large = CommunicationProfile::broadcast(1024).max_driver_load();
        assert!(
            bc_large > 100.0 * bc_small / 2.0,
            "bus driver must scale with n"
        );
    }

    #[test]
    fn single_cell_profiles_are_sane() {
        for p in [
            CommunicationProfile::systolic(1),
            CommunicationProfile::broadcast(1),
            CommunicationProfile::unidirectional(1),
        ] {
            assert_eq!(p.cells, 1);
            assert!(p.max_fanout >= 1);
        }
    }
}
