//! Adapter exposing the Foster–Kung array through [`PatternMatcher`].
//!
//! This is the chosen design of §3.3.1, wired into the same trait as
//! every rejected alternative so the cross-check tests and scaling
//! benchmarks treat all architectures uniformly.

use crate::{MatchError, PatternMatcher};
use pm_systolic::matcher::SystolicMatcher;
use pm_systolic::symbol::{Pattern, Symbol};

/// The bidirectional systolic array as a [`PatternMatcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystolicAlgorithm;

impl PatternMatcher for SystolicAlgorithm {
    fn name(&self) -> &'static str {
        "systolic"
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let mut m = SystolicMatcher::new(pattern).expect("constructed patterns are never empty");
        Ok(m.match_symbols(text).bits().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    #[test]
    fn adapter_agrees_with_spec() {
        let p = Pattern::parse("AXCX").unwrap();
        let t = text_from_letters("ABCAACCABCA").unwrap();
        assert_eq!(SystolicAlgorithm.find(&t, &p).unwrap(), match_spec(&t, &p));
    }
}
