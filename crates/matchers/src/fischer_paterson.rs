//! Fischer–Paterson wild-card matching via convolutions.
//!
//! The paper (§3.1): "The fastest algorithm known for string matching
//! with wild card characters is based on multiplication of large
//! integers [Fischer and Paterson 74], and requires more than linear
//! time. The pattern matching chip solves the problem in linear time by
//! performing comparisons in parallel."
//!
//! This module implements that comparator. Characters are compared bit
//! by bit: position `i` of the text *mismatches* pattern position `m`
//! iff some encoding bit differs **and** the pattern character is a
//! literal. For each bit plane `v` we count, for every alignment, the
//! pairs where the text bit is 1 and the (literal) pattern bit is 0 and
//! vice versa — two convolutions per bit plane, `2·log₂|Σ|` convolutions
//! total, each `O(n log n)` by FFT. A window matches iff its total
//! mismatch count is zero. That is the `O(n log n log |Σ|)` bound of the
//! original paper, visibly "more than linear" in benchmark E15.

use crate::fft::convolve_integer;
use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{Pattern, Symbol};

/// The convolution-based wild-card matcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FischerPatersonMatcher;

impl PatternMatcher for FischerPatersonMatcher {
    fn name(&self) -> &'static str {
        "fischer-paterson"
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let n = text.len();
        let m = pattern.len();
        let k = m - 1;
        if n < m {
            return Ok(vec![false; n]);
        }
        let bits = pattern.alphabet().bits();

        // Cross-correlation via convolution with the reversed pattern:
        // conv(text, rev)[i] = Σ_m text[i-k+m]·pat[m], so index i of the
        // convolution output directly counts pairs for the window ending
        // at text position i.
        let mut mismatches = vec![0i64; n + m - 1];
        for v in 0..bits {
            let text_one: Vec<f64> = text
                .iter()
                .map(|s| f64::from(s.bit_msb_first(v, bits)))
                .collect();
            let text_zero: Vec<f64> = text
                .iter()
                .map(|s| f64::from(!s.bit_msb_first(v, bits)))
                .collect();

            // Reversed literal-indicator planes of the pattern.
            let mut pat_one = vec![0.0f64; m];
            let mut pat_zero = vec![0.0f64; m];
            for (j, p) in pattern.symbols().iter().enumerate() {
                if let Some(sym) = p.literal() {
                    if sym.bit_msb_first(v, bits) {
                        pat_one[m - 1 - j] = 1.0;
                    } else {
                        pat_zero[m - 1 - j] = 1.0;
                    }
                }
            }

            // text bit 1 against pattern bit 0, and vice versa.
            for (acc, c) in mismatches
                .iter_mut()
                .zip(convolve_integer(&text_one, &pat_zero))
            {
                *acc += c;
            }
            for (acc, c) in mismatches
                .iter_mut()
                .zip(convolve_integer(&text_zero, &pat_one))
            {
                *acc += c;
            }
        }

        Ok((0..n).map(|i| i >= k && mismatches[i] == 0).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::{text_from_letters, Alphabet};

    fn check(pattern: &str, text: &str) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        assert_eq!(
            FischerPatersonMatcher.find(&t, &p).unwrap(),
            match_spec(&t, &p),
            "pattern={pattern} text={text}"
        );
    }

    #[test]
    fn figure_example_with_wildcard() {
        check("AXC", "ABCAACCAB");
    }

    #[test]
    fn all_wildcards() {
        check("XXX", "ABCD");
    }

    #[test]
    fn literal_patterns() {
        check("ABC", "ABCABCABC");
        check("AA", "AAAA");
    }

    #[test]
    fn no_matches() {
        check("AB", "BBBB");
    }

    #[test]
    fn eight_bit_alphabet() {
        let p = Pattern::from_bytes(&[200, 0xFF, 17], Some(0xFF), Alphabet::EIGHT_BIT).unwrap();
        let t: Vec<Symbol> = [200u8, 5, 17, 200, 99, 17, 1]
            .iter()
            .map(|&b| Symbol::new(b))
            .collect();
        assert_eq!(
            FischerPatersonMatcher.find(&t, &p).unwrap(),
            match_spec(&t, &p)
        );
    }

    #[test]
    fn text_shorter_than_pattern() {
        let p = Pattern::parse("ABCD").unwrap();
        let t = text_from_letters("AB").unwrap();
        assert_eq!(
            FischerPatersonMatcher.find(&t, &p).unwrap(),
            vec![false, false]
        );
    }
}
