//! Boyer–Moore (the paper's [Boyer and Moore 77] reference).
//!
//! Sublinear on average by scanning the pattern right-to-left and
//! skipping ahead using the bad-character and good-suffix rules. Like
//! KMP it relies on transitivity of "matches", so [`BoyerMooreMatcher`]
//! refuses wild cards — the second half of the paper's §3.3.1 argument.

use crate::{MatchError, PatternMatcher};
use pm_systolic::symbol::{PatSym, Pattern, Symbol};

/// The Boyer–Moore matcher with both classic shift rules. Rejects wild
/// cards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoyerMooreMatcher;

impl BoyerMooreMatcher {
    fn literals(pattern: &Pattern) -> Result<Vec<Symbol>, MatchError> {
        pattern
            .symbols()
            .iter()
            .map(|s| match s {
                PatSym::Lit(sym) => Ok(*sym),
                PatSym::Wild => Err(MatchError::WildcardsUnsupported {
                    algorithm: "boyer-moore",
                }),
            })
            .collect()
    }

    /// Bad-character table: for each alphabet symbol, the index of its
    /// rightmost occurrence in the pattern (or `None`).
    fn bad_char(pat: &[Symbol], alphabet_size: usize) -> Vec<Option<usize>> {
        let mut table = vec![None; alphabet_size];
        for (i, s) in pat.iter().enumerate() {
            table[s.value() as usize] = Some(i);
        }
        table
    }

    /// Good-suffix shift table via the classic two-pass border
    /// construction: `shift[j]` is how far to slide after a mismatch at
    /// pattern index `j-1` (with `pat[j..]` already matched).
    fn good_suffix(pat: &[Symbol]) -> Vec<usize> {
        let m = pat.len();
        let mut shift = vec![0usize; m + 1];
        let mut border = vec![0usize; m + 1];

        // Pass 1: borders of suffixes.
        let mut i = m;
        let mut j = m + 1;
        border[i] = j;
        while i > 0 {
            while j <= m && pat[i - 1] != pat[j - 1] {
                if shift[j] == 0 {
                    shift[j] = j - i;
                }
                j = border[j];
            }
            i -= 1;
            j -= 1;
            border[i] = j;
        }

        // Pass 2: fill remaining shifts from the widest border.
        let mut j = border[0];
        #[allow(clippy::needless_range_loop)]
        for i in 0..=m {
            if shift[i] == 0 {
                shift[i] = j;
            }
            if i == j {
                j = border[j];
            }
        }
        shift
    }
}

impl PatternMatcher for BoyerMooreMatcher {
    fn name(&self) -> &'static str {
        "boyer-moore"
    }

    fn supports_wildcards(&self) -> bool {
        false
    }

    fn find(&self, text: &[Symbol], pattern: &Pattern) -> Result<Vec<bool>, MatchError> {
        let pat = Self::literals(pattern)?;
        let m = pat.len();
        let mut out = vec![false; text.len()];
        if text.len() < m {
            return Ok(out);
        }
        let bad = Self::bad_char(&pat, pattern.alphabet().size());
        let good = Self::good_suffix(&pat);

        let mut s = 0usize; // current alignment: pattern starts at text[s]
        while s + m <= text.len() {
            let mut j = m;
            while j > 0 && pat[j - 1] == text[s + j - 1] {
                j -= 1;
            }
            if j == 0 {
                out[s + m - 1] = true;
                s += good[0];
            } else {
                let bc = match bad[text[s + j - 1].value() as usize] {
                    // Align the rightmost occurrence under the mismatch;
                    // occurrences to the right would shift backwards.
                    Some(r) if r < j - 1 => j - 1 - r,
                    Some(_) => 1,
                    None => j,
                };
                s += bc.max(good[j]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn check(pattern: &str, text: &str) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        assert_eq!(
            BoyerMooreMatcher.find(&t, &p).unwrap(),
            match_spec(&t, &p),
            "pattern={pattern} text={text}"
        );
    }

    #[test]
    fn simple_and_overlapping() {
        check("ABC", "ABCABCABC");
        check("AA", "AAAA");
        check("A", "BBBABBA");
    }

    #[test]
    fn periodic_patterns() {
        check("ABAB", "ABABABABAB");
        check("AAB", "AABAABAAB");
    }

    #[test]
    fn no_match_cases() {
        check("ABC", "CBACBACBA");
        check("AAAA", "AAA");
    }

    #[test]
    fn rejects_wildcards() {
        let p = Pattern::parse("AXB").unwrap();
        let t = text_from_letters("AAB").unwrap();
        assert_eq!(
            BoyerMooreMatcher.find(&t, &p),
            Err(MatchError::WildcardsUnsupported {
                algorithm: "boyer-moore"
            })
        );
    }

    #[test]
    fn good_suffix_table_shape() {
        let pat = text_from_letters("ABBAB").unwrap();
        let shifts = BoyerMooreMatcher::good_suffix(&pat);
        assert_eq!(shifts.len(), 6);
        assert!(shifts.iter().all(|&s| (1..=5).contains(&s)));
    }
}
