//! Property tests for the FFT and the convolution-based matcher on
//! inputs the registry cross-check doesn't reach (wide alphabets,
//! larger transforms).

use pm_matchers::fft::{convolve_integer, fft, next_pow2, Complex};
use pm_matchers::prelude::*;
use pm_systolic::prelude::{match_spec, Alphabet, PatSym, Pattern, Symbol};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_random(values in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        let n = next_pow2(values.len());
        let mut data: Vec<Complex> =
            values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        data.resize(n, Complex::default());
        let orig = data.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!(a.im.abs() < 1e-6);
        }
    }

    #[test]
    fn convolution_matches_schoolbook_random(
        a in proptest::collection::vec(-30i64..30, 1..24),
        b in proptest::collection::vec(-30i64..30, 1..24),
    ) {
        let fa: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let fb: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let got = convolve_integer(&fa, &fb);
        let mut want = vec![0i64; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                want[i + j] += x * y;
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fischer_paterson_on_wide_alphabets(
        pat in proptest::collection::vec(proptest::option::weighted(0.8, 0u8..=255), 1..6),
        text in proptest::collection::vec(0u8..=255, 0..24),
    ) {
        let symbols: Vec<PatSym> = pat
            .iter()
            .map(|o| match o {
                Some(v) => PatSym::Lit(Symbol::new(*v)),
                None => PatSym::Wild,
            })
            .collect();
        let pattern = Pattern::new(symbols, Alphabet::EIGHT_BIT).unwrap();
        let text: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let got = FischerPatersonMatcher.find(&text, &pattern).unwrap();
        prop_assert_eq!(got, match_spec(&text, &pattern));
    }

    #[test]
    fn hybrid_on_wide_alphabets(
        pat in proptest::collection::vec(proptest::option::weighted(0.7, 0u8..=255), 1..8),
        text in proptest::collection::vec(0u8..=255, 0..48),
    ) {
        let symbols: Vec<PatSym> = pat
            .iter()
            .map(|o| match o {
                Some(v) => PatSym::Lit(Symbol::new(*v)),
                None => PatSym::Wild,
            })
            .collect();
        let pattern = Pattern::new(symbols, Alphabet::EIGHT_BIT).unwrap();
        let text: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let got = SegmentHybridMatcher.find(&text, &pattern).unwrap();
        prop_assert_eq!(got, match_spec(&text, &pattern));
    }
}
