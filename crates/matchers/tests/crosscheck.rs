//! Cross-check: every algorithm that accepts an input agrees with the
//! executable spec (and therefore with every other algorithm).

use pm_matchers::prelude::*;
use pm_systolic::prelude::{match_spec, Alphabet, PatSym, Pattern, Symbol};
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = (u32, Vec<Option<u8>>, Vec<u8>)> {
    (1u32..=3).prop_flat_map(|bits| {
        let max = (1u16 << bits) as u8 - 1;
        let pat_sym = prop_oneof![
            4 => (0..=max).prop_map(Some),
            1 => Just(None),
        ];
        (
            Just(bits),
            proptest::collection::vec(pat_sym, 1..=8),
            proptest::collection::vec(0..=max, 0..=48),
        )
    })
}

fn build(bits: u32, pat: &[Option<u8>]) -> Pattern {
    let alphabet = Alphabet::new(bits).unwrap();
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, alphabet).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_matchers_agree_with_spec((bits, pat, text) in workload()) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let expected = match_spec(&symbols, &pattern);
        for m in all_matchers() {
            match m.find(&symbols, &pattern) {
                Ok(got) => prop_assert_eq!(&got, &expected, "algorithm {}", m.name()),
                Err(MatchError::WildcardsUnsupported { .. }) => {
                    prop_assert!(pattern.has_wildcards(), "{} refused wrongly", m.name());
                    prop_assert!(!m.supports_wildcards());
                }
                Err(e) => prop_assert!(false, "{}: unexpected error {e}", m.name()),
            }
        }
    }

    #[test]
    fn wildcard_free_patterns_accepted_by_everyone(
        (bits, pat, text) in (1u32..=3).prop_flat_map(|bits| {
            let max = (1u16 << bits) as u8 - 1;
            (
                Just(bits),
                proptest::collection::vec(0..=max, 1..=8),
                proptest::collection::vec(0..=max, 0..=32),
            )
        })
    ) {
        let syms: Vec<PatSym> = pat.iter().map(|&v| PatSym::Lit(Symbol::new(v))).collect();
        let pattern = Pattern::new(syms, Alphabet::new(bits).unwrap()).unwrap();
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let expected = match_spec(&symbols, &pattern);
        for m in all_matchers() {
            let got = m.find(&symbols, &pattern);
            prop_assert_eq!(got.as_deref(), Ok(expected.as_slice()), "algorithm {}", m.name());
        }
    }
}
