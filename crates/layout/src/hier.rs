//! Hierarchical CIF: symbol definitions and calls.
//!
//! §2: "Regular interconnection implies that the design can be made
//! modular and extensible. A large chip can be designed by combining
//! the designs of small chips." At the mask level that principle *is*
//! CIF's symbol mechanism — define the comparator cell once (`DS`),
//! instantiate it per column (`C n T x y`), and the mask description
//! stays proportional to the number of *cell types*, not cells.
//!
//! [`HierLayout`] holds a library of symbols plus placements;
//! [`emit_hier_cif`] writes the `DS`/`C` form, [`parse_hier_cif`]
//! reads it back, and [`HierLayout::flatten`] expands to the flat shape
//! list the DRC and renderer consume — round-trip tested against both.

use crate::cell::CellLayout;
use crate::geom::Rect;
use crate::layer::Layer;

/// A placement of a library symbol at a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index into the symbol library.
    pub symbol: usize,
    /// Translation in λ.
    pub dx: i64,
    /// Translation in λ.
    pub dy: i64,
}

/// A hierarchical layout: a symbol library and placements, plus
/// top-level shapes (routing, pads) that belong to no symbol.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierLayout {
    /// Symbol library: `(name, shapes)`.
    pub symbols: Vec<(String, Vec<(Layer, Rect)>)>,
    /// Instances of library symbols.
    pub placements: Vec<Placement>,
    /// Shapes drawn directly at top level.
    pub top_shapes: Vec<(Layer, Rect)>,
}

impl HierLayout {
    /// An empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cell layout to the library, returning its symbol index.
    pub fn define(&mut self, cell: &CellLayout) -> usize {
        self.symbols
            .push((cell.name().to_string(), cell.shapes().to_vec()));
        self.symbols.len() - 1
    }

    /// Adds a raw symbol to the library.
    pub fn define_raw(&mut self, name: &str, shapes: Vec<(Layer, Rect)>) -> usize {
        self.symbols.push((name.to_string(), shapes));
        self.symbols.len() - 1
    }

    /// Places symbol `symbol` at `(dx, dy)`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range symbol index.
    pub fn place(&mut self, symbol: usize, dx: i64, dy: i64) {
        assert!(symbol < self.symbols.len(), "unknown symbol");
        self.placements.push(Placement { symbol, dx, dy });
    }

    /// Expands the hierarchy to a flat shape list.
    pub fn flatten(&self) -> Vec<(Layer, Rect)> {
        let mut out = Vec::new();
        for p in &self.placements {
            for &(layer, rect) in &self.symbols[p.symbol].1 {
                out.push((layer, rect.translated(p.dx, p.dy)));
            }
        }
        out.extend(self.top_shapes.iter().copied());
        out
    }

    /// Size of the hierarchical description: shapes in the library plus
    /// one record per placement — versus the flat count. The ratio is
    /// the modularity dividend at mask level.
    pub fn description_records(&self) -> usize {
        self.symbols.iter().map(|(_, s)| s.len()).sum::<usize>()
            + self.placements.len()
            + self.top_shapes.len()
    }
}

fn emit_boxes(out: &mut String, shapes: &[(Layer, Rect)]) {
    let mut current: Option<Layer> = None;
    for &(layer, rect) in shapes {
        if current != Some(layer) {
            out.push_str(&format!("L {};\n", layer.cif_name()));
            current = Some(layer);
        }
        let (length, width) = (2 * rect.width(), 2 * rect.height());
        let (cx, cy) = (rect.x0 + rect.x1, rect.y0 + rect.y1);
        out.push_str(&format!("B {length} {width} {cx} {cy};\n"));
    }
}

/// Emits the hierarchy as CIF 2.0 with one `DS` per symbol and `C`
/// calls with `T` transformations. Symbol numbers start at 2; symbol 1
/// is the top level.
pub fn emit_hier_cif(layout: &HierLayout) -> String {
    let mut out = String::new();
    for (i, (name, shapes)) in layout.symbols.iter().enumerate() {
        out.push_str(&format!("DS {} 1 1;\n9 {name};\n", i + 2));
        emit_boxes(&mut out, shapes);
        out.push_str("DF;\n");
    }
    out.push_str("DS 1 1 1;\n9 top;\n");
    emit_boxes(&mut out, &layout.top_shapes);
    for p in &layout.placements {
        out.push_str(&format!(
            "C {} T {} {};\n",
            p.symbol + 2,
            2 * p.dx,
            2 * p.dy
        ));
    }
    out.push_str("DF;\nC 1;\nE\n");
    out
}

/// Parses the subset emitted by [`emit_hier_cif`].
///
/// Returns `None` on malformed input.
pub fn parse_hier_cif(text: &str) -> Option<HierLayout> {
    let mut layout = HierLayout::new();
    let mut current_symbol: Option<usize> = None; // CIF number
    let mut layer: Option<Layer> = None;
    let mut names: Vec<(usize, String)> = Vec::new();
    let mut bodies: Vec<(usize, Vec<(Layer, Rect)>)> = Vec::new();
    let mut top_calls: Vec<Placement> = Vec::new();
    let mut top_shapes: Vec<(Layer, Rect)> = Vec::new();

    for raw in text.split(';') {
        let line = raw.trim();
        if line.is_empty() || line == "E" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("DS ") {
            let num: usize = rest.split_whitespace().next()?.parse().ok()?;
            current_symbol = Some(num);
            layer = None;
            if num != 1 {
                bodies.push((num, Vec::new()));
            }
        } else if line == "DF" {
            current_symbol = None;
        } else if let Some(rest) = line.strip_prefix("9 ") {
            if let Some(num) = current_symbol {
                if num != 1 {
                    names.push((num, rest.trim().to_string()));
                }
            }
        } else if let Some(rest) = line.strip_prefix("L ") {
            layer = Layer::from_cif_name(rest.trim());
            layer?;
        } else if let Some(rest) = line.strip_prefix("B ") {
            let nums: Vec<i64> = rest
                .split_whitespace()
                .map(|t| t.parse().ok())
                .collect::<Option<_>>()?;
            if nums.len() != 4 {
                return None;
            }
            let rect = Rect::new(
                (nums[2] - nums[0] / 2) / 2,
                (nums[3] - nums[1] / 2) / 2,
                (nums[2] + nums[0] / 2) / 2,
                (nums[3] + nums[1] / 2) / 2,
            );
            match current_symbol? {
                1 => top_shapes.push((layer?, rect)),
                _ => bodies.last_mut()?.1.push((layer?, rect)),
            }
        } else if let Some(rest) = line.strip_prefix("C ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() == 1 && toks[0] == "1" {
                continue; // top-level call at file end
            }
            if toks.len() != 4 || toks[1] != "T" {
                return None;
            }
            let num: usize = toks[0].parse().ok()?;
            let dx: i64 = toks[2].parse().ok()?;
            let dy: i64 = toks[3].parse().ok()?;
            top_calls.push(Placement {
                symbol: num - 2,
                dx: dx / 2,
                dy: dy / 2,
            });
        } else {
            return None;
        }
    }

    for (num, body) in bodies {
        let name = names
            .iter()
            .find(|(n, _)| *n == num)
            .map(|(_, s)| s.clone())
            .unwrap_or_default();
        layout.symbols.push((name, body));
    }
    layout.placements = top_calls;
    layout.top_shapes = top_shapes;
    Some(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{accumulator_cell, comparator_cell};
    use crate::drc::{check, DesignRules};

    fn prototype_hier() -> HierLayout {
        // The 8×2 prototype as a hierarchy: one comparator symbol, one
        // accumulator symbol, placed on the floorplan grid.
        let mut h = HierLayout::new();
        let cmp = h.define(&comparator_cell());
        let acc = h.define(&accumulator_cell());
        let pitch = 400;
        for v in 0..2i64 {
            for c in 0..8i64 {
                h.place(cmp, 20 + c * pitch, 60 + (2 - v) * 40);
            }
        }
        for c in 0..8i64 {
            h.place(acc, 20 + c * pitch, 20);
        }
        h.top_shapes.push((Layer::Metal, Rect::new(0, 0, 3300, 4)));
        h
    }

    #[test]
    fn hier_cif_roundtrips() {
        let h = prototype_hier();
        let text = emit_hier_cif(&h);
        let back = parse_hier_cif(&text).expect("own output parses");
        assert_eq!(back, h);
    }

    #[test]
    fn flatten_equals_manual_expansion() {
        let h = prototype_hier();
        let flat = h.flatten();
        // 16 comparators + 8 accumulators + 1 top shape.
        let per_cmp = comparator_cell().shapes().len();
        let per_acc = accumulator_cell().shapes().len();
        assert_eq!(flat.len(), 16 * per_cmp + 8 * per_acc + 1);
        // Round-tripped hierarchy flattens identically.
        let back = parse_hier_cif(&emit_hier_cif(&h)).unwrap();
        assert_eq!(back.flatten(), flat);
    }

    #[test]
    fn description_is_much_smaller_than_flat() {
        // The §2 modularity dividend, at mask level: the hierarchical
        // description of 24 placed cells is far smaller than the flat
        // one, and the gap grows with the array.
        let h = prototype_hier();
        let hier = h.description_records();
        let flat = h.flatten().len();
        assert!(hier * 3 < flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn flattened_hierarchy_is_drc_clean_when_spaced() {
        let h = prototype_hier();
        let violations = check(&h.flatten(), &DesignRules::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn parse_rejects_malformed_calls() {
        assert!(parse_hier_cif("C 2 R 1 0;").is_none());
        assert!(parse_hier_cif("DS 2 1 1; B 2 2 1;").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown symbol")]
    fn placing_unknown_symbol_panics() {
        let mut h = HierLayout::new();
        h.place(3, 0, 0);
    }
}
