//! Stick diagrams (paper §3.2.2, Plate 1).
//!
//! "The stick diagram shows the relative positions of all signal paths,
//! power connections, and components, but hides their absolute sizes
//! and positions." A [`StickDiagram`] is exactly that: coloured line
//! segments on a unit grid, contact dots, and implant marks. Crossings
//! of poly over diffusion *are* the transistors, so device counts and
//! simple electrical sanity checks fall out of the topology — which is
//! what makes the stick level a useful design station.

use crate::geom::Point;
use crate::layer::Layer;
use std::collections::HashSet;

/// A horizontal or vertical line segment on a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stick {
    /// Conduction layer (metal/poly/diffusion).
    pub layer: Layer,
    /// One end.
    pub a: Point,
    /// Other end (sticks are axis-aligned).
    pub b: Point,
}

impl Stick {
    /// Creates a stick.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not axis-aligned or is a point.
    pub fn new(layer: Layer, a: Point, b: Point) -> Self {
        assert!(
            (a.x == b.x) ^ (a.y == b.y),
            "sticks are axis-aligned, non-degenerate segments"
        );
        Stick { layer, a, b }
    }

    /// Whether this stick passes through the grid point `p`.
    pub fn passes_through(&self, p: Point) -> bool {
        let (lo_x, hi_x) = (self.a.x.min(self.b.x), self.a.x.max(self.b.x));
        let (lo_y, hi_y) = (self.a.y.min(self.b.y), self.a.y.max(self.b.y));
        (lo_x..=hi_x).contains(&p.x) && (lo_y..=hi_y).contains(&p.y)
    }

    /// Grid points covered by the stick.
    pub fn points(&self) -> Vec<Point> {
        let mut out = Vec::new();
        if self.a.x == self.b.x {
            let (lo, hi) = (self.a.y.min(self.b.y), self.a.y.max(self.b.y));
            for y in lo..=hi {
                out.push(Point::new(self.a.x, y));
            }
        } else {
            let (lo, hi) = (self.a.x.min(self.b.x), self.a.x.max(self.b.x));
            for x in lo..=hi {
                out.push(Point::new(x, self.a.y));
            }
        }
        out
    }
}

/// A complete stick diagram.
#[derive(Debug, Clone, Default)]
pub struct StickDiagram {
    /// Name of the cell being sketched.
    pub name: String,
    /// The coloured segments.
    pub sticks: Vec<Stick>,
    /// Contact cuts (the black dots) connecting the layers crossing at
    /// a point.
    pub contacts: Vec<Point>,
    /// Implant marks: a poly–diffusion crossing at one of these points
    /// is a depletion pullup.
    pub implants: Vec<Point>,
}

impl StickDiagram {
    /// Points where poly crosses diffusion — the transistor sites.
    pub fn transistor_sites(&self) -> Vec<Point> {
        let mut sites = HashSet::new();
        for p in self.layer_points(Layer::Poly) {
            if self.layer_covers(Layer::Diffusion, p) {
                sites.insert(p);
            }
        }
        let mut v: Vec<Point> = sites.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Transistor sites marked as depletion pullups.
    pub fn pullup_sites(&self) -> Vec<Point> {
        self.transistor_sites()
            .into_iter()
            .filter(|p| self.implants.contains(p))
            .collect()
    }

    /// Number of devices in the sketch.
    pub fn device_count(&self) -> usize {
        self.transistor_sites().len()
    }

    /// Points where two metal sticks cross — always a legal crossover
    /// in one-metal NMOS only if they are the *same* net; the checker
    /// reports them for review.
    pub fn metal_metal_crossings(&self) -> Vec<Point> {
        let metal: Vec<&Stick> = self
            .sticks
            .iter()
            .filter(|s| s.layer == Layer::Metal)
            .collect();
        let mut out = HashSet::new();
        for (i, s1) in metal.iter().enumerate() {
            for s2 in metal.iter().skip(i + 1) {
                // Perpendicular crossing test.
                if s1.a.x == s1.b.x && s2.a.y == s2.b.y {
                    let p = Point::new(s1.a.x, s2.a.y);
                    if s1.passes_through(p) && s2.passes_through(p) {
                        out.insert(p);
                    }
                } else if s1.a.y == s1.b.y && s2.a.x == s2.b.x {
                    let p = Point::new(s2.a.x, s1.a.y);
                    if s1.passes_through(p) && s2.passes_through(p) {
                        out.insert(p);
                    }
                }
            }
        }
        let mut v: Vec<Point> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    fn layer_points(&self, layer: Layer) -> Vec<Point> {
        self.sticks
            .iter()
            .filter(|s| s.layer == layer)
            .flat_map(|s| s.points())
            .collect()
    }

    fn layer_covers(&self, layer: Layer, p: Point) -> bool {
        self.sticks
            .iter()
            .any(|s| s.layer == layer && s.passes_through(p))
    }
}

/// The stick diagram of the positive comparator cell, encoding the
/// topology the paper describes for Plate 1:
///
/// * power and ground run horizontally across the cell in metal;
/// * the clock is poly along the top edge;
/// * the `p` and `s` data paths run horizontally, `d` runs downward in
///   diffusion;
/// * fifteen poly/diffusion crossings — three clocked pass transistors
///   and four gates' worth of pullups and pulldowns.
pub fn positive_comparator_sticks() -> StickDiagram {
    use Layer::{Diffusion, Metal, Poly};
    let p = Point::new;
    let mut d = StickDiagram {
        name: "comparator+".into(),
        ..Default::default()
    };

    // Power (y=10) and ground (y=0) rails in metal.
    d.sticks.push(Stick::new(Metal, p(0, 10), p(16, 10)));
    d.sticks.push(Stick::new(Metal, p(0, 0), p(16, 0)));
    // Clock in poly across the top edge (y=9), gating the three pass
    // transistors on short diffusion drops at x = 1, 5, 9. Gate legs
    // stop at y=8 so the clock crosses only the pass devices.
    d.sticks.push(Stick::new(Poly, p(0, 9), p(16, 9)));
    for x in [1, 5, 9] {
        d.sticks.push(Stick::new(Diffusion, p(x, 8), p(x, 10)));
    }
    // p and s inverters: pullup (implant) over the gate at y=6, input
    // gate at y=4, on a vertical diffusion leg.
    for x in [2, 6] {
        d.sticks.push(Stick::new(Diffusion, p(x, 0), p(x, 8)));
        d.sticks.push(Stick::new(Poly, p(x - 1, 6), p(x + 1, 6))); // pullup gate
        d.implants.push(p(x, 6));
        d.sticks.push(Stick::new(Poly, p(x - 1, 4), p(x + 1, 4)));
    }
    // XNOR complex gate: one pullup on the left leg plus two gate rows
    // crossing both legs (2 chains × 2 transistors).
    for x in [10, 11] {
        d.sticks.push(Stick::new(Diffusion, p(x, 0), p(x, 8)));
    }
    d.sticks.push(Stick::new(Poly, p(9, 7), p(10, 7))); // pullup gate
    d.implants.push(p(10, 7));
    d.sticks.push(Stick::new(Poly, p(9, 5), p(12, 5)));
    d.sticks.push(Stick::new(Poly, p(9, 3), p(12, 3)));
    // NAND: pullup + two series pulldowns on one leg.
    d.sticks.push(Stick::new(Diffusion, p(14, 0), p(14, 8)));
    d.sticks.push(Stick::new(Poly, p(13, 7), p(15, 7)));
    d.implants.push(p(14, 7));
    d.sticks.push(Stick::new(Poly, p(13, 5), p(15, 5)));
    d.sticks.push(Stick::new(Poly, p(13, 3), p(15, 3)));
    // p/s data paths across the cell in metal (y=2), crossing d.
    d.sticks.push(Stick::new(Metal, p(0, 2), p(16, 2)));
    // Contacts where the data path meets gate inputs.
    d.contacts.push(p(2, 2));
    d.contacts.push(p(6, 2));

    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stick_geometry() {
        let s = Stick::new(Layer::Metal, Point::new(0, 3), Point::new(5, 3));
        assert!(s.passes_through(Point::new(2, 3)));
        assert!(!s.passes_through(Point::new(2, 4)));
        assert_eq!(s.points().len(), 6);
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn diagonal_stick_panics() {
        let _ = Stick::new(Layer::Poly, Point::new(0, 0), Point::new(3, 3));
    }

    #[test]
    fn comparator_sticks_have_fifteen_transistors() {
        let d = positive_comparator_sticks();
        // 3 pass + 2×2 inverters + 5 XNOR + 3 NAND = 15 sites, matching
        // both Plate 1 and the pm-nmos netlist.
        assert_eq!(d.device_count(), 15);
    }

    #[test]
    fn comparator_has_four_pullups() {
        let d = positive_comparator_sticks();
        // One per gate: the two inverters, the XNOR and the NAND.
        assert_eq!(d.pullup_sites().len(), 4);
    }

    #[test]
    fn no_accidental_metal_crossings() {
        // One-layer metal cannot cross itself; the rails and the data
        // path are parallel.
        let d = positive_comparator_sticks();
        assert!(d.metal_metal_crossings().is_empty());
    }
}
