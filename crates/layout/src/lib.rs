//! # pm-layout — from sticks to masks (paper §3.2.2, Plates 1–2)
//!
//! The paper walks the comparator cell from circuit to *stick diagram*
//! (topology without dimensions) to *layout* (λ-dimensioned mask
//! geometry), and asserts that "in principle the layout can be designed
//! mechanically from the circuit and stick diagrams". This crate
//! implements that mechanical step:
//!
//! * [`geom`] / [`layer`] — λ-unit geometry and the silicon-gate NMOS
//!   mask layers (metal/poly/diffusion/implant/contact, the
//!   blue/red/green/yellow/black of the Mead–Conway colouring);
//! * [`sticks`] — the stick-diagram data model, with the positive
//!   comparator of Plate 1 encoded as the worked example;
//! * [`cell`] — λ-dimensioned cell layouts, synthesised mechanically
//!   from a device list in a gate-matrix style;
//! * [`drc`] — a design-rule checker for the Mead–Conway λ rules
//!   (minimum widths, spacings, contact coverage);
//! * [`cif`] — a flat Caltech Intermediate Form (CIF 2.0) emitter and
//!   parser, "the graphics language … that can be interpreted to make
//!   the masks", and [`hier`] — the hierarchical `DS`/`C` form that
//!   makes the mask description proportional to cell *types*;
//! * [`floorplan`] — assembly of the n-column chip with power, ground
//!   and clock routing, pads, area accounting and full-chip DRC
//!   (Plate 2; experiment E17's area-scaling law).

//! ```
//! use pm_layout::prelude::*;
//!
//! let chip = ChipFloorplan::new(8, 2); // the Plate 2 prototype
//! assert!(chip.drc(&DesignRules::default()).is_empty());
//! let cif = chip.to_cif();
//! assert!(parse_cif(&cif).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod cif;
pub mod drc;
pub mod floorplan;
pub mod geom;
pub mod hier;
pub mod layer;
pub mod render;
pub mod route;
pub mod sticks;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::cell::{synthesize_cell, CellLayout, DeviceSpec};
    pub use crate::cif::{emit_cif, parse_cif};
    pub use crate::drc::{DesignRules, DrcViolation};
    pub use crate::floorplan::ChipFloorplan;
    pub use crate::geom::{Point, Rect};
    pub use crate::hier::{emit_hier_cif, parse_hier_cif, HierLayout};
    pub use crate::layer::Layer;
    pub use crate::render::{render_cell, render_shapes, render_sticks};
    pub use crate::route::{l_route, route_with_via, straight_wire, via};
    pub use crate::sticks::{positive_comparator_sticks, StickDiagram};
}
