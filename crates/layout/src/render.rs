//! ASCII rendering of layouts — the poor designer's Plate 1.
//!
//! The paper's plates are colour photographs of stick diagrams and
//! dies; this module renders our layouts and sticks in the same
//! Mead–Conway colour code, one character per λ (or per grid unit),
//! so the `figures` binary can show actual geometry:
//!
//! | char | layer |
//! |---|---|
//! | `M` | metal (blue) |
//! | `P` | poly (red) |
//! | `D` | diffusion (green) |
//! | `T` | poly over diffusion — a transistor |
//! | `+` | implant (depletion device) over a transistor |
//! | `O` | contact cut |
//! | `G` | overglass opening (bond pad) |

use crate::cell::CellLayout;
use crate::geom::Rect;
use crate::layer::Layer;
use crate::sticks::StickDiagram;

/// Renders a flat shape list into a character grid clipped to `frame`.
pub fn render_shapes(shapes: &[(Layer, Rect)], frame: Rect) -> String {
    let w = frame.width() as usize;
    let h = frame.height() as usize;
    let mut grid = vec![vec![' '; w]; h];

    let mut paint = |layer: Layer, rect: &Rect| {
        for y in rect.y0.max(frame.y0)..rect.y1.min(frame.y1) {
            for x in rect.x0.max(frame.x0)..rect.x1.min(frame.x1) {
                let gx = (x - frame.x0) as usize;
                // Row 0 of the grid is the *top* of the layout.
                let gy = (frame.y1 - 1 - y) as usize;
                let cell = &mut grid[gy][gx];
                *cell = match (layer, *cell) {
                    (Layer::Contact, _) => 'O',
                    (_, 'O') => 'O',
                    (Layer::Poly, 'D') | (Layer::Diffusion, 'P') => 'T',
                    (Layer::Implant, 'T') => '+',
                    (Layer::Implant, other) => other, // implant alone is invisible
                    (Layer::Poly, _) => 'P',
                    (Layer::Diffusion, 'T') | (Layer::Diffusion, '+') => *cell,
                    (Layer::Metal, 'T')
                    | (Layer::Metal, '+')
                    | (Layer::Metal, 'P')
                    | (Layer::Metal, 'D') => *cell, // metal crosses with no interaction
                    (Layer::Metal, _) => 'M',
                    (Layer::Diffusion, _) => 'D',
                    (Layer::Overglass, ' ') => 'G',
                    (Layer::Overglass, other) => other,
                };
            }
        }
    };

    // Paint conductors bottom-up so transistor marks compose, then
    // implant, then contacts on top.
    for &(layer, rect) in shapes.iter().filter(|(l, _)| *l == Layer::Diffusion) {
        paint(layer, &rect);
    }
    for &(layer, rect) in shapes.iter().filter(|(l, _)| *l == Layer::Poly) {
        paint(layer, &rect);
    }
    for &(layer, rect) in shapes.iter().filter(|(l, _)| *l == Layer::Implant) {
        paint(layer, &rect);
    }
    for &(layer, rect) in shapes.iter().filter(|(l, _)| *l == Layer::Metal) {
        paint(layer, &rect);
    }
    for &(layer, rect) in shapes
        .iter()
        .filter(|(l, _)| matches!(*l, Layer::Contact | Layer::Overglass))
    {
        paint(layer, &rect);
    }

    let mut out = String::with_capacity((w + 1) * h);
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Renders a cell layout.
pub fn render_cell(cell: &CellLayout) -> String {
    render_shapes(cell.shapes(), Rect::new(0, 0, cell.width(), cell.height()))
}

/// Renders a stick diagram on its unit grid.
pub fn render_sticks(diagram: &StickDiagram) -> String {
    // Bounding box.
    let (mut x1, mut y1) = (0i64, 0i64);
    for s in &diagram.sticks {
        x1 = x1.max(s.a.x).max(s.b.x);
        y1 = y1.max(s.a.y).max(s.b.y);
    }
    let w = (x1 + 1) as usize;
    let h = (y1 + 1) as usize;
    let mut grid = vec![vec![' '; w]; h];
    let code = |layer: Layer| match layer {
        Layer::Metal => 'M',
        Layer::Poly => 'P',
        Layer::Diffusion => 'D',
        _ => '?',
    };
    // Diffusion first, then poly (marking crossings), then metal.
    for pass in [Layer::Diffusion, Layer::Poly, Layer::Metal] {
        for s in diagram.sticks.iter().filter(|s| s.layer == pass) {
            for p in s.points() {
                let cell = &mut grid[(y1 - p.y) as usize][p.x as usize];
                *cell = match (pass, *cell) {
                    (Layer::Poly, 'D') => 'T',
                    (Layer::Metal, 'T') | (Layer::Metal, '+') => *cell,
                    _ => code(pass),
                };
            }
        }
    }
    for p in &diagram.implants {
        let cell = &mut grid[(y1 - p.y) as usize][p.x as usize];
        if *cell == 'T' {
            *cell = '+';
        }
    }
    for p in &diagram.contacts {
        grid[(y1 - p.y) as usize][p.x as usize] = 'O';
    }
    let mut out = String::new();
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::comparator_cell;
    use crate::sticks::positive_comparator_sticks;

    #[test]
    fn cell_render_shows_rails_and_transistors() {
        let art = render_cell(&comparator_cell());
        let first_line = art.lines().next().unwrap();
        assert!(first_line.contains('M'), "Vdd rail on top:\n{art}");
        assert!(art.contains('T'), "transistors present:\n{art}");
        assert!(art.contains('+'), "depletion pullups present:\n{art}");
        assert!(art.contains('O'), "contacts present:\n{art}");
    }

    #[test]
    fn stick_render_marks_fifteen_transistor_sites() {
        let d = positive_comparator_sticks();
        let art = render_sticks(&d);
        let sites = art.chars().filter(|&c| c == 'T' || c == '+').count();
        assert_eq!(sites, 15, "{art}");
        assert_eq!(art.chars().filter(|&c| c == '+').count(), 4, "{art}");
    }

    #[test]
    fn render_dimensions_match_frame() {
        let cell = comparator_cell();
        let art = render_cell(&cell);
        assert_eq!(art.lines().count() as i64, cell.height());
        assert!(art.lines().all(|l| l.len() as i64 == cell.width()));
    }
}
