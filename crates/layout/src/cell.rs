//! λ-dimensioned cell layouts, synthesised mechanically.
//!
//! "In principle the layout can be designed mechanically from the
//! circuit and stick diagrams" (§3.2.2). [`synthesize_cell`] is that
//! mechanism, in a deliberately simple gate-matrix style: one device
//! per column between a `Vdd` rail on top and a ground rail below,
//! diffusion running vertically, poly gates crossing horizontally,
//! implant boxes marking depletion pullups. The result is correct by
//! construction against the λ rules of [`crate::drc`] — which the
//! tests verify rather than assume.

use crate::drc::{check, DesignRules, DrcViolation};
use crate::geom::Rect;
use crate::layer::Layer;

/// The kind of one device in a cell's device list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSpec {
    /// Depletion-mode pullup (implant over the gate).
    Pullup,
    /// Enhancement-mode pulldown transistor.
    Enhancement,
    /// Pass transistor (clock-gated storage access).
    Pass,
}

/// A port of a cell: a named position where a signal enters or leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Signal name.
    pub name: String,
    /// Layer the port is on.
    pub layer: Layer,
    /// Port geometry.
    pub rect: Rect,
}

/// A finished cell layout: shapes on mask layers plus ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellLayout {
    name: String,
    shapes: Vec<(Layer, Rect)>,
    ports: Vec<Port>,
    width: i64,
    height: i64,
}

/// Column pitch of the gate-matrix generator, in λ.
const PITCH: i64 = 10;
/// Cell height in λ.
const HEIGHT: i64 = 26;
/// Metal rail thickness in λ.
const RAIL: i64 = 4;

impl CellLayout {
    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shapes, flat.
    pub fn shapes(&self) -> &[(Layer, Rect)] {
        &self.shapes
    }

    /// The ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Cell width in λ.
    pub fn width(&self) -> i64 {
        self.width
    }

    /// Cell height in λ.
    pub fn height(&self) -> i64 {
        self.height
    }

    /// Cell area in λ².
    pub fn area(&self) -> i64 {
        self.width * self.height
    }

    /// Number of devices (columns) in the cell.
    pub fn device_count(&self) -> usize {
        self.shapes
            .iter()
            .filter(|(l, r)| *l == Layer::Poly && r.height() == 2)
            .count()
    }

    /// Runs the design-rule checker over this cell.
    pub fn drc(&self, rules: &DesignRules) -> Vec<DrcViolation> {
        check(&self.shapes, rules)
    }

    /// A copy of all shapes translated by `(dx, dy)` — used when
    /// flattening cells into a chip floorplan.
    pub fn shapes_at(&self, dx: i64, dy: i64) -> Vec<(Layer, Rect)> {
        self.shapes
            .iter()
            .map(|&(l, r)| (l, r.translated(dx, dy)))
            .collect()
    }
}

/// Synthesises a cell from its device list.
///
/// # Panics
///
/// Panics on an empty device list.
pub fn synthesize_cell(name: &str, devices: &[DeviceSpec]) -> CellLayout {
    assert!(!devices.is_empty(), "a cell needs at least one device");
    let width = 4 + PITCH * devices.len() as i64;
    let mut shapes: Vec<(Layer, Rect)> = Vec::new();
    let mut ports = Vec::new();

    // Power rails.
    let vdd = Rect::new(0, HEIGHT - RAIL, width, HEIGHT);
    let gnd = Rect::new(0, 0, width, RAIL);
    shapes.push((Layer::Metal, vdd));
    shapes.push((Layer::Metal, gnd));
    ports.push(Port {
        name: "vdd".into(),
        layer: Layer::Metal,
        rect: vdd,
    });
    ports.push(Port {
        name: "gnd".into(),
        layer: Layer::Metal,
        rect: gnd,
    });

    for (i, &dev) in devices.iter().enumerate() {
        let x = 4 + PITCH * i as i64;

        // Vertical diffusion strip spanning the cell.
        shapes.push((Layer::Diffusion, Rect::new(x, 0, x + 2, HEIGHT)));
        // Contact pads to both rails.
        shapes.push((
            Layer::Diffusion,
            Rect::new(x - 1, HEIGHT - RAIL, x + 3, HEIGHT),
        ));
        shapes.push((Layer::Diffusion, Rect::new(x - 1, 0, x + 3, RAIL)));
        shapes.push((Layer::Contact, Rect::new(x, HEIGHT - 3, x + 2, HEIGHT - 1)));
        shapes.push((Layer::Contact, Rect::new(x, 1, x + 2, 3)));

        // The gate: poly crossing the diffusion at mid-height.
        let ym = HEIGHT / 2 - 1;
        let gate = Rect::new(x - 3, ym, x + 5, ym + 2);
        shapes.push((Layer::Poly, gate));
        let port_name = match dev {
            DeviceSpec::Pass => format!("clk{i}"),
            _ => format!("g{i}"),
        };
        ports.push(Port {
            name: port_name,
            layer: Layer::Poly,
            rect: gate,
        });

        // Depletion devices get an implant box over the gate region.
        if dev == DeviceSpec::Pullup {
            shapes.push((Layer::Implant, Rect::new(x - 2, ym - 2, x + 4, ym + 4)));
        }
    }

    CellLayout {
        name: name.into(),
        shapes,
        ports,
        width,
        height: HEIGHT,
    }
}

/// The device list of the one-bit comparator (Figure 3-6 / Plate 1):
/// three pass transistors, four gates (two inverters, an XNOR, a NAND).
pub fn comparator_devices() -> Vec<DeviceSpec> {
    use DeviceSpec::*;
    let mut d = vec![Pass, Pass, Pass];
    // pq, sq inverters: pullup + pulldown each.
    d.extend([Pullup, Enhancement, Pullup, Enhancement]);
    // XNOR complex gate: pullup + 4 chain transistors.
    d.extend([Pullup, Enhancement, Enhancement, Enhancement, Enhancement]);
    // NAND: pullup + 2 chain transistors.
    d.extend([Pullup, Enhancement, Enhancement]);
    d
}

/// The comparator cell layout (15 devices, matching
/// `pm_nmos::cells::ComparatorCell::device_count`).
pub fn comparator_cell() -> CellLayout {
    synthesize_cell("comparator", &comparator_devices())
}

/// The device list of the accumulator cell: seven pass transistors
/// (four input latches, the two-phase t register, the r output
/// register), eight inverters, a NOR and two AOI complex gates —
/// 36 devices, matching the `pm-nmos` netlist for the positive twin.
pub fn accumulator_devices() -> Vec<DeviceSpec> {
    use DeviceSpec::*;
    let mut d = vec![Pass; 7];
    // Eight inverters.
    for _ in 0..8 {
        d.extend([Pullup, Enhancement]);
    }
    // m̄ complex gate (2 chains of 2).
    d.extend([Pullup, Enhancement, Enhancement, Enhancement, Enhancement]);
    // t_next NOR (2 parallel pulldowns).
    d.extend([Pullup, Enhancement, Enhancement]);
    // r-select AOI (2 chains of 2).
    d.extend([Pullup, Enhancement, Enhancement, Enhancement, Enhancement]);
    d
}

/// The accumulator cell layout.
pub fn accumulator_cell() -> CellLayout {
    synthesize_cell("accumulator", &accumulator_devices())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesised_cells_are_drc_clean() {
        let rules = DesignRules::default();
        for cell in [comparator_cell(), accumulator_cell()] {
            let violations = cell.drc(&rules);
            assert!(violations.is_empty(), "{}: {:?}", cell.name(), violations);
        }
    }

    #[test]
    fn comparator_has_fifteen_devices() {
        let cell = comparator_cell();
        assert_eq!(cell.device_count(), 15);
        assert_eq!(comparator_devices().len(), 15);
    }

    #[test]
    fn accumulator_has_thirty_six_devices() {
        let cell = accumulator_cell();
        assert_eq!(cell.device_count(), 36);
    }

    #[test]
    fn cell_dimensions_scale_with_devices() {
        let small = synthesize_cell("s", &[DeviceSpec::Enhancement]);
        let big = synthesize_cell("b", &[DeviceSpec::Enhancement; 10]);
        assert_eq!(big.height(), small.height());
        assert!(big.width() > small.width());
        assert_eq!(big.width() - small.width(), 9 * 10);
    }

    #[test]
    fn ports_include_rails_and_gates() {
        let cell = synthesize_cell("t", &[DeviceSpec::Pass, DeviceSpec::Pullup]);
        let names: Vec<&str> = cell.ports().iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"vdd"));
        assert!(names.contains(&"gnd"));
        assert!(names.contains(&"clk0"));
        assert!(names.contains(&"g1"));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cell_panics() {
        let _ = synthesize_cell("empty", &[]);
    }

    #[test]
    fn translation_preserves_shape_count() {
        let cell = comparator_cell();
        assert_eq!(cell.shapes_at(100, 50).len(), cell.shapes().len());
    }
}
