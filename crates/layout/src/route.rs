//! Inter-cell routing (the "Cell Boundary Layouts" station of §4).
//!
//! "The topology of the communication paths and dataflow control is
//! known from the communication sticks. Wire lengths and spacings can
//! be chosen, as can distances between cells." This module chooses
//! them: straight and L-shaped wires of legal width, with contact cuts
//! (plus the mandated conductor overlap) wherever a route changes
//! layers. Every helper produces geometry the DRC accepts — checked in
//! the tests, not assumed.

use crate::drc::DesignRules;
use crate::geom::{Point, Rect};
use crate::layer::Layer;

/// Minimum legal wire width on `layer` under `rules`.
pub fn wire_width(layer: Layer, rules: &DesignRules) -> i64 {
    rules.min_width(layer).unwrap_or(rules.contact_size)
}

/// A straight wire of legal width whose centreline runs from `a` to `b`
/// (which must share an x or y coordinate).
///
/// # Panics
///
/// Panics if the points are not axis-aligned or coincide.
pub fn straight_wire(layer: Layer, a: Point, b: Point, rules: &DesignRules) -> (Layer, Rect) {
    assert!(
        (a.x == b.x) ^ (a.y == b.y),
        "wires are axis-aligned, non-degenerate"
    );
    let w = wire_width(layer, rules);
    let half = w / 2;
    let rect = if a.x == b.x {
        let (lo, hi) = (a.y.min(b.y), a.y.max(b.y));
        Rect::new(a.x - half, lo - half, a.x - half + w, hi - half + w)
    } else {
        let (lo, hi) = (a.x.min(b.x), a.x.max(b.x));
        Rect::new(lo - half, a.y - half, hi - half + w, a.y - half + w)
    };
    (layer, rect)
}

/// An L-shaped route from `a` to `b` on one layer: horizontal first,
/// then vertical. Straight routes degenerate to one rectangle.
pub fn l_route(layer: Layer, a: Point, b: Point, rules: &DesignRules) -> Vec<(Layer, Rect)> {
    if a.x == b.x || a.y == b.y {
        if a == b {
            return Vec::new();
        }
        return vec![straight_wire(layer, a, b, rules)];
    }
    let corner = Point::new(b.x, a.y);
    vec![
        straight_wire(layer, a, corner, rules),
        straight_wire(layer, corner, b, rules),
    ]
}

/// A layer-change via at `at`: a contact cut with both conductors
/// padded to the mandated overlap.
pub fn via(from: Layer, to: Layer, at: Point, rules: &DesignRules) -> Vec<(Layer, Rect)> {
    let c = rules.contact_size;
    let cut = Rect::new(
        at.x - c / 2,
        at.y - c / 2,
        at.x - c / 2 + c,
        at.y - c / 2 + c,
    );
    let pad = cut.inflated(rules.contact_overlap);
    // Pads must also satisfy the conductors' width rules.
    let mut shapes = Vec::new();
    for layer in [from, to] {
        let need = wire_width(layer, rules).max(pad.width());
        let grow = (need - pad.width()) / 2;
        shapes.push((layer, pad.inflated(grow)));
    }
    shapes.push((Layer::Contact, cut));
    shapes
}

/// Routes between two points changing layers at the destination: an
/// L-route on `from`, then a via to `to`.
pub fn route_with_via(
    from: Layer,
    to: Layer,
    a: Point,
    b: Point,
    rules: &DesignRules,
) -> Vec<(Layer, Rect)> {
    let mut shapes = l_route(from, a, b, rules);
    shapes.extend(via(from, to, b, rules));
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc::check;

    fn rules() -> DesignRules {
        DesignRules::default()
    }

    #[test]
    fn straight_wires_are_legal_width() {
        let r = rules();
        for layer in [Layer::Metal, Layer::Poly, Layer::Diffusion] {
            let (l, rect) = straight_wire(layer, Point::new(10, 10), Point::new(40, 10), &r);
            assert_eq!(l, layer);
            assert!(rect.min_dimension() >= r.min_width(layer).unwrap());
            assert!(check(&[(l, rect)], &r).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn diagonal_wire_panics() {
        let _ = straight_wire(Layer::Metal, Point::new(0, 0), Point::new(5, 5), &rules());
    }

    #[test]
    fn l_route_is_connected_and_clean() {
        let r = rules();
        let shapes = l_route(Layer::Metal, Point::new(0, 0), Point::new(30, 20), &r);
        assert_eq!(shapes.len(), 2);
        assert!(
            shapes[0].1.touches(&shapes[1].1),
            "legs must meet at the corner"
        );
        assert!(check(&shapes, &r).is_empty(), "{shapes:?}");
    }

    #[test]
    fn degenerate_l_route() {
        let r = rules();
        assert!(l_route(Layer::Poly, Point::new(3, 3), Point::new(3, 3), &r).is_empty());
        assert_eq!(
            l_route(Layer::Poly, Point::new(0, 0), Point::new(0, 9), &r).len(),
            1
        );
    }

    #[test]
    fn via_passes_contact_rules() {
        let r = rules();
        let shapes = via(Layer::Metal, Layer::Poly, Point::new(50, 50), &r);
        assert!(check(&shapes, &r).is_empty(), "{shapes:?}");
        assert!(shapes.iter().any(|(l, _)| *l == Layer::Contact));
    }

    #[test]
    fn routed_via_is_clean_end_to_end() {
        let r = rules();
        let shapes = route_with_via(
            Layer::Metal,
            Layer::Poly,
            Point::new(0, 0),
            Point::new(40, 24),
            &r,
        );
        assert!(check(&shapes, &r).is_empty(), "{shapes:?}");
    }

    #[test]
    fn parallel_routes_respect_spacing() {
        // Two parallel metal wires at the minimum legal pitch.
        let r = rules();
        let w = wire_width(Layer::Metal, &r);
        let pitch = w + r.metal_space;
        let a = straight_wire(Layer::Metal, Point::new(0, 10), Point::new(50, 10), &r);
        let b = straight_wire(
            Layer::Metal,
            Point::new(0, 10 + pitch),
            Point::new(50, 10 + pitch),
            &r,
        );
        assert!(check(&[a, b], &r).is_empty());
        // One λ closer: violation.
        let too_close = straight_wire(
            Layer::Metal,
            Point::new(0, 10 + pitch - 1),
            Point::new(50, 10 + pitch - 1),
            &r,
        );
        assert!(!check(&[a, too_close], &r).is_empty());
    }
}
