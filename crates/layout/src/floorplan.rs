//! Chip floorplan assembly (Plate 2; experiment E17).
//!
//! "When the layouts for all cells are complete, they are assembled
//! into a working array with the inputs and outputs hooked to contact
//! pads" (§3.2.2). The floorplan tiles the comparator rows over the
//! accumulator row, runs power/ground spines and the two clock lines
//! vertically beside the array, and rings the die with bonding pads.
//! Area therefore grows linearly in the column count — the modularity
//! dividend the paper's design philosophy promises.

use crate::cell::{accumulator_cell, comparator_cell};
use crate::cif::{emit_cif, CifSymbol};
use crate::drc::{check, DesignRules, DrcViolation};
use crate::geom::Rect;
use crate::layer::Layer;

/// Gap between tiled cells, in λ (routing channel).
const CHANNEL: i64 = 6;
/// Pad size, in λ.
const PAD: i64 = 40;
/// Margin between the cell array and the pad ring, in λ.
const MARGIN: i64 = 20;

/// A generated chip floorplan.
#[derive(Debug, Clone)]
pub struct ChipFloorplan {
    columns: usize,
    bits: u32,
    shapes: Vec<(Layer, Rect)>,
    die: Rect,
    pads: usize,
}

impl ChipFloorplan {
    /// Tiles a chip with `columns` character cells for a `bits`-bit
    /// alphabet: `bits` comparator rows over one accumulator row.
    /// The fabricated prototype is `ChipFloorplan::new(8, 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `columns` or `bits` is zero.
    pub fn new(columns: usize, bits: u32) -> Self {
        assert!(columns > 0 && bits > 0, "floorplan needs cells");
        let comparator = comparator_cell();
        let accumulator = accumulator_cell();
        let cell_w = comparator.width().max(accumulator.width()) + CHANNEL;
        let row_h = comparator.height() + CHANNEL;

        let mut shapes: Vec<(Layer, Rect)> = Vec::new();
        // Comparator rows (top) then the accumulator row.
        for v in 0..bits as i64 {
            let y = MARGIN + (bits as i64 - v) * row_h;
            for c in 0..columns as i64 {
                shapes.extend(comparator.shapes_at(MARGIN + c * cell_w, y));
            }
        }
        for c in 0..columns as i64 {
            shapes.extend(accumulator.shapes_at(MARGIN + c * cell_w, MARGIN));
        }

        let array_w = cell_w * columns as i64;
        let array_h = row_h * (bits as i64 + 1);

        // Inter-row communication channels: one vertical poly connector
        // per column in each routing channel — the `d` path dropping
        // from comparator row to comparator row and into the
        // accumulator (the "cell boundary layouts" wiring of §4).
        let cell_h = comparator.height();
        for level in 0..=bits as i64 {
            let y0 = MARGIN + level * row_h + cell_h;
            let y1 = MARGIN + (level + 1) * row_h;
            if y1 <= y0 {
                continue;
            }
            for c in 0..columns as i64 {
                let x = MARGIN + c * cell_w + 4;
                shapes.push((Layer::Poly, Rect::new(x, y0, x + 2, y1)));
            }
        }

        // Power and clock spines along the right edge of the array.
        let spine_x = MARGIN + array_w + CHANNEL;
        for (i, layer) in [Layer::Metal, Layer::Metal, Layer::Poly, Layer::Poly]
            .into_iter()
            .enumerate()
        {
            let x = spine_x + (i as i64) * 6;
            shapes.push((layer, Rect::new(x, MARGIN, x + 3, MARGIN + array_h)));
        }

        // Bonding pads across the top edge: pattern/text bits, λ, x,
        // result in/out, clocks, power — same accounting as
        // `pm_chip::pins::PinBudget`.
        let pads = (4 * bits as usize + 6) + 4;
        let die_w =
            (MARGIN + array_w + CHANNEL + 24 + MARGIN).max(pads as i64 * (PAD + CHANNEL) + MARGIN);
        for p in 0..pads as i64 {
            let x = MARGIN + p * (PAD + CHANNEL);
            let y = MARGIN + array_h + MARGIN;
            shapes.push((Layer::Metal, Rect::new(x, y, x + PAD, y + PAD)));
            shapes.push((
                Layer::Overglass,
                Rect::new(x + 4, y + 4, x + PAD - 4, y + PAD - 4),
            ));
        }

        let die = Rect::new(0, 0, die_w, MARGIN + array_h + MARGIN + PAD + MARGIN);
        ChipFloorplan {
            columns,
            bits,
            shapes,
            die,
            pads,
        }
    }

    /// Column count.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Alphabet width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Bonding pad count.
    pub fn pads(&self) -> usize {
        self.pads
    }

    /// Die outline.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Die area in λ².
    pub fn area(&self) -> i64 {
        self.die.area()
    }

    /// Every mask shape, flattened.
    pub fn shapes(&self) -> &[(Layer, Rect)] {
        &self.shapes
    }

    /// Full-chip design-rule check.
    pub fn drc(&self, rules: &DesignRules) -> Vec<DrcViolation> {
        check(&self.shapes, rules)
    }

    /// The whole chip as CIF text.
    pub fn to_cif(&self) -> String {
        emit_cif(&CifSymbol {
            name: format!("pattern-matcher-{}x{}", self.columns, self.bits),
            shapes: self.shapes.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_floorplan_is_drc_clean() {
        let chip = ChipFloorplan::new(8, 2);
        let violations = chip.drc(&DesignRules::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn area_grows_linearly_in_columns() {
        // Once the pad ring stops dominating, the increment per column
        // is constant (E17).
        let a16 = ChipFloorplan::new(16, 2).area();
        let a24 = ChipFloorplan::new(24, 2).area();
        let a32 = ChipFloorplan::new(32, 2).area();
        assert_eq!(a24 - a16, a32 - a24, "{a16} {a24} {a32}");
        assert!(a24 > a16);
    }

    #[test]
    fn pad_count_matches_pin_budget() {
        // 2-bit chip: 14 signal + 4 infra = 18 pads.
        assert_eq!(ChipFloorplan::new(8, 2).pads(), 18);
        assert_eq!(ChipFloorplan::new(8, 8).pads(), 42);
    }

    #[test]
    fn cif_export_is_parseable() {
        let chip = ChipFloorplan::new(2, 2);
        let cif = chip.to_cif();
        let parsed = crate::cif::parse_cif(&cif).expect("generated CIF parses");
        assert_eq!(parsed.shapes.len(), chip.shapes().len());
    }

    #[test]
    fn more_bit_rows_make_a_taller_chip() {
        let two = ChipFloorplan::new(8, 2);
        let eight = ChipFloorplan::new(8, 8);
        assert!(eight.die().height() > two.die().height());
    }
}
