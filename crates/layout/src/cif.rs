//! Caltech Intermediate Form emission and parsing.
//!
//! "Layouts are described using a graphics language (such as Caltech
//! Intermediate Form …) that can be interpreted to make the masks"
//! (§3.2.2). We emit the classic CIF 2.0 subset — `DS`/`DF` symbol
//! definitions, `L` layer selection, `B` boxes, `C` calls, `E` — and
//! parse it back for round-trip testing. Dimensions are λ scaled by
//! the conventional factor of 100 (centimicrons at λ = 1 µm... the
//! scale is arbitrary; CIF carries its own `DS` scaling).

use crate::geom::Rect;
use crate::layer::Layer;

/// A named symbol: a flat list of boxes per layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CifSymbol {
    /// Symbol name (CIF `9` user text records carry it).
    pub name: String,
    /// Boxes on their layers.
    pub shapes: Vec<(Layer, Rect)>,
}

/// Emits one symbol as CIF 2.0 text.
pub fn emit_cif(symbol: &CifSymbol) -> String {
    let mut out = String::new();
    out.push_str("DS 1 1 1;\n");
    out.push_str(&format!("9 {};\n", symbol.name));
    let mut current: Option<Layer> = None;
    for &(layer, rect) in &symbol.shapes {
        if current != Some(layer) {
            out.push_str(&format!("L {};\n", layer.cif_name()));
            current = Some(layer);
        }
        // B length width xcenter ycenter — CIF uses centres, doubled to
        // stay integral for odd dimensions.
        let length = 2 * rect.width();
        let width = 2 * rect.height();
        let cx = rect.x0 + rect.x1;
        let cy = rect.y0 + rect.y1;
        out.push_str(&format!("B {length} {width} {cx} {cy};\n"));
    }
    out.push_str("DF;\nC 1;\nE\n");
    out
}

/// Parses the subset of CIF that [`emit_cif`] produces.
///
/// Returns `None` on malformed input (unknown layer, bad numbers,
/// boxes before any `L` command).
pub fn parse_cif(text: &str) -> Option<CifSymbol> {
    let mut name = String::new();
    let mut shapes = Vec::new();
    let mut layer: Option<Layer> = None;
    for raw in text.split(';') {
        let line = raw.trim();
        if line.is_empty() || line == "E" || line.starts_with("DS") || line == "DF" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("9 ") {
            name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("L ") {
            layer = Layer::from_cif_name(rest.trim());
            layer?;
        } else if let Some(rest) = line.strip_prefix("B ") {
            let nums: Vec<i64> = rest
                .split_whitespace()
                .map(|t| t.parse().ok())
                .collect::<Option<Vec<i64>>>()?;
            if nums.len() != 4 {
                return None;
            }
            let (length, width, cx, cy) = (nums[0], nums[1], nums[2], nums[3]);
            let rect = Rect::new(
                (cx - length / 2) / 2,
                (cy - width / 2) / 2,
                (cx + length / 2) / 2,
                (cy + width / 2) / 2,
            );
            shapes.push((layer?, rect));
        } else if line.starts_with("C ") || line == "E" {
            continue;
        } else {
            return None;
        }
    }
    Some(CifSymbol { name, shapes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::comparator_cell;

    #[test]
    fn roundtrip_comparator_cell() {
        let cell = comparator_cell();
        let symbol = CifSymbol {
            name: cell.name().to_string(),
            shapes: cell.shapes().to_vec(),
        };
        let text = emit_cif(&symbol);
        let back = parse_cif(&text).expect("own output must parse");
        assert_eq!(back, symbol);
    }

    #[test]
    fn emitted_cif_structure() {
        let symbol = CifSymbol {
            name: "demo".into(),
            shapes: vec![
                (Layer::Metal, Rect::new(0, 0, 4, 3)),
                (Layer::Metal, Rect::new(0, 6, 4, 9)),
                (Layer::Poly, Rect::new(0, 12, 2, 14)),
            ],
        };
        let text = emit_cif(&symbol);
        assert!(text.starts_with("DS 1 1 1;"));
        assert!(text.contains("L NM;"));
        assert!(text.contains("L NP;"));
        // The layer command is not repeated for consecutive same-layer
        // boxes.
        assert_eq!(text.matches("L NM;").count(), 1);
        assert!(text.trim_end().ends_with('E'));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_cif("L XX; B 1 1 0 0;").is_none());
        assert!(parse_cif("B 2 2 1 1;").is_none(), "box before layer");
        assert!(parse_cif("L NM; B 2 nope 1 1;").is_none());
        assert!(parse_cif("HELLO;").is_none());
    }

    #[test]
    fn box_centre_encoding_handles_odd_sizes() {
        let symbol = CifSymbol {
            name: "odd".into(),
            shapes: vec![(Layer::Metal, Rect::new(1, 2, 4, 9))],
        };
        let back = parse_cif(&emit_cif(&symbol)).unwrap();
        assert_eq!(back.shapes, symbol.shapes);
    }
}
