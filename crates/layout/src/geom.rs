//! Integer geometry in λ units.
//!
//! Mead–Conway design rules are expressed in a scalable unit λ (half
//! the minimum feature size); all coordinates here are integer λ.

use std::fmt;

/// A point in λ units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i64,
    /// Vertical coordinate.
    pub y: i64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)` in λ units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge.
    pub x0: i64,
    /// Bottom edge.
    pub y0: i64,
    /// Right edge (exclusive).
    pub x1: i64,
    /// Top edge (exclusive).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle from corners (normalising order).
    ///
    /// # Panics
    ///
    /// Panics if the rectangle would be degenerate (zero width or
    /// height).
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        let (x0, x1) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        let (y0, y1) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        assert!(x0 < x1 && y0 < y1, "degenerate rectangle");
        Rect { x0, y0, x1, y1 }
    }

    /// A rectangle from origin and size.
    pub fn with_size(x: i64, y: i64, w: i64, h: i64) -> Self {
        Rect::new(x, y, x + w, y + h)
    }

    /// Width in λ.
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height in λ.
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Area in λ².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// The smaller of width and height (the "drawn width" checked by
    /// minimum-width rules).
    pub fn min_dimension(&self) -> i64 {
        self.width().min(self.height())
    }

    /// Whether two rectangles share any interior area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Whether two rectangles overlap or share an edge/corner.
    pub fn touches(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && self.y0 <= other.y0 && self.x1 >= other.x1 && self.y1 >= other.y1
    }

    /// Conservative (Chebyshev) separation between two disjoint
    /// rectangles; 0 if they touch or overlap.
    pub fn separation(&self, other: &Rect) -> i64 {
        let gap_x = (other.x0 - self.x1).max(self.x0 - other.x1).max(0);
        let gap_y = (other.y0 - self.y1).max(self.y0 - other.y1).max(0);
        gap_x.max(gap_y)
    }

    /// Translates by `(dx, dy)`.
    pub fn translated(&self, dx: i64, dy: i64) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Grows by `m` on every side.
    pub fn inflated(&self, m: i64) -> Rect {
        Rect::new(self.x0 - m, self.y0 - m, self.x1 + m, self.y1 + m)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{},{} {}x{}]",
            self.x0,
            self.y0,
            self.width(),
            self.height()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalises_corners() {
        let r = Rect::new(5, 7, 1, 2);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (1, 2, 5, 7));
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.min_dimension(), 4);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_width_panics() {
        let _ = Rect::new(0, 0, 0, 5);
    }

    #[test]
    fn overlap_and_touch() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(4, 0, 8, 4); // shares an edge
        let c = Rect::new(5, 5, 8, 8); // disjoint
        assert!(!a.overlaps(&b));
        assert!(a.touches(&b));
        assert!(!a.touches(&c));
        assert!(a.overlaps(&Rect::new(2, 2, 6, 6)));
    }

    #[test]
    fn separation_is_chebyshev() {
        let a = Rect::new(0, 0, 2, 2);
        assert_eq!(a.separation(&Rect::new(5, 0, 7, 2)), 3); // horizontal gap
        assert_eq!(a.separation(&Rect::new(0, 6, 2, 8)), 4); // vertical gap
        assert_eq!(a.separation(&Rect::new(4, 4, 6, 6)), 2); // diagonal
        assert_eq!(a.separation(&Rect::new(2, 0, 4, 2)), 0); // touching
        assert_eq!(a.separation(&Rect::new(1, 1, 3, 3)), 0); // overlapping
    }

    #[test]
    fn contains_and_transform() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(a.contains(&Rect::new(2, 2, 8, 8)));
        assert!(!a.contains(&Rect::new(2, 2, 12, 8)));
        assert_eq!(a.translated(5, -5), Rect::new(5, -5, 15, 5));
        assert_eq!(Rect::new(2, 2, 4, 4).inflated(1), Rect::new(1, 1, 5, 5));
    }
}
