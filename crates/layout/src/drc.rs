//! Design-rule checking against the Mead–Conway λ rules.
//!
//! "Designing a layout involves choosing electrical parameters for all
//! transistors, as well as following minimum spacing rules for the
//! intended fabrication process" (§3.2.2). The checker enforces the
//! classic subset:
//!
//! | rule | λ |
//! |---|---|
//! | diffusion width / spacing | 2 / 3 |
//! | poly width / spacing | 2 / 2 |
//! | metal width / spacing | 3 / 3 |
//! | contact size (exactly) | 2×2 |
//! | conductor overlap of a contact | 1 on every side |
//!
//! Spacing uses a conservative Chebyshev separation; rectangles that
//! touch are considered one shape and exempt from same-layer spacing.

use crate::geom::Rect;
use crate::layer::Layer;
use std::fmt;

/// Minimum widths and spacings in λ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignRules {
    /// Minimum drawn width of diffusion.
    pub diffusion_width: i64,
    /// Minimum diffusion-to-diffusion spacing.
    pub diffusion_space: i64,
    /// Minimum drawn width of poly.
    pub poly_width: i64,
    /// Minimum poly-to-poly spacing.
    pub poly_space: i64,
    /// Minimum drawn width of metal.
    pub metal_width: i64,
    /// Minimum metal-to-metal spacing.
    pub metal_space: i64,
    /// Contact cuts must be exactly this size square.
    pub contact_size: i64,
    /// Conductors must extend this far beyond a contact cut.
    pub contact_overlap: i64,
}

impl Default for DesignRules {
    /// The Mead–Conway textbook values.
    fn default() -> Self {
        DesignRules {
            diffusion_width: 2,
            diffusion_space: 3,
            poly_width: 2,
            poly_space: 2,
            metal_width: 3,
            metal_space: 3,
            contact_size: 2,
            contact_overlap: 1,
        }
    }
}

impl DesignRules {
    /// The width rule for a conductor layer, if any.
    pub fn min_width(&self, layer: Layer) -> Option<i64> {
        match layer {
            Layer::Diffusion => Some(self.diffusion_width),
            Layer::Poly => Some(self.poly_width),
            Layer::Metal => Some(self.metal_width),
            _ => None,
        }
    }

    /// The same-layer spacing rule for a conductor layer, if any.
    pub fn min_space(&self, layer: Layer) -> Option<i64> {
        match layer {
            Layer::Diffusion => Some(self.diffusion_space),
            Layer::Poly => Some(self.poly_space),
            Layer::Metal => Some(self.metal_space),
            _ => None,
        }
    }
}

/// One rule violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrcViolation {
    /// A shape is narrower than the layer's minimum width.
    TooNarrow {
        /// Offending layer.
        layer: Layer,
        /// Offending shape.
        rect: Rect,
        /// Required minimum width.
        min: i64,
    },
    /// Two disjoint shapes on one layer are closer than allowed.
    TooClose {
        /// Offending layer.
        layer: Layer,
        /// First shape.
        a: Rect,
        /// Second shape.
        b: Rect,
        /// Required minimum spacing.
        min: i64,
        /// Observed separation.
        got: i64,
    },
    /// A contact cut is not the mandated square size.
    BadContactSize {
        /// Offending cut.
        rect: Rect,
        /// Required side length.
        required: i64,
    },
    /// A contact cut lacks conductor coverage.
    UncoveredContact {
        /// Offending cut.
        rect: Rect,
    },
}

impl fmt::Display for DrcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrcViolation::TooNarrow { layer, rect, min } => {
                write!(f, "{layer} shape {rect} narrower than {min}λ")
            }
            DrcViolation::TooClose {
                layer,
                a,
                b,
                min,
                got,
            } => {
                write!(
                    f,
                    "{layer} shapes {a} and {b} only {got}λ apart (min {min}λ)"
                )
            }
            DrcViolation::BadContactSize { rect, required } => {
                write!(f, "contact {rect} is not {required}×{required}λ")
            }
            DrcViolation::UncoveredContact { rect } => {
                write!(
                    f,
                    "contact {rect} not covered by two conductors with overlap"
                )
            }
        }
    }
}

impl std::error::Error for DrcViolation {}

/// Checks a flat list of `(layer, rect)` shapes against `rules`.
/// Returns every violation found (empty = clean).
pub fn check(shapes: &[(Layer, Rect)], rules: &DesignRules) -> Vec<DrcViolation> {
    let mut violations = Vec::new();

    // Width rules.
    for &(layer, rect) in shapes {
        if let Some(min) = rules.min_width(layer) {
            if rect.min_dimension() < min {
                violations.push(DrcViolation::TooNarrow { layer, rect, min });
            }
        }
        if layer == Layer::Contact
            && (rect.width() != rules.contact_size || rect.height() != rules.contact_size)
        {
            violations.push(DrcViolation::BadContactSize {
                rect,
                required: rules.contact_size,
            });
        }
    }

    // Same-layer spacing: disjoint groups of touching shapes must keep
    // their distance. Group by connectivity first so an L of two
    // overlapping rects isn't reported against itself.
    for layer in [Layer::Diffusion, Layer::Poly, Layer::Metal] {
        let min = rules
            .min_space(layer)
            .expect("conductors have spacing rules");
        let rects: Vec<Rect> = shapes
            .iter()
            .filter(|(l, _)| *l == layer)
            .map(|&(_, r)| r)
            .collect();
        let groups = connectivity_groups(&rects);
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                if groups[i] == groups[j] {
                    continue;
                }
                let got = rects[i].separation(&rects[j]);
                if got > 0 && got < min {
                    violations.push(DrcViolation::TooClose {
                        layer,
                        a: rects[i],
                        b: rects[j],
                        min,
                        got,
                    });
                }
            }
        }
    }

    // Contact coverage: at least two distinct conductor layers must
    // enclose the cut with the mandated overlap.
    for &(layer, cut) in shapes {
        if layer != Layer::Contact {
            continue;
        }
        let needed = cut.inflated(rules.contact_overlap);
        let covering = [Layer::Metal, Layer::Poly, Layer::Diffusion]
            .into_iter()
            .filter(|&l| shapes.iter().any(|&(l2, r)| l2 == l && r.contains(&needed)))
            .count();
        if covering < 2 {
            violations.push(DrcViolation::UncoveredContact { rect: cut });
        }
    }

    violations
}

/// Assigns each rect a connectivity-group id (touching = same group).
fn connectivity_groups(rects: &[Rect]) -> Vec<usize> {
    let mut group: Vec<usize> = (0..rects.len()).collect();
    fn find(group: &mut Vec<usize>, i: usize) -> usize {
        if group[i] != i {
            let root = find(group, group[i]);
            group[i] = root;
        }
        group[i]
    }
    for i in 0..rects.len() {
        for j in i + 1..rects.len() {
            if rects[i].touches(&rects[j]) {
                let (a, b) = (find(&mut group, i), find(&mut group, j));
                if a != b {
                    group[a] = b;
                }
            }
        }
    }
    (0..rects.len()).map(|i| find(&mut group, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_layout_passes() {
        let shapes = vec![
            (Layer::Metal, Rect::new(0, 0, 10, 3)),
            (Layer::Metal, Rect::new(0, 6, 10, 9)),
            (Layer::Poly, Rect::new(0, 12, 2, 20)),
        ];
        assert!(check(&shapes, &DesignRules::default()).is_empty());
    }

    #[test]
    fn narrow_metal_flagged() {
        let shapes = vec![(Layer::Metal, Rect::new(0, 0, 2, 10))];
        let v = check(&shapes, &DesignRules::default());
        assert!(matches!(
            v[0],
            DrcViolation::TooNarrow {
                layer: Layer::Metal,
                min: 3,
                ..
            }
        ));
    }

    #[test]
    fn close_poly_flagged_but_touching_exempt() {
        let rules = DesignRules::default();
        // 1λ apart: violation.
        let close = vec![
            (Layer::Poly, Rect::new(0, 0, 2, 10)),
            (Layer::Poly, Rect::new(3, 0, 5, 10)),
        ];
        assert_eq!(check(&close, &rules).len(), 1);
        // Abutting: same electrical shape, no violation.
        let touching = vec![
            (Layer::Poly, Rect::new(0, 0, 2, 10)),
            (Layer::Poly, Rect::new(2, 0, 4, 10)),
        ];
        assert!(check(&touching, &rules).is_empty());
    }

    #[test]
    fn l_shape_through_intermediate_not_self_flagged() {
        // Two far rects joined by a third: one group, no spacing check.
        let shapes = vec![
            (Layer::Metal, Rect::new(0, 0, 3, 20)),
            (Layer::Metal, Rect::new(0, 17, 20, 20)),
            (Layer::Metal, Rect::new(17, 0, 20, 20)),
        ];
        assert!(check(&shapes, &DesignRules::default()).is_empty());
    }

    #[test]
    fn contact_rules() {
        let rules = DesignRules::default();
        // Wrong size.
        let bad = vec![(Layer::Contact, Rect::new(0, 0, 3, 2))];
        assert!(matches!(
            check(&bad, &rules)[0],
            DrcViolation::BadContactSize { .. }
        ));
        // Right size but floating.
        let floating = vec![(Layer::Contact, Rect::new(0, 0, 2, 2))];
        assert!(check(&floating, &rules)
            .iter()
            .any(|v| matches!(v, DrcViolation::UncoveredContact { .. })));
        // Properly covered by metal and poly.
        let good = vec![
            (Layer::Contact, Rect::new(2, 2, 4, 4)),
            (Layer::Metal, Rect::new(1, 1, 5, 5)),
            (Layer::Poly, Rect::new(1, 1, 5, 5)),
        ];
        assert!(check(&good, &rules).is_empty());
    }

    #[test]
    fn violation_messages_are_informative() {
        let v = DrcViolation::TooNarrow {
            layer: Layer::Metal,
            rect: Rect::new(0, 0, 2, 10),
            min: 3,
        };
        assert!(v.to_string().contains("metal"));
        assert!(v.to_string().contains("3λ"));
    }
}
