//! Silicon-gate NMOS mask layers (paper §3.2.2, "Cell sticks").
//!
//! "Following the convention in [Mead and Conway 80], in our diagrams
//! blue lines represent metal conduction paths, red lines represent
//! polycrystalline silicon (polysilicon) and green lines represent
//! diffusion into the substrate. … The yellow squares are areas of ion
//! implantation, used to create depletion mode transistors."

use std::fmt;

/// One fabrication mask layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Metal interconnect (blue).
    Metal,
    /// Polysilicon (red); crossing diffusion forms a transistor gate.
    Poly,
    /// Diffusion (green); the channel layer.
    Diffusion,
    /// Ion implant (yellow); makes a crossing a depletion device.
    Implant,
    /// Contact cut (black dots in the stick diagrams).
    Contact,
    /// Overglass openings for bonding pads.
    Overglass,
}

impl Layer {
    /// All layers, in mask order.
    pub fn all() -> [Layer; 6] {
        [
            Layer::Diffusion,
            Layer::Implant,
            Layer::Poly,
            Layer::Contact,
            Layer::Metal,
            Layer::Overglass,
        ]
    }

    /// The Mead–Conway colour of this layer in stick diagrams.
    pub fn colour(self) -> &'static str {
        match self {
            Layer::Metal => "blue",
            Layer::Poly => "red",
            Layer::Diffusion => "green",
            Layer::Implant => "yellow",
            Layer::Contact => "black",
            Layer::Overglass => "grey",
        }
    }

    /// The CIF 2.0 layer name for NMOS.
    pub fn cif_name(self) -> &'static str {
        match self {
            Layer::Metal => "NM",
            Layer::Poly => "NP",
            Layer::Diffusion => "ND",
            Layer::Implant => "NI",
            Layer::Contact => "NC",
            Layer::Overglass => "NG",
        }
    }

    /// Parses a CIF layer name.
    pub fn from_cif_name(name: &str) -> Option<Layer> {
        Layer::all().into_iter().find(|l| l.cif_name() == name)
    }

    /// Whether wires on this layer conduct (implant and overglass are
    /// modifiers, not conductors).
    pub fn is_conductor(self) -> bool {
        matches!(self, Layer::Metal | Layer::Poly | Layer::Diffusion)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Layer::Metal => "metal",
            Layer::Poly => "poly",
            Layer::Diffusion => "diffusion",
            Layer::Implant => "implant",
            Layer::Contact => "contact",
            Layer::Overglass => "overglass",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cif_names_roundtrip() {
        for layer in Layer::all() {
            assert_eq!(Layer::from_cif_name(layer.cif_name()), Some(layer));
        }
        assert_eq!(Layer::from_cif_name("ZZ"), None);
    }

    #[test]
    fn colours_match_the_paper() {
        assert_eq!(Layer::Metal.colour(), "blue");
        assert_eq!(Layer::Poly.colour(), "red");
        assert_eq!(Layer::Diffusion.colour(), "green");
        assert_eq!(Layer::Implant.colour(), "yellow");
    }

    #[test]
    fn conductors() {
        assert!(Layer::Metal.is_conductor());
        assert!(!Layer::Implant.is_conductor());
        assert!(!Layer::Contact.is_conductor());
    }
}
