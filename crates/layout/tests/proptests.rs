//! Property tests for the layout substrate: CIF round-trips, DRC
//! geometry predicates, and synthesised cells staying rule-clean for
//! arbitrary device lists.

use pm_layout::cif::CifSymbol;
use pm_layout::prelude::*;
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i64..200, 0i64..200, 1i64..40, 1i64..40).prop_map(|(x, y, w, h)| Rect::with_size(x, y, w, h))
}

fn arb_layer() -> impl Strategy<Value = Layer> {
    prop_oneof![
        Just(Layer::Metal),
        Just(Layer::Poly),
        Just(Layer::Diffusion),
        Just(Layer::Implant),
        Just(Layer::Contact),
        Just(Layer::Overglass),
    ]
}

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(DeviceSpec::Pullup),
        Just(DeviceSpec::Enhancement),
        Just(DeviceSpec::Pass),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cif_roundtrips_arbitrary_shapes(
        shapes in proptest::collection::vec((arb_layer(), arb_rect()), 0..40)
    ) {
        let symbol = CifSymbol { name: "prop".into(), shapes };
        let text = emit_cif(&symbol);
        let back = parse_cif(&text).expect("own output parses");
        prop_assert_eq!(back, symbol);
    }

    #[test]
    fn separation_is_symmetric_and_zero_iff_touching(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.separation(&b), b.separation(&a));
        prop_assert_eq!(a.separation(&b) == 0, a.touches(&b));
        prop_assert_eq!(a.separation(&a), 0);
    }

    #[test]
    fn overlap_implies_touch(a in arb_rect(), b in arb_rect()) {
        if a.overlaps(&b) {
            prop_assert!(a.touches(&b));
        }
        prop_assert!(a.contains(&b) == (a.overlaps(&b) && a.separation(&b) == 0
            && a.x0 <= b.x0 && a.y0 <= b.y0 && a.x1 >= b.x1 && a.y1 >= b.y1));
    }

    #[test]
    fn synthesised_cells_always_pass_drc(
        devices in proptest::collection::vec(arb_device(), 1..40)
    ) {
        // "The layout can be designed mechanically": the generator must
        // be correct by construction for any device list.
        let cell = synthesize_cell("prop", &devices);
        let violations = cell.drc(&DesignRules::default());
        prop_assert!(violations.is_empty(), "{violations:?}");
        prop_assert_eq!(cell.device_count(), devices.len());
    }

    #[test]
    fn cif_parser_never_panics_on_garbage(text in ".{0,200}") {
        // Robustness: arbitrary input must yield None or a value, never
        // a panic (the parser guards every numeric conversion).
        let _ = parse_cif(&text);
    }

    #[test]
    fn hier_parser_never_panics_on_garbage(text in ".{0,200}") {
        let _ = pm_layout::hier::parse_hier_cif(&text);
    }

    #[test]
    fn translation_preserves_drc(
        devices in proptest::collection::vec(arb_device(), 1..10),
        dx in -100i64..100,
        dy in -100i64..100,
    ) {
        let cell = synthesize_cell("prop", &devices);
        let moved = cell.shapes_at(dx, dy);
        prop_assert!(pm_layout::drc::check(&moved, &DesignRules::default()).is_empty());
    }
}
