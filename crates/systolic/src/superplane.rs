//! Superplanes: the bit-plane engine widened from one `u64` to `[u64; W]`.
//!
//! The paper's replication argument (§2: "the algorithm is the chip")
//! says throughput comes from laying the same tiny comparator down many
//! times. [`crate::batch`] already replicated the boolean cell 64× into
//! the bit positions of a `u64`; this module replicates the *word*: a
//! [`Superplane<W>`] is `[u64; W]`, carrying `W × 64` lanes, and every
//! plane operation of the recurrence `t ← t ∧ (x ∨ d)` becomes `W`
//! independent word operations — exactly the shape compilers
//! auto-vectorise into 256-bit (`W = 4`) or 512-bit (`W = 8`) SIMD
//! registers. `W = 1` is, definitionally, the existing `u64` engine:
//! [`crate::batch`] calls the same `eq_superplane`/`step_superplanes`
//! kernel with `W = 1`.
//!
//! Three layers live here:
//!
//! * the **generic kernel** (`eq_superplane`, `step_superplanes`,
//!   and the strip-mined text transpose of `run_wide_generic`) —
//!   portable, safe, `#[inline(always)]` so it monomorphises into
//!   whatever vector ISA the surrounding function is compiled for;
//! * **runtime dispatch**: on `x86_64` the kernel is additionally
//!   compiled inside `#[target_feature(enable = "avx2")]` and
//!   `#[target_feature(enable = "avx512f")]` wrappers, and
//!   [`simd_level`] picks the widest level the CPU reports via
//!   `is_x86_feature_detected!` — once per process, overridable with
//!   the `PM_SIMD` environment variable (`portable`, `avx2`,
//!   `avx512`; the override can only narrow, never exceed, what the
//!   CPU supports);
//! * the **beat-accurate twin** [`SuperplaneDriver`], the
//!   [`PlaneDriver`](crate::batch::PlaneDriver) generalisation whose
//!   accumulator is a `[u64; W]` plane flowing through the unmodified
//!   [`Driver`], with `run_with_sink` emitting occupancy-masked
//!   popcounts summed across all `W` words.
//!
//! Why the transpose is strip-mined: profiling the `u64` engine shows
//! the per-position text transpose (one branchy bit-scatter per lane
//! per character) dominating the branch-free step. The wide runner
//! instead processes text in blocks of 8 positions, gathering 8 bytes
//! per lane with one load, extracting each alphabet bit across the
//! block with a multiply-pack, and rotating 8×8 bit tiles with the
//! classic XOR-delta transpose — amortising the transpose to a few
//! word operations per character so the vectorised step actually shows
//! up in the end-to-end rate (the ≥ 2× claim checked by figure E31).
//!
//! ```
//! use pm_systolic::superplane::SuperMatcher;
//! use pm_systolic::symbol::{Pattern, text_from_letters};
//!
//! # fn main() -> Result<(), pm_systolic::Error> {
//! let m = SuperMatcher::<8>::new(&Pattern::parse("AXC")?); // 512 lanes/batch
//! let t = text_from_letters("ABCAACCAB")?;
//! let hits = m.match_streams(&[t.as_slice()])?;
//! assert_eq!(hits[0].ending_positions(), vec![2, 5, 6]);
//! # Ok(())
//! # }
//! ```

// The only unsafe in this crate: invoking the `#[target_feature]`
// specialisations after `is_x86_feature_detected!` has proven the
// features present. All data paths are safe code.
#![allow(unsafe_code)]

use crate::batch::CompiledPattern;
use crate::engine::{BeatExit, Driver, MatchBits};
use crate::error::Error;
use crate::semantics::MeetSemantics;
use crate::symbol::{PatSym, Pattern, Symbol};
use crate::telemetry::{ClockPhase, TraceEvent, TraceSink};
use std::sync::OnceLock;

/// A superplane: `W` machine words holding one state bit for each of
/// `W × 64` lanes. `Superplane<1>` is the plain `u64` plane of
/// [`crate::batch`].
pub type Superplane<const W: usize> = [u64; W];

/// Maximum supported plane width in words (512 lanes). Wider arrays
/// would spill today's vector register files; raise when the hardware
/// does.
pub const MAX_WIDTH: usize = 8;

/// Maximum alphabet width in bits (mirrors [`crate::symbol::Alphabet`]).
pub(crate) const MAX_BITS: usize = 8;

/// Number of lanes carried by a width-`W` superplane.
pub const fn lanes_of(width_words: usize) -> usize {
    width_words * 64
}

// ---------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------

/// The instruction-set level the wide runner executes at, detected once
/// per process (see [`simd_level`]) and recorded in telemetry and in
/// `pm-chip`'s `ThroughputReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// The generic kernel as the portable build compiled it (still
    /// autovectorised to whatever the build target allows).
    Portable,
    /// The kernel monomorphised under `#[target_feature(enable = "avx2")]`.
    Avx2,
    /// The kernel monomorphised under `#[target_feature(enable = "avx512f")]`.
    Avx512,
}

impl SimdLevel {
    /// Stable lowercase name, used in telemetry rows and figure JSON.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Portable => "portable",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The SIMD level every wide run in this process dispatches to.
///
/// Detected once with `is_x86_feature_detected!` and cached; the
/// `PM_SIMD` environment variable (`portable` / `avx2` / `avx512`)
/// caps the choice for A/B experiments, but can never select a level
/// the CPU does not support (the unsafe dispatch relies on that).
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let detected = detect_level();
        match std::env::var("PM_SIMD").ok().as_deref() {
            Some("portable") => SimdLevel::Portable,
            Some("avx2") => detected.min(SimdLevel::Avx2),
            _ => detected,
        }
    })
}

#[cfg(target_arch = "x86_64")]
fn detect_level() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx512f") {
        SimdLevel::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_level() -> SimdLevel {
    SimdLevel::Portable
}

// ---------------------------------------------------------------------
// The shared kernel: eq and step over [u64; W].
// ---------------------------------------------------------------------

/// Comparator superplane: lanes where the pattern bit planes equal the
/// text bit planes on every alphabet bit — `d = ∧_b ¬(p_b ⊕ s_b)`,
/// evaluated as `W` word operations per alphabet bit. The Figure 3-4
/// comparator column, `W × 64` lanes at a time.
#[inline(always)]
pub(crate) fn eq_superplane<const W: usize>(
    pat_bits: &[Superplane<W>; MAX_BITS],
    txt_bits: &[Superplane<W>; MAX_BITS],
    bits: u32,
) -> Superplane<W> {
    let mut ne = [0u64; W];
    for b in 0..bits as usize {
        for w in 0..W {
            ne[w] |= pat_bits[b][w] ^ txt_bits[b][w];
        }
    }
    let mut d = [0u64; W];
    for w in 0..W {
        d[w] = !ne[w];
    }
    d
}

/// Advances every lane one text position — the §3.2.1 recurrence
/// `t ← t ∧ (x ∨ d)` over superplanes, high pattern positions first so
/// each prefix extends the previous step's shorter prefix — and returns
/// the result superplane (`∨_m state[m] ∧ end[m]`, folded over the end
/// positions only).
#[inline(always)]
pub(crate) fn step_superplanes<const W: usize>(
    wild: &[Superplane<W>],
    pbits: &[[Superplane<W>; MAX_BITS]],
    end: &[Superplane<W>],
    end_positions: &[usize],
    bits: u32,
    state: &mut [Superplane<W>],
    txt_bits: &[Superplane<W>; MAX_BITS],
) -> Superplane<W> {
    let kmax = wild.len();
    for m in (1..kmax).rev() {
        let d = eq_superplane(&pbits[m], txt_bits, bits);
        for w in 0..W {
            state[m][w] = state[m - 1][w] & (wild[m][w] | d[w]);
        }
    }
    let d0 = eq_superplane(&pbits[0], txt_bits, bits);
    for w in 0..W {
        state[0][w] = wild[0][w] | d0[w];
    }
    let mut out = [0u64; W];
    for &m in end_positions {
        for w in 0..W {
            out[w] |= state[m][w] & end[m][w];
        }
    }
    out
}

/// Per-lane control superplanes for one batch of up to `W × 64` lanes:
/// the merged compiled patterns plus the `λ` planes marking each lane's
/// pattern end. The width-generic twin of the `u64` lane planes in
/// [`crate::batch`], which is this structure at `W = 1`.
#[derive(Debug, Clone)]
pub(crate) struct SuperPlanes<const W: usize> {
    /// Longest pattern across the lanes (`k+1` positions).
    pub(crate) kmax: usize,
    /// Widest alphabet across the lanes, in bits.
    pub(crate) bits: u32,
    pub(crate) wild: Vec<Superplane<W>>,
    pub(crate) pbits: Vec<[Superplane<W>; MAX_BITS]>,
    /// `end[m]` bit `l` of word `l / 64`: position `m` is lane `l`'s
    /// last pattern character.
    pub(crate) end: Vec<Superplane<W>>,
    /// Positions `m` with a nonzero `end[m]`, so the result fold skips
    /// the all-zero majority.
    pub(crate) end_positions: Vec<usize>,
}

impl<const W: usize> SuperPlanes<W> {
    /// All lanes share one pattern: planes are the broadcast compilation
    /// splat across `W` words, so per-batch setup is O(k·W) regardless
    /// of lane count.
    pub(crate) fn uniform(compiled: &CompiledPattern) -> Self {
        let k1 = compiled.len();
        let mut end = vec![[0u64; W]; k1];
        end[k1 - 1] = [!0u64; W];
        SuperPlanes {
            kmax: k1,
            bits: compiled.pattern().alphabet().bits(),
            wild: compiled.wild.iter().map(|&p| [p; W]).collect(),
            pbits: compiled
                .bits
                .iter()
                .map(|planes| {
                    let mut sp = [[0u64; W]; MAX_BITS];
                    for (b, &plane) in planes.iter().enumerate() {
                        sp[b] = [plane; W];
                    }
                    sp
                })
                .collect(),
            end,
            end_positions: vec![k1 - 1],
        }
    }

    /// Each lane carries its own pattern (lengths may differ).
    pub(crate) fn merge(compiled: &[&CompiledPattern]) -> Result<Self, Error> {
        if compiled.len() > lanes_of(W) {
            return Err(Error::TooManyLanes {
                lanes: compiled.len(),
                capacity: lanes_of(W),
            });
        }
        let kmax = compiled.iter().map(|c| c.len()).max().unwrap_or(0);
        let bits = compiled
            .iter()
            .map(|c| c.pattern().alphabet().bits())
            .max()
            .unwrap_or(1);
        let mut planes = SuperPlanes {
            kmax,
            bits,
            wild: vec![[0u64; W]; kmax],
            pbits: vec![[[0u64; W]; MAX_BITS]; kmax],
            end: vec![[0u64; W]; kmax],
            end_positions: Vec::new(),
        };
        for (l, c) in compiled.iter().enumerate() {
            let (word, bit) = (l / 64, (l % 64) as u32);
            let lane = 1u64 << bit;
            for m in 0..c.len() {
                if c.wild[m] != 0 {
                    planes.wild[m][word] |= lane;
                }
                for b in 0..MAX_BITS {
                    if c.bits[m][b] != 0 {
                        planes.pbits[m][b][word] |= lane;
                    }
                }
            }
            planes.end[c.len() - 1][word] |= lane;
        }
        for (m, e) in planes.end.iter().enumerate() {
            if e.iter().any(|&w| w != 0) {
                planes.end_positions.push(m);
            }
        }
        Ok(planes)
    }

    /// Runs the wide engine over per-lane texts through the dispatched
    /// kernel (see [`simd_level`]).
    pub(crate) fn run(&self, texts: &[&[Symbol]]) -> Vec<Vec<bool>> {
        debug_assert!(texts.len() <= lanes_of(W));
        match simd_level() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: simd_level() returns Avx512 only after
            // is_x86_feature_detected!("avx512f") succeeded.
            SimdLevel::Avx512 => unsafe { run_wide_avx512(self, texts) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above, for "avx2".
            SimdLevel::Avx2 => unsafe { run_wide_avx2(self, texts) },
            _ => run_wide_generic(self, texts),
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_wide_avx2<const W: usize>(
    planes: &SuperPlanes<W>,
    texts: &[&[Symbol]],
) -> Vec<Vec<bool>> {
    run_wide_generic(planes, texts)
}

// Only "avx512f" — the kernel is plain `u64` word logic, so 512-bit
// integer ops from the F subset suffice, and enabling more would not be
// justified by the `detect_level` check that guards the call.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn run_wide_avx512<const W: usize>(
    planes: &SuperPlanes<W>,
    texts: &[&[Symbol]],
) -> Vec<Vec<bool>> {
    run_wide_generic(planes, texts)
}

/// Text positions processed per transpose tile.
const BLOCK: usize = 8;

/// Replicates a byte's LSB column: `y & LSB_BYTES` keeps one chosen bit
/// in the LSB of each byte.
const LSB_BYTES: u64 = 0x0101_0101_0101_0101;

/// Multiply-pack factor: gathers the LSBs of all 8 bytes of a word into
/// the top byte, preserving order (byte `j` → bit `56 + j`; all 64
/// partial-product exponents are distinct, so no carries interfere).
const PACK: u64 = 0x0102_0408_1020_4080;

/// 8×8 bit-matrix transpose (Hacker's Delight §7-3): viewing a `u64`
/// as 8 rows of 8 bits, returns the word with `out[row j].bit i =
/// in[row i].bit j`.
#[inline(always)]
fn transpose8x8(mut x: u64) -> u64 {
    let mut t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// The strip-mined wide runner. Monomorphised three times on `x86_64`
/// (portable / AVX2 / AVX-512) via the `#[target_feature]` wrappers
/// above; `#[inline(always)]` makes each wrapper compile the whole loop
/// nest — transpose, step and scatter — under its feature set.
#[inline(always)]
fn run_wide_generic<const W: usize>(
    planes: &SuperPlanes<W>,
    texts: &[&[Symbol]],
) -> Vec<Vec<bool>> {
    let lanes = texts.len();
    let tmax = texts.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut state = vec![[0u64; W]; planes.kmax];
    let mut out: Vec<Vec<bool>> = texts.iter().map(|t| vec![false; t.len()]).collect();
    let groups = lanes.div_ceil(BLOCK);
    // One tile of text planes (BLOCK positions) and result planes.
    let mut txt = [[[0u64; W]; MAX_BITS]; BLOCK];
    let mut res = [[0u64; W]; BLOCK];
    let bits = planes.bits as usize;

    // Planes dirtied by the previous tile: at least the alphabet's,
    // more when a tile widened the comparison (see below).
    let mut dirty = bits;

    let mut i0 = 0;
    while i0 < tmax {
        let blk = BLOCK.min(tmax - i0);
        for t in txt.iter_mut().take(blk) {
            for plane in t.iter_mut().take(dirty) {
                *plane = [0u64; W];
            }
        }
        // Gather: for each group of 8 lanes, read 8 text bytes per lane
        // (one load-combined word), multiply-pack each alphabet bit
        // across the 8 positions, and rotate the 8×8 tile so bytes
        // become per-position rows. Exhausted lanes contribute zero
        // planes; their outputs are not recorded below.
        //
        // `tile_bits` widens the compared planes when a text symbol in
        // this tile carries bits above the patterns' alphabet: a
        // literal can never equal such a symbol, and comparing only the
        // alphabet planes would alias it onto an in-alphabet value.
        // Groups whose symbols stay in-alphabet skip the extra packing;
        // their high planes are (correctly) zero.
        let mut tile_bits = bits;
        for group in 0..groups {
            let word = group / 8;
            let shift = 8 * (group % 8) as u32;
            let mut xs = [0u64; BLOCK];
            let mut acc = 0u64;
            for (u, x) in xs.iter_mut().enumerate() {
                let l = group * BLOCK + u;
                if l >= lanes {
                    break;
                }
                let t = texts[l];
                *x = if i0 + BLOCK <= t.len() {
                    let tile: &[Symbol; BLOCK] =
                        t[i0..i0 + BLOCK].try_into().expect("tile is 8 symbols");
                    u64::from_le_bytes(tile.map(Symbol::value))
                } else if i0 < t.len() {
                    let mut x = 0u64;
                    for (j, s) in t[i0..].iter().enumerate() {
                        x |= (s.value() as u64) << (8 * j);
                    }
                    x
                } else {
                    continue;
                };
                acc |= *x;
            }
            let vor = {
                let mut v = acc;
                v |= v >> 32;
                v |= v >> 16;
                v |= v >> 8;
                v as u8
            };
            let group_bits = bits.max(8 - vor.leading_zeros() as usize);
            tile_bits = tile_bits.max(group_bits);
            let mut packed = [0u64; MAX_BITS];
            for (b, p) in packed.iter_mut().enumerate().take(group_bits) {
                for (u, &x) in xs.iter().enumerate() {
                    let col = ((x >> b) & LSB_BYTES).wrapping_mul(PACK) >> 56;
                    *p |= col << (8 * u);
                }
            }
            for (b, &p) in packed.iter().enumerate().take(group_bits) {
                let tile = transpose8x8(p);
                for (j, t) in txt.iter_mut().enumerate().take(blk) {
                    t[b][word] |= ((tile >> (8 * j)) & 0xff) << shift;
                }
            }
        }
        // Step: the vectorised recurrence, one call per text position.
        for j in 0..blk {
            res[j] = step_superplanes(
                &planes.wild,
                &planes.pbits,
                &planes.end,
                &planes.end_positions,
                tile_bits as u32,
                &mut state,
                &txt[j],
            );
        }
        dirty = tile_bits;
        // Scatter: transpose the result tile back and expand each
        // lane's 8 result bits to bool bytes with one multiply — the
        // adjacent byte stores merge into a single word store.
        for group in 0..groups {
            let word = group / 8;
            let shift = 8 * (group % 8) as u32;
            let mut tile = 0u64;
            for (j, r) in res.iter().enumerate().take(blk) {
                tile |= ((r[word] >> shift) & 0xff) << (8 * j);
            }
            tile = transpose8x8(tile);
            for u in 0..BLOCK {
                let l = group * BLOCK + u;
                if l >= lanes {
                    break;
                }
                let o = &mut out[l];
                if i0 >= o.len() {
                    continue;
                }
                let row = (tile >> (8 * u)) & 0xff;
                if i0 + BLOCK <= o.len() {
                    let y = row.wrapping_mul(LSB_BYTES) & 0x8040_2010_0804_0201;
                    let z = ((y.wrapping_add(0x7f7f_7f7f_7f7f_7f7f)) & 0x8080_8080_8080_8080) >> 7;
                    let dst = &mut o[i0..i0 + BLOCK];
                    for (j, &v) in z.to_le_bytes().iter().enumerate() {
                        dst[j] = v != 0;
                    }
                } else {
                    for (j, slot) in o[i0..].iter_mut().enumerate() {
                        *slot = (row >> j) & 1 == 1;
                    }
                }
            }
        }
        i0 += blk;
    }
    out
}

// ---------------------------------------------------------------------
// Public wide matchers.
// ---------------------------------------------------------------------

/// Matches one compiled pattern against up to `W × 64` texts in a
/// single superplane batch. Width-generic twin of
/// [`crate::batch::match_uniform`] (which is the `W = 1` engine).
///
/// # Errors
///
/// [`Error::TooManyLanes`] if more than `W × 64` texts are supplied.
pub fn match_uniform_wide<const W: usize>(
    compiled: &CompiledPattern,
    texts: &[&[Symbol]],
) -> Result<Vec<MatchBits>, Error> {
    const { assert!(W >= 1 && W <= MAX_WIDTH) };
    if texts.len() > lanes_of(W) {
        return Err(Error::TooManyLanes {
            lanes: texts.len(),
            capacity: lanes_of(W),
        });
    }
    if texts.is_empty() {
        return Ok(Vec::new());
    }
    let planes = SuperPlanes::<W>::uniform(compiled);
    let k = compiled.pattern().k();
    Ok(planes
        .run(texts)
        .into_iter()
        .map(|bits| MatchBits::new(bits, k))
        .collect())
}

/// Matches up to `W × 64` independent `(pattern, text)` jobs in one
/// superplane batch; every lane may carry a different pattern of a
/// different length. Width-generic twin of
/// [`crate::batch::match_lanes`].
///
/// # Errors
///
/// [`Error::TooManyLanes`] if more than `W × 64` jobs are supplied.
pub fn match_lanes_wide<const W: usize>(
    jobs: &[(&CompiledPattern, &[Symbol])],
) -> Result<Vec<MatchBits>, Error> {
    const { assert!(W >= 1 && W <= MAX_WIDTH) };
    if jobs.len() > lanes_of(W) {
        return Err(Error::TooManyLanes {
            lanes: jobs.len(),
            capacity: lanes_of(W),
        });
    }
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let compiled: Vec<&CompiledPattern> = jobs.iter().map(|(c, _)| *c).collect();
    let texts: Vec<&[Symbol]> = jobs.iter().map(|(_, t)| *t).collect();
    let planes = SuperPlanes::<W>::merge(&compiled)?;
    Ok(planes
        .run(&texts)
        .into_iter()
        .zip(&compiled)
        .map(|(bits, c)| MatchBits::new(bits, c.pattern().k()))
        .collect())
}

/// The superplane throughput engine for one pattern: any number of
/// independent text streams, processed `W × 64` per batch through the
/// runtime-dispatched kernel. `SuperMatcher<1>` behaves exactly like
/// [`BatchMatcher`](crate::batch::BatchMatcher); `W = 8` is the 512-lane
/// engine figure E31 benchmarks.
#[derive(Debug, Clone)]
pub struct SuperMatcher<const W: usize> {
    compiled: CompiledPattern,
}

impl<const W: usize> SuperMatcher<W> {
    /// Compiles `pattern` into control-bit planes.
    pub fn new(pattern: &Pattern) -> Self {
        const { assert!(W >= 1 && W <= MAX_WIDTH) };
        SuperMatcher {
            compiled: CompiledPattern::compile(pattern),
        }
    }

    /// Wraps an already-compiled pattern (e.g. one from a cache).
    pub fn from_compiled(compiled: CompiledPattern) -> Self {
        const { assert!(W >= 1 && W <= MAX_WIDTH) };
        SuperMatcher { compiled }
    }

    /// The compiled control planes.
    pub fn compiled(&self) -> &CompiledPattern {
        &self.compiled
    }

    /// The pattern this matcher was built for.
    pub fn pattern(&self) -> &Pattern {
        self.compiled.pattern()
    }

    /// Lanes per superplane batch (`W × 64`).
    pub fn lanes_per_batch(&self) -> usize {
        lanes_of(W)
    }

    /// Matches every text stream against the pattern, `W × 64` lanes
    /// per superplane batch; `texts.len()` is unbounded and need not be
    /// a multiple of the batch width (the last chunk runs with idle
    /// lanes).
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` mirrors the scalar matcher's
    /// API.
    pub fn match_streams(&self, texts: &[&[Symbol]]) -> Result<Vec<MatchBits>, Error> {
        let mut out = Vec::with_capacity(texts.len());
        for chunk in texts.chunks(lanes_of(W)) {
            out.extend(match_uniform_wide::<W>(&self.compiled, chunk)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// The beat-accurate superplane twin.
// ---------------------------------------------------------------------

/// Pattern payload for the superplane semantics: one pattern position
/// across all `W × 64` lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperPat<const W: usize> {
    /// Bit superplanes of the literal, LSB first.
    pub bits: [Superplane<W>; MAX_BITS],
    /// Lanes where this position is the wild card.
    pub wild: Superplane<W>,
}

/// Text payload for the superplane semantics: one text position across
/// all `W × 64` lanes, as bit superplanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperTxt<const W: usize> {
    /// Bit superplanes of the symbols, LSB first.
    pub bits: [Superplane<W>; MAX_BITS],
}

/// Result-stream payload for the superplane semantics: the completed
/// result superplane. A newtype because `Default` (required of
/// [`MeetSemantics::Out`] for incomplete-window positions) is not
/// implemented for generic-length arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperOut<const W: usize>(pub Superplane<W>);

impl<const W: usize> Default for SuperOut<W> {
    fn default() -> Self {
        SuperOut([0u64; W])
    }
}

/// [`MeetSemantics`] instance whose accumulator is a `W`-word
/// superplane: the unmodified systolic [`Driver`] advances `W × 64`
/// boolean matches per beat. All lanes share the pattern *length* (one
/// `λ` bit serves every lane); contents may differ per lane. The
/// 64-lane [`LaneBoolean`](crate::batch::LaneBoolean) is this semantics
/// at `W = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperBoolean<const W: usize> {
    /// Alphabet width in bits (the number of comparator planes).
    pub bits: u32,
}

impl<const W: usize> MeetSemantics for SuperBoolean<W> {
    type Pat = SuperPat<W>;
    type Txt = SuperTxt<W>;
    type Acc = Superplane<W>;
    type Out = SuperOut<W>;

    fn fresh(&self) -> Superplane<W> {
        [!0u64; W] // t ← TRUE, in every lane at once
    }

    fn absorb(&self, acc: &mut Superplane<W>, pat: &SuperPat<W>, txt: &SuperTxt<W>) {
        // t ← t ∧ (x ∨ d), W × 64 lanes per beat.
        let d = eq_superplane(&pat.bits, &txt.bits, self.bits);
        for w in 0..W {
            acc[w] &= pat.wild[w] | d[w];
        }
    }

    fn finish(&self, acc: Superplane<W>) -> SuperOut<W> {
        SuperOut(acc)
    }
}

/// Packs up to `W × 64` equal-length patterns into superplane pattern
/// items for [`SuperBoolean`].
///
/// # Errors
///
/// * [`Error::EmptyPattern`] if no patterns are given.
/// * [`Error::TooManyLanes`] for more than `W × 64`.
/// * [`Error::RaggedLanePatterns`] if the lengths differ (use
///   [`match_lanes_wide`] for ragged batches).
pub fn pack_patterns_wide<const W: usize>(patterns: &[Pattern]) -> Result<Vec<SuperPat<W>>, Error> {
    const { assert!(W >= 1 && W <= MAX_WIDTH) };
    let first = patterns.first().ok_or(Error::EmptyPattern)?;
    if patterns.len() > lanes_of(W) {
        return Err(Error::TooManyLanes {
            lanes: patterns.len(),
            capacity: lanes_of(W),
        });
    }
    let k1 = first.len();
    if patterns.iter().any(|p| p.len() != k1) {
        return Err(Error::RaggedLanePatterns);
    }
    let mut items = vec![
        SuperPat {
            bits: [[0u64; W]; MAX_BITS],
            wild: [0u64; W],
        };
        k1
    ];
    for (l, p) in patterns.iter().enumerate() {
        let (word, bit) = (l / 64, (l % 64) as u32);
        let lane = 1u64 << bit;
        for (m, sym) in p.symbols().iter().enumerate() {
            match sym {
                PatSym::Wild => items[m].wild[word] |= lane,
                PatSym::Lit(s) => {
                    let v = s.value();
                    for (b, plane) in items[m].bits.iter_mut().enumerate() {
                        if (v >> b) & 1 == 1 {
                            plane[word] |= lane;
                        }
                    }
                }
            }
        }
    }
    Ok(items)
}

/// The beat-accurate superplane matcher: `[u64; W]` planes flowing
/// through the existing [`Driver`] with [`SuperBoolean`] semantics.
/// One beat of this driver is one beat of the scalar array — in all
/// `W × 64` lanes simultaneously. This is the telemetry twin of
/// [`PlaneDriver`](crate::batch::PlaneDriver):
/// [`run_with_sink`](Self::run_with_sink) emits the same beat-level
/// events with occupancy-masked popcounts summed over the `W` words.
#[derive(Debug, Clone)]
pub struct SuperplaneDriver<const W: usize> {
    driver: Driver<SuperBoolean<W>>,
    k: usize,
    lanes: usize,
}

impl<const W: usize> SuperplaneDriver<W> {
    /// Builds a batched driver over `patterns` (up to `W × 64`, equal
    /// length; the array gets exactly `k+1` cells as in §3.2.1).
    ///
    /// # Errors
    ///
    /// As [`pack_patterns_wide`].
    pub fn new(patterns: &[Pattern]) -> Result<Self, Error> {
        let items = pack_patterns_wide::<W>(patterns)?;
        let bits = patterns
            .iter()
            .map(|p| p.alphabet().bits())
            .max()
            .unwrap_or(1);
        let cells = items.len();
        let k = cells - 1;
        let driver = Driver::new(SuperBoolean { bits }, items, &[cells])?;
        Ok(SuperplaneDriver {
            driver,
            k,
            lanes: patterns.len(),
        })
    }

    /// Number of occupied lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs every lane's text through the array (texts may have
    /// different lengths; shorter lanes idle on zero planes, whose
    /// results are discarded) and returns one [`MatchBits`] per lane.
    ///
    /// This is the un-instrumented path, preserved verbatim so the
    /// telemetry A/B in `pm-bench` (E31) has a true baseline;
    /// [`run_with_sink`](Self::run_with_sink) is the traced twin and is
    /// tested bit-identical to it.
    ///
    /// # Errors
    ///
    /// [`Error::TooManyLanes`] if `texts.len()` differs from the lane
    /// count the driver was built with.
    pub fn run(&mut self, texts: &[&[Symbol]]) -> Result<Vec<MatchBits>, Error> {
        if texts.len() != self.lanes {
            return Err(Error::TooManyLanes {
                lanes: texts.len(),
                capacity: self.lanes,
            });
        }
        let stream = self.transpose(texts);
        let planes = self.driver.run(&stream);
        Ok(self.collect(texts, |i| planes[i].0))
    }

    /// As [`run`](Self::run), but flips the given result-plane bits
    /// before results are collected — the chaos harness's model of a
    /// §4 lane upset inside the `Superplane<W>` result registers. Each
    /// entry is `(position, lane)`: the result bit for text position
    /// `position` in `lane` is inverted. Out-of-range entries are
    /// ignored; with an empty slice this is exactly [`run`](Self::run)
    /// (the zero-cost-when-disabled discipline of the harness: callers
    /// pass `&[]` unless a fault plan is armed).
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_with_upsets(
        &mut self,
        texts: &[&[Symbol]],
        upsets: &[(usize, usize)],
    ) -> Result<Vec<MatchBits>, Error> {
        if texts.len() != self.lanes {
            return Err(Error::TooManyLanes {
                lanes: texts.len(),
                capacity: self.lanes,
            });
        }
        let stream = self.transpose(texts);
        let mut planes: Vec<Superplane<W>> =
            self.driver.run(&stream).into_iter().map(|p| p.0).collect();
        for &(pos, lane) in upsets {
            if pos < planes.len() && lane < self.lanes {
                planes[pos][lane / 64] ^= 1u64 << (lane % 64);
            }
        }
        Ok(self.collect(texts, |i| planes[i]))
    }

    /// As [`run`](Self::run), but emits beat-level [`TraceEvent`]s into
    /// `sink`: two [`TraceEvent::Clock`] phases per beat,
    /// [`TraceEvent::TextInjected`] on text beats, and one
    /// [`TraceEvent::ComparatorFire`] per exiting result with the
    /// popcount of matching *occupied* lanes summed across all `W`
    /// words of the superplane.
    ///
    /// The sink is a generic parameter so a
    /// [`NullSink`](crate::telemetry::NullSink) monomorphises the
    /// emission sites away; `run_with_sink(texts, &NullSink)` compiles
    /// to the same machine loop as [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_with_sink<K: TraceSink>(
        &mut self,
        texts: &[&[Symbol]],
        sink: &K,
    ) -> Result<Vec<MatchBits>, Error> {
        if texts.len() != self.lanes {
            return Err(Error::TooManyLanes {
                lanes: texts.len(),
                capacity: self.lanes,
            });
        }
        let stream = self.transpose(texts);
        self.driver.reset();
        // Per-position occupancy: lanes whose text still covers
        // position `i`. Exhausted lanes idle on zero planes and may
        // fire spuriously, so the comparator popcount masks them out.
        // Only emission reads this, so a disabled sink skips the build.
        let occupancy: Vec<Superplane<W>> = if !sink.enabled() {
            Vec::new()
        } else {
            (0..stream.len())
                .map(|i| {
                    let mut m = [0u64; W];
                    for (l, t) in texts.iter().enumerate() {
                        if i < t.len() {
                            m[l / 64] |= 1u64 << (l % 64);
                        }
                    }
                    m
                })
                .collect()
        };
        let mut planes = vec![[0u64; W]; stream.len()];
        // Feed: one bus cycle (two beats) per text plane, injecting on
        // the driver's text beats — the same schedule as Driver::run.
        for (seq, item) in stream.iter().enumerate() {
            let mut item = Some(item.clone());
            for _ in 0..2 {
                let beat = self.driver.beat();
                let phase = self.driver.phase();
                let is_text_beat = beat >= phase && (beat - phase).is_multiple_of(2);
                let inject = if is_text_beat { item.take() } else { None };
                if sink.enabled() && inject.is_some() {
                    sink.record(TraceEvent::TextInjected {
                        beat,
                        seq: seq as u64,
                    });
                }
                let exit = self.driver.advance_beat(inject);
                self.note_exit(exit, &occupancy, &mut planes, sink);
            }
            debug_assert!(item.is_none(), "no text slot in one bus cycle");
        }
        // Drain: same slack bound as Driver::drain.
        let slack = (self.driver.total_cells() + 2 * self.driver.pattern_len() + 4) as u64;
        for _ in 0..(2 * slack) {
            let exit = self.driver.advance_beat(None);
            self.note_exit(exit, &occupancy, &mut planes, sink);
        }
        Ok(self.collect(texts, |i| planes[i]))
    }

    /// Books one beat's exits: stores complete-window result planes and
    /// emits the clock/comparator events for the beat just executed.
    fn note_exit<K: TraceSink>(
        &self,
        exit: BeatExit<SuperBoolean<W>>,
        occupancy: &[Superplane<W>],
        planes: &mut [Superplane<W>],
        sink: &K,
    ) {
        if sink.enabled() {
            sink.record(TraceEvent::Clock {
                beat: exit.beat,
                phase: ClockPhase::Phi1,
            });
            sink.record(TraceEvent::Clock {
                beat: exit.beat,
                phase: ClockPhase::Phi2,
            });
        }
        if let Some(res) = exit.result {
            let i = res.seq as usize;
            if i >= self.k && i < planes.len() {
                planes[i] = res.value.0;
                if sink.enabled() {
                    let lanes: u32 = res
                        .value
                        .0
                        .iter()
                        .zip(occupancy[i].iter())
                        .map(|(v, o)| (v & o).count_ones())
                        .sum();
                    sink.record(TraceEvent::ComparatorFire {
                        beat: exit.beat,
                        seq: res.seq,
                        lanes,
                    });
                }
            }
        }
    }

    /// Transposes per-lane texts into the per-position superplane stream.
    fn transpose(&self, texts: &[&[Symbol]]) -> Vec<SuperTxt<W>> {
        let tmax = texts.iter().map(|t| t.len()).max().unwrap_or(0);
        (0..tmax)
            .map(|i| {
                let mut bits = [[0u64; W]; MAX_BITS];
                for (l, t) in texts.iter().enumerate() {
                    if let Some(sym) = t.get(i) {
                        let v = sym.value();
                        let (word, bit) = (l / 64, (l % 64) as u32);
                        for (b, plane) in bits.iter_mut().enumerate() {
                            if (v >> b) & 1 == 1 {
                                plane[word] |= 1u64 << bit;
                            }
                        }
                    }
                }
                SuperTxt { bits }
            })
            .collect()
    }

    /// Slices per-position result planes back into per-lane [`MatchBits`].
    fn collect(
        &self,
        texts: &[&[Symbol]],
        plane_at: impl Fn(usize) -> Superplane<W>,
    ) -> Vec<MatchBits> {
        texts
            .iter()
            .enumerate()
            .map(|(l, t)| {
                let (word, bit) = (l / 64, (l % 64) as u32);
                let bits = (0..t.len())
                    .map(|i| (plane_at(i)[word] >> bit) & 1 == 1)
                    .collect();
                MatchBits::new(bits, self.k)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{match_lanes, match_uniform, BatchMatcher};
    use crate::spec::match_spec;
    use crate::symbol::text_from_letters;

    fn letters(s: &str) -> Vec<Symbol> {
        text_from_letters(s).unwrap()
    }

    #[test]
    fn transpose8x8_is_an_involution_on_known_tiles() {
        // Row 0 = 0b10000001, all other rows zero → column pattern.
        let x = 0x81u64;
        let t = transpose8x8(x);
        assert_eq!(t, 0x0100_0000_0000_0001, "{t:#018x}");
        assert_eq!(transpose8x8(t), x);
        // A full random-ish tile transposes twice to itself.
        let y = 0xDEAD_BEEF_0123_4567u64;
        assert_eq!(transpose8x8(transpose8x8(y)), y);
    }

    #[test]
    fn multiply_pack_gathers_byte_lsbs_in_order() {
        // Bytes 0,2,5 have their LSB set → packed bits 0,2,5.
        let x = 0x0000_0100_0001_0001u64;
        let col = (x & LSB_BYTES).wrapping_mul(PACK) >> 56;
        assert_eq!(col, 0b0010_0101);
    }

    #[test]
    fn figure_3_1_in_every_wide_lane() {
        let t = letters("ABCAACCAB");
        let p = Pattern::parse("AXC").unwrap();
        let m = SuperMatcher::<4>::new(&p);
        let texts: Vec<&[Symbol]> = (0..lanes_of(4) + 13).map(|_| t.as_slice()).collect();
        let hits = m.match_streams(&texts).unwrap();
        assert_eq!(hits.len(), lanes_of(4) + 13);
        for h in hits {
            assert_eq!(h.ending_positions(), vec![2, 5, 6]);
        }
    }

    #[test]
    fn wide_kernels_never_alias_out_of_alphabet_symbols() {
        // "AB" compiles to a 2-bit alphabet, so E (100) and F (101)
        // alias to A and B on the low planes; the tile gather must
        // widen the comparison for groups whose text carries high
        // bits — regression for the dynamic-width fix in
        // run_wide_generic. Mixing in-alphabet and wide lanes in the
        // same tile exercises the per-group widening.
        let p = Pattern::parse("AB").unwrap();
        let compiled = crate::batch::CompiledPattern::compile(&p);
        let wide = letters("DEFGDEFGABDEFG");
        let narrow = letters("ABAB");
        let lanes: Vec<&[Symbol]> = (0..lanes_of(4) - 7)
            .map(|i| {
                if i % 2 == 0 {
                    narrow.as_slice()
                } else {
                    wide.as_slice()
                }
            })
            .collect();
        let hits = match_uniform_wide::<4>(&compiled, &lanes).unwrap();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.bits(), match_spec(lanes[i], &p), "lane {i}");
        }
        let hits = match_uniform_wide::<8>(&compiled, &lanes).unwrap();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.bits(), match_spec(lanes[i], &p), "lane {i}");
        }
    }

    #[test]
    fn wide_uniform_agrees_with_u64_engine_and_spec_on_ragged_texts() {
        let p = Pattern::parse("ABXA").unwrap();
        let texts: Vec<Vec<Symbol>> = [
            "ABCABBAACBA",
            "ABBA",
            "",
            "A",
            "ABCAABBAABCAABBA",
            "AAAAAAA",
            "BACABBA",
        ]
        .iter()
        .map(|s| letters(s))
        .collect();
        // Repeat to cross the 64-lane and partial-tile boundaries.
        let lanes: Vec<&[Symbol]> = texts
            .iter()
            .cycle()
            .take(3 * 64 + 17)
            .map(|t| t.as_slice())
            .collect();
        let narrow = BatchMatcher::new(&p).match_streams(&lanes).unwrap();
        let wide4 = SuperMatcher::<4>::new(&p).match_streams(&lanes).unwrap();
        let wide8 = SuperMatcher::<8>::new(&p).match_streams(&lanes).unwrap();
        for (((n, w4), w8), t) in narrow.iter().zip(&wide4).zip(&wide8).zip(lanes.iter()) {
            assert_eq!(n.bits(), match_spec(t, &p));
            assert_eq!(n, w4);
            assert_eq!(n, w8);
        }
    }

    #[test]
    fn wide_mixed_lanes_agree_with_u64_engine() {
        let pats = [
            Pattern::parse("A").unwrap(),
            Pattern::parse("AXC").unwrap(),
            Pattern::parse("BBBBB").unwrap(),
            Pattern::parse("XX").unwrap(),
        ];
        let compiled: Vec<CompiledPattern> = pats.iter().map(CompiledPattern::compile).collect();
        let text = letters("ABCAACCABBBBBABACCAB");
        let jobs: Vec<(&CompiledPattern, &[Symbol])> = compiled
            .iter()
            .cycle()
            .take(64 + 9)
            .map(|c| (c, text.as_slice()))
            .collect();
        let wide = match_lanes_wide::<2>(&jobs).unwrap();
        for (chunk, hits) in jobs.chunks(64).zip(wide.chunks(64)) {
            let narrow = match_lanes(chunk).unwrap();
            assert_eq!(narrow, hits);
        }
        for ((c, t), h) in jobs.iter().zip(&wide) {
            assert_eq!(h.bits(), match_spec(t, c.pattern()));
        }
    }

    #[test]
    fn wide_lane_limits_are_enforced() {
        let p = Pattern::parse("AB").unwrap();
        let c = CompiledPattern::compile(&p);
        let t = letters("AB");
        let too_many: Vec<&[Symbol]> = (0..lanes_of(2) + 1).map(|_| t.as_slice()).collect();
        assert!(matches!(
            match_uniform_wide::<2>(&c, &too_many),
            Err(Error::TooManyLanes {
                lanes: 129,
                capacity: 128
            })
        ));
        assert!(match_uniform_wide::<2>(&c, &[]).unwrap().is_empty());
        assert!(match_lanes_wide::<2>(&[]).unwrap().is_empty());
    }

    #[test]
    fn wide_matches_narrow_uniform_exactly_at_w1() {
        let p = Pattern::parse("CXXA").unwrap();
        let texts: Vec<Vec<Symbol>> = (0..64)
            .map(|i| letters(&"CABACCAABCA".repeat(1 + i % 3)))
            .collect();
        let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
        let c = CompiledPattern::compile(&p);
        assert_eq!(
            match_uniform(&c, &lanes).unwrap(),
            match_uniform_wide::<1>(&c, &lanes).unwrap()
        );
    }

    #[test]
    fn superplane_driver_equals_plane_driver_and_spec() {
        use crate::batch::PlaneDriver;
        let pats: Vec<Pattern> = ["AXC", "BBC", "XXX", "CAB", "ACA"]
            .iter()
            .cycle()
            .take(70) // spills into the second word of a W=2 superplane
            .map(|s| Pattern::parse(s).unwrap())
            .collect();
        let texts: Vec<Vec<Symbol>> = (0..70).map(|i| letters(&"ABCAACCAB"[..(i % 10)])).collect();
        let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
        let mut wide = SuperplaneDriver::<2>::new(&pats).unwrap();
        let got = wide.run(&lanes).unwrap();
        for ((h, p), t) in got.iter().zip(&pats).zip(&texts) {
            assert_eq!(h.bits(), match_spec(t, p), "pattern {p}");
        }
        // The first 64 lanes are exactly a PlaneDriver batch.
        let mut narrow = PlaneDriver::new(&pats[..64]).unwrap();
        let narrow_hits = narrow.run(&lanes[..64]).unwrap();
        assert_eq!(&got[..64], &narrow_hits[..]);
    }

    #[test]
    fn superplane_driver_traced_run_is_bit_identical() {
        use crate::telemetry::{MemorySink, NullSink, TraceEvent};
        let pats: Vec<Pattern> = ["AXC", "BBC", "CAB"]
            .iter()
            .cycle()
            .take(66)
            .map(|s| Pattern::parse(s).unwrap())
            .collect();
        let texts: Vec<Vec<Symbol>> = (0..66)
            .map(|i| letters(if i % 2 == 0 { "ABCAACCAB" } else { "BBC" }))
            .collect();
        let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
        let mut d = SuperplaneDriver::<2>::new(&pats).unwrap();
        let plain = d.run(&lanes).unwrap();
        let silent = d.run_with_sink(&lanes, &NullSink).unwrap();
        let sink = MemorySink::new();
        let traced = d.run_with_sink(&lanes, &sink).unwrap();
        assert_eq!(plain, silent);
        assert_eq!(plain, traced);
        // Comparator fires carry the ground-truth popcount across all
        // W words, occupancy-masked.
        let fired: u32 = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ComparatorFire { lanes, .. } => Some(*lanes),
                _ => None,
            })
            .sum();
        let truth: u32 = plain.iter().map(|h| h.count() as u32).sum();
        assert_eq!(fired, truth);
        let injected = sink
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::TextInjected { .. }))
            .count();
        assert_eq!(injected, 9); // tmax text positions
    }

    #[test]
    fn simd_level_is_stable_and_printable() {
        let level = simd_level();
        assert_eq!(level, simd_level(), "detection must be cached");
        assert!(["portable", "avx2", "avx512"].contains(&level.name()));
        assert_eq!(level.to_string(), level.name());
    }

    #[test]
    fn upset_hook_flips_exactly_the_named_bit() {
        let pats: Vec<Pattern> = (0..3).map(|_| Pattern::parse("AXC").unwrap()).collect();
        let texts: Vec<Vec<Symbol>> = (0..3).map(|_| letters("ABCAACCAB")).collect();
        let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
        let mut d = SuperplaneDriver::<2>::new(&pats).unwrap();
        let clean = d.run(&lanes).unwrap();
        // No upsets: bit-identical to run().
        assert_eq!(d.run_with_upsets(&lanes, &[]).unwrap(), clean);
        // One upset: exactly one bit of exactly one lane differs.
        let upset = d.run_with_upsets(&lanes, &[(5, 1)]).unwrap();
        for (l, (got, want)) in upset.iter().zip(&clean).enumerate() {
            if l == 1 {
                assert_ne!(got, want);
                let diffs = got
                    .bits()
                    .iter()
                    .zip(want.bits())
                    .filter(|(a, b)| a != b)
                    .count();
                assert_eq!(diffs, 1);
                assert_eq!(got.bit(5), !want.bit(5));
            } else {
                assert_eq!(got, want, "lane {l} must be untouched");
            }
        }
        // Out-of-range upsets are ignored.
        assert_eq!(
            d.run_with_upsets(&lanes, &[(999, 0), (0, 99)]).unwrap(),
            clean
        );
    }
}
