//! Bit-plane batched matching: 64 independent text streams per word.
//!
//! The paper's throughput argument (§1) is that the chip's data rate —
//! one character every 250 ns — comes from doing all `k+1` comparisons
//! of a window concurrently in space. This module makes the transposed
//! observation for software: the per-cell state of the boolean matcher
//! is *one bit* (`t`, `λ`, `x`, the per-bit comparator outputs of
//! Figure 3-4), so 64 **independent** streams can be packed into the 64
//! bit positions of a `u64` and stepped together with branch-free
//! bitwise logic. Each bit position is called a *lane*; a `u64` holding
//! one state bit for every lane is a *plane*.
//!
//! Two engines live here, at opposite ends of a fidelity/throughput
//! trade:
//!
//! * [`PlaneDriver`] runs lane-planes through the **existing** systolic
//!   machinery — [`LaneBoolean`] is a [`MeetSemantics`] instance whose
//!   accumulator is a `u64` plane, so the unmodified
//!   [`Driver`]/[`Segment`](crate::segment::Segment)
//!   choreography (opposing streams, recirculation, `λ` emission)
//!   advances 64 matches per beat. This is the beat-accurate batched
//!   array, golden-tested against the scalar engines.
//! * [`BatchMatcher`] is the throughput engine: it drops the beat
//!   choreography and keeps only the cell algebra, advancing every lane
//!   one text position per step with `k+1` word operations — the
//!   accumulator recurrence `t ← t ∧ (x ∨ d)` evaluated as plane
//!   arithmetic. Patterns are pre-compiled to control-bit planes
//!   ([`CompiledPattern`]), which is what the `pm-chip` pattern cache
//!   stores. Lanes may carry *different* patterns of *different*
//!   lengths ([`match_lanes`]); ragged lane counts (`N % 64 ≠ 0`) are
//!   handled by chunking.
//!
//! 64 lanes is the width of *one machine word*, not the engine
//! maximum: [`crate::superplane`] generalises the same kernel to
//! `[u64; W]` superplanes (256 lanes at `W = 4`, 512 at `W = 8`) with
//! runtime-dispatched SIMD specialisations, and this module's engines
//! are exactly that kernel instantiated at `W = 1` — the shared
//! [`eq_superplane`](crate::superplane)/
//! [`step_superplanes`](crate::superplane) logic guarantees the two
//! agree bit for bit. Reach for [`SuperMatcher`](crate::superplane::SuperMatcher)
//! when batches exceed 64 streams.
//!
//! Both engines are bit-identical to
//! [`match_spec`](crate::spec::match_spec) on every lane
//! (property-tested in `tests/proptests.rs`).
//!
//! ```
//! use pm_systolic::batch::BatchMatcher;
//! use pm_systolic::symbol::{Pattern, text_from_letters};
//!
//! # fn main() -> Result<(), pm_systolic::Error> {
//! let m = BatchMatcher::new(&Pattern::parse("AXC")?);
//! let texts = [
//!     text_from_letters("ABCAACCAB")?, // the paper's Figure 3-1 text
//!     text_from_letters("CCCAAC")?,
//! ];
//! let lanes: Vec<&[_]> = texts.iter().map(|t| t.as_slice()).collect();
//! let hits = m.match_streams(&lanes)?;
//! assert_eq!(hits[0].ending_positions(), vec![2, 5, 6]);
//! assert_eq!(hits[1].ending_positions(), vec![5]);
//! # Ok(())
//! # }
//! ```

use crate::engine::{BeatExit, Driver, MatchBits};
use crate::error::Error;
use crate::semantics::MeetSemantics;
use crate::superplane::{eq_superplane, step_superplanes, SuperPlanes};
use crate::symbol::{PatSym, Pattern, Symbol};
use crate::telemetry::{ClockPhase, TraceEvent, TraceSink};

/// Number of independent streams packed into one word of planes — one
/// word's worth, not the engine maximum (see [`crate::superplane`] for
/// the `W × 64`-lane generalisation).
pub const LANES: usize = 64;

/// Maximum alphabet width in bits (mirrors [`crate::symbol::Alphabet`]).
const MAX_BITS: usize = crate::superplane::MAX_BITS;

/// Comparator plane: lanes where the pattern bit planes equal the text
/// bit planes on every alphabet bit. This is the column of Figure 3-4
/// one-bit comparators evaluated 64 lanes at a time:
/// `d = ∧_b ¬(p_b ⊕ s_b)` — the shared superplane kernel at `W = 1`.
#[inline]
fn eq_plane(pat_bits: &[u64; MAX_BITS], txt_bits: &[u64; MAX_BITS], bits: u32) -> u64 {
    let pat = pat_bits.map(|w| [w]);
    let txt = txt_bits.map(|w| [w]);
    eq_superplane::<1>(&pat, &txt, bits)[0]
}

/// A pattern compiled to broadcast control-bit planes: for each pattern
/// position `m`, the `x` (wild card) plane and the literal's bit planes,
/// each either all-zeros or all-ones so the same compilation serves any
/// lane assignment. Compiling walks the pattern once; the `pm-chip`
/// scheduler caches these keyed by pattern so repeated patterns skip it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPattern {
    pattern: Pattern,
    /// `wild[m]`: all-ones iff `p_m` is the wild card.
    pub(crate) wild: Vec<u64>,
    /// `bits[m][b]`: all-ones iff bit `b` (LSB first) of `p_m` is set.
    pub(crate) bits: Vec<[u64; MAX_BITS]>,
}

impl CompiledPattern {
    /// Compiles a pattern into broadcast control planes.
    pub fn compile(pattern: &Pattern) -> Self {
        let mut wild = Vec::with_capacity(pattern.len());
        let mut bits = Vec::with_capacity(pattern.len());
        for sym in pattern.symbols() {
            match sym {
                PatSym::Wild => {
                    wild.push(!0u64);
                    bits.push([0u64; MAX_BITS]);
                }
                PatSym::Lit(s) => {
                    wild.push(0u64);
                    let v = s.value();
                    let mut planes = [0u64; MAX_BITS];
                    for (b, plane) in planes.iter_mut().enumerate() {
                        if (v >> b) & 1 == 1 {
                            *plane = !0u64;
                        }
                    }
                    bits.push(planes);
                }
            }
        }
        CompiledPattern {
            pattern: pattern.clone(),
            wild,
            bits,
        }
    }

    /// The source pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Pattern length `k+1`.
    pub fn len(&self) -> usize {
        self.wild.len()
    }

    /// Never true: patterns are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.wild.is_empty()
    }
}

/// Runs the `W = 1` engine over per-lane texts (lengths may differ)
/// and returns one result vector per lane, aligned to text positions
/// exactly like [`match_spec`](crate::spec::match_spec).
///
/// This keeps the original per-position transpose loop rather than the
/// strip-mined tile transpose of [`crate::superplane`]: the single-word
/// engine is the measured baseline of figures E29/E31, so its inner
/// loop stays byte-for-byte what those figures historically timed. The
/// *algebra* (eq/step) is the shared superplane kernel at `W = 1`.
fn run_narrow(planes: &SuperPlanes<1>, texts: &[&[Symbol]]) -> Vec<Vec<bool>> {
    debug_assert!(texts.len() <= LANES);
    let tmax = texts.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut state = vec![[0u64; 1]; planes.kmax];
    let mut out: Vec<Vec<bool>> = texts.iter().map(|t| vec![false; t.len()]).collect();
    for i in 0..tmax {
        // Transpose this text position into bit planes. Exhausted
        // lanes contribute zero planes; their state keeps stepping
        // harmlessly because their outputs are no longer recorded.
        let mut txt_bits = [[0u64; 1]; MAX_BITS];
        let mut vor = 0u8;
        for (l, t) in texts.iter().enumerate() {
            if let Some(sym) = t.get(i) {
                let v = sym.value();
                vor |= v;
                let lane = 1u64 << l;
                for (b, plane) in txt_bits.iter_mut().enumerate() {
                    if (v >> b) & 1 == 1 {
                        plane[0] |= lane;
                    }
                }
            }
        }
        // Widen the compared planes when a text symbol carries bits
        // above the patterns' alphabet: a literal can never equal such
        // a symbol, and comparing only the alphabet planes would alias
        // it onto an in-alphabet value. Free when text and pattern
        // share an alphabet (the common case).
        let eff_bits = planes.bits.max(8 - vor.leading_zeros());
        let r = step_superplanes(
            &planes.wild,
            &planes.pbits,
            &planes.end,
            &planes.end_positions,
            eff_bits,
            &mut state,
            &txt_bits,
        )[0];
        for (l, o) in out.iter_mut().enumerate() {
            if i < o.len() {
                o[i] = (r >> l) & 1 == 1;
            }
        }
    }
    out
}

/// Matches one compiled pattern against up to [`LANES`] texts in a
/// single word batch. Lower-level building block for schedulers that
/// manage their own chunking; most callers want
/// [`BatchMatcher::match_streams`], which chunks automatically.
///
/// # Errors
///
/// [`Error::TooManyLanes`] if more than 64 texts are supplied.
pub fn match_uniform(
    compiled: &CompiledPattern,
    texts: &[&[Symbol]],
) -> Result<Vec<MatchBits>, Error> {
    if texts.len() > LANES {
        return Err(Error::TooManyLanes {
            lanes: texts.len(),
            capacity: LANES,
        });
    }
    if texts.is_empty() {
        return Ok(Vec::new());
    }
    let planes = SuperPlanes::<1>::uniform(compiled);
    let k = compiled.pattern.k();
    Ok(run_narrow(&planes, texts)
        .into_iter()
        .map(|bits| MatchBits::new(bits, k))
        .collect())
}

/// Matches up to [`LANES`] independent `(pattern, text)` jobs in one
/// word batch; every lane may carry a different pattern of a different
/// length. Returns one [`MatchBits`] per job, in order.
///
/// # Errors
///
/// [`Error::TooManyLanes`] if more than 64 jobs are supplied.
pub fn match_lanes(jobs: &[(&CompiledPattern, &[Symbol])]) -> Result<Vec<MatchBits>, Error> {
    if jobs.len() > LANES {
        return Err(Error::TooManyLanes {
            lanes: jobs.len(),
            capacity: LANES,
        });
    }
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let compiled: Vec<&CompiledPattern> = jobs.iter().map(|(c, _)| *c).collect();
    let texts: Vec<&[Symbol]> = jobs.iter().map(|(_, t)| *t).collect();
    let planes = SuperPlanes::<1>::merge(&compiled)?;
    Ok(run_narrow(&planes, &texts)
        .into_iter()
        .zip(&compiled)
        .map(|(bits, c)| MatchBits::new(bits, c.pattern.k()))
        .collect())
}

/// The batched throughput engine for one pattern: any number of
/// independent text streams, processed 64 per word. See the
/// [module docs](self) for how it relates to the systolic array, and
/// [`SuperMatcher`](crate::superplane::SuperMatcher) for the same
/// engine at 256/512 lanes per batch.
#[derive(Debug, Clone)]
pub struct BatchMatcher {
    compiled: CompiledPattern,
}

impl BatchMatcher {
    /// Compiles `pattern` into control-bit planes.
    pub fn new(pattern: &Pattern) -> Self {
        BatchMatcher {
            compiled: CompiledPattern::compile(pattern),
        }
    }

    /// Wraps an already-compiled pattern (e.g. one from a cache).
    pub fn from_compiled(compiled: CompiledPattern) -> Self {
        BatchMatcher { compiled }
    }

    /// The compiled control planes.
    pub fn compiled(&self) -> &CompiledPattern {
        &self.compiled
    }

    /// The pattern this matcher was built for.
    pub fn pattern(&self) -> &Pattern {
        self.compiled.pattern()
    }

    /// Matches every text stream against the pattern, 64 lanes per word
    /// batch; `texts.len()` is unbounded and need not be a multiple of
    /// 64 (the last chunk simply runs with idle lanes). 64 is the width
    /// of this `u64` instance, not an engine limit —
    /// [`SuperMatcher::match_streams`](crate::superplane::SuperMatcher::match_streams)
    /// packs up to 512 lanes per batch.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for stream
    /// validation, mirroring the scalar matcher's API.
    pub fn match_streams(&self, texts: &[&[Symbol]]) -> Result<Vec<MatchBits>, Error> {
        let mut out = Vec::with_capacity(texts.len());
        for chunk in texts.chunks(LANES) {
            out.extend(match_uniform(&self.compiled, chunk)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// The MeetSemantics integration: lane planes through the real array.
// ---------------------------------------------------------------------

/// Pattern payload for the batched semantics: one pattern position
/// across all lanes — the literal's bit planes and the `x` plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LanePat {
    /// Bit planes of the literal, LSB first.
    pub bits: [u64; MAX_BITS],
    /// Lanes where this position is the wild card.
    pub wild: u64,
}

/// Text payload for the batched semantics: one text position across
/// all lanes, as bit planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneTxt {
    /// Bit planes of the symbols, LSB first.
    pub bits: [u64; MAX_BITS],
}

/// [`MeetSemantics`] instance whose accumulator is a 64-lane plane:
/// the unmodified systolic [`Driver`] advances
/// 64 boolean matches per beat. All lanes share the pattern *length*
/// (one `λ` bit serves every lane); contents may differ per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneBoolean {
    /// Alphabet width in bits (the number of comparator planes).
    pub bits: u32,
}

impl MeetSemantics for LaneBoolean {
    type Pat = LanePat;
    type Txt = LaneTxt;
    type Acc = u64;
    type Out = u64;

    fn fresh(&self) -> u64 {
        !0u64 // t ← TRUE, in every lane at once
    }

    fn absorb(&self, acc: &mut u64, pat: &LanePat, txt: &LaneTxt) {
        // t ← t ∧ (x ∨ d), 64 lanes per word operation.
        *acc &= pat.wild | eq_plane(&pat.bits, &txt.bits, self.bits);
    }

    fn finish(&self, acc: u64) -> u64 {
        acc
    }
}

/// Packs up to 64 equal-length patterns into lane-plane pattern items
/// for [`LaneBoolean`].
///
/// # Errors
///
/// * [`Error::EmptyPattern`] if no patterns are given.
/// * [`Error::TooManyLanes`] for more than 64.
/// * [`Error::RaggedLanePatterns`] if the lengths differ — the shared
///   `λ` bit of the pattern stream cannot serve two lengths at once
///   (use [`match_lanes`] for ragged batches).
pub fn pack_patterns(patterns: &[Pattern]) -> Result<Vec<LanePat>, Error> {
    let first = patterns.first().ok_or(Error::EmptyPattern)?;
    if patterns.len() > LANES {
        return Err(Error::TooManyLanes {
            lanes: patterns.len(),
            capacity: LANES,
        });
    }
    let k1 = first.len();
    if patterns.iter().any(|p| p.len() != k1) {
        return Err(Error::RaggedLanePatterns);
    }
    let mut items = vec![
        LanePat {
            bits: [0u64; MAX_BITS],
            wild: 0,
        };
        k1
    ];
    for (l, p) in patterns.iter().enumerate() {
        let lane = 1u64 << l;
        for (m, sym) in p.symbols().iter().enumerate() {
            match sym {
                PatSym::Wild => items[m].wild |= lane,
                PatSym::Lit(s) => {
                    let v = s.value();
                    for (b, plane) in items[m].bits.iter_mut().enumerate() {
                        if (v >> b) & 1 == 1 {
                            *plane |= lane;
                        }
                    }
                }
            }
        }
    }
    Ok(items)
}

/// The beat-accurate batched matcher: lane planes flowing through the
/// existing [`Driver`] with [`LaneBoolean`]
/// semantics. One beat of this driver is one beat of the scalar array —
/// in all 64 lanes simultaneously.
#[derive(Debug, Clone)]
pub struct PlaneDriver {
    driver: Driver<LaneBoolean>,
    k: usize,
    lanes: usize,
}

impl PlaneDriver {
    /// Builds a batched driver over `patterns` (up to 64, equal length;
    /// the array gets exactly `k+1` cells as in §3.2.1).
    ///
    /// # Errors
    ///
    /// As [`pack_patterns`].
    pub fn new(patterns: &[Pattern]) -> Result<Self, Error> {
        let items = pack_patterns(patterns)?;
        let bits = patterns
            .iter()
            .map(|p| p.alphabet().bits())
            .max()
            .unwrap_or(1);
        let cells = items.len();
        let k = cells - 1;
        let driver = Driver::new(LaneBoolean { bits }, items, &[cells])?;
        Ok(PlaneDriver {
            driver,
            k,
            lanes: patterns.len(),
        })
    }

    /// Number of occupied lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs every lane's text through the array (texts may have
    /// different lengths; shorter lanes idle on zero planes, whose
    /// results are discarded) and returns one [`MatchBits`] per lane.
    ///
    /// This is the un-instrumented path, preserved verbatim so the
    /// telemetry A/B in `pm-bench` (E30) has a true baseline;
    /// [`run_with_sink`](Self::run_with_sink) is the traced twin and is
    /// tested bit-identical to it.
    pub fn run(&mut self, texts: &[&[Symbol]]) -> Result<Vec<MatchBits>, Error> {
        if texts.len() != self.lanes {
            return Err(Error::TooManyLanes {
                lanes: texts.len(),
                capacity: self.lanes,
            });
        }
        let stream = self.transpose(texts);
        let planes = self.driver.run(&stream);
        Ok(self.collect(texts, |i| planes[i]))
    }

    /// As [`run`](Self::run), but emits beat-level [`TraceEvent`]s into
    /// `sink`: two [`TraceEvent::Clock`] phases per beat,
    /// [`TraceEvent::TextInjected`] on text beats, and one
    /// [`TraceEvent::ComparatorFire`] per exiting result with the
    /// popcount of matching *occupied* lanes.
    ///
    /// The sink is a generic parameter so a
    /// [`NullSink`](crate::telemetry::NullSink) monomorphises the
    /// emission sites away; `run_with_sink(texts, &NullSink)` compiles
    /// to the same machine loop as [`run`](Self::run).
    pub fn run_with_sink<K: TraceSink>(
        &mut self,
        texts: &[&[Symbol]],
        sink: &K,
    ) -> Result<Vec<MatchBits>, Error> {
        if texts.len() != self.lanes {
            return Err(Error::TooManyLanes {
                lanes: texts.len(),
                capacity: self.lanes,
            });
        }
        let stream = self.transpose(texts);
        self.driver.reset();
        // Per-position occupancy: lanes whose text still covers position
        // `i`. Exhausted lanes idle on zero planes and may fire
        // spuriously, so the comparator popcount masks them out. Only
        // emission reads this, so a disabled sink skips the build too.
        let occupancy: Vec<u64> = if !sink.enabled() {
            Vec::new()
        } else {
            (0..stream.len())
                .map(|i| {
                    texts
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| i < t.len())
                        .fold(0u64, |m, (l, _)| m | (1u64 << l))
                })
                .collect()
        };
        let mut planes = vec![0u64; stream.len()];
        // Feed: one bus cycle (two beats) per text plane, injecting on
        // the driver's text beats — the same schedule as Driver::run.
        for (seq, item) in stream.iter().enumerate() {
            let mut item = Some(item.clone());
            for _ in 0..2 {
                let beat = self.driver.beat();
                let phase = self.driver.phase();
                let is_text_beat = beat >= phase && (beat - phase).is_multiple_of(2);
                let inject = if is_text_beat { item.take() } else { None };
                if sink.enabled() && inject.is_some() {
                    sink.record(TraceEvent::TextInjected {
                        beat,
                        seq: seq as u64,
                    });
                }
                let exit = self.driver.advance_beat(inject);
                self.note_exit(exit, &occupancy, &mut planes, sink);
            }
            debug_assert!(item.is_none(), "no text slot in one bus cycle");
        }
        // Drain: same slack bound as Driver::drain.
        let slack = (self.driver.total_cells() + 2 * self.driver.pattern_len() + 4) as u64;
        for _ in 0..(2 * slack) {
            let exit = self.driver.advance_beat(None);
            self.note_exit(exit, &occupancy, &mut planes, sink);
        }
        Ok(self.collect(texts, |i| planes[i]))
    }

    /// Books one beat's exits: stores complete-window result planes and
    /// emits the clock/comparator events for the beat just executed.
    fn note_exit<K: TraceSink>(
        &self,
        exit: BeatExit<LaneBoolean>,
        occupancy: &[u64],
        planes: &mut [u64],
        sink: &K,
    ) {
        if sink.enabled() {
            sink.record(TraceEvent::Clock {
                beat: exit.beat,
                phase: ClockPhase::Phi1,
            });
            sink.record(TraceEvent::Clock {
                beat: exit.beat,
                phase: ClockPhase::Phi2,
            });
        }
        if let Some(res) = exit.result {
            let i = res.seq as usize;
            if i >= self.k && i < planes.len() {
                planes[i] = res.value;
                if sink.enabled() {
                    sink.record(TraceEvent::ComparatorFire {
                        beat: exit.beat,
                        seq: res.seq,
                        lanes: (res.value & occupancy[i]).count_ones(),
                    });
                }
            }
        }
    }

    /// Transposes per-lane texts into the per-position bit-plane stream.
    fn transpose(&self, texts: &[&[Symbol]]) -> Vec<LaneTxt> {
        let tmax = texts.iter().map(|t| t.len()).max().unwrap_or(0);
        (0..tmax)
            .map(|i| {
                let mut bits = [0u64; MAX_BITS];
                for (l, t) in texts.iter().enumerate() {
                    if let Some(sym) = t.get(i) {
                        let v = sym.value();
                        let lane = 1u64 << l;
                        for (b, plane) in bits.iter_mut().enumerate() {
                            if (v >> b) & 1 == 1 {
                                *plane |= lane;
                            }
                        }
                    }
                }
                LaneTxt { bits }
            })
            .collect()
    }

    /// Slices per-position result planes back into per-lane [`MatchBits`].
    fn collect(&self, texts: &[&[Symbol]], plane_at: impl Fn(usize) -> u64) -> Vec<MatchBits> {
        texts
            .iter()
            .enumerate()
            .map(|(l, t)| {
                let bits = (0..t.len()).map(|i| (plane_at(i) >> l) & 1 == 1).collect();
                MatchBits::new(bits, self.k)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::match_spec;
    use crate::symbol::text_from_letters;

    fn letters(s: &str) -> Vec<Symbol> {
        text_from_letters(s).unwrap()
    }

    #[test]
    fn figure_3_1_in_every_lane() {
        let m = BatchMatcher::new(&Pattern::parse("AXC").unwrap());
        let t = letters("ABCAACCAB");
        let texts: Vec<&[Symbol]> = (0..LANES + 7).map(|_| t.as_slice()).collect();
        let hits = m.match_streams(&texts).unwrap();
        assert_eq!(hits.len(), LANES + 7);
        for h in hits {
            assert_eq!(h.ending_positions(), vec![2, 5, 6]);
        }
    }

    #[test]
    fn uniform_batch_matches_spec_on_distinct_texts() {
        let p = Pattern::parse("ABXA").unwrap();
        let m = BatchMatcher::new(&p);
        let texts = [
            letters("ABCABBAACBA"),
            letters("ABBA"),
            letters(""),
            letters("A"),
            letters("ABCAABBAABCAABBA"),
        ];
        let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
        let hits = m.match_streams(&lanes).unwrap();
        for (h, t) in hits.iter().zip(&texts) {
            assert_eq!(h.bits(), match_spec(t, &p), "text {t:?}");
        }
    }

    #[test]
    fn literal_never_matches_a_symbol_outside_the_pattern_alphabet() {
        // Pattern "AB" compiles to a 2-bit alphabet; E (100) and F
        // (101) alias to A (00) and B (01) on the low planes. The
        // kernel must widen the comparison for such positions rather
        // than report "EF" as "AB" — regression for the dynamic-width
        // fix in run_narrow.
        let p = Pattern::parse("AB").unwrap();
        let compiled = CompiledPattern::compile(&p);
        let wide = letters("DEFGDEFGABDEFG");
        let narrow = letters("ABAB");
        let texts: Vec<&[Symbol]> = vec![&narrow, &wide];
        let hits = match_uniform(&compiled, &texts).unwrap();
        assert_eq!(hits[0].bits(), match_spec(&narrow, &p));
        assert_eq!(hits[1].bits(), match_spec(&wide, &p));
        assert_eq!(hits[1].ending_positions(), vec![9]);
        // Wild cards still match out-of-alphabet symbols.
        let w = Pattern::parse("XB").unwrap();
        let cw = CompiledPattern::compile(&w);
        let hits = match_uniform(&cw, &[&wide]).unwrap();
        assert_eq!(hits[0].bits(), match_spec(&wide, &w));
    }

    #[test]
    fn mixed_lanes_with_ragged_pattern_lengths() {
        let pats = [
            Pattern::parse("A").unwrap(),
            Pattern::parse("AXC").unwrap(),
            Pattern::parse("BBBBB").unwrap(),
            Pattern::parse("XX").unwrap(),
        ];
        let compiled: Vec<CompiledPattern> = pats.iter().map(CompiledPattern::compile).collect();
        let text = letters("ABCAACCABBBBBAB");
        let jobs: Vec<(&CompiledPattern, &[Symbol])> =
            compiled.iter().map(|c| (c, text.as_slice())).collect();
        let hits = match_lanes(&jobs).unwrap();
        for (h, p) in hits.iter().zip(&pats) {
            assert_eq!(h.bits(), match_spec(&text, p), "pattern {p}");
        }
    }

    #[test]
    fn lane_limits_are_enforced() {
        let p = Pattern::parse("AB").unwrap();
        let c = CompiledPattern::compile(&p);
        let t = letters("AB");
        let too_many: Vec<&[Symbol]> = (0..LANES + 1).map(|_| t.as_slice()).collect();
        assert!(matches!(
            match_uniform(&c, &too_many),
            Err(Error::TooManyLanes {
                lanes: 65,
                capacity: 64
            })
        ));
        assert!(match_uniform(&c, &[]).unwrap().is_empty());
        assert!(match_lanes(&[]).unwrap().is_empty());
    }

    #[test]
    fn plane_driver_equals_spec_per_lane() {
        let pats = [
            Pattern::parse("AXC").unwrap(),
            Pattern::parse("BBC").unwrap(),
            Pattern::parse("XXX").unwrap(),
            Pattern::parse("CAB").unwrap(),
        ];
        let texts = [
            letters("ABCAACCAB"),
            letters("BBCBBC"),
            letters("AB"),
            letters("CABCABCAB"),
        ];
        let mut d = PlaneDriver::new(&pats).unwrap();
        let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
        let hits = d.run(&lanes).unwrap();
        for ((h, p), t) in hits.iter().zip(&pats).zip(&texts) {
            assert_eq!(h.bits(), match_spec(t, p), "pattern {p}");
        }
    }

    #[test]
    fn plane_driver_traced_run_is_bit_identical() {
        use crate::telemetry::{MemorySink, NullSink, TraceEvent};
        let pats = [
            Pattern::parse("AXC").unwrap(),
            Pattern::parse("BBC").unwrap(),
            Pattern::parse("CAB").unwrap(),
        ];
        let texts = [letters("ABCAACCAB"), letters("BBC"), letters("CABCABCAB")];
        let lanes: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
        let mut d = PlaneDriver::new(&pats).unwrap();
        let plain = d.run(&lanes).unwrap();
        let silent = d.run_with_sink(&lanes, &NullSink).unwrap();
        let sink = MemorySink::new();
        let traced = d.run_with_sink(&lanes, &sink).unwrap();
        assert_eq!(plain, silent);
        assert_eq!(plain, traced);
        for ((h, p), t) in plain.iter().zip(&pats).zip(&texts) {
            assert_eq!(h.bits(), match_spec(t, p), "pattern {p}");
        }
        // Two clock phases per beat; beats = 2·tmax feed + 2·slack drain.
        let events = sink.events();
        let clocks = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Clock { .. }))
            .count();
        let slack = 3 + 2 * 3 + 4; // total_cells + 2·pattern_len + 4
        assert_eq!(clocks, 2 * (2 * 9 + 2 * slack));
        let injected = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::TextInjected { .. }))
            .count();
        assert_eq!(injected, 9); // one per text position (tmax)
                                 // Comparator fires carry the ground-truth lane popcount.
        let fired: u32 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ComparatorFire { lanes, .. } => Some(*lanes),
                _ => None,
            })
            .sum();
        let truth: u32 = plain.iter().map(|h| h.count() as u32).sum();
        assert_eq!(fired, truth);
    }

    #[test]
    fn plane_driver_rejects_ragged_patterns() {
        let pats = [
            Pattern::parse("AB").unwrap(),
            Pattern::parse("ABC").unwrap(),
        ];
        assert!(matches!(
            PlaneDriver::new(&pats),
            Err(Error::RaggedLanePatterns)
        ));
        assert!(matches!(PlaneDriver::new(&[]), Err(Error::EmptyPattern)));
    }

    #[test]
    fn eight_bit_alphabet_lanes() {
        use crate::symbol::Alphabet;
        let p = Pattern::from_bytes(b"ab*a", Some(b'*'), Alphabet::EIGHT_BIT).unwrap();
        let m = BatchMatcher::new(&p);
        let t1: Vec<Symbol> = b"abba abca".iter().map(|&b| Symbol::new(b)).collect();
        let t2: Vec<Symbol> = b"xyz".iter().map(|&b| Symbol::new(b)).collect();
        let hits = m.match_streams(&[&t1, &t2]).unwrap();
        assert_eq!(hits[0].bits(), match_spec(&t1, &p));
        assert_eq!(hits[1].bits(), match_spec(&t2, &p));
        assert_eq!(hits[0].ending_positions(), vec![3, 8]);
    }
}
