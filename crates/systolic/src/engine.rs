//! The beat engine: a host-side driver for a chain of array segments.
//!
//! The paper's host computer feeds the chip two interleaved streams over
//! one bus — "the pattern and the text string arrive alternately over the
//! bus one character at a time" (§3.2.1) — recirculates the pattern so
//! that `p0` follows two beats after `pk`, and reads one result bit per
//! text character. [`Driver`] plays that host role for any number of
//! cascaded [`Segment`]s and any [`MeetSemantics`].
//!
//! ## Injection schedule
//!
//! Beats are numbered from 0. Pattern items are injected into the left
//! end on every even beat (`p_j` at beat `2j`, recirculating with period
//! `k+1` items). Text items are injected into the right end every other
//! beat with a phase offset `φ = (N−1) mod 2` (`s_i` at beat `2i+φ`),
//! where `N` is the total cell count. The offset makes `N−1+φ` even,
//! which is the condition for opposing items to *meet* in a cell instead
//! of passing between cells; for the even-sized arrays of the prototype
//! chip it yields exactly the alternating pattern/text bus of Figure 3-1.
//!
//! With this schedule, `p_j` and `s_i` meet in cell `(N−1+φ)/2 + i − j`
//! (mod the recirculation), all `k+1` pairs of one result meet in the
//! *same* cell on consecutive active beats, and `r_i` leaves the left end
//! of the array on the same beat as `s_i` — the invariants the paper
//! walks through in §3.2.1, which the tests here check mechanically.

use crate::error::Error;
use crate::segment::{PatItem, ResItem, Segment, SegmentIo, TxtItem};
use crate::semantics::MeetSemantics;

/// What left the array chain during one beat.
#[derive(Debug, Clone)]
pub struct BeatExit<S: MeetSemantics> {
    /// Beat number just completed.
    pub beat: u64,
    /// Text item that left the array's left end, if any.
    pub text: Option<TxtItem<S::Txt>>,
    /// Result item that left the array's left end, if any.
    pub result: Option<ResItem<S::Out>>,
    /// Pattern item that left the array's right end, if any. A lone chip
    /// drops this on the floor; a cascade feeds it to the next chip.
    pub pattern: Option<PatItem<S::Pat>>,
}

/// Host-side driver: owns a chain of segments, schedules injection,
/// recirculates the pattern and collects results.
#[derive(Debug, Clone)]
pub struct Driver<S: MeetSemantics> {
    segments: Vec<Segment<S>>,
    pattern: Vec<S::Pat>,
    beat: u64,
    next_seq: u64,
    total_cells: usize,
}

impl<S: MeetSemantics + Clone> Driver<S> {
    /// Builds a driver over a chain of segments with the given cell
    /// counts (one entry per chip, left to right) and the pattern items
    /// to recirculate.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyPattern`] if `pattern` is empty.
    /// * [`Error::NoSegments`] if `segment_cells` is empty.
    /// * [`Error::ArrayTooSmall`] if the cells don't cover the pattern.
    pub fn new(sem: S, pattern: Vec<S::Pat>, segment_cells: &[usize]) -> Result<Self, Error> {
        if pattern.is_empty() {
            return Err(Error::EmptyPattern);
        }
        if segment_cells.is_empty() {
            return Err(Error::NoSegments);
        }
        let total: usize = segment_cells.iter().sum();
        if total < pattern.len() {
            return Err(Error::ArrayTooSmall {
                cells: total,
                pattern_len: pattern.len(),
            });
        }
        let segments = segment_cells
            .iter()
            .map(|&n| Segment::new(sem.clone(), n))
            .collect();
        Ok(Driver {
            segments,
            pattern,
            beat: 0,
            next_seq: 0,
            total_cells: total,
        })
    }
}

impl<S: MeetSemantics> Driver<S> {
    /// Total number of character cells across all segments.
    pub fn total_cells(&self) -> usize {
        self.total_cells
    }

    /// Number of chained segments (chips).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The text injection phase `φ = (N−1) mod 2`.
    pub fn phase(&self) -> u64 {
        ((self.total_cells - 1) % 2) as u64
    }

    /// Pattern length `k+1`.
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }

    /// Read-only access to the segments (for tracing).
    pub fn segments(&self) -> &[Segment<S>] {
        &self.segments
    }

    /// Current beat number (the number of beats executed so far).
    pub fn beat(&self) -> u64 {
        self.beat
    }

    /// Clears all array state and restarts the beat counter.
    pub fn reset(&mut self) {
        for seg in &mut self.segments {
            seg.reset();
        }
        self.beat = 0;
        self.next_seq = 0;
    }

    /// Advances the whole chain one beat, injecting `text` at the right
    /// end if this is a text beat and `text` is `Some`, and always
    /// injecting the recirculating pattern on pattern beats.
    ///
    /// **Protocol note:** the host must fill every text slot for the
    /// defining equation to hold — "the data streams move at a steady
    /// rate … with a constant time between data items" (§3.1). A slot
    /// left empty mid-stream contributes *no comparison* to the windows
    /// that span it: for the boolean matcher the hole behaves like a
    /// wild-card text character, for the counter like a mismatch. The
    /// higher-level [`feed`](Driver::feed)/[`run`](Driver::run) APIs
    /// never leave holes.
    ///
    /// Returns everything that left the chain this beat.
    pub fn advance_beat(&mut self, text: Option<S::Txt>) -> BeatExit<S> {
        let t = self.beat;

        // Pattern port: p_j at beat 2j, recirculating.
        let pattern_in = if t.is_multiple_of(2) {
            let j = (t / 2) as usize;
            let idx = j % self.pattern.len();
            Some(PatItem {
                payload: self.pattern[idx].clone(),
                lambda: idx == self.pattern.len() - 1,
            })
        } else {
            None
        };

        // Text port: s_i at beat 2i + φ.
        let text_in = if t >= self.phase() && (t - self.phase()).is_multiple_of(2) {
            text.map(|payload| {
                let item = TxtItem {
                    payload,
                    seq: self.next_seq,
                };
                self.next_seq += 1;
                item
            })
        } else {
            debug_assert!(text.is_none(), "text offered on a non-text beat");
            None
        };

        // Read all boundary wires from pre-beat state (synchronous step).
        let outs: Vec<SegmentIo<S>> = self.segments.iter().map(|s| s.outputs()).collect();
        let n = self.segments.len();

        let exit = BeatExit {
            beat: t,
            text: outs[0].text.clone(),
            result: outs[0].result.clone(),
            pattern: outs[n - 1].pattern.clone(),
        };

        // Wire and step: pattern flows left→right (segment i feeds i+1),
        // text/result right→left (segment i+1 feeds i).
        for i in 0..n {
            let pattern = if i == 0 {
                pattern_in.clone()
            } else {
                outs[i - 1].pattern.clone()
            };
            let (txt, res) = if i == n - 1 {
                (text_in.clone(), None)
            } else {
                (outs[i + 1].text.clone(), outs[i + 1].result.clone())
            };
            self.segments[i].step(SegmentIo {
                pattern,
                text: txt,
                result: res,
            });
        }

        self.beat += 1;
        exit
    }

    /// Feeds one text character and advances two beats (one bus cycle:
    /// a pattern beat and a text beat). Returns any result that left the
    /// array during the cycle, tagged with its text position.
    pub fn feed(&mut self, txt: S::Txt) -> Vec<(u64, S::Out)> {
        let mut done = Vec::new();
        let mut txt = Some(txt);
        for _ in 0..2 {
            let is_text_beat =
                self.beat >= self.phase() && (self.beat - self.phase()).is_multiple_of(2);
            let inject = if is_text_beat { txt.take() } else { None };
            let exit = self.advance_beat(inject);
            if let Some(res) = exit.result {
                done.push((res.seq, res.value));
            }
        }
        debug_assert!(
            txt.is_none(),
            "driver failed to find a text slot in one bus cycle"
        );
        done
    }

    /// Runs the array until every in-flight text item has exited,
    /// returning remaining results.
    pub fn drain(&mut self) -> Vec<(u64, S::Out)> {
        let mut done = Vec::new();
        // Everything injected exits after at most N more beats; add the
        // recirculation period as slack for the final λ.
        let slack = (self.total_cells + 2 * self.pattern.len() + 4) as u64;
        for _ in 0..(2 * slack) {
            let exit = self.advance_beat(None);
            if let Some(res) = exit.result {
                done.push((res.seq, res.value));
            }
        }
        done
    }

    /// Complete run over a finite text: resets the array, feeds every
    /// character, drains, and returns one output per text position.
    /// Positions `i < k` (incomplete windows) hold `S::Out::default()`.
    pub fn run(&mut self, text: &[S::Txt]) -> Vec<S::Out>
    where
        S::Txt: Clone,
    {
        self.reset();
        let k = self.pattern.len() - 1;
        let mut out: Vec<S::Out> = vec![S::Out::default(); text.len()];
        let mut seen = vec![false; text.len()];
        let record = |pairs: Vec<(u64, S::Out)>, out: &mut Vec<S::Out>, seen: &mut Vec<bool>| {
            for (seq, value) in pairs {
                let i = seq as usize;
                if i >= k && i < out.len() {
                    out[i] = value;
                    seen[i] = true;
                }
            }
        };
        for ch in text {
            let pairs = self.feed(ch.clone());
            record(pairs, &mut out, &mut seen);
        }
        let pairs = self.drain();
        record(pairs, &mut out, &mut seen);
        debug_assert!(
            seen.iter().skip(k).all(|&b| b),
            "every complete window must produce a result"
        );
        out
    }
}

/// The result-bit stream of the boolean matcher, aligned to text
/// positions: `bit(i)` is `r_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchBits {
    bits: Vec<bool>,
    k: usize,
}

impl MatchBits {
    /// Wraps a result vector; `k` is the index of the last pattern char.
    pub fn new(bits: Vec<bool>, k: usize) -> Self {
        MatchBits { bits, k }
    }

    /// The raw result bits, one per text position.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// `r_i` for a single position (false out of range).
    pub fn bit(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    /// Text positions where a match ends, in increasing order.
    ///
    /// ```
    /// use pm_systolic::engine::MatchBits;
    /// let m = MatchBits::new(vec![false, false, true, true], 1);
    /// assert_eq!(m.ending_positions(), vec![2, 3]);
    /// ```
    pub fn ending_positions(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    }

    /// Text positions where a match *starts* (`end − k`).
    pub fn starting_positions(&self) -> Vec<usize> {
        self.ending_positions()
            .iter()
            .map(|&e| e - self.k)
            .collect()
    }

    /// Number of matches found.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Whether any match was found.
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::BooleanMatch;
    use crate::spec::match_spec;
    use crate::symbol::{text_from_letters, Pattern};

    fn run_match(pattern: &str, text: &str, cells: &[usize]) -> Vec<bool> {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        let mut d = Driver::new(BooleanMatch, p.symbols().to_vec(), cells).unwrap();
        d.run(&t)
    }

    fn spec(pattern: &str, text: &str) -> Vec<bool> {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        match_spec(&t, &p)
    }

    #[test]
    fn rejects_bad_configs() {
        let p = Pattern::parse("ABC").unwrap();
        assert!(matches!(
            Driver::new(BooleanMatch, p.symbols().to_vec(), &[]),
            Err(Error::NoSegments)
        ));
        assert!(matches!(
            Driver::new(BooleanMatch, p.symbols().to_vec(), &[2]),
            Err(Error::ArrayTooSmall { .. })
        ));
        assert!(matches!(
            Driver::new(BooleanMatch, vec![], &[4]),
            Err(Error::EmptyPattern)
        ));
    }

    #[test]
    fn figure_3_1_on_the_array() {
        // The paper's running example, on an exactly-sized array.
        assert_eq!(
            run_match("AXC", "ABCAACCAB", &[3]),
            spec("AXC", "ABCAACCAB")
        );
    }

    #[test]
    fn oversized_array_matches_spec() {
        // Arrays larger than the pattern redundantly recompute results;
        // outputs must be identical (§3.2.1 says "no more than" k+1 cells
        // are required — more must not hurt).
        for cells in 3..12 {
            assert_eq!(
                run_match("AXC", "ABCAACCAB", &[cells]),
                spec("AXC", "ABCAACCAB"),
                "cells={cells}"
            );
        }
    }

    #[test]
    fn even_and_odd_arrays_work() {
        for cells in 1..10 {
            assert_eq!(
                run_match("A", "ABAACA", &[cells]),
                spec("A", "ABAACA"),
                "cells={cells}"
            );
        }
    }

    #[test]
    fn cascade_equals_monolithic() {
        let text = "ABCAACCABBACACBBAACCBA";
        let mono = run_match("AXCX", text, &[8]);
        let casc = run_match("AXCX", text, &[2, 2, 2, 2]);
        let casc2 = run_match("AXCX", text, &[3, 5]);
        assert_eq!(mono, casc);
        assert_eq!(mono, casc2);
        assert_eq!(mono, spec("AXCX", text));
    }

    #[test]
    fn streaming_feed_yields_results_online() {
        let p = Pattern::parse("AB").unwrap();
        let t = text_from_letters("AABABB").unwrap();
        let mut d = Driver::new(BooleanMatch, p.symbols().to_vec(), &[2]).unwrap();
        let mut got = Vec::new();
        for ch in &t {
            for (seq, v) in d.feed(*ch) {
                got.push((seq, v));
            }
        }
        for (seq, v) in d.drain() {
            got.push((seq, v));
        }
        // Results arrive in text order.
        let seqs: Vec<u64> = got.iter().map(|&(s, _)| s).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        // And agree with the spec for complete windows.
        let spec_bits = spec("AB", "AABABB");
        for (seq, v) in got {
            if seq >= 1 {
                assert_eq!(v, spec_bits[seq as usize], "r_{seq}");
            }
        }
    }

    #[test]
    fn result_exits_with_its_text_char() {
        // The alignment claim of §3.2.1: each match result leaves the
        // array with the last character of its substring.
        let p = Pattern::parse("AA").unwrap();
        let t = text_from_letters("AAAA").unwrap();
        let mut d = Driver::new(BooleanMatch, p.symbols().to_vec(), &[2]).unwrap();
        let mut beats_text: Vec<(u64, u64)> = Vec::new(); // (seq, exit beat)
        let mut beats_res: Vec<(u64, u64)> = Vec::new();
        for i in 0..40 {
            let is_text_beat = d.beat() >= d.phase() && (d.beat() - d.phase()).is_multiple_of(2);
            let inject = if is_text_beat {
                let i = (d.beat() - d.phase()) / 2;
                if (i as usize) < t.len() {
                    Some(t[i as usize])
                } else {
                    None
                }
            } else {
                None
            };
            let exit = d.advance_beat(inject);
            if let Some(txt) = exit.text {
                beats_text.push((txt.seq, i));
            }
            if let Some(res) = exit.result {
                beats_res.push((res.seq, i));
            }
        }
        for (seq, beat) in &beats_res {
            let text_beat = beats_text.iter().find(|(s, _)| s == seq).map(|(_, b)| *b);
            assert_eq!(text_beat, Some(*beat), "r_{seq} must exit with s_{seq}");
        }
    }

    #[test]
    fn text_slot_holes_behave_like_wildcard_characters() {
        // Documented protocol hazard: skipping a text beat leaves a
        // hole whose comparisons are silently absent, so the window
        // spanning it matches on the remaining positions only.
        let p = Pattern::parse("AB").unwrap();
        let mut d = Driver::new(BooleanMatch, p.symbols().to_vec(), &[2]).unwrap();
        let text = text_from_letters("AB").unwrap();
        let mut injected = 0usize;
        let mut results = Vec::new();
        for beat in 0..30u64 {
            let is_text_beat = beat >= d.phase() && (beat - d.phase()).is_multiple_of(2);
            // Inject A, skip one slot, inject B.
            let slot_index = if is_text_beat {
                (beat - d.phase()) / 2
            } else {
                u64::MAX
            };
            let inject = if is_text_beat && slot_index != 1 && injected < 2 {
                let s = text[injected];
                injected += 1;
                Some(s)
            } else {
                None
            };
            let exit = d.advance_beat(inject);
            if let Some(res) = exit.result {
                results.push((res.seq, res.value));
            }
        }
        // 'B' carries seq 1; its window spans the hole, so only the
        // (p1='B', s1='B') comparison happened — reported as a match,
        // i.e. the hole acted as a wild card. Hence: don't leave holes.
        assert!(results.contains(&(1, true)), "{results:?}");
    }

    #[test]
    fn match_bits_accessors() {
        let m = MatchBits::new(vec![false, true, false, true], 1);
        assert_eq!(m.ending_positions(), vec![1, 3]);
        assert_eq!(m.starting_positions(), vec![0, 2]);
        assert_eq!(m.count(), 2);
        assert!(m.any());
        assert!(m.bit(1));
        assert!(!m.bit(99));
        assert_eq!(m.bits().len(), 4);
    }
}
