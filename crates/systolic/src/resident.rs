//! Resident pattern groups: the superplane engine turned inside out
//! for dictionaries — many patterns, one text.
//!
//! [`crate::superplane`] scales the *stream* dimension: one pattern
//! broadcast over `W × 64` independent texts. The §3.4 chip farm is
//! the transpose: up to `W × 64` *patterns* sit resident in the lanes
//! (one "chip" per lane, cascaded on a shared text bus) and a single
//! text streams past all of them at once. [`ResidentGroup`] is that
//! arrangement as a data structure, and it buys two things over calling
//! [`match_lanes_wide`](crate::superplane::match_lanes_wide) per chunk:
//!
//! * **merge once, stream forever** — the per-lane control planes are
//!   merged at construction and reused for every text chunk, so the
//!   per-chunk cost is the stream pass alone (the planning hook
//!   `pm_chip::dictionary` builds its groups on);
//! * **a cheaper inner loop** — with every lane reading the *same*
//!   text symbol, the comparator `d = ∧_b ¬(p_b ⊕ s_b)` collapses to a
//!   table lookup: for each pattern position `m` and symbol value `v`
//!   the accepting-lane superplane `acc[m][v] = wild[m] ∨ (pat[m] = v)`
//!   is precomputed, and the §3.2.1 recurrence becomes one AND per
//!   pattern position per character — `kmax` vector ops per symbol for
//!   `W × 64` resident patterns, the multi-pattern generalisation of
//!   Shift-Or. The table costs `kmax × |Σ| × W` words (a width-8 group
//!   of 16-long patterns over a 2-bit alphabet: 4 KiB, L1-resident).
//!
//! The kernel is runtime-dispatched exactly like the wide runner:
//! compiled under `#[target_feature]` for AVX2/AVX-512 and selected by
//! [`simd_level`] once per process.
//!
//! ```
//! use pm_systolic::resident::ResidentGroup;
//! use pm_systolic::symbol::{text_from_letters, Pattern};
//!
//! # fn main() -> Result<(), pm_systolic::Error> {
//! let dict = [Pattern::parse("AXC")?, Pattern::parse("AB")?];
//! let group = ResidentGroup::<4>::new(&dict)?; // up to 256 resident patterns
//! let text = text_from_letters("ABCAACCAB").unwrap();
//! // (end position, lane) events, in text order.
//! assert_eq!(group.scan(&text), vec![(1, 1), (2, 0), (5, 0), (6, 0), (8, 1)]);
//! # Ok(())
//! # }
//! ```

// Same sanctioned exception as `superplane`: calling the
// `#[target_feature]` kernel specialisations after
// `is_x86_feature_detected!` has proven the features present.
#![allow(unsafe_code)]

use crate::engine::MatchBits;
use crate::error::Error;
use crate::superplane::{lanes_of, simd_level, SimdLevel, Superplane, MAX_WIDTH};
use crate::symbol::{PatSym, Pattern, Symbol};

/// One match event from a resident group: `(end, lane)` — the pattern
/// resident in `lane` matched the window ending at text position `end`.
pub type LaneHit = (usize, usize);

/// Up to `W × 64` patterns held resident in the lanes of one
/// superplane group, matched against a shared text stream.
///
/// Lanes are assigned in pattern order; ragged lengths are fine (each
/// lane's `λ` plane marks its own end position). Construction merges
/// the control planes once; [`scan`](Self::scan) and
/// [`match_text`](Self::match_text) then stream any number of text
/// chunks through the resident lanes with no per-chunk setup.
#[derive(Debug, Clone)]
pub struct ResidentGroup<const W: usize> {
    /// Occupied lanes (= number of resident patterns).
    lanes: usize,
    /// Longest resident pattern, in characters (`k+1`).
    kmax: usize,
    /// Per-lane `k` (pattern length − 1), for [`MatchBits`] conversion.
    ks: Vec<usize>,
    /// Alphabet columns in the acceptance table (widest lane alphabet).
    size: usize,
    /// `acc[m * size + v]`: lanes whose pattern position `m` accepts
    /// symbol value `v` (wild cards accept every column).
    acc: Vec<Superplane<W>>,
    /// Lanes wild at position `m` — the acceptance column for symbols
    /// outside every lane's alphabet.
    wild: Vec<Superplane<W>>,
    /// `end[m]`: lanes whose pattern ends at position `m`.
    end: Vec<Superplane<W>>,
    /// Positions with a nonzero `end` plane, so the result fold skips
    /// the all-zero majority.
    end_positions: Vec<usize>,
}

impl<const W: usize> ResidentGroup<W> {
    /// Merges `patterns` into resident control planes, one lane each.
    ///
    /// # Errors
    ///
    /// [`Error::TooManyLanes`] for more than `W × 64` patterns.
    pub fn new(patterns: &[Pattern]) -> Result<Self, Error> {
        const { assert!(W >= 1 && W <= MAX_WIDTH) };
        if patterns.len() > lanes_of(W) {
            return Err(Error::TooManyLanes {
                lanes: patterns.len(),
                capacity: lanes_of(W),
            });
        }
        let kmax = patterns.iter().map(|p| p.len()).max().unwrap_or(0);
        let size = patterns
            .iter()
            .map(|p| p.alphabet().size())
            .max()
            .unwrap_or(1);
        let mut group = ResidentGroup {
            lanes: patterns.len(),
            kmax,
            ks: patterns.iter().map(|p| p.k()).collect(),
            size,
            acc: vec![[0u64; W]; kmax * size],
            wild: vec![[0u64; W]; kmax],
            end: vec![[0u64; W]; kmax],
            end_positions: Vec::new(),
        };
        for (l, p) in patterns.iter().enumerate() {
            let (word, bit) = (l / 64, (l % 64) as u32);
            let lane = 1u64 << bit;
            for (m, sym) in p.symbols().iter().enumerate() {
                match sym {
                    PatSym::Wild => {
                        group.wild[m][word] |= lane;
                        for v in 0..size {
                            group.acc[m * size + v][word] |= lane;
                        }
                    }
                    PatSym::Lit(s) => {
                        group.acc[m * size + s.value() as usize][word] |= lane;
                    }
                }
            }
            group.end[p.len() - 1][word] |= lane;
        }
        for (m, e) in group.end.iter().enumerate() {
            if e.iter().any(|&w| w != 0) {
                group.end_positions.push(m);
            }
        }
        Ok(group)
    }

    /// Number of resident patterns (occupied lanes).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lane slots this group's width offers (`W × 64`).
    pub fn capacity(&self) -> usize {
        lanes_of(W)
    }

    /// Longest resident pattern, in characters. A match spans at most
    /// this many text positions — the overlap a chunked caller must
    /// carry between chunks is `kmax() - 1`.
    pub fn kmax(&self) -> usize {
        self.kmax
    }

    /// Bytes held by the precomputed acceptance table (the figure the
    /// "L1-resident" claim in the module docs is about).
    pub fn table_bytes(&self) -> usize {
        (self.acc.len() + self.wild.len() + self.end.len()) * W * 8
    }

    /// Streams `text` past every resident lane once and returns the
    /// match events as `(end, lane)` pairs in text order (ties in lane
    /// order). Symbols outside every lane's alphabet match only wild
    /// cards. Cost per character is `kmax` superplane ANDs however
    /// many lanes are resident.
    pub fn scan(&self, text: &[Symbol]) -> Vec<LaneHit> {
        let mut hits = Vec::new();
        if self.lanes == 0 || self.kmax == 0 {
            return hits;
        }
        match simd_level() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: simd_level() returns Avx512 only after
            // is_x86_feature_detected!("avx512f") succeeded.
            SimdLevel::Avx512 => unsafe { scan_avx512(self, text, &mut hits) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above, for "avx2".
            SimdLevel::Avx2 => unsafe { scan_avx2(self, text, &mut hits) },
            _ => scan_generic(self, text, &mut hits),
        }
        hits
    }

    /// As [`scan`](Self::scan), but expanded to one [`MatchBits`] per
    /// resident lane (the dense per-pattern result-bit form the rest of
    /// the workspace uses) — convenient for differential tests, not for
    /// sparse dictionary streams.
    pub fn match_text(&self, text: &[Symbol]) -> Vec<MatchBits> {
        let mut bits: Vec<Vec<bool>> = (0..self.lanes).map(|_| vec![false; text.len()]).collect();
        for (end, lane) in self.scan(text) {
            bits[lane][end] = true;
        }
        bits.into_iter()
            .zip(&self.ks)
            .map(|(b, &k)| MatchBits::new(b, k))
            .collect()
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scan_avx2<const W: usize>(
    group: &ResidentGroup<W>,
    text: &[Symbol],
    hits: &mut Vec<LaneHit>,
) {
    scan_generic(group, text, hits)
}

// Only "avx512f", as in `superplane`: the kernel is `u64` word logic,
// so the F subset's 512-bit integer ops suffice.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn scan_avx512<const W: usize>(
    group: &ResidentGroup<W>,
    text: &[Symbol],
    hits: &mut Vec<LaneHit>,
) {
    scan_generic(group, text, hits)
}

/// The broadcast-text recurrence: for each character, select the
/// acceptance column for its symbol value and run
/// `state[m] ← state[m−1] ∧ acc[m][v]` high positions first (the
/// `(x ∨ d)` of §3.2.1 is folded into the table).
///
/// `depth` tracks the highest position whose state plane is nonzero —
/// everything above it is semantically zero (and physically stale, so
/// reads are clamped to `depth`). Per character the loop touches
/// `min(depth + 1, kmax − 1)` positions, not `kmax`: on texts where
/// few prefixes stay alive (any realistic dictionary over a byte
/// alphabet) the per-character cost collapses to one or two plane
/// ANDs however long the longest pattern is. Matches are the
/// end-masked fold over positions ≤ `depth`. `#[inline(always)]` so
/// each `#[target_feature]` wrapper compiles the whole loop under its
/// feature set.
#[inline(always)]
fn scan_generic<const W: usize>(
    group: &ResidentGroup<W>,
    text: &[Symbol],
    hits: &mut Vec<LaneHit>,
) {
    let kmax = group.kmax;
    let size = group.size;
    let mut state = vec![[0u64; W]; kmax];
    let mut depth = 0usize;
    for (i, sym) in text.iter().enumerate() {
        let v = sym.value() as usize;
        let col: &[Superplane<W>] = if v < size {
            &group.acc[v..]
        } else {
            &group.wild
        };
        // Column stride: acc is laid out [m][v], so position m's plane
        // for symbol v sits at m*size (+v applied above); the wild
        // fallback is a dense kmax-long column.
        let stride = if v < size { size } else { 1 };
        let lim = (depth + 1).min(kmax - 1);
        let mut newdepth = 0usize;
        for m in (1..=lim).rev() {
            let a = &col[m * stride];
            let mut nz = 0u64;
            for w in 0..W {
                let s = state[m - 1][w] & a[w];
                state[m][w] = s;
                nz |= s;
            }
            if nz != 0 && newdepth == 0 {
                newdepth = m;
            }
        }
        let a0 = &col[0];
        state[0][..W].copy_from_slice(&a0[..W]);
        depth = newdepth;
        let mut out = [0u64; W];
        for &m in &group.end_positions {
            if m > depth {
                break; // end_positions ascend; higher planes are stale
            }
            for w in 0..W {
                out[w] |= state[m][w] & group.end[m][w];
            }
        }
        if out.iter().any(|&w| w != 0) {
            for (word, &bits) in out.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let lane = word * 64 + bits.trailing_zeros() as usize;
                    hits.push((i, lane));
                    bits &= bits - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::match_spec;
    use crate::symbol::text_from_letters;

    fn letters(s: &str) -> Vec<Symbol> {
        text_from_letters(s).unwrap()
    }

    fn patterns(specs: &[&str]) -> Vec<Pattern> {
        specs.iter().map(|s| Pattern::parse(s).unwrap()).collect()
    }

    /// Spec-derived `(end, lane)` events for a pattern set on a text.
    fn spec_hits(pats: &[Pattern], text: &[Symbol]) -> Vec<LaneHit> {
        let mut hits = Vec::new();
        for (i, _) in text.iter().enumerate() {
            for (l, p) in pats.iter().enumerate() {
                if match_spec(text, p)[i] {
                    hits.push((i, l));
                }
            }
        }
        hits
    }

    #[test]
    fn resident_group_equals_spec_on_ragged_mixed_lanes() {
        let pats = patterns(&["AXC", "AB", "BBBBB", "A", "XX", "CAB"]);
        let text = letters("ABCAACCABBBBBABACCAB");
        for hits in [
            ResidentGroup::<1>::new(&pats).unwrap().scan(&text),
            ResidentGroup::<2>::new(&pats).unwrap().scan(&text),
            ResidentGroup::<8>::new(&pats).unwrap().scan(&text),
        ] {
            assert_eq!(hits, spec_hits(&pats, &text));
        }
    }

    #[test]
    fn resident_group_spills_across_words() {
        // 70 lanes on a W=2 group: crosses the word boundary.
        let pats: Vec<Pattern> = ["AXC", "BBC", "CAB", "ACA", "BA"]
            .iter()
            .cycle()
            .take(70)
            .map(|s| Pattern::parse(s).unwrap())
            .collect();
        let text = letters("ABCAACCABBCABACABBCA");
        let group = ResidentGroup::<2>::new(&pats).unwrap();
        assert_eq!(group.lanes(), 70);
        assert_eq!(group.scan(&text), spec_hits(&pats, &text));
    }

    #[test]
    fn match_text_agrees_with_scan_and_spec() {
        let pats = patterns(&["ABXA", "CC", "AAA"]);
        let text = letters("ABCABBAACBAAACC");
        let group = ResidentGroup::<1>::new(&pats).unwrap();
        let per_lane = group.match_text(&text);
        assert_eq!(per_lane.len(), 3);
        for (l, (hits, p)) in per_lane.iter().zip(&pats).enumerate() {
            assert_eq!(hits.bits(), match_spec(&text, p), "lane {l}");
            // The per-lane k survived: starting positions are ends − k.
            assert_eq!(
                hits.starting_positions(),
                hits.ending_positions()
                    .iter()
                    .map(|e| e - p.k())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn out_of_alphabet_symbols_match_only_wild_cards() {
        let pats = patterns(&["AX", "AB"]);
        // Symbol 9 is outside the 2-bit alphabet: "AX" accepts it via
        // the wild card, "AB" must not.
        let text: Vec<Symbol> = [0u8, 9, 0, 1].iter().map(|&b| Symbol::new(b)).collect();
        let group = ResidentGroup::<1>::new(&pats).unwrap();
        assert_eq!(group.scan(&text), vec![(1, 0), (3, 0), (3, 1)]);
    }

    #[test]
    fn lane_capacity_is_enforced_and_empty_is_fine() {
        let pats: Vec<Pattern> = (0..65).map(|_| Pattern::parse("AB").unwrap()).collect();
        assert!(matches!(
            ResidentGroup::<1>::new(&pats),
            Err(Error::TooManyLanes {
                lanes: 65,
                capacity: 64
            })
        ));
        let empty = ResidentGroup::<1>::new(&[]).unwrap();
        assert_eq!(empty.lanes(), 0);
        assert!(empty.scan(&letters("ABC")).is_empty());
        assert!(empty.match_text(&letters("ABC")).is_empty());
    }

    #[test]
    fn table_footprint_matches_the_docs_claim() {
        // Width-8 group, 16-long patterns, 2-bit alphabet: acc table
        // 16 × 4 superplanes of 64 B = 4 KiB (+ wild/end planes).
        let pats: Vec<Pattern> = (0..512)
            .map(|_| Pattern::parse("ABCABCABCABCABCA").unwrap())
            .collect();
        let group = ResidentGroup::<8>::new(&pats).unwrap();
        assert_eq!(group.capacity(), 512);
        assert_eq!(group.kmax(), 16);
        assert_eq!(group.table_bytes(), (16 * 4 + 16 + 16) * 8 * 8);
    }
}
