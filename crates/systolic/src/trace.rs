//! Beat-by-beat choreography recording (paper Figure 3-2).
//!
//! Figure 3-2 of the paper traces the flow of pattern and string
//! characters through the array for several beats, showing the two
//! streams marching through each other with alternate cells idle.
//! [`TraceRecorder`] captures the same information from a live
//! [`crate::engine::Driver`] array and renders a text diagram.

use crate::engine::Driver;
use crate::semantics::MeetSemantics;
use std::fmt::Display;

/// The contents of one character cell at one beat.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellSnapshot {
    /// Rendered pattern item in the cell, if any.
    pub pattern: Option<String>,
    /// Rendered text item in the cell, if any.
    pub text: Option<String>,
    /// Rendered result item riding through the cell, if any.
    pub result: Option<String>,
    /// Whether the cell computed this beat (a meeting happened).
    pub active: bool,
    /// Whether the pattern item carries the `λ` end-of-pattern bit.
    pub lambda: bool,
}

/// The whole array at one beat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Beat number (0-based).
    pub beat: u64,
    /// One entry per character cell, leftmost first. Cell boundaries
    /// between cascaded segments are invisible here, as on the chip.
    pub cells: Vec<CellSnapshot>,
}

/// Records snapshots of a driver's array, one per beat.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    snapshots: Vec<TraceSnapshot>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Captures the current state of `driver`'s array. Call this after
    /// each [`advance_beat`](crate::engine::Driver::advance_beat).
    pub fn capture<S>(&mut self, driver: &Driver<S>)
    where
        S: MeetSemantics,
        S::Pat: Display,
        S::Txt: Display,
        S::Out: Display,
    {
        let mut cells = Vec::with_capacity(driver.total_cells());
        for seg in driver.segments() {
            for c in 0..seg.cells() {
                let p = seg.pattern_slot(c);
                let s = seg.text_slot(c);
                cells.push(CellSnapshot {
                    pattern: p.map(|i| i.payload.to_string()),
                    text: s.map(|i| i.payload.to_string()),
                    result: seg.result_slot(c).map(|i| i.value.to_string()),
                    active: p.is_some() && s.is_some(),
                    lambda: p.map(|i| i.lambda).unwrap_or(false),
                });
            }
        }
        self.snapshots.push(TraceSnapshot {
            beat: driver.beat().saturating_sub(1),
            cells,
        });
    }

    /// The captured snapshots in beat order.
    pub fn snapshots(&self) -> &[TraceSnapshot] {
        &self.snapshots
    }

    /// Renders the trace in the style of Figure 3-2: one block per beat,
    /// a `p:` row for the pattern stream (`*` marks the `λ` character),
    /// an `s:` row for the text stream, and `^` marks under the cells
    /// that computed this beat.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for snap in &self.snapshots {
            out.push_str(&format!("beat {:>3}  ", snap.beat));
            out.push_str("p: ");
            for cell in &snap.cells {
                let sym = cell.pattern.as_deref().unwrap_or(".");
                let mark = if cell.lambda { "*" } else { " " };
                out.push_str(&format!("{sym:>2}{mark}"));
            }
            out.push('\n');
            out.push_str("          s: ");
            for cell in &snap.cells {
                out.push_str(&format!("{:>2} ", cell.text.as_deref().unwrap_or(".")));
            }
            out.push('\n');
            out.push_str("             ");
            for cell in &snap.cells {
                out.push_str(if cell.active { " ^ " } else { "   " });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Driver;
    use crate::semantics::BooleanMatch;
    use crate::symbol::{text_from_letters, Pattern};

    fn traced(pattern: &str, text: &str, cells: usize, beats: u64) -> TraceRecorder {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        let mut d = Driver::new(BooleanMatch, p.symbols().to_vec(), &[cells]).unwrap();
        let mut rec = TraceRecorder::new();
        for _ in 0..beats {
            let is_text_beat = d.beat() >= d.phase() && (d.beat() - d.phase()).is_multiple_of(2);
            let inject = if is_text_beat {
                let i = ((d.beat() - d.phase()) / 2) as usize;
                t.get(i).copied()
            } else {
                None
            };
            d.advance_beat(inject);
            rec.capture(&d);
        }
        rec
    }

    #[test]
    fn streams_move_in_opposite_directions() {
        let rec = traced("ABCD", "ABCDABCD", 4, 8);
        let snaps = rec.snapshots();
        // Find a pattern item and check it moved right on the next beat.
        let mut verified_p = false;
        let mut verified_s = false;
        for w in snaps.windows(2) {
            for c in 0..3 {
                if let Some(p) = &w[0].cells[c].pattern {
                    if w[1].cells[c + 1].pattern.as_ref() == Some(p) {
                        verified_p = true;
                    }
                }
                if let Some(s) = &w[0].cells[c + 1].text {
                    if w[1].cells[c].text.as_ref() == Some(s) {
                        verified_s = true;
                    }
                }
            }
        }
        assert!(verified_p, "pattern must move rightward");
        assert!(verified_s, "text must move leftward");
    }

    #[test]
    fn alternate_cells_idle() {
        // On any beat, two horizontally adjacent cells are never both
        // active (the paper's "alternate cells are idle").
        let rec = traced("ABC", "ABCABCABC", 3, 20);
        for snap in rec.snapshots() {
            for pair in snap.cells.windows(2) {
                assert!(
                    !(pair[0].active && pair[1].active),
                    "adjacent active cells at beat {}",
                    snap.beat
                );
            }
        }
    }

    #[test]
    fn render_contains_markers() {
        let rec = traced("AB", "ABAB", 2, 10);
        let text = rec.render();
        assert!(text.contains("beat"));
        assert!(text.contains("p: "));
        assert!(text.contains("s: "));
        assert!(
            text.contains('^'),
            "some cell must have been active:\n{text}"
        );
        assert!(text.contains('*'), "λ marker must appear:\n{text}");
    }

    #[test]
    fn snapshot_count_matches_beats() {
        let rec = traced("AB", "ABAB", 2, 7);
        assert_eq!(rec.snapshots().len(), 7);
        assert_eq!(rec.snapshots()[0].beat, 0);
        assert_eq!(rec.snapshots()[6].beat, 6);
    }
}
