//! Clocked vs. self-timed data flow (paper §3.3.2).
//!
//! The paper chose a clocked (synchronous) implementation for the
//! pattern matcher because the chip is small, noting that "for larger
//! systems, of course, self-timed communication may have to be used".
//! This module puts numbers behind that trade-off with a Monte-Carlo
//! timing model:
//!
//! * **Clocked**: a global two-phase clock. Every beat lasts as long as
//!   the *worst-case* cell delay plus the clock distribution skew, which
//!   grows with the array length (a long resistive clock line must be
//!   driven across all cells).
//! * **Self-timed**: each cell handshakes with its neighbours, paying a
//!   fixed signalling overhead per beat but waiting only for *actual*
//!   delays. Completion time is the longest path through the
//!   (beat × cell) dependency graph: a cell can fire once the neighbours
//!   it exchanges data with have finished the previous beat.
//!
//! The crossover — small arrays favour the clock, large arrays favour
//! handshakes — is experiment E18 of DESIGN.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Physical timing assumptions for the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Mean per-beat computation delay of one cell, in nanoseconds.
    pub mean_delay_ns: f64,
    /// Half-width of the uniform jitter around the mean (process and
    /// data-dependent variation), in nanoseconds.
    pub jitter_ns: f64,
    /// Additional clock period per cell of array length, modelling skew
    /// and RC degradation of the global clock line, in nanoseconds.
    pub clock_skew_per_cell_ns: f64,
    /// Per-beat handshake signalling overhead of a self-timed cell, in
    /// nanoseconds (the "extra circuitry" cost the paper mentions).
    pub handshake_overhead_ns: f64,
}

impl Default for TimingParams {
    /// Defaults loosely calibrated to the paper's prototype: a 250 ns
    /// beat dominated by the comparator's pass-transistor + XNOR + NAND
    /// path, with ±15 % jitter.
    fn default() -> Self {
        TimingParams {
            mean_delay_ns: 210.0,
            jitter_ns: 32.0,
            clock_skew_per_cell_ns: 1.5,
            handshake_overhead_ns: 45.0,
        }
    }
}

/// Result of one clocked-vs-self-timed comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingComparison {
    /// Number of cells in the array.
    pub cells: usize,
    /// Number of beats simulated.
    pub beats: usize,
    /// Total clocked run time in nanoseconds.
    pub clocked_ns: f64,
    /// Total self-timed run time in nanoseconds.
    pub selftimed_ns: f64,
}

impl TimingComparison {
    /// Speedup of self-timed over clocked (>1 means self-timed wins).
    pub fn selftimed_speedup(&self) -> f64 {
        self.clocked_ns / self.selftimed_ns
    }
}

/// Simulates `beats` beats of an `cells`-cell linear array under both
/// disciplines with the same sampled delays. Deterministic for a given
/// `seed`.
///
/// # Panics
///
/// Panics if `cells` or `beats` is zero.
pub fn compare(cells: usize, beats: usize, params: TimingParams, seed: u64) -> TimingComparison {
    assert!(cells > 0 && beats > 0, "array and run must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);

    // Worst-case bound the clock designer must assume: mean + full jitter.
    let worst = params.mean_delay_ns + params.jitter_ns;
    let period = worst + params.clock_skew_per_cell_ns * cells as f64;
    let clocked_ns = period * beats as f64;

    // Self-timed: longest-path over the beat×cell dependency DAG.
    // finish[c] = completion time of cell c at the previous beat.
    let mut finish = vec![0.0f64; cells];
    for _ in 0..beats {
        let mut next = vec![0.0f64; cells];
        for c in 0..cells {
            let delay: f64 =
                params.mean_delay_ns + rng.gen_range(-params.jitter_ns..=params.jitter_ns);
            // A cell exchanges data with both neighbours each beat.
            let left = if c > 0 { finish[c - 1] } else { 0.0 };
            let right = if c + 1 < cells { finish[c + 1] } else { 0.0 };
            let ready = finish[c].max(left).max(right);
            next[c] = ready + params.handshake_overhead_ns + delay;
        }
        finish = next;
    }
    let selftimed_ns = finish.iter().cloned().fold(0.0, f64::max);

    TimingComparison {
        cells,
        beats,
        clocked_ns,
        selftimed_ns,
    }
}

/// Sweeps array sizes and reports the comparison for each, for the E18
/// crossover table.
pub fn sweep(
    sizes: &[usize],
    beats: usize,
    params: TimingParams,
    seed: u64,
) -> Vec<TimingComparison> {
    sizes
        .iter()
        .map(|&n| compare(n, beats, params, seed.wrapping_add(n as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let p = TimingParams::default();
        let a = compare(8, 100, p, 42);
        let b = compare(8, 100, p, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn clocked_time_is_linear_in_beats() {
        let p = TimingParams::default();
        let a = compare(8, 100, p, 1);
        let b = compare(8, 200, p, 1);
        assert!((b.clocked_ns / a.clocked_ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_array_favours_clock_large_array_favours_handshake() {
        // The paper's qualitative claim (§3.3.2), quantified: with skew
        // growing linearly in array length, there is a crossover.
        let p = TimingParams::default();
        let small = compare(4, 400, p, 7);
        let large = compare(512, 400, p, 7);
        assert!(
            small.selftimed_speedup() < 1.0,
            "8-cell array should prefer the clock: {:?}",
            small
        );
        assert!(
            large.selftimed_speedup() > 1.0,
            "512-cell array should prefer self-timing: {:?}",
            large
        );
    }

    #[test]
    fn selftimed_not_faster_than_ideal() {
        // Self-timed time can never beat beats × (handshake + min delay).
        let p = TimingParams::default();
        let r = compare(16, 50, p, 3);
        let ideal = 50.0 * (p.handshake_overhead_ns + p.mean_delay_ns - p.jitter_ns);
        assert!(r.selftimed_ns >= ideal);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_cells_panics() {
        let _ = compare(0, 10, TimingParams::default(), 0);
    }

    #[test]
    fn sweep_covers_all_sizes() {
        let out = sweep(&[2, 4, 8], 10, TimingParams::default(), 0);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].cells, 2);
        assert_eq!(out[2].cells, 8);
    }
}
