//! A self-timed (handshaking) implementation of the matcher (§3.3.2).
//!
//! "In a self-timed implementation, data flow control is distributed
//! among the cells, so that each cell controls its own data transfers.
//! Neighboring cells must obey a signalling convention to coordinate
//! their communication. … Each of the cells may run at its own pace,
//! synchronizing with its neighbors only when communication is needed."
//!
//! [`HandshakeArray`] is that machine, simulated event-by-event: each
//! cell *fires* when — and only when — both neighbours have completed
//! the previous exchange, pays a signalling overhead plus its own
//! (jittered) computation delay, and hands its outputs over through
//! double buffers. There is no clock anywhere; firing order emerges
//! from the event queue and is genuinely out of order under jitter.
//!
//! Two cross-validations pin it down:
//!
//! * **function** — the result bits equal the clocked array's for every
//!   workload (the signalling convention changes *when*, never *what*);
//! * **time** — the completion time equals the longest-path recurrence
//!   of [`crate::selftimed`], computed independently, confirming that
//!   model against an operational implementation.

use crate::segment::{PatItem, TxtItem};
use crate::selftimed::TimingParams;
use crate::semantics::{BooleanMatch, MeetSemantics};
use crate::symbol::{Pattern, Symbol};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One cell's externally visible values after a firing.
#[derive(Debug, Clone, Default)]
struct CellOutputs {
    p: Option<PatItem<crate::symbol::PatSym>>,
    s: Option<TxtItem<Symbol>>,
    r: Option<(u64, bool)>,
}

/// Result of one self-timed run.
#[derive(Debug, Clone)]
pub struct HandshakeRun {
    /// Result bits, one per text position (`false` before the first
    /// complete window).
    pub bits: Vec<bool>,
    /// Wall-clock completion time in nanoseconds.
    pub completion_ns: f64,
    /// Total cell firings.
    pub firings: u64,
    /// True if some cell fired step `n` before another cell had fired
    /// step `n−1` — evidence of genuinely distributed timing.
    pub out_of_order: bool,
}

/// The self-timed matcher array.
#[derive(Debug, Clone)]
pub struct HandshakeArray {
    pattern: Pattern,
    cells: usize,
    params: TimingParams,
    seed: u64,
}

impl HandshakeArray {
    /// Builds an array of `k+1` self-timed cells.
    ///
    /// # Errors
    ///
    /// [`crate::Error::EmptyPattern`] for an empty pattern.
    pub fn new(pattern: &Pattern, params: TimingParams, seed: u64) -> Result<Self, crate::Error> {
        if pattern.is_empty() {
            return Err(crate::Error::EmptyPattern);
        }
        Ok(HandshakeArray {
            pattern: pattern.clone(),
            cells: pattern.len(),
            params,
            seed,
        })
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Per-firing delays, drawn step-major so the independent
    /// longest-path model of [`crate::selftimed`] can reproduce them.
    fn delays(&self, steps: usize) -> Vec<Vec<f64>> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..steps)
            .map(|_| {
                (0..self.cells)
                    .map(|_| {
                        self.params.mean_delay_ns
                            + rng.gen_range(-self.params.jitter_ns..=self.params.jitter_ns)
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs the matcher over `text` with distributed control.
    pub fn run(&self, text: &[Symbol]) -> HandshakeRun {
        let n = self.cells;
        let plen = self.pattern.len();
        let k = plen - 1;
        let phi = ((n - 1) % 2) as u64;
        let steps = (phi as usize) + 2 * text.len() + n + 2 * plen + 8;
        let delays = self.delays(steps);
        let sem = BooleanMatch;

        // Host injection schedules (identical to the clocked Driver).
        let host_p = |step: u64| -> Option<PatItem<crate::symbol::PatSym>> {
            if step.is_multiple_of(2) {
                let j = (step / 2) as usize % plen;
                Some(PatItem {
                    payload: self.pattern.symbols()[j],
                    lambda: j == k,
                })
            } else {
                None
            }
        };
        let host_s = |step: u64| -> Option<TxtItem<Symbol>> {
            step.checked_sub(phi)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
                .filter(|&i| (i as usize) < text.len())
                .map(|i| TxtItem {
                    payload: text[i as usize],
                    seq: i,
                })
        };

        // Cell state.
        let mut p_slot: Vec<Option<PatItem<crate::symbol::PatSym>>> = vec![None; n];
        let mut s_slot: Vec<Option<TxtItem<Symbol>>> = vec![None; n];
        let mut r_slot: Vec<Option<(u64, bool)>> = vec![None; n];
        let mut acc: Vec<bool> = vec![sem.fresh(); n];
        // Double-buffered outputs: outputs[c][step % 2].
        let mut outputs: Vec<[CellOutputs; 2]> =
            vec![[CellOutputs::default(), CellOutputs::default()]; n];
        // Progress: next step each cell will fire.
        let mut fired: Vec<usize> = vec![0; n];
        // Completion time of each cell's last two firings, indexed by
        // step parity — the dependence is on the neighbour's step−1
        // completion, not whatever it has raced ahead to.
        let mut finish_hist: Vec<[f64; 2]> = vec![[0.0; 2]; n];

        let ready = |c: usize, step: usize, fired: &[usize]| -> bool {
            let left_ok = c == 0 || fired[c - 1] >= step; // left completed step-1 ⇔ fired[c-1] ≥ step
            let right_ok = c + 1 >= n || fired[c + 1] >= step;
            // fired[c] == step means c itself is at this step.
            left_ok && right_ok
        };

        // Event queue of candidate firings.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let schedule = |heap: &mut BinaryHeap<Reverse<(u64, usize)>>, t: f64, c: usize| {
            heap.push(Reverse(((t * 1000.0) as u64, c)));
        };
        for c in 0..n {
            schedule(&mut heap, 0.0, c);
        }

        let mut out = vec![false; text.len()];
        let mut firings = 0u64;
        let mut out_of_order = false;
        let mut completion = 0.0f64;
        let mut max_step_seen = vec![0usize; n];

        while let Some(Reverse((_, c))) = heap.pop() {
            let step = fired[c];
            if step >= steps {
                continue;
            }
            if !ready(c, step, &fired) {
                // Not ready: the neighbour's completion will reschedule
                // us below; drop this stale event.
                continue;
            }
            // Timing: wait for own and neighbours' step−1 completions.
            let prev = |cell: usize| -> f64 {
                if step == 0 {
                    0.0
                } else {
                    finish_hist[cell][(step - 1) % 2]
                }
            };
            let mut start = prev(c);
            if c > 0 {
                start = start.max(prev(c - 1));
            }
            if c + 1 < n {
                start = start.max(prev(c + 1));
            }
            let t_done = start + self.params.handshake_overhead_ns + delays[step][c];
            finish_hist[c][step % 2] = t_done;
            completion = completion.max(t_done);
            firings += 1;

            // Out-of-order evidence: firing step `s` while a non-
            // neighbour cell is still more than one step behind.
            for (other, &ms) in max_step_seen.iter().enumerate() {
                if other != c && step > ms + 1 {
                    out_of_order = true;
                }
            }
            max_step_seen[c] = max_step_seen[c].max(step);

            // Data: consume neighbour outputs of step−1.
            let buf = |s: usize| (s + 1) % 2; // (step-1) % 2 with step ≥ 1
            let p_in = if c == 0 {
                host_p(step as u64)
            } else if step == 0 {
                None
            } else {
                outputs[c - 1][buf(step)].p.clone()
            };
            let (s_in, r_in) = if c + 1 == n {
                (host_s(step as u64), None)
            } else if step == 0 {
                (None, None)
            } else {
                let o = &outputs[c + 1][buf(step)];
                (o.s.clone(), o.r)
            };

            // The cell algorithm (identical to Segment::step for one
            // cell).
            p_slot[c] = p_in;
            s_slot[c] = s_in;
            r_slot[c] = r_in;
            if let (Some(p), Some(s)) = (&p_slot[c], &s_slot[c]) {
                sem.absorb(&mut acc[c], &p.payload, &s.payload);
                if p.lambda {
                    let value = sem.emit(&mut acc[c]);
                    r_slot[c] = Some((s.seq, value));
                }
            }
            // Publish outputs for the neighbours' step+1.
            outputs[c][step % 2] = CellOutputs {
                p: p_slot[c].clone(),
                s: s_slot[c].clone(),
                r: r_slot[c],
            };
            // Host collects results leaving cell 0.
            if c == 0 {
                if let Some((seq, value)) = r_slot[0] {
                    let i = seq as usize;
                    if i >= k && i < out.len() {
                        out[i] = value;
                    }
                }
            }

            fired[c] = step + 1;
            // Reschedule self and wake neighbours.
            if fired[c] < steps {
                schedule(&mut heap, t_done, c);
            }
            if c > 0 && fired[c - 1] < steps {
                schedule(&mut heap, t_done, c - 1);
            }
            if c + 1 < n && fired[c + 1] < steps {
                schedule(&mut heap, t_done, c + 1);
            }
        }

        HandshakeRun {
            bits: out,
            completion_ns: completion,
            firings,
            out_of_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::SystolicMatcher;
    use crate::spec::match_spec;
    use crate::symbol::text_from_letters;

    fn params() -> TimingParams {
        TimingParams::default()
    }

    #[test]
    fn self_timed_results_equal_clocked() {
        let pattern = Pattern::parse("AXCA").unwrap();
        let text = text_from_letters("ABCAACCABAACCA").unwrap();
        let hs = HandshakeArray::new(&pattern, params(), 11).unwrap();
        let run = hs.run(&text);
        let mut clocked = SystolicMatcher::new(&pattern).unwrap();
        assert_eq!(run.bits, clocked.match_symbols(&text).bits());
        assert_eq!(run.bits.as_slice(), match_spec(&text, &pattern));
    }

    #[test]
    fn results_are_timing_independent() {
        // Different seeds (different delays, different firing orders)
        // must never change the answer — delay-insensitivity is the
        // whole point of the signalling convention.
        let pattern = Pattern::parse("ABA").unwrap();
        let text = text_from_letters("ABAABABBA").unwrap();
        let reference = HandshakeArray::new(&pattern, params(), 0)
            .unwrap()
            .run(&text);
        for seed in 1..8 {
            let run = HandshakeArray::new(&pattern, params(), seed)
                .unwrap()
                .run(&text);
            assert_eq!(run.bits, reference.bits, "seed {seed} changed the results");
        }
    }

    #[test]
    fn firing_is_genuinely_out_of_order() {
        // With jitter, distant cells drift apart by more than one step.
        let mut p = params();
        p.jitter_ns = 80.0;
        let pattern = Pattern::parse("ABCDABCD").unwrap();
        let text: Vec<Symbol> = (0..40u8).map(|v| Symbol::new(v % 4)).collect();
        let run = HandshakeArray::new(&pattern, p, 3).unwrap().run(&text);
        assert!(run.out_of_order, "expected drift between distant cells");
        assert!(run.firings > 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn completion_time_matches_the_longest_path_model() {
        // The independent recurrence of `selftimed::compare` must
        // predict the event simulation exactly (same delays, same
        // dependence structure).
        let pattern = Pattern::parse("ABCA").unwrap();
        let text = text_from_letters("ABCAABCAABCA").unwrap();
        let p = params();
        let hs = HandshakeArray::new(&pattern, p, 42).unwrap();
        let run = hs.run(&text);

        // Reproduce the delay matrix and the recurrence.
        let n = hs.cells();
        let steps = run.firings as usize / n;
        let delays = hs.delays(steps + 2);
        let mut finish = vec![0.0f64; n];
        for step in 0..(run.firings as usize / n) {
            let mut next = vec![0.0f64; n];
            for c in 0..n {
                let left = if c > 0 { finish[c - 1] } else { 0.0 };
                let right = if c + 1 < n { finish[c + 1] } else { 0.0 };
                next[c] =
                    finish[c].max(left).max(right) + p.handshake_overhead_ns + delays[step][c];
            }
            finish = next;
        }
        let predicted = finish.iter().cloned().fold(0.0, f64::max);
        assert!(
            (predicted - run.completion_ns).abs() < 1e-6,
            "model {predicted} vs event sim {}",
            run.completion_ns
        );
    }
}
