//! The closed-form choreography of §3.2.1, as executable theory.
//!
//! The paper derives the array's behaviour by following characters
//! through the cells ("let us follow the history of the character cell
//! indicated by the arrowhead…"). This module states that derivation
//! as formulas and the test suite checks the *simulation* against the
//! *theory* — every meeting happens exactly when and where the algebra
//! says it must:
//!
//! * `p_j` is injected at beat `2j` and occupies cell `t − 2j`;
//! * `s_i` is injected at beat `2i + φ`, `φ = (N−1) mod 2`, and
//!   occupies cell `N−1−(t−2i−φ)`;
//! * they meet at beat `(N−1+φ)/2 + i + j` in cell
//!   `(N−1+φ)/2 + i − j` (plus the recirculation period);
//! * all `k+1` pairs of the window ending at `i` meet in the *same*
//!   cell, on consecutive active beats;
//! * `r_i` leaves the left edge on the same beat as `s_i`, namely
//!   `N − 1 + φ + 2i` (one beat later through the exit register).
//!
//! These identities are what make the design work; having them
//! machine-checked pins the simulator to the paper.

/// The injection/meeting schedule of an `n`-cell array recirculating a
/// pattern of `plen` characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Number of character cells `N`.
    pub cells: usize,
    /// Pattern length `k+1`.
    pub pattern_len: usize,
}

impl Schedule {
    /// Creates a schedule for an array of `cells` cells and a pattern
    /// of `pattern_len` characters.
    ///
    /// # Panics
    ///
    /// Panics if either is zero or the pattern exceeds the array.
    pub fn new(cells: usize, pattern_len: usize) -> Self {
        assert!(
            cells > 0 && pattern_len > 0,
            "schedule needs cells and a pattern"
        );
        assert!(pattern_len <= cells, "pattern must fit the array");
        Schedule { cells, pattern_len }
    }

    /// The text phase offset `φ = (N−1) mod 2` that makes opposing
    /// items meet instead of pass.
    pub fn phi(&self) -> u64 {
        ((self.cells - 1) % 2) as u64
    }

    /// Beat at which pattern item of stream index `j` (counting
    /// recirculations: `p_{j mod (k+1)}`) enters cell 0.
    pub fn pattern_injection_beat(&self, j: u64) -> u64 {
        2 * j
    }

    /// Beat at which text item `s_i` enters cell `N−1`.
    pub fn text_injection_beat(&self, i: u64) -> u64 {
        2 * i + self.phi()
    }

    /// Cell occupied by pattern stream item `j` at beat `t`, if it is
    /// inside the array.
    pub fn pattern_cell_at(&self, j: u64, t: u64) -> Option<usize> {
        let start = self.pattern_injection_beat(j);
        t.checked_sub(start)
            .map(|d| d as usize)
            .filter(|&c| c < self.cells)
    }

    /// Cell occupied by text item `i` at beat `t`, if inside the array.
    pub fn text_cell_at(&self, i: u64, t: u64) -> Option<usize> {
        let start = self.text_injection_beat(i);
        t.checked_sub(start)
            .map(|d| d as usize)
            .filter(|&d| d < self.cells)
            .map(|d| self.cells - 1 - d)
    }

    /// The meeting of text item `i` with pattern *stream* item `j`
    /// (i.e. the `j`-th character put on the bus): `(beat, cell)`, if
    /// the meeting falls inside the array.
    pub fn meeting(&self, i: u64, j: u64) -> Option<(u64, usize)> {
        let half = (self.cells as u64 - 1 + self.phi()) / 2;
        let beat = half + i + j;
        let cell = (half + i) as i64 - j as i64;
        if (0..self.cells as i64).contains(&cell) {
            Some((beat, cell as usize))
        } else {
            None
        }
    }

    /// The pattern stream index carrying `p_m` on recirculation cycle
    /// `q`.
    pub fn stream_index(&self, m: usize, q: u64) -> u64 {
        q * self.pattern_len as u64 + m as u64
    }

    /// The accumulation cell of the window ending at `i`, for
    /// recirculation cycle `q` — every pair `(p_m, s_{i−k+m})` of that
    /// window meets here.
    pub fn window_cell(&self, i: u64, q: u64) -> Option<usize> {
        let k = (self.pattern_len - 1) as u64;
        if i < k {
            return None;
        }
        // Pair m = k: text index i, stream index q(k+1)+k.
        self.meeting(i, self.stream_index(self.pattern_len - 1, q))
            .map(|(_, c)| c)
    }

    /// The recirculation cycles `q` for which the window ending at `i`
    /// is computed inside the array (several, if the array is
    /// oversized — the redundant recomputation of §3.2.1).
    pub fn window_cycles(&self, i: u64) -> Vec<u64> {
        (0..=(i / self.pattern_len as u64 + self.cells as u64))
            .filter(|&q| self.window_cell(i, q).is_some())
            .collect()
    }

    /// Beat at which `r_i`'s last pair (`λ` beat) fires, for cycle `q`.
    pub fn lambda_beat(&self, i: u64, q: u64) -> Option<u64> {
        self.meeting(i, self.stream_index(self.pattern_len - 1, q))
            .map(|(t, _)| t)
    }

    /// Beat at which `s_i` (and `r_i` with it) exits the left edge of
    /// the array.
    pub fn exit_beat(&self, i: u64) -> u64 {
        self.text_injection_beat(i) + self.cells as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Driver;
    use crate::semantics::BooleanMatch;
    use crate::symbol::{Pattern, Symbol};

    #[test]
    fn meetings_are_inside_and_consistent() {
        for cells in 1..10usize {
            let s = Schedule::new(cells, cells.min(3));
            for i in 0..20u64 {
                for j in 0..20u64 {
                    if let Some((beat, cell)) = s.meeting(i, j) {
                        // Both items really are in that cell then.
                        assert_eq!(
                            s.pattern_cell_at(j, beat),
                            Some(cell),
                            "p cells={cells} i={i} j={j}"
                        );
                        assert_eq!(
                            s.text_cell_at(i, beat),
                            Some(cell),
                            "s cells={cells} i={i} j={j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_pairs_of_a_window_share_a_cell() {
        // The paper's central claim: "we can therefore keep the partial
        // match results in this cell".
        let s = Schedule::new(7, 4);
        let k = 3u64;
        for i in k..20 {
            for q in s.window_cycles(i) {
                let cell = s.window_cell(i, q).unwrap();
                let mut beats = Vec::new();
                for m in 0..4usize {
                    let (beat, c) = s
                        .meeting(i - k + m as u64, s.stream_index(m, q))
                        .expect("window pairs meet in range");
                    assert_eq!(c, cell, "pair m={m} of window {i} strays");
                    beats.push(beat);
                }
                // Consecutive active beats: spaced exactly 2.
                for w in beats.windows(2) {
                    assert_eq!(w[1] - w[0], 2, "window {i} pairs not consecutive");
                }
            }
        }
    }

    #[test]
    fn windows_tile_contiguously_per_cell() {
        // After r_i completes in a cell, the next window there is
        // r_{i+k+1}, starting exactly two beats later.
        let s = Schedule::new(4, 4);
        let k = 3u64;
        for i in k..12 {
            for q in s.window_cycles(i) {
                let end = s.lambda_beat(i, q).unwrap();
                let next_i = i + 4;
                if let Some(q2) = s
                    .window_cycles(next_i)
                    .into_iter()
                    .find(|&q2| s.window_cell(next_i, q2) == s.window_cell(i, q))
                {
                    let start = s
                        .meeting(next_i - k, s.stream_index(0, q2))
                        .expect("next window's first pair")
                        .0;
                    assert_eq!(start, end + 2, "window {next_i} not contiguous after {i}");
                }
            }
        }
    }

    #[test]
    fn theory_matches_simulation_exit_beats() {
        // Run the real engine and check r_i exits exactly at the
        // theoretical beat (+1 for the exit register's hand-off).
        let pattern = Pattern::parse("ABA").unwrap();
        let text: Vec<Symbol> = (0..10u8).map(|v| Symbol::new(v % 4)).collect();
        for cells in [3usize, 4, 6] {
            let s = Schedule::new(cells, 3);
            let mut d = Driver::new(BooleanMatch, pattern.symbols().to_vec(), &[cells]).unwrap();
            let mut exits: Vec<(u64, u64)> = Vec::new(); // (i, beat)
            for _ in 0..60 {
                let is_text_beat = d.beat() >= d.phase() && (d.beat() - d.phase()) % 2 == 0;
                let inject = if is_text_beat {
                    let i = ((d.beat() - d.phase()) / 2) as usize;
                    text.get(i).copied()
                } else {
                    None
                };
                let beat = d.beat();
                let exit = d.advance_beat(inject);
                if let Some(res) = exit.result {
                    exits.push((res.seq, beat));
                }
            }
            for (i, beat) in exits {
                assert_eq!(beat, s.exit_beat(i), "cells={cells} r_{i}");
            }
        }
    }

    #[test]
    fn oversized_arrays_recompute_windows() {
        // N = 2(k+1): every window is computed twice (harmless
        // redundancy, §3.2.1).
        let s = Schedule::new(8, 4);
        for i in 3..12u64 {
            assert!(
                s.window_cycles(i).len() >= 2,
                "window {i}: {:?}",
                s.window_cycles(i)
            );
        }
        // N = k+1: exactly once.
        let tight = Schedule::new(4, 4);
        for i in 3..12u64 {
            assert_eq!(tight.window_cycles(i).len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_pattern_panics() {
        let _ = Schedule::new(3, 4);
    }
}
