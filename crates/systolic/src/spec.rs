//! Executable specification of the pattern-matching problem.
//!
//! These functions implement the defining equation of paper §3.1
//!
//! ```text
//! r_i = (s_{i-k} = p0) ∧ (s_{i-k+1} = p1) ∧ … ∧ (s_i = pk)
//! ```
//!
//! directly and obviously, with no pipelining or parallelism. Every
//! hardware-shaped engine in the workspace (character-level array,
//! bit-serial array, NMOS netlist, cascaded chips, every alternative
//! algorithm) is tested against these functions.

use crate::symbol::{Pattern, Symbol};

/// Reference semantics of the matcher: `out[i]` is `r_i`, true iff the
/// substring of `text` ending at position `i` equals `pattern`
/// (wild cards match anything). Positions `i < k` are false by
/// definition — no complete substring ends there.
///
/// ```
/// use pm_systolic::spec::match_spec;
/// use pm_systolic::symbol::{Pattern, text_from_letters};
/// let p = Pattern::parse("AXC").unwrap();
/// let t = text_from_letters("ABCAACCAB").unwrap();
/// let r = match_spec(&t, &p);
/// let hits: Vec<usize> = r.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
/// assert_eq!(hits, vec![2, 5, 6]); // Figure 3-1 of the paper
/// ```
pub fn match_spec(text: &[Symbol], pattern: &Pattern) -> Vec<bool> {
    let k = pattern.k();
    (0..text.len())
        .map(|i| {
            i >= k
                && pattern
                    .symbols()
                    .iter()
                    .zip(&text[i - k..=i])
                    .all(|(p, &s)| p.matches(s))
        })
        .collect()
}

/// Reference semantics of the match-*counting* extension (paper §3.4):
/// `out[i]` is the number of positions at which the substring ending at
/// `i` agrees with the pattern (wild cards always count as agreement).
/// Positions `i < k` report 0.
pub fn count_spec(text: &[Symbol], pattern: &Pattern) -> Vec<u32> {
    let k = pattern.k();
    (0..text.len())
        .map(|i| {
            if i < k {
                0
            } else {
                pattern
                    .symbols()
                    .iter()
                    .zip(&text[i - k..=i])
                    .filter(|(p, &s)| p.matches(s))
                    .count() as u32
            }
        })
        .collect()
}

/// Reference semantics of the correlation extension (paper §3.4):
/// `out[i] = Σ_m (s_{i-k+m} - p_m)²` for `i ≥ k`, with values taken as
/// signed integers. Positions `i < k` report 0.
///
/// The paper replaces the comparator with a difference cell and the
/// accumulator with an adder cell; this is the equation those cells
/// implement.
pub fn correlation_spec(text: &[i64], pattern: &[i64]) -> Vec<i64> {
    let k = pattern.len() - 1;
    (0..text.len())
        .map(|i| {
            if i < k {
                0
            } else {
                pattern
                    .iter()
                    .zip(&text[i - k..=i])
                    .map(|(p, s)| (s - p) * (s - p))
                    .sum()
            }
        })
        .collect()
}

/// Reference semantics of a sliding dot product (convolution/FIR form,
/// paper §3.4): `out[i] = Σ_m p_m · s_{i-k+m}` for `i ≥ k`, 0 before.
pub fn dot_spec(text: &[i64], pattern: &[i64]) -> Vec<i64> {
    let k = pattern.len() - 1;
    (0..text.len())
        .map(|i| {
            if i < k {
                0
            } else {
                pattern
                    .iter()
                    .zip(&text[i - k..=i])
                    .map(|(p, s)| p * s)
                    .sum()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{text_from_letters, Pattern};

    #[test]
    fn figure_3_1_example() {
        // Paper Figure 3-1: pattern AXC over ABCAACC… sets r2, r5, r6.
        let p = Pattern::parse("AXC").unwrap();
        let t = text_from_letters("ABCAACC").unwrap();
        let r = match_spec(&t, &p);
        assert_eq!(r, vec![false, false, true, false, false, true, true]);
    }

    #[test]
    fn all_wildcards_match_everywhere_after_k() {
        let p = Pattern::parse("XXX").unwrap();
        let t = text_from_letters("ABCD").unwrap();
        assert_eq!(match_spec(&t, &p), vec![false, false, true, true]);
    }

    #[test]
    fn text_shorter_than_pattern_matches_nothing() {
        let p = Pattern::parse("ABCD").unwrap();
        let t = text_from_letters("ABC").unwrap();
        assert_eq!(match_spec(&t, &p), vec![false; 3]);
    }

    #[test]
    fn single_char_pattern_matches_each_occurrence() {
        let p = Pattern::parse("B").unwrap();
        let t = text_from_letters("ABBA").unwrap();
        assert_eq!(match_spec(&t, &p), vec![false, true, true, false]);
    }

    #[test]
    fn count_spec_counts_agreements() {
        let p = Pattern::parse("AXC").unwrap();
        let t = text_from_letters("ABC").unwrap();
        // Only position 2 has a complete substring: A=A, X matches, C=C → 3.
        assert_eq!(count_spec(&t, &p), vec![0, 0, 3]);
        let t2 = text_from_letters("BBC").unwrap();
        // B≠A, X matches, C=C → 2.
        assert_eq!(count_spec(&t2, &p), vec![0, 0, 2]);
    }

    #[test]
    fn count_spec_upper_bound_is_pattern_len() {
        let p = Pattern::parse("AAAA").unwrap();
        let t = text_from_letters("AAAAAA").unwrap();
        let c = count_spec(&t, &p);
        assert!(c.iter().all(|&v| v <= 4));
        assert_eq!(c[3..], [4, 4, 4]);
    }

    #[test]
    fn correlation_spec_zero_for_identical() {
        let pat = [1, 2, 3];
        let txt = [5, 1, 2, 3, 9];
        let r = correlation_spec(&txt, &pat);
        // r_2: substring [5,1,2]: (5-1)²+(1-2)²+(2-3)² = 16+1+1 = 18
        // r_3: substring [1,2,3]: identical to the pattern → 0
        // r_4: substring [2,3,9]: 1+1+36 = 38
        assert_eq!(r, vec![0, 0, 18, 0, 38]);
    }

    #[test]
    fn dot_spec_matches_manual() {
        let pat = [1, -1];
        let txt = [3, 4, 10];
        // i=1: 1*3 + (-1)*4 = -1 ; i=2: 1*4 + (-1)*10 = -6
        assert_eq!(dot_spec(&txt, &pat), vec![0, -1, -6]);
    }
}
