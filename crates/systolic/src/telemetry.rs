//! Beat-level trace events and the zero-cost-when-disabled sink trait.
//!
//! The paper's only quantitative claim — one character every 250 ns
//! (§1) — is a *rate*, and rates regress silently unless something is
//! watching. This module defines the observability contract the whole
//! workspace shares: a flat [`TraceEvent`] taxonomy spanning every
//! layer (array beats and clock phases here; host-bus stalls, BIST
//! scrubs and scheduler job lifecycle in `pm-chip`), and a
//! [`TraceSink`] trait the hot paths emit into.
//!
//! The taxonomy lives in this bottom crate so that the beat engines can
//! emit without depending upward; each layer emits only its own
//! variants. Two disciplines keep the disabled path free:
//!
//! * **Monomorphised paths** (e.g.
//!   [`PlaneDriver::run_with_sink`](crate::batch::PlaneDriver::run_with_sink))
//!   take `&S where S: TraceSink`. With [`NullSink`] the
//!   `enabled() == false` constant folds and every emission compiles
//!   away — the A/B measurement in `pm-bench`'s E30 figure holds this
//!   under 1 % against the un-instrumented path.
//! * **Dynamic paths** (the `pm-chip` scheduler and recovery cascade)
//!   hold a [`SinkHandle`] and guard each emission with one virtual
//!   `enabled()` call; events there are per-batch or per-scrub, never
//!   per-character, so the guard is invisible next to the work.
//!
//! ```
//! use pm_systolic::telemetry::{MemorySink, TraceEvent, TraceSink};
//!
//! let sink = MemorySink::new();
//! sink.record(TraceEvent::CacheLookup { hit: true });
//! assert_eq!(sink.events().len(), 1);
//! ```

use std::fmt;
use std::sync::{Arc, Mutex};

/// The two phases of the paper's two-phase non-overlapping clock (§4:
/// "two-phase clocks are used to move data through the chip").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockPhase {
    /// φ1: precharge / transfer into the cell.
    Phi1,
    /// φ2: evaluate / transfer out of the cell.
    Phi2,
}

impl fmt::Display for ClockPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockPhase::Phi1 => write!(f, "φ1"),
            ClockPhase::Phi2 => write!(f, "φ2"),
        }
    }
}

/// One observable event. Variants are flat `Copy` data so recording is
/// a store, never an allocation; each layer emits only its own rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// One clock phase of one array beat (emitted by beat-accurate
    /// engines; two per beat).
    Clock {
        /// Beat number within the run.
        beat: u64,
        /// Which phase of the beat.
        phase: ClockPhase,
    },
    /// A text item entered the array.
    TextInjected {
        /// Beat of injection.
        beat: u64,
        /// Text position carried by the item.
        seq: u64,
    },
    /// A result left the array with at least the possibility of a
    /// match: the comparator column's verdict for one text position.
    ComparatorFire {
        /// Beat the result exited on.
        beat: u64,
        /// Text position of the result.
        seq: u64,
        /// Number of lanes whose window matched (1 for scalar engines,
        /// up to 64 for the bit-plane engines, 0 for a miss).
        lanes: u32,
    },
    /// The host watchdog declared the result stream stalled.
    HostStall {
        /// First text position whose result is overdue.
        missing_from: u64,
    },
    /// The host retried an operation after backoff (BIST re-run).
    HostRetry {
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Idle beats of backoff before this attempt.
        backoff_beats: u64,
    },
    /// A BIST self-test finished on one socket (attach-time or scrub).
    ScrubOutcome {
        /// Socket index on the board.
        socket: u32,
        /// Whether the socket passed every vector on every port.
        passed: bool,
        /// Array beats the test occupied.
        beats: u64,
    },
    /// A socket exhausted its retries and was condemned.
    Condemned {
        /// Socket index on the board.
        socket: u32,
    },
    /// The chain was rewired around condemned sockets.
    Remapped {
        /// Sockets in the healed chain.
        chain_len: u32,
        /// Characters replayed through it.
        replayed_chars: u64,
    },
    /// Results up to a watermark became final.
    Committed {
        /// Results are final for positions `< upto`.
        upto: u64,
    },
    /// Spares exhausted; the software fallback took over.
    FallbackEngaged,
    /// The scheduler handed a job to a worker.
    JobStarted {
        /// Caller-chosen job id.
        job: u64,
        /// Worker index.
        worker: u32,
    },
    /// A job's results were recorded.
    JobCompleted {
        /// Caller-chosen job id.
        job: u64,
        /// Worker index.
        worker: u32,
        /// Text characters the job streamed.
        chars: u64,
        /// Matches found in the job's text.
        matches: u64,
    },
    /// One bit-plane batch executed to completion.
    BatchExecuted {
        /// Worker index.
        worker: u32,
        /// Lane slots that carried a stream (≤ `slots`).
        lanes: u32,
        /// Lane slots the batch offered (64 for the `u64` engine,
        /// `W × 64` for a width-`W` superplane batch).
        slots: u32,
        /// Engine steps (text positions) the batch advanced.
        steps: u64,
        /// Wall-clock microseconds the batch took (0 when the caller
        /// does not time batches).
        micros: u64,
    },
    /// A compiled-pattern cache lookup.
    CacheLookup {
        /// Whether the lookup hit.
        hit: bool,
    },
    /// The scheduler chose its superplane width and SIMD kernel for a
    /// run (emitted once per `ThroughputEngine::run` in `pm-chip`; the
    /// level is process-wide, see
    /// [`simd_level`](crate::superplane::simd_level)).
    DispatchSelected {
        /// Superplane width in words (1, 4 or 8).
        words: u32,
        /// The instruction-set level the kernel dispatches to.
        level: crate::superplane::SimdLevel,
    },
    /// A chaos-harness fault fired in a scheduler worker's datapath
    /// (`pm-chip`'s seeded fault-injection campaigns).
    FaultInjected {
        /// Worker index.
        worker: u32,
        /// Stable snake_case fault label (shared with logs).
        label: &'static str,
    },
    /// A sampled-lane scrub re-ran one lane of a batch through the
    /// scalar specification and the results disagreed.
    ScrubMismatch {
        /// Worker index.
        worker: u32,
        /// Batch index within the run's plan.
        batch: u64,
    },
    /// A scheduler worker was quarantined: its uncommitted outputs
    /// were voided and its batches requeued for verified recovery.
    WorkerQuarantined {
        /// Worker index.
        worker: u32,
        /// Stable snake_case label of the detected fault.
        label: &'static str,
    },
    /// The degradation ladder moved: down a rung on a detected fault,
    /// up a rung after enough clean batches.
    LadderMoved {
        /// The new rung's superplane width in words; 0 means the
        /// software-fallback rung.
        words: u32,
        /// `true` for a demotion (down), `false` for a re-promotion.
        down: bool,
    },
    /// A voided batch was re-executed on a recovery rung.
    BatchRetried {
        /// Batch index within the run's plan.
        batch: u64,
        /// Retry attempt on the current rung (1-based).
        attempt: u32,
        /// The rung's superplane width in words.
        words: u32,
    },
    /// A pattern dictionary was compiled into resident groups (§3.4
    /// chip farm): `resident / patterns` is the dedup ratio,
    /// `resident / lane_slots` the lane occupancy.
    DictionaryPlanned {
        /// Patterns submitted to the compiler.
        patterns: u64,
        /// Distinct patterns left resident after prefix/duplicate dedup.
        resident: u64,
        /// Superplane groups planned.
        groups: u32,
        /// Total lane slots across those groups (`groups × W × 64`).
        lane_slots: u64,
    },
    /// A front-door client session was admitted (`pm-serve`).
    SessionOpened {
        /// Server-assigned session id.
        session: u64,
    },
    /// A front-door session closed normally.
    SessionClosed {
        /// Server-assigned session id.
        session: u64,
        /// Text characters the session streamed.
        chars: u64,
        /// Match events the session was delivered.
        events: u64,
    },
    /// Admission control turned a client away: a session open over the
    /// session cap, or a feed over a byte budget.
    SessionRejected {
        /// `true` when the client was told to retry after backoff
        /// (SERVER_BUSY), `false` for a hard protocol rejection.
        retriable: bool,
    },
    /// One protocol frame arrived on a front-door connection.
    FrameReceived {
        /// Wire kind byte of the frame.
        kind: u8,
        /// Payload bytes carried (text chunk length for FEED frames).
        bytes: u64,
    },
    /// Match events were delivered to a front-door client.
    EventsDelivered {
        /// Server-assigned session id.
        session: u64,
        /// Events in the delivered batch.
        events: u64,
    },
    /// The server signalled backpressure: the client was handed a
    /// retry-after hint paced by the host `RetryPolicy`.
    BackpressureSignalled {
        /// Server-assigned session id (0 when rejecting an open).
        session: u64,
        /// Milliseconds the client was asked to back off.
        backoff_ms: u64,
    },
    /// A worker's own deque was empty, so it stole a batch from a
    /// sibling (`pm_chip`'s work-stealing scheduler).
    BatchStolen {
        /// The thief worker.
        worker: u32,
        /// The worker whose deque lost the batch.
        victim: u32,
    },
    /// The router planned one run: jobs were grouped by pattern and
    /// spread across shards by load and pattern affinity.
    RouterPlanned {
        /// Shards the plan spread work over.
        shards: u32,
        /// Jobs admitted to the run.
        jobs: u64,
        /// Distinct pattern groups the jobs collapsed into.
        groups: u64,
        /// Groups moved off their affinity shard for load balance.
        moves: u64,
        /// Wall-clock microseconds routing took (admission overhead,
        /// excluding the per-shard batch planners).
        micros: u64,
    },
    /// One shard of the router memory system accepted its slice of a
    /// run.
    ShardAdmitted {
        /// Shard index within the router.
        shard: u32,
        /// Jobs assigned to this shard for the run.
        jobs: u64,
        /// Jobs queued on the shard when admission finished (this
        /// run's assignment, gauged before execution drains it).
        depth: u64,
    },
}

/// Where trace events go. Implementations must be cheap and
/// thread-safe; hot paths call [`enabled`](TraceSink::enabled) first
/// and skip event construction entirely when it returns `false`.
pub trait TraceSink: Send + Sync {
    /// Whether this sink wants events at all. Hot paths guard on this;
    /// a constant `false` (as in [`NullSink`]) lets the optimiser
    /// delete the emission sites.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, event: TraceEvent);
}

/// The disabled sink: reports `enabled() == false` and ignores events.
/// Monomorphised call sites compile to the un-instrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// A sink that buffers every event in memory, for tests and trace
/// dumps. Unbounded; not for production streams.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("sink poisoned").push(event);
    }
}

/// A shareable, `Debug`/`Clone`-friendly handle to a dynamic sink.
/// Structures that `derive(Debug, Clone)` (the scheduler, the recovery
/// cascade) store one of these instead of a bare trait object.
#[derive(Clone)]
pub struct SinkHandle(Arc<dyn TraceSink>);

impl SinkHandle {
    /// Wraps a shared sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        SinkHandle(sink)
    }

    /// The disabled handle (wraps [`NullSink`]).
    pub fn null() -> Self {
        SinkHandle(Arc::new(NullSink))
    }

    /// Whether the underlying sink wants events.
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Records one event if the sink is enabled.
    pub fn record(&self, event: TraceEvent) {
        if self.0.enabled() {
            self.0.record(event);
        }
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::null()
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.0.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(TraceEvent::FallbackEngaged); // must be a no-op
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(TraceEvent::CacheLookup { hit: false });
        sink.record(TraceEvent::Committed { upto: 9 });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1], TraceEvent::Committed { upto: 9 });
    }

    #[test]
    fn handle_guards_on_enabled() {
        let mem = Arc::new(MemorySink::new());
        let handle = SinkHandle::new(mem.clone());
        assert!(handle.enabled());
        handle.record(TraceEvent::Condemned { socket: 3 });
        assert_eq!(mem.len(), 1);
        let off = SinkHandle::null();
        assert!(!off.enabled());
        off.record(TraceEvent::Condemned { socket: 3 });
        let debug = format!("{off:?}");
        assert!(debug.contains("enabled: false"), "{debug}");
    }

    #[test]
    fn clock_phase_display() {
        assert_eq!(ClockPhase::Phi1.to_string(), "φ1");
        assert_eq!(ClockPhase::Phi2.to_string(), "φ2");
    }
}
