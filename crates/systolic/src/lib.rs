//! # pm-systolic — the Foster–Kung systolic pattern-matching array
//!
//! This crate is the core contribution of the reproduction of
//! M. J. Foster and H. T. Kung, *"Design of Special-Purpose VLSI Chips:
//! Example and Opinions"* (ISCA 1980): a beat-accurate behavioural model of
//! the systolic string pattern-matching array described in Section 3.2 of
//! the paper, together with the generic machinery (cells, segments, beats,
//! drivers) that the rest of the workspace builds on.
//!
//! ## The problem (paper §3.1)
//!
//! Given an endless *text* stream `s0 s1 s2 …` over an alphabet Σ and a
//! fixed *pattern* `p0 p1 … pk` over `Σ ∪ {x}` (where `x` is a wild card
//! that matches anything), produce one result bit per text character:
//!
//! ```text
//! r_i = (s_{i-k} = p0) ∧ (s_{i-k+1} = p1) ∧ … ∧ (s_i = pk)
//! ```
//!
//! ## The algorithm (paper §3.2.1)
//!
//! A linear array of *character cells*. The pattern flows left→right, the
//! text right→left, one cell per beat, each stream's items separated by one
//! empty slot so that every pattern/text pair *meets* in a cell instead of
//! passing between cells. Each cell keeps a running partial result `t`;
//! two control bits ride with the pattern through the accumulators: `λ`
//! (end of pattern) and `x` (wild card). When `λ` arrives the completed
//! result is injected into the result stream, which travels leftward with
//! the text so that `r_i` leaves the array in the same beat-slot as `s_i`.
//! The pattern recirculates with its first character following two beats
//! after its last, so an array of `k+1` cells matches an endless text.
//!
//! ## What lives where
//!
//! * [`symbol`] — alphabets, text symbols and pattern symbols (incl. wild
//!   cards).
//! * [`spec`] — the executable specification: a direct, obviously-correct
//!   implementation of the `r_i` definition that every engine is tested
//!   against.
//! * [`semantics`] — the [`MeetSemantics`](semantics::MeetSemantics) trait
//!   abstracting *what happens when a pattern item meets a text item*;
//!   boolean matching, match counting, correlation and convolution are all
//!   instances (the latter two live in the `pm-correlator` crate).
//! * [`segment`] — the port-level systolic array segment: a run of
//!   character cells exposing its boundary wires, so that several segments
//!   can be cascaded exactly like the chips of Figure 3-7.
//! * [`engine`] — the beat engine and host-side driver that feeds streams
//!   into a chain of segments and collects results.
//! * [`matcher`] — the character-level pattern matcher built from the
//!   engine (paper Figure 3-3).
//! * [`bitserial`] — the bit-pipelined comparator array (paper Figure 3-4)
//!   in which characters are compared one bit per beat, high-order bits
//!   first, and comparison results trickle down a column of one-bit
//!   comparators.
//! * [`batch`] — the bit-plane batched engine: because the per-cell
//!   state of the boolean matcher is one bit, 64 independent text
//!   streams pack into the bit positions of a `u64` and advance together
//!   with branch-free word operations — both through the unmodified
//!   [`Driver`](engine::Driver) (via the [`LaneBoolean`](batch::LaneBoolean)
//!   semantics) and through a stripped-down throughput engine.
//! * [`superplane`] — the same engine widened to `[u64; W]` planes
//!   (256 lanes at `W = 4`, 512 at `W = 8`), with runtime-dispatched
//!   AVX2/AVX-512 kernel specialisations and a beat-accurate
//!   [`SuperplaneDriver`](superplane::SuperplaneDriver) telemetry twin.
//! * [`schedule`] — the closed-form injection/meeting algebra of
//!   §3.2.1, machine-checked against the simulator.
//! * [`trace`] — beat-by-beat choreography recording, used to regenerate
//!   Figure 3-2.
//! * [`telemetry`] — the workspace-wide trace-event taxonomy and the
//!   zero-cost-when-disabled [`TraceSink`](telemetry::TraceSink)
//!   contract the hot paths emit into (`pm-chip`'s metrics layer builds
//!   its counters, histograms and exporters on top).
//! * [`selftimed`] — a Monte-Carlo model of the clocked vs. self-timed
//!   data-flow trade-off discussed in §3.3.2, and [`handshake`] — an
//!   actual event-driven self-timed implementation cross-validating it.
//!
//! ## Quick start
//!
//! ```
//! use pm_systolic::prelude::*;
//!
//! # fn main() -> Result<(), pm_systolic::Error> {
//! let pattern = Pattern::parse("AXC")?; // X is the wild card
//! let mut m = SystolicMatcher::new(&pattern)?;
//! let hits = m.match_letters("ABCAACCAB")?;
//! // AXC matches ABC (ends at 2), AAC (ends at 5), ACC (ends at 6)
//! assert_eq!(hits.ending_positions(), vec![2, 5, 6]);
//! # Ok(())
//! # }
//! ```

// Deny rather than forbid: the one sanctioned exception is
// `superplane`, which opts back in locally to call its
// `#[target_feature]` kernel specialisations after
// `is_x86_feature_detected!` has proven the features present. Every
// data path in the crate remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bitserial;
pub mod engine;
pub mod error;
pub mod handshake;
pub mod matcher;
pub mod resident;
pub mod schedule;
pub mod segment;
pub mod selftimed;
pub mod semantics;
pub mod spec;
pub mod stream;
pub mod superplane;
pub mod symbol;
pub mod telemetry;
pub mod trace;

pub use error::Error;

/// Convenient re-exports of the items most users need.
pub mod prelude {
    pub use crate::batch::{BatchMatcher, CompiledPattern, PlaneDriver};
    pub use crate::bitserial::BitSerialMatcher;
    pub use crate::engine::{Driver, MatchBits};
    pub use crate::error::Error;
    pub use crate::matcher::SystolicMatcher;
    pub use crate::resident::{LaneHit, ResidentGroup};
    pub use crate::segment::{Segment, SegmentIo};
    pub use crate::semantics::{BooleanMatch, CountMatch, MeetSemantics};
    pub use crate::spec::{count_spec, match_spec};
    pub use crate::stream::MatchStream;
    pub use crate::superplane::{
        simd_level, SimdLevel, SuperMatcher, Superplane, SuperplaneDriver,
    };
    pub use crate::symbol::{Alphabet, PatSym, Pattern, Symbol};
    pub use crate::telemetry::{MemorySink, NullSink, SinkHandle, TraceEvent, TraceSink};
    pub use crate::trace::{TraceRecorder, TraceSnapshot};
}
