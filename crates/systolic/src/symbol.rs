//! Alphabets, text symbols and pattern symbols.
//!
//! The paper's prototype chip handled "patterns containing up to eight
//! two-bit characters", i.e. a four-symbol alphabet. This module keeps the
//! alphabet width explicit so the bit-serial comparator array
//! ([`crate::bitserial`]) and the NMOS substrate know how many one-bit
//! comparator rows to build.

use crate::error::Error;
use std::fmt;

/// An alphabet of `2^bits` symbols, `1 ≤ bits ≤ 8`.
///
/// The fabricated prototype used [`Alphabet::TWO_BIT`]; ASCII text is
/// conveniently handled with [`Alphabet::EIGHT_BIT`].
///
/// ```
/// use pm_systolic::symbol::Alphabet;
/// let a = Alphabet::new(2).unwrap();
/// assert_eq!(a.size(), 4);
/// assert!(a.contains(3));
/// assert!(!a.contains(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Alphabet {
    bits: u32,
}

impl Alphabet {
    /// The two-bit alphabet of the fabricated prototype chip (Plate 2).
    pub const TWO_BIT: Alphabet = Alphabet { bits: 2 };
    /// An eight-bit alphabet, convenient for byte/ASCII text.
    pub const EIGHT_BIT: Alphabet = Alphabet { bits: 8 };

    /// Creates an alphabet of `2^bits` symbols.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadAlphabetWidth`] unless `1 ≤ bits ≤ 8`.
    pub fn new(bits: u32) -> Result<Self, Error> {
        if (1..=8).contains(&bits) {
            Ok(Alphabet { bits })
        } else {
            Err(Error::BadAlphabetWidth(bits))
        }
    }

    /// Width of one character in bits.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Number of distinct symbols (`2^bits`).
    pub fn size(self) -> usize {
        1usize << self.bits
    }

    /// Whether `byte` encodes a symbol of this alphabet.
    pub fn contains(self, byte: u8) -> bool {
        u32::from(byte) < (1u32 << self.bits)
    }

    /// Wraps `byte` into a checked [`Symbol`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::SymbolOutOfRange`] if `byte` does not fit.
    pub fn symbol(self, byte: u8) -> Result<Symbol, Error> {
        if self.contains(byte) {
            Ok(Symbol(byte))
        } else {
            Err(Error::SymbolOutOfRange {
                byte,
                bits: self.bits,
            })
        }
    }

    /// Iterates over every symbol of the alphabet.
    ///
    /// ```
    /// use pm_systolic::symbol::Alphabet;
    /// let syms: Vec<u8> = Alphabet::TWO_BIT.symbols().map(|s| s.value()).collect();
    /// assert_eq!(syms, vec![0, 1, 2, 3]);
    /// ```
    pub fn symbols(self) -> impl Iterator<Item = Symbol> {
        (0..self.size() as u16).map(|v| Symbol(v as u8))
    }
}

impl Default for Alphabet {
    /// Defaults to the prototype chip's two-bit alphabet.
    fn default() -> Self {
        Alphabet::TWO_BIT
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Σ({} bits, {} symbols)", self.bits, self.size())
    }
}

/// One character of the text stream (an element of Σ).
///
/// A plain newtype over `u8`; validity with respect to a particular
/// [`Alphabet`] is checked at the stream boundary, not on every beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(transparent)]
pub struct Symbol(pub(crate) u8);

impl Symbol {
    /// Creates a symbol from its raw encoding without range checking.
    ///
    /// Prefer [`Alphabet::symbol`] when the alphabet is at hand.
    pub fn new(value: u8) -> Self {
        Symbol(value)
    }

    /// The raw bit encoding of the symbol.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Bit `v` of the symbol counting from the most significant bit of a
    /// `bits`-wide character (bit 0 = MSB), as fed to the bit-serial
    /// comparator rows of Figure 3-4.
    pub fn bit_msb_first(self, v: u32, bits: u32) -> bool {
        debug_assert!(v < bits);
        (self.0 >> (bits - 1 - v)) & 1 == 1
    }
}

impl From<u8> for Symbol {
    fn from(value: u8) -> Self {
        Symbol(value)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print small symbols as A, B, C, … like the paper's figures.
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0) as char)
        } else {
            write!(f, "#{:02x}", self.0)
        }
    }
}

/// One character of the pattern stream: a symbol of Σ or the wild card `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatSym {
    /// A literal symbol that must match exactly.
    Lit(Symbol),
    /// The wild card character `x`, which matches any symbol.
    Wild,
}

impl PatSym {
    /// Whether this pattern character matches the text symbol `s`.
    ///
    /// ```
    /// use pm_systolic::symbol::{PatSym, Symbol};
    /// assert!(PatSym::Wild.matches(Symbol::new(3)));
    /// assert!(PatSym::Lit(Symbol::new(3)).matches(Symbol::new(3)));
    /// assert!(!PatSym::Lit(Symbol::new(2)).matches(Symbol::new(3)));
    /// ```
    pub fn matches(self, s: Symbol) -> bool {
        match self {
            PatSym::Wild => true,
            PatSym::Lit(p) => p == s,
        }
    }

    /// Whether this is the wild card (the accumulator's `x` control bit).
    pub fn is_wild(self) -> bool {
        matches!(self, PatSym::Wild)
    }

    /// The literal symbol, if any.
    pub fn literal(self) -> Option<Symbol> {
        match self {
            PatSym::Lit(s) => Some(s),
            PatSym::Wild => None,
        }
    }
}

impl From<Symbol> for PatSym {
    fn from(s: Symbol) -> Self {
        PatSym::Lit(s)
    }
}

impl fmt::Display for PatSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatSym::Lit(s) => write!(f, "{s}"),
            PatSym::Wild => write!(f, "X"),
        }
    }
}

/// A complete pattern `p0 p1 … pk` with its alphabet.
///
/// Patterns are immutable once built; the systolic driver recirculates
/// them endlessly through the array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    symbols: Vec<PatSym>,
    alphabet: Alphabet,
}

impl Pattern {
    /// Builds a pattern from pattern symbols.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyPattern`] if `symbols` is empty.
    /// * [`Error::SymbolOutOfRange`] if a literal falls outside `alphabet`.
    pub fn new(symbols: Vec<PatSym>, alphabet: Alphabet) -> Result<Self, Error> {
        if symbols.is_empty() {
            return Err(Error::EmptyPattern);
        }
        for sym in &symbols {
            if let PatSym::Lit(s) = sym {
                if !alphabet.contains(s.0) {
                    return Err(Error::SymbolOutOfRange {
                        byte: s.0,
                        bits: alphabet.bits(),
                    });
                }
            }
        }
        Ok(Pattern { symbols, alphabet })
    }

    /// Parses a pattern in the paper's figure notation: letters `A`, `B`,
    /// `C`, … are symbols 0, 1, 2, … and `X` (or `x`) is the wild card.
    /// The alphabet defaults to the smallest power-of-two width that holds
    /// every literal (at least 2 bits, matching the prototype chip).
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyPattern`] for an empty string.
    /// * [`Error::BadPatternChar`] for characters outside `A..=Z`/`x`/`X`.
    ///
    /// ```
    /// use pm_systolic::symbol::Pattern;
    /// let p = Pattern::parse("AXC").unwrap();
    /// assert_eq!(p.len(), 3);
    /// assert!(p.symbols()[1].is_wild());
    /// ```
    pub fn parse(text: &str) -> Result<Self, Error> {
        let mut symbols = Vec::with_capacity(text.len());
        let mut max = 0u8;
        for c in text.chars() {
            match c {
                'x' | 'X' => symbols.push(PatSym::Wild),
                'A'..='W' => {
                    let v = c as u8 - b'A';
                    max = max.max(v);
                    symbols.push(PatSym::Lit(Symbol(v)));
                }
                other => return Err(Error::BadPatternChar(other)),
            }
        }
        let alphabet = Alphabet::new(needed_bits(max).max(2))?;
        Pattern::new(symbols, alphabet)
    }

    /// Parses a pattern over raw bytes where `wild` marks wild cards.
    ///
    /// # Errors
    ///
    /// Same as [`Pattern::new`].
    pub fn from_bytes(bytes: &[u8], wild: Option<u8>, alphabet: Alphabet) -> Result<Self, Error> {
        let symbols = bytes
            .iter()
            .map(|&b| {
                if Some(b) == wild {
                    PatSym::Wild
                } else {
                    PatSym::Lit(Symbol(b))
                }
            })
            .collect();
        Pattern::new(symbols, alphabet)
    }

    /// The pattern symbols `p0 … pk`.
    pub fn symbols(&self) -> &[PatSym] {
        &self.symbols
    }

    /// Pattern length `k + 1`.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the pattern is empty (never true for a constructed pattern).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The paper's `k`: index of the last pattern character.
    pub fn k(&self) -> usize {
        self.symbols.len() - 1
    }

    /// The alphabet the pattern is drawn from.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Whether any character is the wild card.
    pub fn has_wildcards(&self) -> bool {
        self.symbols.iter().any(|s| s.is_wild())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.symbols {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Smallest bit width that can encode `max` (at least 1, at most 8).
fn needed_bits(max: u8) -> u32 {
    (32 - u32::from(max).leading_zeros()).clamp(1, 8)
}

/// Converts a byte string into text symbols, checking the alphabet.
///
/// # Errors
///
/// Returns [`Error::SymbolOutOfRange`] on the first out-of-range byte.
pub fn text_from_bytes(bytes: &[u8], alphabet: Alphabet) -> Result<Vec<Symbol>, Error> {
    bytes.iter().map(|&b| alphabet.symbol(b)).collect()
}

/// Parses figure-notation text (`A`, `B`, `C`, …) into symbols.
///
/// # Errors
///
/// Returns [`Error::BadPatternChar`] for anything outside `A..=W`.
pub fn text_from_letters(text: &str) -> Result<Vec<Symbol>, Error> {
    text.chars()
        .map(|c| match c {
            'A'..='W' => Ok(Symbol(c as u8 - b'A')),
            other => Err(Error::BadPatternChar(other)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_bounds() {
        assert!(Alphabet::new(0).is_err());
        assert!(Alphabet::new(9).is_err());
        for bits in 1..=8 {
            let a = Alphabet::new(bits).unwrap();
            assert_eq!(a.size(), 1 << bits);
            assert_eq!(a.symbols().count(), a.size());
        }
    }

    #[test]
    fn alphabet_symbol_range_check() {
        let a = Alphabet::TWO_BIT;
        assert!(a.symbol(3).is_ok());
        assert_eq!(
            a.symbol(4),
            Err(Error::SymbolOutOfRange { byte: 4, bits: 2 })
        );
    }

    #[test]
    fn symbol_bits_msb_first() {
        let s = Symbol::new(0b10); // two-bit char "C"
        assert!(s.bit_msb_first(0, 2));
        assert!(!s.bit_msb_first(1, 2));
        let t = Symbol::new(0b0110_1001);
        let bits: Vec<bool> = (0..8).map(|v| t.bit_msb_first(v, 8)).collect();
        assert_eq!(
            bits,
            vec![false, true, true, false, true, false, false, true]
        );
    }

    #[test]
    fn pattern_parse_figure_notation() {
        let p = Pattern::parse("AXC").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.k(), 2);
        assert_eq!(p.symbols()[0], PatSym::Lit(Symbol(0)));
        assert_eq!(p.symbols()[1], PatSym::Wild);
        assert_eq!(p.symbols()[2], PatSym::Lit(Symbol(2)));
        assert!(p.has_wildcards());
        assert_eq!(p.to_string(), "AXC");
    }

    #[test]
    fn pattern_parse_rejects_garbage() {
        assert_eq!(Pattern::parse("A!C"), Err(Error::BadPatternChar('!')));
        assert_eq!(Pattern::parse(""), Err(Error::EmptyPattern));
    }

    #[test]
    fn pattern_alphabet_wide_enough() {
        // 'H' = symbol 7 needs 3 bits.
        let p = Pattern::parse("AH").unwrap();
        assert!(p.alphabet().bits() >= 3);
        assert!(p.alphabet().contains(7));
    }

    #[test]
    fn pattern_literal_range_checked() {
        let err = Pattern::from_bytes(&[0, 9], None, Alphabet::TWO_BIT);
        assert_eq!(err, Err(Error::SymbolOutOfRange { byte: 9, bits: 2 }));
    }

    #[test]
    fn wildcard_matches_everything() {
        for v in 0..=255u8 {
            assert!(PatSym::Wild.matches(Symbol(v)));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Symbol::new(0).to_string(), "A");
        assert_eq!(Symbol::new(2).to_string(), "C");
        assert_eq!(Symbol::new(200).to_string(), "#c8");
        assert_eq!(PatSym::Wild.to_string(), "X");
        assert_eq!(Alphabet::TWO_BIT.to_string(), "Σ(2 bits, 4 symbols)");
    }

    #[test]
    fn text_helpers() {
        let t = text_from_letters("ABC").unwrap();
        assert_eq!(t, vec![Symbol(0), Symbol(1), Symbol(2)]);
        assert!(text_from_letters("A1").is_err());
        let t = text_from_bytes(&[0, 1, 3], Alphabet::TWO_BIT).unwrap();
        assert_eq!(t.len(), 3);
        assert!(text_from_bytes(&[4], Alphabet::TWO_BIT).is_err());
    }
}
