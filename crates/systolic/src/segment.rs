//! The port-level systolic array segment.
//!
//! A [`Segment`] is a run of consecutive character cells — on the real
//! chip, the cells of one die. It exposes exactly the boundary wires the
//! paper adds for extensibility in §3.4: pattern in/out (flowing
//! left→right), text in/out and result in/out (flowing right→left), with
//! the `λ` and `x` control bits riding on the pattern items. Several
//! segments wired output-to-input behave identically to one long segment,
//! which is the property behind the five-chip cascade of Figure 3-7
//! (verified in this module's tests and again at chip level in
//! `pm-chip`).
//!
//! ## Beat discipline
//!
//! A beat is one full cycle of the two-phase clock of §3.2.2. The
//! segment is stepped synchronously:
//!
//! 1. [`Segment::outputs`] reads the items that will leave the segment
//!    this beat — a pure function of pre-beat state, like the stable
//!    outputs a neighbouring chip samples while the pass transistors are
//!    off;
//! 2. [`Segment::step`] shifts every stream by one cell (pattern
//!    rightward, text and results leftward, taking this beat's inputs at
//!    the boundaries) and then lets every cell where a pattern item and a
//!    text item *meet* run its cell algorithm.
//!
//! Alternate cells are idle on alternate beats exactly as in Figure 3-2:
//! the streams' items are spaced one empty slot apart, so meetings form
//! the checkerboard the paper describes. The engine does not hard-code
//! the checkerboard — it falls out of the data spacing, as it does in the
//! NMOS implementation.

use crate::semantics::MeetSemantics;
use std::collections::VecDeque;

/// One item of the pattern stream: the cell payload plus the `λ`
/// (end-of-pattern) control bit of §3.2.1. For matchers whose pattern
/// characters may be wild cards, the `x` bit is part of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatItem<P> {
    /// The pattern payload delivered to meeting cells.
    pub payload: P,
    /// True on the last character of the pattern; tells the accumulator
    /// to emit its temporary result into the result stream.
    pub lambda: bool,
}

/// One item of the text stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxtItem<T> {
    /// The text payload delivered to meeting cells.
    pub payload: T,
    /// Position of this character in the text (`i` in `s_i`).
    ///
    /// The real chip has no such wire; it is simulation metadata used to
    /// check that each result leaves the array in the same beat-slot as
    /// its text character, which the paper asserts and the tests verify.
    pub seq: u64,
}

/// One occupied slot of the result stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResItem<O> {
    /// The completed result (`r_i`).
    pub value: O,
    /// Sequence number of the text character this result belongs to.
    pub seq: u64,
}

/// The boundary wires of a segment for one beat.
///
/// `pattern` travels left→right; `text` and `result` travel right→left.
/// In a cascade, the left neighbour's `pattern` output feeds this
/// segment's input and this segment's `text`/`result` outputs feed the
/// left neighbour's inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentIo<S: MeetSemantics> {
    /// Pattern wire (left boundary on input, right boundary on output).
    pub pattern: Option<PatItem<S::Pat>>,
    /// Text wire (right boundary on input, left boundary on output).
    pub text: Option<TxtItem<S::Txt>>,
    /// Result wire (right boundary on input, left boundary on output).
    pub result: Option<ResItem<S::Out>>,
}

impl<S: MeetSemantics> SegmentIo<S> {
    /// An all-idle bundle of wires (no items present this beat).
    pub fn idle() -> Self {
        SegmentIo {
            pattern: None,
            text: None,
            result: None,
        }
    }
}

impl<S: MeetSemantics> Default for SegmentIo<S> {
    fn default() -> Self {
        Self::idle()
    }
}

/// A run of `n` character cells with their comparator/accumulator pairs.
///
/// Generic over [`MeetSemantics`], so the same structure serves the
/// boolean matcher, the match counter and the numeric arrays of
/// `pm-correlator`.
#[derive(Debug, Clone)]
pub struct Segment<S: MeetSemantics> {
    sem: S,
    /// Pattern stream slots, index 0 = leftmost cell.
    p: VecDeque<Option<PatItem<S::Pat>>>,
    /// Text stream slots.
    s: VecDeque<Option<TxtItem<S::Txt>>>,
    /// Result stream slots.
    r: VecDeque<Option<ResItem<S::Out>>>,
    /// Per-cell temporary results (`t` of the accumulator algorithm).
    t: Vec<S::Acc>,
}

impl<S: MeetSemantics> Segment<S> {
    /// Creates a segment of `cells` character cells, all streams empty
    /// and every temporary result freshly initialised.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero; a segment models at least one cell.
    pub fn new(sem: S, cells: usize) -> Self {
        assert!(cells > 0, "a segment must contain at least one cell");
        let t = (0..cells).map(|_| sem.fresh()).collect();
        Segment {
            sem,
            p: std::iter::repeat_with(|| None).take(cells).collect(),
            s: std::iter::repeat_with(|| None).take(cells).collect(),
            r: std::iter::repeat_with(|| None).take(cells).collect(),
            t,
        }
    }

    /// Number of character cells in this segment.
    pub fn cells(&self) -> usize {
        self.t.len()
    }

    /// The items that will leave the segment on the next [`step`]:
    /// the pattern item in the rightmost cell, and the text and result
    /// items in the leftmost cell. Pure read of pre-beat state.
    ///
    /// [`step`]: Segment::step
    pub fn outputs(&self) -> SegmentIo<S> {
        SegmentIo {
            pattern: self.p.back().cloned().flatten(),
            text: self.s.front().cloned().flatten(),
            result: self.r.front().cloned().flatten(),
        }
    }

    /// Advances the segment by one beat: shift all three streams one
    /// cell, taking `input` at the boundaries, then run the cell
    /// algorithm in every cell where a pattern item meets a text item.
    pub fn step(&mut self, input: SegmentIo<S>) {
        // Pattern shifts rightward: drop rightmost, insert input at left.
        self.p.pop_back();
        self.p.push_front(input.pattern);
        // Text and results shift leftward: drop leftmost, insert at right.
        self.s.pop_front();
        self.s.push_back(input.text);
        self.r.pop_front();
        self.r.push_back(input.result);

        // Meetings: the active cells of this beat. Because both streams
        // carry items in every other slot, these form the checkerboard of
        // Figure 3-4 — no explicit activation logic is needed.
        for c in 0..self.t.len() {
            let (Some(p), Some(s)) = (&self.p[c], &self.s[c]) else {
                continue;
            };
            self.sem.absorb(&mut self.t[c], &p.payload, &s.payload);
            if p.lambda {
                // λ beat: place the completed result into the result
                // stream, in the slot that rides with this text item, and
                // re-initialise the temporary result.
                let value = self.sem.emit(&mut self.t[c]);
                self.r[c] = Some(ResItem { value, seq: s.seq });
            }
        }
    }

    /// The pattern item currently in cell `c`, if any (for tracing).
    pub fn pattern_slot(&self, c: usize) -> Option<&PatItem<S::Pat>> {
        self.p[c].as_ref()
    }

    /// The text item currently in cell `c`, if any (for tracing).
    pub fn text_slot(&self, c: usize) -> Option<&TxtItem<S::Txt>> {
        self.s[c].as_ref()
    }

    /// The result item currently in cell `c`, if any (for tracing).
    pub fn result_slot(&self, c: usize) -> Option<&ResItem<S::Out>> {
        self.r[c].as_ref()
    }

    /// The temporary result `t` of cell `c` (for tracing).
    pub fn acc(&self, c: usize) -> &S::Acc {
        &self.t[c]
    }

    /// Clears all streams and re-initialises every temporary result,
    /// as on power-up. (The real chip's dynamic registers have no reset;
    /// the host simply runs the array until stale charge flushes out —
    /// see `pm-nmos` for that behaviour.)
    pub fn reset(&mut self) {
        for slot in self.p.iter_mut() {
            *slot = None;
        }
        for slot in self.s.iter_mut() {
            *slot = None;
        }
        for slot in self.r.iter_mut() {
            *slot = None;
        }
        for acc in self.t.iter_mut() {
            *acc = self.sem.fresh();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::BooleanMatch;
    use crate::symbol::{PatSym, Symbol};

    fn pat(v: u8, lambda: bool) -> Option<PatItem<PatSym>> {
        Some(PatItem {
            payload: PatSym::Lit(Symbol::new(v)),
            lambda,
        })
    }

    fn txt(v: u8, seq: u64) -> Option<TxtItem<Symbol>> {
        Some(TxtItem {
            payload: Symbol::new(v),
            seq,
        })
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        let _ = Segment::new(BooleanMatch, 0);
    }

    #[test]
    fn items_move_one_cell_per_beat() {
        let mut seg = Segment::new(BooleanMatch, 4);
        seg.step(SegmentIo {
            pattern: pat(0, false),
            text: None,
            result: None,
        });
        assert!(seg.pattern_slot(0).is_some());
        seg.step(SegmentIo::idle());
        assert!(seg.pattern_slot(0).is_none());
        assert!(seg.pattern_slot(1).is_some());
        seg.step(SegmentIo::idle());
        seg.step(SegmentIo::idle());
        // Now at the right boundary; visible as output, then gone.
        assert!(seg.outputs().pattern.is_some());
        seg.step(SegmentIo::idle());
        assert!(seg.outputs().pattern.is_none());
    }

    #[test]
    fn text_moves_right_to_left() {
        let mut seg = Segment::new(BooleanMatch, 3);
        seg.step(SegmentIo {
            pattern: None,
            text: txt(1, 0),
            result: None,
        });
        assert!(seg.text_slot(2).is_some());
        seg.step(SegmentIo::idle());
        assert!(seg.text_slot(1).is_some());
        seg.step(SegmentIo::idle());
        assert_eq!(seg.outputs().text.as_ref().map(|t| t.seq), Some(0));
    }

    #[test]
    fn meeting_runs_cell_algorithm_and_lambda_emits() {
        // 1-cell "array": pattern char and text char injected on the same
        // beat meet immediately in cell 0.
        let mut seg = Segment::new(BooleanMatch, 1);
        seg.step(SegmentIo {
            pattern: pat(2, true),
            text: txt(2, 7),
            result: None,
        });
        let res = seg.result_slot(0).expect("λ must emit a result");
        assert!(res.value);
        assert_eq!(res.seq, 7);
        // The accumulator was re-initialised.
        assert!(*seg.acc(0));
    }

    #[test]
    fn mismatch_emits_false() {
        let mut seg = Segment::new(BooleanMatch, 1);
        seg.step(SegmentIo {
            pattern: pat(2, true),
            text: txt(3, 0),
            result: None,
        });
        assert!(!seg.result_slot(0).unwrap().value);
    }

    #[test]
    fn result_stream_rides_leftward_with_text() {
        let mut seg = Segment::new(BooleanMatch, 3);
        let r_in = Some(ResItem {
            value: true,
            seq: 9,
        });
        seg.step(SegmentIo {
            pattern: None,
            text: txt(0, 9),
            result: r_in,
        });
        seg.step(SegmentIo::idle());
        seg.step(SegmentIo::idle());
        let out = seg.outputs();
        assert_eq!(out.result.as_ref().map(|r| r.seq), Some(9));
        assert_eq!(out.text.as_ref().map(|t| t.seq), Some(9));
    }

    #[test]
    fn reset_clears_everything() {
        let mut seg = Segment::new(BooleanMatch, 2);
        seg.step(SegmentIo {
            pattern: pat(0, false),
            text: txt(1, 0),
            result: None,
        });
        seg.reset();
        for c in 0..2 {
            assert!(seg.pattern_slot(c).is_none());
            assert!(seg.text_slot(c).is_none());
            assert!(seg.result_slot(c).is_none());
            assert!(*seg.acc(c));
        }
    }

    #[test]
    fn split_segments_equal_one_long_segment() {
        // The extensibility property of §3.4 at segment level: a 2+3 cell
        // chain behaves exactly like one 5-cell segment for an arbitrary
        // input stimulus.
        let mut whole = Segment::new(BooleanMatch, 5);
        let mut left = Segment::new(BooleanMatch, 2);
        let mut right = Segment::new(BooleanMatch, 3);

        let stim: Vec<SegmentIo<BooleanMatch>> = (0..40u64)
            .map(|t| SegmentIo {
                pattern: if t % 2 == 0 {
                    pat((t / 2 % 3) as u8, t / 2 % 3 == 2)
                } else {
                    None
                },
                text: if t % 2 == 1 {
                    txt((t % 4) as u8, t / 2)
                } else {
                    None
                },
                result: None,
            })
            .collect();

        for io in stim {
            let whole_out = whole.outputs();
            // Wire the pair: host pattern → left → right; host text/result
            // → right → left.
            let left_out = left.outputs();
            let right_out = right.outputs();
            let chain_out: SegmentIo<BooleanMatch> = SegmentIo {
                pattern: right_out.pattern.clone(),
                text: left_out.text.clone(),
                result: left_out.result.clone(),
            };
            assert_eq!(whole_out, chain_out);

            whole.step(io.clone());
            left.step(SegmentIo {
                pattern: io.pattern.clone(),
                text: right_out.text,
                result: right_out.result,
            });
            right.step(SegmentIo {
                pattern: left_out.pattern,
                text: io.text,
                result: io.result,
            });
        }
    }
}
