//! The bit-serial pipelined comparator array (paper Figure 3-4).
//!
//! §3.2.1 divides each character comparator into one-bit comparators:
//! characters enter the array one *bit* per beat, high-order bit first,
//! so that a `b`-bit alphabet needs `b` rows of one-bit comparator cells
//! above the accumulator row. Each one-bit cell runs
//!
//! ```text
//! p_out ← p_in;   s_out ← s_in;   d_out ← d_in AND (p_in = s_in)
//! ```
//!
//! with `p` bits flowing left→right, `s` bits right→left, and the
//! comparison result `d` trickling *down* one row per beat, meeting the
//! next lower bits of the same character pair. Active cells form a
//! checkerboard in both dimensions. The `λ` and `x` control bits enter
//! the accumulator row directly, delayed by `b` beats so they arrive
//! together with the fully-reduced `d` for their pattern character.
//!
//! The observable behaviour is identical to the character-level array of
//! [`crate::matcher`]; the integration tests prove it. This model is the
//! bridge between the behavioural matcher and the NMOS netlist of
//! `pm-nmos`, which implements exactly these one-bit cells.

use crate::engine::MatchBits;
use crate::error::Error;
use crate::symbol::{Pattern, Symbol};

/// A bit item travelling through a comparator row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BitItem {
    bit: bool,
    /// Simulation metadata: which character this bit belongs to
    /// (pattern index j for `p` bits, text index i for `s` bits).
    seq: u64,
}

/// A partial comparison result descending the `d` pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DItem {
    value: bool,
    /// Text character index the comparison belongs to.
    seq: u64,
}

/// A `λ`/`x` control item travelling through the accumulator row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CtlItem {
    lambda: bool,
    wild: bool,
}

/// A completed result in the result stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ResItem {
    value: bool,
    seq: u64,
}

/// One beat's worth of activity, passed to observers registered with
/// [`BitSerialMatcher::match_symbols_observed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitBeatView {
    /// Beat number.
    pub beat: u64,
    /// `(row, column)` of every comparator cell that computed this beat —
    /// the checkerboard of Figure 3-4.
    pub active: Vec<(usize, usize)>,
}

/// The bit-serial systolic matcher: `bits` rows of one-bit comparators
/// over `cells` columns, plus an accumulator row.
#[derive(Debug, Clone)]
pub struct BitSerialMatcher {
    pattern: Pattern,
    cells: usize,
    bits: u32,
}

/// Transient per-run state of the grid.
struct Grid {
    /// Pattern bit slots per row, index `[row][col]`.
    p: Vec<Vec<Option<BitItem>>>,
    /// Text bit slots per row.
    s: Vec<Vec<Option<BitItem>>>,
    /// `d` pipeline registers: `d[v][c]` is the input to row `v`'s cell
    /// this beat (written by row `v-1` last beat). Row index `bits` is
    /// the accumulator's `d` input.
    d: Vec<Vec<Option<DItem>>>,
    /// Control items in the accumulator row.
    ctl: Vec<Option<CtlItem>>,
    /// Result stream slots in the accumulator row.
    r: Vec<Option<ResItem>>,
    /// Temporary results `t`.
    t: Vec<bool>,
}

impl Grid {
    fn new(bits: usize, cells: usize) -> Self {
        Grid {
            p: vec![vec![None; cells]; bits],
            s: vec![vec![None; cells]; bits],
            d: vec![vec![None; cells]; bits + 1],
            ctl: vec![None; cells],
            r: vec![None; cells],
            t: vec![true; cells],
        }
    }

    /// Shift a row rightward, injecting at column 0.
    fn shift_right<T: Copy>(row: &mut [Option<T>], inject: Option<T>) {
        for c in (1..row.len()).rev() {
            row[c] = row[c - 1];
        }
        row[0] = inject;
    }

    /// Shift a row leftward, injecting at the last column; returns the
    /// item that fell off column 0.
    fn shift_left<T: Copy>(row: &mut [Option<T>], inject: Option<T>) -> Option<T> {
        let out = row[0];
        for c in 0..row.len() - 1 {
            row[c] = row[c + 1];
        }
        *row.last_mut().expect("rows are non-empty") = inject;
        out
    }
}

impl BitSerialMatcher {
    /// Builds a bit-serial matcher with `k+1` columns and one comparator
    /// row per alphabet bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyPattern`] for an empty pattern.
    pub fn new(pattern: &Pattern) -> Result<Self, Error> {
        Self::with_cells(pattern, pattern.len())
    }

    /// Builds a bit-serial matcher over `cells ≥ k+1` columns.
    ///
    /// # Errors
    ///
    /// [`Error::ArrayTooSmall`] if `cells < pattern.len()`, or
    /// [`Error::EmptyPattern`].
    pub fn with_cells(pattern: &Pattern, cells: usize) -> Result<Self, Error> {
        if pattern.is_empty() {
            return Err(Error::EmptyPattern);
        }
        if cells < pattern.len() {
            return Err(Error::ArrayTooSmall {
                cells,
                pattern_len: pattern.len(),
            });
        }
        Ok(BitSerialMatcher {
            pattern: pattern.clone(),
            cells,
            bits: pattern.alphabet().bits(),
        })
    }

    /// Number of one-bit comparator rows (the alphabet width).
    pub fn rows(&self) -> u32 {
        self.bits
    }

    /// Number of columns (character cells).
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// The pattern this matcher was built for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Matches a symbol stream; behaviourally identical to
    /// [`crate::matcher::SystolicMatcher::match_symbols`].
    pub fn match_symbols(&self, text: &[Symbol]) -> MatchBits {
        self.match_symbols_observed(text, |_| {})
    }

    /// Like [`match_symbols`](Self::match_symbols) but calls `observe`
    /// once per beat with the set of active comparator cells, which is
    /// how the Figure 3-4 checkerboard is regenerated.
    #[allow(clippy::needless_range_loop)] // grid indices mirror Figure 3-4
    pub fn match_symbols_observed(
        &self,
        text: &[Symbol],
        mut observe: impl FnMut(&BitBeatView),
    ) -> MatchBits {
        let b = self.bits as usize;
        let n = self.cells;
        let plen = self.pattern.len();
        let k = plen - 1;
        let phi = ((n - 1) % 2) as u64;
        let mut grid = Grid::new(b, n);

        let mut out = vec![false; text.len()];
        // Last result r_{L-1} exits the accumulator row at beat
        // N−1+φ+2(L−1)+b+1; run a little past that.
        let total_beats =
            (n as u64) + phi + 2 * (text.len() as u64) + (b as u64) + 2 * (plen as u64) + 8;

        for t in 0..total_beats {
            // --- result stream exits before anything else this beat.
            let exited = Grid::shift_left(&mut grid.r, None);
            if let Some(res) = exited {
                let i = res.seq as usize;
                if i >= k && i < out.len() {
                    out[i] = res.value;
                }
            }

            // --- shift the comparator rows with staggered injection.
            for v in 0..b {
                // Pattern char j's bit v enters row v at beat 2j + v.
                let p_inj = t
                    .checked_sub(v as u64)
                    .filter(|d| d % 2 == 0)
                    .map(|d| d / 2)
                    .map(|j| {
                        let idx = (j as usize) % plen;
                        let sym = self.pattern.symbols()[idx];
                        let bit = sym
                            .literal()
                            .map(|s| s.bit_msb_first(v as u32, self.bits))
                            .unwrap_or(false); // wild card bits are don't-cares
                        BitItem { bit, seq: j }
                    });
                Grid::shift_right(&mut grid.p[v], p_inj);

                // Text char i's bit v enters row v at beat 2i + φ + v.
                let s_inj = t
                    .checked_sub(phi + v as u64)
                    .filter(|d| d % 2 == 0)
                    .map(|d| d / 2)
                    .filter(|&i| (i as usize) < text.len())
                    .map(|i| BitItem {
                        bit: text[i as usize].bit_msb_first(v as u32, self.bits),
                        seq: i,
                    });
                Grid::shift_left(&mut grid.s[v], s_inj);
            }

            // --- control items enter the accumulator row at beat 2j + b.
            let ctl_inj = t
                .checked_sub(b as u64)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
                .map(|j| {
                    let idx = (j as usize) % plen;
                    CtlItem {
                        lambda: idx == k,
                        wild: self.pattern.symbols()[idx].is_wild(),
                    }
                });
            Grid::shift_right(&mut grid.ctl, ctl_inj);

            // --- the accumulator's d input is what row b−1 produced
            // *last* beat (one register stage between the bottom
            // comparator row and the accumulator, as in Figure 3-3).
            let acc_d = grid.d[b].clone();

            // --- comparator cells compute; d descends one row.
            let mut next_d: Vec<Vec<Option<DItem>>> = vec![vec![None; n]; b + 1];
            let mut active = Vec::new();
            for v in 0..b {
                for c in 0..n {
                    let (Some(pb), Some(sb)) = (grid.p[v][c], grid.s[v][c]) else {
                        continue;
                    };
                    active.push((v, c));
                    let eq = pb.bit == sb.bit;
                    let d_in = if v == 0 {
                        // The top of each column starts a fresh comparison.
                        DItem {
                            value: true,
                            seq: sb.seq,
                        }
                    } else {
                        match grid.d[v][c] {
                            Some(d) => {
                                debug_assert_eq!(
                                    d.seq, sb.seq,
                                    "descending d must stay with its text character"
                                );
                                d
                            }
                            // Warm-up: bits meet before the d from above
                            // exists (the text char entered mid-array).
                            None => DItem {
                                value: true,
                                seq: sb.seq,
                            },
                        }
                    };
                    next_d[v + 1][c] = Some(DItem {
                        value: d_in.value && eq,
                        seq: d_in.seq,
                    });
                }
            }
            grid.d = next_d;

            // --- accumulator row computes where control and d co-arrive.
            for c in 0..n {
                let (Some(ctl), Some(d)) = (grid.ctl[c], acc_d[c]) else {
                    continue;
                };
                grid.t[c] = grid.t[c] && (ctl.wild || d.value);
                if ctl.lambda {
                    let value = std::mem::replace(&mut grid.t[c], true);
                    grid.r[c] = Some(ResItem { value, seq: d.seq });
                }
            }

            observe(&BitBeatView { beat: t, active });
        }

        MatchBits::new(out, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::match_spec;
    use crate::symbol::{text_from_letters, Alphabet};

    #[test]
    fn figure_3_1_example_bit_serial() {
        let p = Pattern::parse("AXC").unwrap();
        let t = text_from_letters("ABCAACCAB").unwrap();
        let m = BitSerialMatcher::new(&p).unwrap();
        assert_eq!(m.match_symbols(&t).bits(), match_spec(&t, &p));
    }

    #[test]
    fn wide_alphabet_bit_serial() {
        // 8-bit characters: eight comparator rows.
        let p = Pattern::from_bytes(&[0x41, 0xFF, 0x00], Some(0xFF), Alphabet::EIGHT_BIT).unwrap();
        let m = BitSerialMatcher::new(&p).unwrap();
        assert_eq!(m.rows(), 8);
        let text: Vec<Symbol> = [0x41u8, 0x99, 0x00, 0x41, 0x41, 0x00]
            .iter()
            .map(|&b| Symbol::new(b))
            .collect();
        assert_eq!(m.match_symbols(&text).bits(), match_spec(&text, &p));
    }

    #[test]
    fn oversized_grid_matches_spec() {
        let p = Pattern::parse("ABBA").unwrap();
        let t = text_from_letters("ABBAABBAABBA").unwrap();
        for cells in 4..10 {
            let m = BitSerialMatcher::with_cells(&p, cells).unwrap();
            assert_eq!(
                m.match_symbols(&t).bits(),
                match_spec(&t, &p),
                "cells={cells}"
            );
        }
    }

    #[test]
    fn checkerboard_activity() {
        // On any single beat, active comparator cells must not be
        // adjacent horizontally or vertically (Figure 3-4).
        let p = Pattern::parse("ABCA").unwrap();
        let t = text_from_letters("ABCAABCA").unwrap();
        let m = BitSerialMatcher::new(&p).unwrap();
        let mut checked_beats = 0;
        m.match_symbols_observed(&t, |view| {
            for &(v, c) in &view.active {
                for &(v2, c2) in &view.active {
                    let manhattan = v.abs_diff(v2) + c.abs_diff(c2);
                    assert_ne!(manhattan, 1, "adjacent active cells at beat {}", view.beat);
                }
            }
            if !view.active.is_empty() {
                checked_beats += 1;
            }
        });
        assert!(checked_beats > 10, "activity must actually occur");
    }

    #[test]
    fn rejects_undersized_grid() {
        let p = Pattern::parse("ABCD").unwrap();
        assert!(matches!(
            BitSerialMatcher::with_cells(&p, 3),
            Err(Error::ArrayTooSmall { .. })
        ));
    }
}
