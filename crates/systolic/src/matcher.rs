//! The character-level systolic pattern matcher (paper Figure 3-3).
//!
//! [`SystolicMatcher`] wraps the generic [`Driver`] with the boolean
//! matching semantics and a byte-friendly API. It is the behavioural
//! model of the fabricated chip: one comparator + accumulator pair per
//! character cell, pattern recirculating, `λ`/`x` control bits riding
//! with the pattern.

use crate::engine::{Driver, MatchBits};
use crate::error::Error;
use crate::semantics::{BooleanMatch, CountMatch};
use crate::symbol::{Pattern, Symbol};

/// A ready-to-run systolic string matcher for a fixed pattern.
///
/// ```
/// use pm_systolic::prelude::*;
///
/// # fn main() -> Result<(), Error> {
/// let pattern = Pattern::parse("AXC")?;
/// let mut m = SystolicMatcher::new(&pattern)?;
/// let hits = m.match_letters("ABCAACCAB")?;
/// assert_eq!(hits.ending_positions(), vec![2, 5, 6]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystolicMatcher {
    driver: Driver<BooleanMatch>,
    pattern: Pattern,
}

impl SystolicMatcher {
    /// Builds a matcher whose array has exactly `k+1` cells — the
    /// minimum the paper derives in §3.2.1.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyPattern`] for an empty pattern.
    pub fn new(pattern: &Pattern) -> Result<Self, Error> {
        Self::with_cells(pattern, pattern.len())
    }

    /// Builds a matcher over an array of `cells ≥ k+1` character cells
    /// (an oversized array redundantly recomputes results, harmlessly —
    /// this mirrors running a short pattern on a big chip).
    ///
    /// # Errors
    ///
    /// [`Error::ArrayTooSmall`] if `cells < pattern.len()`, or
    /// [`Error::EmptyPattern`].
    pub fn with_cells(pattern: &Pattern, cells: usize) -> Result<Self, Error> {
        let driver = Driver::new(BooleanMatch, pattern.symbols().to_vec(), &[cells])?;
        Ok(SystolicMatcher {
            driver,
            pattern: pattern.clone(),
        })
    }

    /// Builds a matcher over a cascade of segments, one per chip, as in
    /// Figure 3-7.
    ///
    /// # Errors
    ///
    /// [`Error::NoSegments`], [`Error::ArrayTooSmall`] or
    /// [`Error::EmptyPattern`] as appropriate.
    pub fn with_cascade(pattern: &Pattern, segment_cells: &[usize]) -> Result<Self, Error> {
        let driver = Driver::new(BooleanMatch, pattern.symbols().to_vec(), segment_cells)?;
        Ok(SystolicMatcher {
            driver,
            pattern: pattern.clone(),
        })
    }

    /// The pattern this matcher was built for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of character cells in the array.
    pub fn cells(&self) -> usize {
        self.driver.total_cells()
    }

    /// Direct access to the underlying driver (for tracing and chip-level
    /// composition).
    pub fn driver_mut(&mut self) -> &mut Driver<BooleanMatch> {
        &mut self.driver
    }

    /// Matches raw bytes against the pattern; every byte must belong to
    /// the pattern's alphabet.
    ///
    /// # Errors
    ///
    /// [`Error::SymbolOutOfRange`] if a byte exceeds the alphabet.
    pub fn match_text(&mut self, text: &[u8]) -> Result<MatchBits, Error> {
        let symbols = crate::symbol::text_from_bytes(text, self.pattern.alphabet())?;
        Ok(self.match_symbols(&symbols))
    }

    /// Matches a pre-validated symbol stream.
    pub fn match_symbols(&mut self, text: &[Symbol]) -> MatchBits {
        let bits = self.driver.run(text);
        MatchBits::new(bits, self.pattern.k())
    }

    /// Matches text written in the paper's figure notation (`A`, `B`,
    /// `C`, … for symbols 0, 1, 2, …).
    ///
    /// # Errors
    ///
    /// [`Error::BadPatternChar`] for characters outside `A..=W`, or
    /// [`Error::SymbolOutOfRange`] if a letter exceeds the alphabet.
    pub fn match_letters(&mut self, text: &str) -> Result<MatchBits, Error> {
        let symbols = crate::symbol::text_from_letters(text)?;
        for s in &symbols {
            if !self.pattern.alphabet().contains(s.value()) {
                return Err(Error::SymbolOutOfRange {
                    byte: s.value(),
                    bits: self.pattern.alphabet().bits(),
                });
            }
        }
        Ok(self.match_symbols(&symbols))
    }
}

/// The match-counting variant of §3.4: same array, counting cells.
///
/// ```
/// use pm_systolic::matcher::SystolicCounter;
/// use pm_systolic::symbol::{Pattern, text_from_letters};
///
/// # fn main() -> Result<(), pm_systolic::Error> {
/// let pattern = Pattern::parse("AXC")?;
/// let mut c = SystolicCounter::new(&pattern)?;
/// let counts = c.count_symbols(&text_from_letters("ABC")?);
/// assert_eq!(counts, vec![0, 0, 3]); // A=A, X matches, C=C
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystolicCounter {
    driver: Driver<CountMatch>,
    pattern: Pattern,
}

impl SystolicCounter {
    /// Builds a counter with `k+1` counting cells.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyPattern`] for an empty pattern.
    pub fn new(pattern: &Pattern) -> Result<Self, Error> {
        let driver = Driver::new(CountMatch, pattern.symbols().to_vec(), &[pattern.len()])?;
        Ok(SystolicCounter {
            driver,
            pattern: pattern.clone(),
        })
    }

    /// Counts per-window agreements over a symbol stream; entries `i < k`
    /// are 0 (incomplete windows).
    pub fn count_symbols(&mut self, text: &[Symbol]) -> Vec<u32> {
        self.driver.run(text)
    }

    /// The pattern this counter was built for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{count_spec, match_spec};
    use crate::symbol::text_from_letters;

    #[test]
    fn quickstart_example() {
        let pattern = Pattern::parse("AXC").unwrap();
        let mut m = SystolicMatcher::new(&pattern).unwrap();
        let hits = m.match_text(&[0, 1, 2, 0, 0, 2, 2, 0, 1]).unwrap();
        assert_eq!(hits.ending_positions(), vec![2, 5, 6]);
    }

    #[test]
    fn match_text_validates_alphabet() {
        let pattern = Pattern::parse("AB").unwrap(); // 2-bit alphabet
        let mut m = SystolicMatcher::new(&pattern).unwrap();
        assert!(m.match_text(&[0, 1, 77]).is_err());
    }

    #[test]
    fn matcher_is_reusable_across_texts() {
        let pattern = Pattern::parse("AA").unwrap();
        let mut m = SystolicMatcher::new(&pattern).unwrap();
        let t1 = text_from_letters("AABAA").unwrap();
        let t2 = text_from_letters("BBBB").unwrap();
        assert_eq!(m.match_symbols(&t1).bits(), match_spec(&t1, &pattern));
        assert_eq!(m.match_symbols(&t2).bits(), match_spec(&t2, &pattern));
        // And again with the first text: no state leaks between runs.
        assert_eq!(m.match_symbols(&t1).bits(), match_spec(&t1, &pattern));
    }

    #[test]
    fn counter_matches_count_spec() {
        let pattern = Pattern::parse("AXCA").unwrap();
        let text = text_from_letters("ABCAACCABA").unwrap();
        let mut c = SystolicCounter::new(&pattern).unwrap();
        assert_eq!(c.count_symbols(&text), count_spec(&text, &pattern));
    }

    #[test]
    fn cascade_constructor_works() {
        let pattern = Pattern::parse("ABAB").unwrap();
        let text = text_from_letters("ABABABAB").unwrap();
        let mut m = SystolicMatcher::with_cascade(&pattern, &[2, 2]).unwrap();
        assert_eq!(m.match_symbols(&text).bits(), match_spec(&text, &pattern));
    }
}
