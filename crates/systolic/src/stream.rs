//! Iterator-style on-line matching.
//!
//! The chip is an *on-line* device: "The data streams move at a steady
//! rate between the host computer and the pattern matcher, with a
//! constant time between data items" (§3.1). [`MatchStream`] exposes
//! that behaviour as a lazy adaptor over any `Iterator<Item = Symbol>`:
//! result bits come out one per consumed character, after the array's
//! fixed pipeline latency, without ever buffering the text.

use crate::engine::Driver;
use crate::error::Error;
use crate::semantics::BooleanMatch;
use crate::symbol::{Pattern, Symbol};
use std::collections::VecDeque;

/// A lazy match-bit stream over a symbol iterator.
///
/// Yields `(position, matched)` for every text position, in order.
/// Positions `i < k` are reported as unmatched (incomplete windows).
///
/// ```
/// use pm_systolic::stream::MatchStream;
/// use pm_systolic::symbol::{Pattern, Symbol};
///
/// # fn main() -> Result<(), pm_systolic::Error> {
/// let pattern = Pattern::parse("AB")?;
/// let text = [0u8, 1, 0, 1].into_iter().map(Symbol::new);
/// let hits: Vec<(u64, bool)> = MatchStream::new(&pattern, text)?.collect();
/// assert_eq!(hits, vec![(0, false), (1, true), (2, false), (3, true)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MatchStream<I: Iterator<Item = Symbol>> {
    driver: Driver<BooleanMatch>,
    source: I,
    k: u64,
    /// Results that have arrived but not been yielded yet.
    ready: VecDeque<(u64, bool)>,
    /// Next position to yield (results must come out in order).
    next_out: u64,
    /// Characters fed so far.
    fed: u64,
    /// Source exhausted and array drained.
    drained: bool,
}

impl<I: Iterator<Item = Symbol>> MatchStream<I> {
    /// Builds the stream for `pattern` over `source`.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyPattern`] for an empty pattern.
    pub fn new(pattern: &Pattern, source: I) -> Result<Self, Error> {
        let driver = Driver::new(BooleanMatch, pattern.symbols().to_vec(), &[pattern.len()])?;
        Ok(MatchStream {
            driver,
            source,
            k: pattern.k() as u64,
            ready: VecDeque::new(),
            next_out: 0,
            fed: 0,
            drained: false,
        })
    }

    fn absorb(&mut self, results: Vec<(u64, bool)>) {
        for (seq, hit) in results {
            if seq >= self.k {
                self.ready.push_back((seq, hit));
            }
        }
    }
}

impl<I: Iterator<Item = Symbol>> Iterator for MatchStream<I> {
    type Item = (u64, bool);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.next_out < self.k {
                // Positions below k never produce a hardware result;
                // report them unmatched once the character has actually
                // been consumed.
                if self.next_out < self.fed {
                    let pos = self.next_out;
                    self.next_out += 1;
                    return Some((pos, false));
                }
            } else if let Some(&(seq, hit)) = self.ready.front() {
                debug_assert!(seq >= self.next_out, "results must arrive in order");
                if seq == self.next_out {
                    self.ready.pop_front();
                    self.next_out += 1;
                    return Some((seq, hit));
                }
            }
            if self.drained {
                return None;
            }
            match self.source.next() {
                Some(sym) => {
                    self.fed += 1;
                    let results = self.driver.feed(sym);
                    self.absorb(results);
                }
                None => {
                    let results = self.driver.drain();
                    self.absorb(results);
                    self.drained = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::match_spec;
    use crate::symbol::text_from_letters;

    fn stream_bits(pattern: &str, text: &str) -> Vec<bool> {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        let got: Vec<(u64, bool)> = MatchStream::new(&p, t.iter().copied()).unwrap().collect();
        // Positions must be 0..len in order.
        for (i, &(pos, _)) in got.iter().enumerate() {
            assert_eq!(pos, i as u64);
        }
        got.into_iter().map(|(_, b)| b).collect()
    }

    #[test]
    fn stream_equals_spec() {
        for (p, t) in [("AXC", "ABCAACCAB"), ("AA", "AAAA"), ("ABAB", "ABABABAB")] {
            let pat = Pattern::parse(p).unwrap();
            let txt = text_from_letters(t).unwrap();
            assert_eq!(stream_bits(p, t), match_spec(&txt, &pat), "{p} over {t}");
        }
    }

    #[test]
    fn empty_source_yields_nothing() {
        let p = Pattern::parse("AB").unwrap();
        let got: Vec<_> = MatchStream::new(&p, std::iter::empty()).unwrap().collect();
        assert!(got.is_empty());
    }

    #[test]
    fn text_shorter_than_pattern() {
        assert_eq!(stream_bits("ABCD", "AB"), vec![false, false]);
    }

    #[test]
    fn stream_is_lazy() {
        // Consuming one output must not exhaust the source.
        let p = Pattern::parse("A").unwrap();
        let mut consumed = 0usize;
        let source = (0..1000u32)
            .map(|v| Symbol::new((v % 4) as u8))
            .inspect(|_| consumed += 1);
        let mut s = MatchStream::new(&p, source).unwrap();
        let first = s.next().unwrap();
        assert_eq!(first, (0, true)); // 'A' matches pattern "A"
        drop(s);
        assert!(
            consumed < 20,
            "consumed {consumed} characters for one result"
        );
    }
}
