//! Error types for the systolic crate.

use std::fmt;

/// Errors produced while building or driving a systolic array.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The pattern was empty; the array needs at least one character cell.
    EmptyPattern,
    /// A symbol fell outside the configured alphabet.
    ///
    /// Holds the offending byte and the alphabet's bit width.
    SymbolOutOfRange {
        /// The raw byte that could not be encoded.
        byte: u8,
        /// The alphabet width in bits.
        bits: u32,
    },
    /// A pattern string contained a character that is neither an alphabet
    /// symbol nor the wild card.
    BadPatternChar(char),
    /// The array has fewer cells than the pattern has characters.
    ArrayTooSmall {
        /// Number of character cells available.
        cells: usize,
        /// Pattern length (k+1 in the paper's notation).
        pattern_len: usize,
    },
    /// The requested alphabet width is unsupported (must be 1..=8 bits).
    BadAlphabetWidth(u32),
    /// A driver was asked to run with zero segments.
    NoSegments,
    /// A segment of the array has been condemned by self-test and no
    /// replacement is wired in; the chain cannot carry a stream.
    ///
    /// Produced by the fault-tolerance runtime in `pm-chip` (§5: a
    /// defective circuit must be "replaced by a functioning one" — this
    /// error is what the driver sees when no functioning one remains).
    SegmentFaulted {
        /// Index of the condemned segment (chip) in the chain.
        segment: usize,
    },
    /// A bit-plane batch was offered more lanes than its planes carry —
    /// 64 per machine word ([`crate::batch::LANES`]), `W × 64` for a
    /// width-`W` superplane batch ([`crate::superplane`]).
    TooManyLanes {
        /// Number of lanes requested.
        lanes: usize,
        /// Lanes the batch actually carries.
        capacity: usize,
    },
    /// A plane-driver batch mixed pattern lengths; the shared `λ` bit
    /// of the pattern stream can only mark one end position, so every
    /// lane of a [`crate::batch::PlaneDriver`] must carry a pattern of
    /// the same length.
    RaggedLanePatterns,
    /// A scheduler worker thread panicked mid-batch. Raised by
    /// `pm-chip`'s throughput engine *after* every worker thread has
    /// been joined (no thread is left detached), when no resilience
    /// policy is installed to contain the panic and retry the batch.
    WorkerPanicked {
        /// Index of the worker whose thread panicked.
        worker: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyPattern => write!(f, "pattern must contain at least one character"),
            Error::SymbolOutOfRange { byte, bits } => write!(
                f,
                "symbol byte {byte:#04x} does not fit in a {bits}-bit alphabet"
            ),
            Error::BadPatternChar(c) => {
                write!(f, "pattern character {c:?} is not a symbol or wild card")
            }
            Error::ArrayTooSmall { cells, pattern_len } => write!(
                f,
                "array of {cells} cells cannot hold a pattern of {pattern_len} characters"
            ),
            Error::BadAlphabetWidth(bits) => {
                write!(f, "alphabet width of {bits} bits is not in 1..=8")
            }
            Error::NoSegments => write!(f, "driver requires at least one array segment"),
            Error::SegmentFaulted { segment } => write!(
                f,
                "array segment {segment} is condemned and no spare replaces it"
            ),
            Error::TooManyLanes { lanes, capacity } => write!(
                f,
                "{lanes} lanes exceed the {capacity} lanes of one bit-plane batch"
            ),
            Error::RaggedLanePatterns => write!(
                f,
                "plane-driver lanes must all carry patterns of one length"
            ),
            Error::WorkerPanicked { worker } => write!(
                f,
                "scheduler worker {worker} panicked mid-batch (all workers were joined)"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            Error::EmptyPattern,
            Error::SymbolOutOfRange {
                byte: 0xff,
                bits: 2,
            },
            Error::BadPatternChar('!'),
            Error::ArrayTooSmall {
                cells: 4,
                pattern_len: 9,
            },
            Error::BadAlphabetWidth(0),
            Error::NoSegments,
            Error::SegmentFaulted { segment: 3 },
            Error::TooManyLanes {
                lanes: 65,
                capacity: 64,
            },
            Error::RaggedLanePatterns,
            Error::WorkerPanicked { worker: 2 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            let first = msg.chars().next().unwrap();
            assert!(first.is_lowercase() || !first.is_alphabetic());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
