//! What happens when a pattern item meets a text item.
//!
//! The paper points out (§3.4) that the pattern matcher, the match
//! counter, the correlator, the convolver and FIR filters all share one
//! data flow — two streams moving against each other through a linear
//! array, with control bits `λ` (end of pattern) and `x` (don't care)
//! riding along the pattern. Only the *cell function* differs.
//!
//! [`MeetSemantics`] captures that cell function, so a single systolic
//! engine ([`crate::segment`], [`crate::engine`]) hosts every variant.
//! Boolean matching and match counting live here; the numeric variants
//! live in the `pm-correlator` crate.

use std::fmt::Debug;

/// The cell function of a systolic character cell.
///
/// `Pat` and `Txt` are the payloads carried by the pattern and text
/// streams; `Acc` is the temporary result `t` held in each cell; `Out`
/// is what enters the result stream when the `λ` (end-of-pattern) bit
/// arrives.
///
/// The engine guarantees the calls a cell sees for one result are exactly
/// `absorb(p0, s_{i-k})`, `absorb(p1, s_{i-k+1})`, …, `absorb(pk, s_i)`
/// with `emit` called immediately after the last absorb (the beat the `λ`
/// bit is present), mirroring the accumulator algorithm of §3.2.1:
///
/// ```text
/// λout ← λin;  xout ← xin
/// IF λin THEN rout ← t AND (xin OR din); t ← TRUE
///        ELSE rout ← rin;  t ← t AND (xin OR din)
/// ```
///
/// (shown here for the boolean matcher; the `x` bit is folded into the
/// `Pat` payload in this model).
pub trait MeetSemantics {
    /// Payload of one pattern stream item.
    type Pat: Clone + Debug;
    /// Payload of one text stream item.
    type Txt: Clone + Debug;
    /// The temporary result `t` kept in each cell.
    type Acc: Clone + Debug;
    /// The completed result placed on the result stream.
    type Out: Clone + Debug + Default;

    /// The value of `t` in a freshly initialised cell (the assignment
    /// `t ← TRUE` of the paper, generalised).
    fn fresh(&self) -> Self::Acc;

    /// Folds one pattern/text pair into the temporary result.
    fn absorb(&self, acc: &mut Self::Acc, pat: &Self::Pat, txt: &Self::Txt);

    /// Takes the completed result out of the cell and re-initialises the
    /// temporary result, as on a `λ` beat.
    fn emit(&self, acc: &mut Self::Acc) -> Self::Out {
        let done = std::mem::replace(acc, self.fresh());
        self.finish(done)
    }

    /// Converts a completed accumulator into a result-stream item.
    fn finish(&self, acc: Self::Acc) -> Self::Out;
}

/// Boolean pattern matching: the accumulator algorithm of §3.2.1.
///
/// The pattern payload is a `(symbol, wild)` pair — `wild` is the `x`
/// control bit; the comparator output `d` is the symbol equality test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BooleanMatch;

impl MeetSemantics for BooleanMatch {
    type Pat = crate::symbol::PatSym;
    type Txt = crate::symbol::Symbol;
    type Acc = bool;
    type Out = bool;

    fn fresh(&self) -> bool {
        true // t ← TRUE
    }

    fn absorb(&self, acc: &mut bool, pat: &Self::Pat, txt: &Self::Txt) {
        // t ← t AND (x OR d)   where d = (p = s)
        *acc = *acc && pat.matches(*txt);
    }

    fn finish(&self, acc: bool) -> bool {
        acc
    }
}

/// Match counting (first extension of §3.4): replaces the accumulator
/// with a counting cell, so the result stream carries the number of
/// character positions that agree with the pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountMatch;

impl MeetSemantics for CountMatch {
    type Pat = crate::symbol::PatSym;
    type Txt = crate::symbol::Symbol;
    type Acc = u32;
    type Out = u32;

    fn fresh(&self) -> u32 {
        0 // t ← 0
    }

    fn absorb(&self, acc: &mut u32, pat: &Self::Pat, txt: &Self::Txt) {
        // IF x OR d THEN t ← t + 1
        if pat.matches(*txt) {
            *acc += 1;
        }
    }

    fn finish(&self, acc: u32) -> u32 {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{PatSym, Symbol};

    #[test]
    fn boolean_match_is_conjunction() {
        let sem = BooleanMatch;
        let mut t = sem.fresh();
        sem.absorb(&mut t, &PatSym::Lit(Symbol::new(1)), &Symbol::new(1));
        assert!(t);
        sem.absorb(&mut t, &PatSym::Lit(Symbol::new(0)), &Symbol::new(1));
        assert!(!t);
        // Once false, stays false even through wild cards.
        sem.absorb(&mut t, &PatSym::Wild, &Symbol::new(1));
        assert!(!t);
    }

    #[test]
    fn boolean_emit_resets_to_true() {
        let sem = BooleanMatch;
        let mut t = false;
        assert!(!sem.emit(&mut t));
        assert!(t, "emit must re-initialise t to TRUE");
    }

    #[test]
    fn count_match_counts_wildcards_as_hits() {
        let sem = CountMatch;
        let mut t = sem.fresh();
        sem.absorb(&mut t, &PatSym::Wild, &Symbol::new(3));
        sem.absorb(&mut t, &PatSym::Lit(Symbol::new(2)), &Symbol::new(3));
        sem.absorb(&mut t, &PatSym::Lit(Symbol::new(3)), &Symbol::new(3));
        assert_eq!(t, 2);
        assert_eq!(sem.emit(&mut t), 2);
        assert_eq!(t, 0, "emit must re-initialise t to 0");
    }
}
