//! Property-based tests: every systolic engine agrees with the
//! executable specification on arbitrary patterns and texts.

use pm_systolic::prelude::*;
use proptest::prelude::*;

/// Strategy: an alphabet width, a pattern over it (with wild cards), and
/// a text over it.
fn workload() -> impl Strategy<Value = (u32, Vec<Option<u8>>, Vec<u8>)> {
    (1u32..=4).prop_flat_map(|bits| {
        let max = (1u16 << bits) as u8 - 1;
        let pat_sym = prop_oneof![
            3 => (0..=max).prop_map(Some),
            1 => Just(None), // wild card
        ];
        (
            Just(bits),
            proptest::collection::vec(pat_sym, 1..=9),
            proptest::collection::vec(0..=max, 0..=40),
        )
    })
}

/// Strategy: a shared pattern plus up to 70 independent lane texts —
/// deliberately crossing the 64-lane word boundary so the ragged
/// `N % 64 ≠ 0` chunking path is exercised.
fn lane_workload() -> impl Strategy<Value = (u32, Vec<Option<u8>>, Vec<Vec<u8>>)> {
    (1u32..=4).prop_flat_map(|bits| {
        let max = (1u16 << bits) as u8 - 1;
        let pat_sym = prop_oneof![
            3 => (0..=max).prop_map(Some),
            1 => Just(None), // wild card
        ];
        (
            Just(bits),
            proptest::collection::vec(pat_sym, 1..=9),
            proptest::collection::vec(proptest::collection::vec(0..=max, 0..=24), 1..=70),
        )
    })
}

/// An alphabet width plus per-lane (pattern, text) pairs.
type LaneJobs = (u32, Vec<(Vec<Option<u8>>, Vec<u8>)>);

/// Strategy: per-lane (pattern, text) pairs with independent pattern
/// lengths, for the mixed-lane plane merger.
fn mixed_lane_workload() -> impl Strategy<Value = LaneJobs> {
    (1u32..=4).prop_flat_map(|bits| {
        let max = (1u16 << bits) as u8 - 1;
        let pat_sym = prop_oneof![
            3 => (0..=max).prop_map(Some),
            1 => Just(None), // wild card
        ];
        (
            Just(bits),
            proptest::collection::vec(
                (
                    proptest::collection::vec(pat_sym, 1..=9),
                    proptest::collection::vec(0..=max, 0..=24),
                ),
                1..=64,
            ),
        )
    })
}

/// Strategy: equal-length per-lane patterns (the beat-accurate
/// [`PlaneDriver`] shares one λ position across lanes) and texts.
fn plane_workload() -> impl Strategy<Value = LaneJobs> {
    (1u32..=4, 1usize..=6).prop_flat_map(|(bits, len)| {
        let max = (1u16 << bits) as u8 - 1;
        let pat_sym = prop_oneof![
            3 => (0..=max).prop_map(Some),
            1 => Just(None), // wild card
        ];
        (
            Just(bits),
            proptest::collection::vec(
                (
                    proptest::collection::vec(pat_sym, len),
                    proptest::collection::vec(0..=max, 0..=20),
                ),
                1..=64,
            ),
        )
    })
}

/// Strategy: a wildcard-heavy pattern (wild cards outnumber literals
/// on average) and up to 140 lane texts, so the superplane engines see
/// both the `N % (W·64) ≠ 0` ragged-tail path and patterns whose wild
/// planes dominate the equality fold.
fn wide_lane_workload() -> impl Strategy<Value = (u32, Vec<Option<u8>>, Vec<Vec<u8>>)> {
    (1u32..=4).prop_flat_map(|bits| {
        let max = (1u16 << bits) as u8 - 1;
        let pat_sym = prop_oneof![
            1 => (0..=max).prop_map(Some),
            2 => Just(None), // mostly wild cards
        ];
        (
            Just(bits),
            proptest::collection::vec(pat_sym, 1..=9),
            proptest::collection::vec(proptest::collection::vec(0..=max, 0..=24), 1..=140),
        )
    })
}

fn build(bits: u32, pat: &[Option<u8>]) -> Pattern {
    let alphabet = Alphabet::new(bits).unwrap();
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, alphabet).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn char_level_array_equals_spec((bits, pat, text) in workload()) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let mut m = SystolicMatcher::new(&pattern).unwrap();
        let got = m.match_symbols(&symbols);
        prop_assert_eq!(got.bits(), match_spec(&symbols, &pattern));
    }

    #[test]
    fn oversized_array_equals_spec((bits, pat, text) in workload(), extra in 0usize..6) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let mut m = SystolicMatcher::with_cells(&pattern, pattern.len() + extra).unwrap();
        let got = m.match_symbols(&symbols);
        prop_assert_eq!(got.bits(), match_spec(&symbols, &pattern));
    }

    #[test]
    fn bit_serial_equals_spec((bits, pat, text) in workload()) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let m = BitSerialMatcher::new(&pattern).unwrap();
        let got = m.match_symbols(&symbols);
        prop_assert_eq!(got.bits(), match_spec(&symbols, &pattern));
    }

    #[test]
    fn cascade_equals_monolithic(
        (bits, pat, text) in workload(),
        cuts in proptest::collection::vec(1usize..4, 1..4)
    ) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        // Build a segmentation covering at least the pattern.
        let mut sizes = cuts;
        while sizes.iter().sum::<usize>() < pattern.len() {
            sizes.push(pattern.len());
        }
        let total: usize = sizes.iter().sum();
        let mut mono = SystolicMatcher::with_cells(&pattern, total).unwrap();
        let mut casc = SystolicMatcher::with_cascade(&pattern, &sizes).unwrap();
        let a = mono.match_symbols(&symbols);
        let b = casc.match_symbols(&symbols);
        prop_assert_eq!(a.bits(), b.bits());
    }

    #[test]
    fn counter_equals_count_spec((bits, pat, text) in workload()) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let mut c = pm_systolic::matcher::SystolicCounter::new(&pattern).unwrap();
        prop_assert_eq!(c.count_symbols(&symbols), count_spec(&symbols, &pattern));
    }

    #[test]
    fn self_timed_equals_spec((bits, pat, text) in workload(), seed in 0u64..1000) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let hs = pm_systolic::handshake::HandshakeArray::new(
            &pattern,
            pm_systolic::selftimed::TimingParams::default(),
            seed,
        )
        .unwrap();
        let run = hs.run(&symbols);
        let expected = match_spec(&symbols, &pattern);
        prop_assert_eq!(run.bits.as_slice(), expected.as_slice());
    }

    #[test]
    fn batched_uniform_equals_spec_per_lane((bits, pat, texts) in lane_workload()) {
        let pattern = build(bits, &pat);
        let lanes: Vec<Vec<Symbol>> = texts
            .iter()
            .map(|t| t.iter().map(|&b| Symbol::new(b)).collect())
            .collect();
        let refs: Vec<&[Symbol]> = lanes.iter().map(|t| t.as_slice()).collect();
        let got = BatchMatcher::new(&pattern).match_streams(&refs).unwrap();
        prop_assert_eq!(got.len(), lanes.len());
        for (t, hits) in lanes.iter().zip(&got) {
            prop_assert_eq!(hits.bits(), match_spec(t, &pattern));
        }
    }

    #[test]
    fn batched_mixed_lanes_equal_spec((bits, jobs) in mixed_lane_workload()) {
        let compiled: Vec<(CompiledPattern, Vec<Symbol>)> = jobs
            .iter()
            .map(|(pat, text)| {
                let pattern = build(bits, pat);
                let symbols = text.iter().map(|&b| Symbol::new(b)).collect();
                (CompiledPattern::compile(&pattern), symbols)
            })
            .collect();
        let lanes: Vec<(&CompiledPattern, &[Symbol])> =
            compiled.iter().map(|(c, t)| (c, t.as_slice())).collect();
        let got = pm_systolic::batch::match_lanes(&lanes).unwrap();
        prop_assert_eq!(got.len(), compiled.len());
        for ((c, t), hits) in compiled.iter().zip(&got) {
            prop_assert_eq!(hits.bits(), match_spec(t, c.pattern()));
        }
    }

    #[test]
    fn plane_driver_equals_spec_per_lane((bits, jobs) in plane_workload()) {
        let patterns: Vec<Pattern> =
            jobs.iter().map(|(pat, _)| build(bits, pat)).collect();
        let lanes: Vec<Vec<Symbol>> = jobs
            .iter()
            .map(|(_, t)| t.iter().map(|&b| Symbol::new(b)).collect())
            .collect();
        let refs: Vec<&[Symbol]> = lanes.iter().map(|t| t.as_slice()).collect();
        let mut driver = PlaneDriver::new(&patterns).unwrap();
        let got = driver.run(&refs).unwrap();
        for ((pattern, t), hits) in patterns.iter().zip(&lanes).zip(&got) {
            prop_assert_eq!(hits.bits(), match_spec(t, pattern));
        }
    }

    #[test]
    fn superplane_uniform_equals_u64_engine_and_spec(
        (bits, pat, texts) in wide_lane_workload()
    ) {
        let pattern = build(bits, &pat);
        let lanes: Vec<Vec<Symbol>> = texts
            .iter()
            .map(|t| t.iter().map(|&b| Symbol::new(b)).collect())
            .collect();
        let refs: Vec<&[Symbol]> = lanes.iter().map(|t| t.as_slice()).collect();
        let narrow = BatchMatcher::new(&pattern).match_streams(&refs).unwrap();
        let w4 = SuperMatcher::<4>::new(&pattern).match_streams(&refs).unwrap();
        let w8 = SuperMatcher::<8>::new(&pattern).match_streams(&refs).unwrap();
        prop_assert_eq!(w4.len(), lanes.len());
        prop_assert_eq!(w8.len(), lanes.len());
        for (((t, n), h4), h8) in lanes.iter().zip(&narrow).zip(&w4).zip(&w8) {
            let spec = match_spec(t, &pattern);
            prop_assert_eq!(n.bits(), spec.clone(), "u64 engine vs spec");
            prop_assert_eq!(h4.bits(), spec.clone(), "W=4 superplane vs spec");
            prop_assert_eq!(h8.bits(), spec, "W=8 superplane vs spec");
        }
    }

    #[test]
    fn superplane_mixed_lanes_equal_u64_engine_and_spec(
        (bits, jobs) in mixed_lane_workload()
    ) {
        let compiled: Vec<(CompiledPattern, Vec<Symbol>)> = jobs
            .iter()
            .map(|(pat, text)| {
                let pattern = build(bits, pat);
                let symbols = text.iter().map(|&b| Symbol::new(b)).collect();
                (CompiledPattern::compile(&pattern), symbols)
            })
            .collect();
        let lanes: Vec<(&CompiledPattern, &[Symbol])> =
            compiled.iter().map(|(c, t)| (c, t.as_slice())).collect();
        let narrow: Vec<MatchBits> = lanes
            .chunks(pm_systolic::batch::LANES)
            .map(|chunk| pm_systolic::batch::match_lanes(chunk).unwrap())
            .collect::<Vec<_>>()
            .concat();
        let wide = pm_systolic::superplane::match_lanes_wide::<4>(&lanes).unwrap();
        prop_assert_eq!(wide.len(), compiled.len());
        for (((c, t), n), h) in compiled.iter().zip(&narrow).zip(&wide) {
            let spec = match_spec(t, c.pattern());
            prop_assert_eq!(n.bits(), spec.clone(), "u64 engine vs spec");
            prop_assert_eq!(h.bits(), spec, "W=4 superplane vs spec");
        }
    }

    #[test]
    fn superplane_driver_equals_plane_driver_per_lane((bits, jobs) in plane_workload()) {
        let patterns: Vec<Pattern> =
            jobs.iter().map(|(pat, _)| build(bits, pat)).collect();
        let lanes: Vec<Vec<Symbol>> = jobs
            .iter()
            .map(|(_, t)| t.iter().map(|&b| Symbol::new(b)).collect())
            .collect();
        let refs: Vec<&[Symbol]> = lanes.iter().map(|t| t.as_slice()).collect();
        let narrow = PlaneDriver::new(&patterns).unwrap().run(&refs).unwrap();
        let wide = SuperplaneDriver::<2>::new(&patterns)
            .unwrap()
            .run(&refs)
            .unwrap();
        for (((pattern, t), n), h) in
            patterns.iter().zip(&lanes).zip(&narrow).zip(&wide)
        {
            let spec = match_spec(t, pattern);
            prop_assert_eq!(n.bits(), spec.clone(), "PlaneDriver vs spec");
            prop_assert_eq!(h.bits(), spec, "SuperplaneDriver vs spec");
        }
    }

    #[test]
    fn match_count_never_exceeds_windows((bits, pat, text) in workload()) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let mut m = SystolicMatcher::new(&pattern).unwrap();
        let hits = m.match_symbols(&symbols);
        let windows = symbols.len().saturating_sub(pattern.k());
        prop_assert!(hits.count() <= windows);
    }
}
