//! Property tests: the numeric systolic arrays agree with their direct
//! reference implementations on arbitrary integer workloads.

use pm_correlator::prelude::*;
use pm_systolic::spec::{correlation_spec, dot_spec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn correlator_equals_spec(
        pattern in proptest::collection::vec(-50i64..50, 1..8),
        signal in proptest::collection::vec(-50i64..50, 0..40),
    ) {
        let mut c = SystolicCorrelator::new(pattern.clone()).unwrap();
        prop_assert_eq!(c.correlate(&signal), correlation_spec(&signal, &pattern));
    }

    #[test]
    fn convolver_equals_direct(
        kernel in proptest::collection::vec(-50i64..50, 1..8),
        signal in proptest::collection::vec(-50i64..50, 0..40),
    ) {
        let mut conv = SystolicConvolver::new(kernel.clone()).unwrap();
        prop_assert_eq!(conv.convolve(&signal), convolve_direct(&signal, &kernel));
    }

    #[test]
    fn fir_streaming_equals_block(
        taps in proptest::collection::vec(-20i64..20, 1..6),
        x in proptest::collection::vec(-50i64..50, 0..30),
    ) {
        let mut block = FirFilter::new(taps.clone()).unwrap();
        let expected = block.filter(&x);
        let mut stream = FirFilter::new(taps).unwrap();
        let mut got = Vec::new();
        for &s in &x {
            got.extend(stream.push(s));
        }
        got.extend(stream.finish());
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dot_spec_symmetry(
        pattern in proptest::collection::vec(-50i64..50, 1..6),
        signal in proptest::collection::vec(-50i64..50, 0..30),
    ) {
        // dot_spec with an all-ones pattern is a moving sum.
        let ones = vec![1i64; pattern.len()];
        let sums = dot_spec(&signal, &ones);
        for (i, &v) in sums.iter().enumerate() {
            if i + 1 >= pattern.len() {
                let direct: i64 = signal[i + 1 - pattern.len()..=i].iter().sum();
                prop_assert_eq!(v, direct);
            }
        }
    }
}
