//! The systolic SSD correlator (paper §3.4).

use crate::semantics::SsdMeet;
use pm_systolic::engine::Driver;
use pm_systolic::error::Error;

/// A correlator for a fixed reference pattern of numbers.
///
/// ```
/// use pm_correlator::prelude::*;
///
/// # fn main() -> Result<(), pm_systolic::Error> {
/// let mut c = SystolicCorrelator::new(vec![1, 2, 3])?;
/// let out = c.correlate(&[5, 1, 2, 3, 9]);
/// // Perfect match of [1,2,3] ending at index 3 → correlation 0.
/// assert_eq!(out[3], 0);
/// assert!(out[2] > 0 && out[4] > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystolicCorrelator {
    driver: Driver<SsdMeet>,
    pattern: Vec<i64>,
}

impl SystolicCorrelator {
    /// Builds a correlator with one difference/adder cell pair per
    /// pattern element.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyPattern`] for an empty pattern.
    pub fn new(pattern: Vec<i64>) -> Result<Self, Error> {
        let driver = Driver::new(SsdMeet, pattern.clone(), &[pattern.len().max(1)])?;
        Ok(SystolicCorrelator { driver, pattern })
    }

    /// The reference pattern.
    pub fn pattern(&self) -> &[i64] {
        &self.pattern
    }

    /// Correlates a signal against the pattern: `out[i]` is the sum of
    /// squared differences of the window ending at `i` (0 for `i < k`,
    /// where no complete window exists).
    pub fn correlate(&mut self, signal: &[i64]) -> Vec<i64> {
        self.driver.run(signal)
    }

    /// Positions where the window matches the pattern exactly
    /// (correlation zero).
    pub fn exact_matches(&mut self, signal: &[i64]) -> Vec<usize> {
        let k = self.pattern.len() - 1;
        self.correlate(signal)
            .iter()
            .enumerate()
            .skip(k)
            .filter(|(_, &v)| v == 0)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::correlation_spec;

    #[test]
    fn matches_spec_on_example() {
        let mut c = SystolicCorrelator::new(vec![1, 2, 3]).unwrap();
        let signal = [5, 1, 2, 3, 9, 0, 1, 2, 3];
        assert_eq!(c.correlate(&signal), correlation_spec(&signal, &[1, 2, 3]));
    }

    #[test]
    fn exact_matches_found() {
        let mut c = SystolicCorrelator::new(vec![1, 2]).unwrap();
        assert_eq!(c.exact_matches(&[1, 2, 1, 2]), vec![1, 3]);
    }

    #[test]
    fn negative_values_square_correctly() {
        let mut c = SystolicCorrelator::new(vec![-3]).unwrap();
        assert_eq!(c.correlate(&[3]), vec![36]);
    }

    #[test]
    fn reusable_across_signals() {
        let mut c = SystolicCorrelator::new(vec![7, 7]).unwrap();
        let a = c.correlate(&[7, 7, 7]);
        let b = c.correlate(&[0, 0, 0]);
        assert_eq!(a, vec![0, 0, 0]);
        assert_eq!(b, vec![0, 98, 98]);
    }
}
