//! # pm-correlator — numeric cousins of the pattern matcher (paper §3.4)
//!
//! "Many problems other than string matching can be solved by similar
//! algorithms. … Correlations can be computed by a machine with
//! identical data flow to the string matching chip, except that all
//! streams contain numbers." This crate instantiates the generic
//! systolic engine of `pm-systolic` with the numeric cell algorithms
//! the paper gives:
//!
//! * the **difference cell** (`d ← s − p`) feeding an **adder cell**
//!   (`t ← t + d²`), yielding the sum-of-squared-differences
//!   correlation of §3.4 — [`correlation`];
//! * a **multiplier cell** feeding the same adder, yielding sliding dot
//!   products — the "convolutions and FIR filtering" family the paper
//!   points to via [Kung 79b] — [`convolution`] and [`fir`];
//! * the bitwise pipelining of the arithmetic ("this difference
//!   computation may be pipelined bitwise in the same way as the
//!   character comparison") — [`bitserial`];
//! * the generalised *linear products* of [Fischer and Paterson 74]
//!   over arbitrary semirings — [`products`].
//!
//! Everything runs on the very same [`Driver`](pm_systolic::engine::Driver)
//! and [`Segment`](pm_systolic::segment::Segment) machinery as the
//! matcher: two streams moving against each other, `λ` marking the end
//! of the recirculating coefficient vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitserial;
pub mod convolution;
pub mod correlation;
pub mod fir;
pub mod products;
pub mod semantics;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::convolution::{convolve_direct, SystolicConvolver};
    pub use crate::correlation::SystolicCorrelator;
    pub use crate::fir::FirFilter;
    pub use crate::products::{LinearProduct, MaxPlus, MinPlus, Semiring, SumProduct};
    pub use crate::semantics::{DotMeet, SsdMeet};
}
