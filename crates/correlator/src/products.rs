//! Generalised linear products (paper §3.1).
//!
//! "All of the linear product problems discussed in [Fischer and
//! Paterson 74] are similar to string matching." A *linear product*
//! computes, for every alignment,
//!
//! ```text
//! r_i = ⊕_m ( p_m ⊗ s_{i−k+m} )
//! ```
//!
//! over some semiring `(⊕, ⊗)`. String matching is `(AND, =)`,
//! convolution is `(+, ×)`, and the tropical `(max, +)` / `(min, +)`
//! products compute sliding-window alignment scores and distances.
//! Because the systolic engine is already generic over what happens at
//! a meeting, each instance is a few lines — which is the paper's
//! §3.4 point, taken to its algebraic conclusion.

use pm_systolic::engine::Driver;
use pm_systolic::error::Error;
use pm_systolic::semantics::MeetSemantics;
use std::fmt::Debug;

/// A (commutative) semiring for linear products.
pub trait Semiring: Clone + Debug {
    /// Element type.
    type T: Clone + Debug + Default;
    /// The identity of `⊕` — a fresh accumulator.
    fn add_identity(&self) -> Self::T;
    /// The combining operation `⊕`.
    fn add(&self, a: Self::T, b: Self::T) -> Self::T;
    /// The pairing operation `⊗`.
    fn mul(&self, p: &Self::T, s: &Self::T) -> Self::T;
}

/// Wraps a semiring as a [`MeetSemantics`] so the systolic engine can
/// run it.
#[derive(Debug, Clone, Default)]
pub struct SemiringMeet<S>(pub S);

impl<S: Semiring> MeetSemantics for SemiringMeet<S> {
    type Pat = S::T;
    type Txt = S::T;
    type Acc = S::T;
    type Out = S::T;

    fn fresh(&self) -> S::T {
        self.0.add_identity()
    }

    fn absorb(&self, acc: &mut S::T, pat: &S::T, txt: &S::T) {
        *acc = self.0.add(acc.clone(), self.0.mul(pat, txt));
    }

    fn finish(&self, acc: S::T) -> S::T {
        acc
    }
}

/// The tropical max-plus semiring over saturating integers: linear
/// products are sliding-window *best alignment scores*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxPlus;

impl Semiring for MaxPlus {
    type T = i64;

    fn add_identity(&self) -> i64 {
        i64::MIN / 4 // effectively −∞ without overflow on add
    }

    fn add(&self, a: i64, b: i64) -> i64 {
        a.max(b)
    }

    fn mul(&self, p: &i64, s: &i64) -> i64 {
        p + s
    }
}

/// The min-plus semiring: sliding-window *cheapest pairings*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type T = i64;

    fn add_identity(&self) -> i64 {
        i64::MAX / 4
    }

    fn add(&self, a: i64, b: i64) -> i64 {
        a.min(b)
    }

    fn mul(&self, p: &i64, s: &i64) -> i64 {
        p + s
    }
}

/// The ordinary `(+, ×)` semiring: sliding dot products, i.e. the
/// convolution/FIR family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumProduct;

impl Semiring for SumProduct {
    type T = i64;

    fn add_identity(&self) -> i64 {
        0
    }

    fn add(&self, a: i64, b: i64) -> i64 {
        a + b
    }

    fn mul(&self, p: &i64, s: &i64) -> i64 {
        p * s
    }
}

/// Direct reference implementation of a linear product.
pub fn linear_product_spec<S: Semiring>(sr: &S, text: &[S::T], pattern: &[S::T]) -> Vec<S::T> {
    let k = pattern.len() - 1;
    (0..text.len())
        .map(|i| {
            if i < k {
                S::T::default()
            } else {
                pattern
                    .iter()
                    .zip(&text[i - k..=i])
                    .fold(sr.add_identity(), |acc, (p, s)| sr.add(acc, sr.mul(p, s)))
            }
        })
        .collect()
}

/// A systolic linear-product machine for a fixed pattern vector.
#[derive(Debug, Clone)]
pub struct LinearProduct<S: Semiring> {
    driver: Driver<SemiringMeet<S>>,
    pattern: Vec<S::T>,
}

impl<S: Semiring> LinearProduct<S> {
    /// Builds the array with one cell per pattern element.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyPattern`] for an empty pattern.
    pub fn new(semiring: S, pattern: Vec<S::T>) -> Result<Self, Error> {
        let driver = Driver::new(
            SemiringMeet(semiring),
            pattern.clone(),
            &[pattern.len().max(1)],
        )?;
        Ok(LinearProduct { driver, pattern })
    }

    /// The pattern vector.
    pub fn pattern(&self) -> &[S::T] {
        &self.pattern
    }

    /// Computes `r_i` for every window (default element before the
    /// first complete window).
    pub fn compute(&mut self, text: &[S::T]) -> Vec<S::T> {
        self.driver.run(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::convolve_direct;

    #[test]
    fn sum_product_equals_dot_spec() {
        let sr = SumProduct;
        let pattern = vec![1i64, -2, 3];
        let text = vec![4i64, 0, 2, -1, 5, 5];
        let mut lp = LinearProduct::new(sr, pattern.clone()).unwrap();
        assert_eq!(lp.compute(&text), linear_product_spec(&sr, &text, &pattern));
    }

    #[test]
    fn max_plus_finds_best_alignment() {
        let sr = MaxPlus;
        let pattern = vec![0i64, 10, 0];
        let text = vec![1i64, 2, 3, 100, 4, 5];
        let mut lp = LinearProduct::new(sr, pattern.clone()).unwrap();
        let got = lp.compute(&text);
        assert_eq!(got, linear_product_spec(&sr, &text, &pattern));
        // Window [3,100,4]: max(3+0, 100+10, 4+0) = 110.
        assert_eq!(got[4], 110);
    }

    #[test]
    fn min_plus_finds_cheapest_pairing() {
        let sr = MinPlus;
        let pattern = vec![5i64, 0];
        let text = vec![10i64, 1, 7];
        let mut lp = LinearProduct::new(sr, pattern.clone()).unwrap();
        let got = lp.compute(&text);
        // Window [10,1]: min(15, 1) = 1; window [1,7]: min(6, 7) = 6.
        assert_eq!(got[1..], [1, 6]);
        assert_eq!(got, linear_product_spec(&sr, &text, &pattern));
    }

    #[test]
    fn sum_product_connects_to_convolution() {
        // A linear product with the reversed kernel over padded text is
        // a convolution — the §3.4 unification, checked end to end.
        let kernel = vec![2i64, -1, 3];
        let signal = vec![1i64, 4, 1, 5];
        let reversed: Vec<i64> = kernel.iter().rev().copied().collect();
        let mut padded = vec![0i64; 2];
        padded.extend_from_slice(&signal);
        padded.extend([0, 0]);
        let mut lp = LinearProduct::new(SumProduct, reversed).unwrap();
        let got: Vec<i64> = lp.compute(&padded).into_iter().skip(2).collect();
        assert_eq!(got, convolve_direct(&signal, &kernel));
    }
}
