//! Streaming FIR filtering on the systolic array (paper §3.4).
//!
//! A causal FIR filter `y[n] = Σ_m b[m]·x[n−m]` is the on-line face of
//! the convolution dataflow: coefficients recirculate while samples
//! stream through, one output per input sample at constant latency —
//! exactly how the pattern matcher emits one result bit per text
//! character.

use crate::semantics::DotMeet;
use pm_systolic::engine::Driver;
use pm_systolic::error::Error;

/// A streaming FIR filter with integer taps.
///
/// ```
/// use pm_correlator::prelude::*;
///
/// # fn main() -> Result<(), pm_systolic::Error> {
/// // Two-tap moving sum.
/// let mut f = FirFilter::new(vec![1, 1])?;
/// assert_eq!(f.filter(&[1, 2, 3, 4]), vec![1, 3, 5, 7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FirFilter {
    driver: Driver<DotMeet>,
    taps: Vec<i64>,
    /// Samples fed so far in the current stream.
    fed: u64,
    /// Results already handed back.
    delivered: u64,
    /// Buffered results that arrived out of the feed cadence.
    pending: Vec<(u64, i64)>,
}

impl FirFilter {
    /// Builds a filter with one multiplier/adder cell per tap.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyPattern`] for an empty tap vector.
    pub fn new(taps: Vec<i64>) -> Result<Self, Error> {
        let reversed: Vec<i64> = taps.iter().rev().copied().collect();
        let driver = Driver::new(DotMeet, reversed, &[taps.len().max(1)])?;
        Ok(FirFilter {
            driver,
            taps,
            fed: 0,
            delivered: 0,
            pending: Vec::new(),
        })
    }

    /// The filter taps in natural order (`b[0]` first).
    pub fn taps(&self) -> &[i64] {
        &self.taps
    }

    /// Filters a whole block, returning one output per input sample
    /// (`y[n]` with zero initial state). Resets any streaming state.
    pub fn filter(&mut self, samples: &[i64]) -> Vec<i64> {
        let k = self.taps.len() - 1;
        // Prepend k zeros so every input sample has a complete window.
        let mut padded = vec![0i64; k];
        padded.extend_from_slice(samples);
        let out = self.driver.run(&padded);
        self.fed = 0;
        self.delivered = 0;
        self.pending.clear();
        out.into_iter().skip(k).collect()
    }

    /// Streams one sample through the array, returning any completed
    /// outputs (in order). Because the array needs `k` warm-up samples,
    /// the first outputs appear after a constant latency — the same
    /// on-line behaviour as the matcher chip.
    pub fn push(&mut self, sample: i64) -> Vec<i64> {
        let k = self.taps.len() as u64 - 1;
        if self.fed == 0 {
            // Lazily prime the array with k zeros (zero initial state).
            self.driver.reset();
            for _ in 0..k {
                for (seq, v) in self.driver.feed(0) {
                    self.pending.push((seq, v));
                }
            }
        }
        self.fed += 1;
        for (seq, v) in self.driver.feed(sample) {
            self.pending.push((seq, v));
        }
        self.drain_ready(k)
    }

    /// Flushes outputs still in flight after the last sample.
    pub fn finish(&mut self) -> Vec<i64> {
        let k = self.taps.len() as u64 - 1;
        for (seq, v) in self.driver.drain() {
            self.pending.push((seq, v));
        }
        let out = self.drain_ready(k);
        self.fed = 0;
        self.delivered = 0;
        self.pending.clear();
        out
    }

    /// Returns buffered outputs for samples the caller has pushed, in
    /// order. Padded-index `seq` maps to output `seq − k`.
    fn drain_ready(&mut self, k: u64) -> Vec<i64> {
        self.pending.sort_unstable_by_key(|&(seq, _)| seq);
        let mut out = Vec::new();
        let mut kept = Vec::new();
        for &(seq, v) in &self.pending {
            if seq < k {
                continue; // warm-up window, no output
            }
            let idx = seq - k;
            if idx == self.delivered && idx < self.fed {
                out.push(v);
                self.delivered += 1;
            } else if idx >= self.delivered {
                kept.push((seq, v));
            }
        }
        self.pending = kept;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct reference: y[n] = Σ b[m] x[n−m].
    fn fir_direct(taps: &[i64], x: &[i64]) -> Vec<i64> {
        (0..x.len())
            .map(|n| {
                taps.iter()
                    .enumerate()
                    .filter_map(|(m, &b)| n.checked_sub(m).map(|j| b * x[j]))
                    .sum()
            })
            .collect()
    }

    #[test]
    fn block_filtering_matches_reference() {
        let taps = vec![3, -1, 2];
        let x = [1, 4, 1, 5, 9, 2, 6];
        let mut f = FirFilter::new(taps.clone()).unwrap();
        assert_eq!(f.filter(&x), fir_direct(&taps, &x));
    }

    #[test]
    fn impulse_response_is_taps() {
        let mut f = FirFilter::new(vec![5, 0, -3, 1]).unwrap();
        let mut x = vec![1];
        x.extend(std::iter::repeat_n(0, 3));
        assert_eq!(f.filter(&x), vec![5, 0, -3, 1]);
    }

    #[test]
    fn step_response_accumulates_taps() {
        let mut f = FirFilter::new(vec![1, 1, 1]).unwrap();
        assert_eq!(f.filter(&[1, 1, 1, 1]), vec![1, 2, 3, 3]);
    }

    #[test]
    fn streaming_equals_block() {
        let taps = vec![2, 7, -1];
        let x = [3, 1, 4, 1, 5, 9, 2, 6];
        let mut block = FirFilter::new(taps.clone()).unwrap();
        let expected = block.filter(&x);

        let mut stream = FirFilter::new(taps).unwrap();
        let mut got = Vec::new();
        for &s in &x {
            got.extend(stream.push(s));
        }
        got.extend(stream.finish());
        assert_eq!(got, expected);
    }

    #[test]
    fn single_tap_is_gain() {
        let mut f = FirFilter::new(vec![4]).unwrap();
        assert_eq!(f.filter(&[1, -2, 3]), vec![4, -8, 12]);
    }
}
