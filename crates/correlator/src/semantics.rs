//! Numeric cell algorithms for the systolic engine.

use pm_systolic::semantics::MeetSemantics;

/// Sum-of-squared-differences correlation (paper §3.4):
///
/// ```text
/// difference cell:  d ← s − p
/// adder cell:       IF λ THEN r_out ← t + d²; t ← 0
///                   ELSE     r_out ← r_in;    t ← t + d²
/// ```
///
/// so `r_i = Σ_m (s_{i−k+m} − p_m)²` — zero for a perfect match.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdMeet;

impl MeetSemantics for SsdMeet {
    type Pat = i64;
    type Txt = i64;
    type Acc = i64;
    type Out = i64;

    fn fresh(&self) -> i64 {
        0 // t ← 0
    }

    fn absorb(&self, acc: &mut i64, pat: &i64, txt: &i64) {
        let d = txt - pat;
        *acc += d * d;
    }

    fn finish(&self, acc: i64) -> i64 {
        acc
    }
}

/// Sliding dot product: the comparator is replaced by a multiplier and
/// the adder accumulates `p·s`, giving `r_i = Σ_m p_m · s_{i−k+m}` —
/// the kernel of convolution and FIR filtering (§3.4's pointer to
/// [Kung 79b]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DotMeet;

impl MeetSemantics for DotMeet {
    type Pat = i64;
    type Txt = i64;
    type Acc = i64;
    type Out = i64;

    fn fresh(&self) -> i64 {
        0
    }

    fn absorb(&self, acc: &mut i64, pat: &i64, txt: &i64) {
        *acc += pat * txt;
    }

    fn finish(&self, acc: i64) -> i64 {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_accumulates_squares() {
        let sem = SsdMeet;
        let mut t = sem.fresh();
        sem.absorb(&mut t, &3, &5); // (5-3)² = 4
        sem.absorb(&mut t, &-1, &1); // (1-(-1))² = 4
        assert_eq!(t, 8);
        assert_eq!(sem.emit(&mut t), 8);
        assert_eq!(t, 0);
    }

    #[test]
    fn dot_accumulates_products() {
        let sem = DotMeet;
        let mut t = sem.fresh();
        sem.absorb(&mut t, &3, &5);
        sem.absorb(&mut t, &-2, &4);
        assert_eq!(t, 7);
    }
}
