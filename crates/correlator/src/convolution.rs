//! Convolution on the matcher's dataflow (paper §3.4).
//!
//! A discrete convolution `y[n] = Σ_m h[m]·x[n−m]` is a sliding dot
//! product with the kernel reversed, so the systolic array computes it
//! by recirculating the reversed kernel as its "pattern" and streaming
//! the (zero-padded) signal as its "text".

use crate::semantics::DotMeet;
use pm_systolic::engine::Driver;
use pm_systolic::error::Error;

/// Reference implementation: the full linear convolution of `signal`
/// and `kernel`, length `signal.len() + kernel.len() − 1` (empty if
/// either input is empty).
pub fn convolve_direct(signal: &[i64], kernel: &[i64]) -> Vec<i64> {
    if signal.is_empty() || kernel.is_empty() {
        return Vec::new();
    }
    let n = signal.len() + kernel.len() - 1;
    (0..n)
        .map(|i| {
            kernel
                .iter()
                .enumerate()
                .filter_map(|(m, &h)| i.checked_sub(m).and_then(|j| signal.get(j)).map(|&x| h * x))
                .sum()
        })
        .collect()
}

/// A systolic convolver for a fixed kernel.
///
/// ```
/// use pm_correlator::prelude::*;
///
/// # fn main() -> Result<(), pm_systolic::Error> {
/// let mut conv = SystolicConvolver::new(vec![1, -1])?;
/// // Differentiator: y = x ⊛ [1, -1].
/// assert_eq!(conv.convolve(&[2, 5, 9]), vec![2, 3, 4, -9]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystolicConvolver {
    driver: Driver<DotMeet>,
    kernel: Vec<i64>,
}

impl SystolicConvolver {
    /// Builds a convolver with one multiplier/adder cell pair per kernel
    /// tap. The kernel is recirculated reversed, as the dataflow
    /// requires.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyPattern`] for an empty kernel.
    pub fn new(kernel: Vec<i64>) -> Result<Self, Error> {
        let reversed: Vec<i64> = kernel.iter().rev().copied().collect();
        let driver = Driver::new(DotMeet, reversed, &[kernel.len().max(1)])?;
        Ok(SystolicConvolver { driver, kernel })
    }

    /// The kernel in natural order.
    pub fn kernel(&self) -> &[i64] {
        &self.kernel
    }

    /// Full linear convolution of `signal` with the kernel, identical
    /// to [`convolve_direct`].
    pub fn convolve(&mut self, signal: &[i64]) -> Vec<i64> {
        if signal.is_empty() {
            return Vec::new();
        }
        let k = self.kernel.len() - 1;
        // Pad with k zeros on both sides: the leading pad turns the
        // array's "complete windows only" output into the convolution's
        // ramp-up samples; the trailing pad produces the tail.
        let mut padded = vec![0i64; k];
        padded.extend_from_slice(signal);
        padded.extend(std::iter::repeat_n(0, k));
        let out = self.driver.run(&padded);
        // Window ending at padded index i covers y[i − k]; discard the
        // first k entries (incomplete windows).
        out.into_iter().skip(k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_matches_schoolbook() {
        // (1+2x+3x²)(4+5x) = 4 + 13x + 22x² + 15x³
        assert_eq!(convolve_direct(&[1, 2, 3], &[4, 5]), vec![4, 13, 22, 15]);
    }

    #[test]
    fn direct_empty_inputs() {
        assert!(convolve_direct(&[], &[1]).is_empty());
        assert!(convolve_direct(&[1], &[]).is_empty());
    }

    #[test]
    fn systolic_matches_direct() {
        let kernel = vec![2, -1, 3];
        let signal = [1, 0, -2, 4, 4, 7];
        let mut conv = SystolicConvolver::new(kernel.clone()).unwrap();
        assert_eq!(conv.convolve(&signal), convolve_direct(&signal, &kernel));
    }

    #[test]
    fn impulse_recovers_kernel() {
        let mut conv = SystolicConvolver::new(vec![3, 1, 4, 1, 5]).unwrap();
        assert_eq!(conv.convolve(&[1]), vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn single_tap_kernel_scales() {
        let mut conv = SystolicConvolver::new(vec![-2]).unwrap();
        assert_eq!(conv.convolve(&[1, 2, 3]), vec![-2, -4, -6]);
    }

    #[test]
    fn output_length_is_n_plus_m_minus_1() {
        let mut conv = SystolicConvolver::new(vec![1, 1, 1]).unwrap();
        assert_eq!(conv.convolve(&[5, 5]).len(), 4);
    }
}
