//! Bit-serial arithmetic cells (paper §3.4).
//!
//! "This difference computation may be pipelined bitwise in the same
//! way as the character comparison." Where the matcher's one-bit
//! comparator carries an AND chain down the bit rows, an arithmetic
//! cell carries a carry or borrow: numbers enter least-significant bit
//! first, one bit per beat, and the cell holds one flip-flop of state.
//! These cells are the building blocks a difference-cell array would
//! stagger across bit rows exactly like Figure 3-4.

/// A one-bit full adder with a carry flip-flop: streams two numbers in
/// LSB-first and emits the sum bit per beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialAdderCell {
    carry: bool,
}

impl SerialAdderCell {
    /// A fresh cell with clear carry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the carry for the next word.
    pub fn reset(&mut self) {
        self.carry = false;
    }

    /// Consumes one bit of each operand, returns the sum bit.
    pub fn step(&mut self, a: bool, b: bool) -> bool {
        let sum = a ^ b ^ self.carry;
        self.carry = (a && b) || (self.carry && (a ^ b));
        sum
    }

    /// The current carry.
    pub fn carry(&self) -> bool {
        self.carry
    }
}

/// A one-bit subtractor with a borrow flip-flop: computes `a − b`
/// LSB-first — the paper's pipelined difference cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialSubtractorCell {
    borrow: bool,
}

impl SerialSubtractorCell {
    /// A fresh cell with clear borrow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the borrow for the next word.
    pub fn reset(&mut self) {
        self.borrow = false;
    }

    /// Consumes one bit of each operand, returns the difference bit.
    pub fn step(&mut self, a: bool, b: bool) -> bool {
        let diff = a ^ b ^ self.borrow;
        self.borrow = (!a && b) || (!(a ^ b) && self.borrow);
        diff
    }

    /// The current borrow.
    pub fn borrow(&self) -> bool {
        self.borrow
    }
}

/// Runs a whole `width`-bit word through a serial adder (two's
/// complement, wrapping at `width` bits).
pub fn serial_add(a: i64, b: i64, width: u32) -> i64 {
    let mut cell = SerialAdderCell::new();
    serial_word_op(width, |v| cell.step(bit(a, v), bit(b, v)))
}

/// Runs a whole `width`-bit word through a serial subtractor (two's
/// complement, wrapping at `width` bits).
pub fn serial_sub(a: i64, b: i64, width: u32) -> i64 {
    let mut cell = SerialSubtractorCell::new();
    serial_word_op(width, |v| cell.step(bit(a, v), bit(b, v)))
}

fn bit(x: i64, v: u32) -> bool {
    (x >> v) & 1 == 1
}

fn serial_word_op(width: u32, mut f: impl FnMut(u32) -> bool) -> i64 {
    let mut out: i64 = 0;
    for v in 0..width {
        if f(v) {
            out |= 1 << v;
        }
    }
    // Sign-extend from `width` bits.
    if width < 64 && (out >> (width - 1)) & 1 == 1 {
        out |= -1i64 << width;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_matches_wrapping_add() {
        for &(a, b) in &[(0i64, 0i64), (1, 1), (5, 9), (-3, 7), (-8, -8), (100, -100)] {
            assert_eq!(serial_add(a, b, 16), a.wrapping_add(b), "{a}+{b}");
        }
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        for &(a, b) in &[(0i64, 0i64), (1, 1), (5, 9), (-3, 7), (-8, -8), (100, -100)] {
            assert_eq!(serial_sub(a, b, 16), a.wrapping_sub(b), "{a}-{b}");
        }
    }

    #[test]
    fn carry_chain_over_many_bits() {
        // 0xFFFF + 1 wraps to 0 in 16 bits: the carry ripples serially.
        assert_eq!(serial_add(0xFFFF, 1, 16), 0);
    }

    #[test]
    fn borrow_propagates() {
        assert_eq!(serial_sub(0, 1, 16), -1);
    }

    #[test]
    fn reset_clears_state_between_words() {
        let mut cell = SerialAdderCell::new();
        cell.step(true, true); // sets carry
        assert!(cell.carry());
        cell.reset();
        assert!(!cell.carry());
        let mut sub = SerialSubtractorCell::new();
        sub.step(false, true); // sets borrow
        assert!(sub.borrow());
        sub.reset();
        assert!(!sub.borrow());
    }
}
