//! Design iteration and rework (paper §4).
//!
//! "Of course, any set of subtasks is unlikely to be completely
//! independent, since problems that crop up in performing one of them
//! may require that another subtask be redone. Difficulties in layout,
//! for example, may mandate a circuit redesign, but these design
//! iterations will be easier if the interactions between subtasks are
//! few."
//!
//! A Monte-Carlo rework model quantifies that sentence: finishing a
//! task may uncover a problem in one of the tasks it directly consumes
//! information from, forcing that prerequisite — and the current task —
//! to be redone. The expected iteration cost is therefore set by the
//! dependency structure: a graph with narrow interfaces (Figure 4-1)
//! localises rework to one edge; a tangled graph where every task reads
//! every earlier output re-spends large upstream efforts on every slip.

use crate::taskgraph::{GraphError, TaskGraph};

/// Deterministic xorshift64* — enough randomness for a Monte-Carlo
/// schedule without external dependencies.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The outcome of one simulated project execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectOutcome {
    /// Designer-days actually spent, including rework.
    pub days: f64,
    /// Rework loops triggered.
    pub iterations: u32,
}

/// Simulates one project: tasks run in topological order; with
/// probability `slip`, finishing a task uncovers a problem in one of
/// its direct prerequisites, whose effort (plus redoing the current
/// task) is spent again. At most `max_iterations` loops are charged.
///
/// # Errors
///
/// [`GraphError::Cycle`] if the graph is cyclic.
pub fn simulate(
    graph: &TaskGraph,
    slip: f64,
    max_iterations: u32,
    seed: u64,
) -> Result<ProjectOutcome, GraphError> {
    let order = graph.topological_order()?;
    let mut rng = Rng::new(seed);
    let mut days = 0.0;
    let mut iterations = 0u32;
    for &task in &order {
        days += graph.days(task);
        let pres = graph.prerequisites(task);
        if !pres.is_empty() && iterations < max_iterations && rng.chance(slip) {
            let culprit = pres[rng.pick(pres.len())];
            days += graph.days(culprit) + graph.days(task);
            iterations += 1;
        }
    }
    Ok(ProjectOutcome { days, iterations })
}

/// Mean project duration over `trials` Monte-Carlo executions.
///
/// # Errors
///
/// [`GraphError::Cycle`] if the graph is cyclic.
pub fn expected_days(
    graph: &TaskGraph,
    slip: f64,
    trials: u32,
    seed: u64,
) -> Result<f64, GraphError> {
    let mut total = 0.0;
    for t in 0..trials {
        total += simulate(graph, slip, 32, seed ^ (u64::from(t) << 21))?.days;
    }
    Ok(total / f64::from(trials))
}

/// A deliberately *tangled* version of a graph: same tasks and efforts,
/// but every task depends on every earlier task — the "impossible to
/// take global data flow, circuit design, and transistor
/// characteristics into account all at once" strawman of §4.
pub fn tangled_version(graph: &TaskGraph) -> Result<TaskGraph, GraphError> {
    let order = graph.topological_order()?;
    let mut tangled = TaskGraph::new();
    let ids: Vec<_> = order
        .iter()
        .map(|&t| tangled.add_task(graph.name(t), graph.days(t)))
        .collect();
    for i in 0..ids.len() {
        for j in i + 1..ids.len() {
            tangled.add_dependency(ids[i], ids[j])?;
        }
    }
    Ok(tangled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure41::figure_4_1;

    #[test]
    fn no_slips_means_baseline_duration() {
        let (g, _) = figure_4_1();
        let outcome = simulate(&g, 0.0, 32, 7).unwrap();
        assert!((outcome.days - g.total_days()).abs() < 1e-9);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn certain_slips_charge_rework() {
        let (g, _) = figure_4_1();
        let outcome = simulate(&g, 1.0, 32, 7).unwrap();
        assert!(outcome.days > g.total_days());
        // Every task with a prerequisite slips once: 8 of 9 tasks.
        assert_eq!(outcome.iterations, 8);
    }

    #[test]
    fn deterministic_for_seed() {
        let (g, _) = figure_4_1();
        let a = simulate(&g, 0.3, 32, 99).unwrap();
        let b = simulate(&g, 0.3, 32, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn narrow_interfaces_beat_the_tangle() {
        // The §4 argument: at the same slip rate, the Figure 4-1
        // structure reworks small neighbours while the tangled graph
        // keeps re-spending big upstream tasks (the 15-day algorithm is
        // a prerequisite of everything).
        let (g, _) = figure_4_1();
        let tangled = tangled_version(&g).unwrap();
        let clean = expected_days(&g, 0.4, 400, 1).unwrap();
        let messy = expected_days(&tangled, 0.4, 400, 1).unwrap();
        assert!(
            messy > clean,
            "tangled {messy:.1} must exceed structured {clean:.1}"
        );
    }

    #[test]
    fn iteration_cap_bounds_cost() {
        let (g, _) = figure_4_1();
        let capped = simulate(&g, 1.0, 2, 3).unwrap();
        assert_eq!(capped.iterations, 2);
        let uncapped = simulate(&g, 1.0, 32, 3).unwrap();
        assert!(uncapped.days >= capped.days);
    }
}
