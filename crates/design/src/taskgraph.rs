//! A dependency graph of design tasks with scheduling analyses.

use std::collections::VecDeque;
use std::fmt;

/// Identifies a task within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(usize);

impl TaskId {
    /// Index into the graph's task table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors from graph construction or analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The dependencies contain a cycle; no valid task order exists.
    Cycle,
    /// An edge referenced a task id from a different graph.
    UnknownTask,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle => write!(f, "task dependencies contain a cycle"),
            GraphError::UnknownTask => write!(f, "edge references an unknown task"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One task node.
#[derive(Debug, Clone, PartialEq)]
struct Task {
    name: String,
    days: f64,
}

/// A directed acyclic graph of design tasks.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    /// `edges[i]` = tasks that require task `i` to be finished first.
    edges: Vec<Vec<TaskId>>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Adds a task with an effort estimate in designer-days.
    pub fn add_task(&mut self, name: impl Into<String>, days: f64) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            name: name.into(),
            days,
        });
        self.edges.push(Vec::new());
        id
    }

    /// Declares that `after` needs `before`'s output.
    ///
    /// # Errors
    ///
    /// [`GraphError::UnknownTask`] for out-of-range ids.
    pub fn add_dependency(&mut self, before: TaskId, after: TaskId) -> Result<(), GraphError> {
        if before.0 >= self.tasks.len() || after.0 >= self.tasks.len() {
            return Err(GraphError::UnknownTask);
        }
        self.edges[before.0].push(after);
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The name of a task.
    pub fn name(&self, id: TaskId) -> &str {
        &self.tasks[id.0].name
    }

    /// The effort estimate of a task, in days.
    pub fn days(&self, id: TaskId) -> f64 {
        self.tasks[id.0].days
    }

    /// Total effort across all tasks (perfectly parallel lower bound
    /// does not apply; this is the *serial* total).
    pub fn total_days(&self) -> f64 {
        self.tasks.iter().map(|t| t.days).sum()
    }

    /// The graph in Graphviz DOT form, effort annotated — Figure 4-1
    /// ready for a plotter, as the paper's CAD outlook (§4) anticipates.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph tasks {\n  rankdir=TB;\n");
        for (i, task) in self.tasks.iter().enumerate() {
            out.push_str(&format!(
                "  t{i} [label=\"{} ({} d)\"];\n",
                task.name, task.days
            ));
        }
        for (i, outs) in self.edges.iter().enumerate() {
            for t in outs {
                out.push_str(&format!("  t{i} -> t{};\n", t.0));
            }
        }
        out.push_str("}\n");
        out
    }

    /// The direct prerequisites of `task` (tasks with an edge into it).
    pub fn prerequisites(&self, task: TaskId) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&i| self.edges[i].contains(&task))
            .map(TaskId)
            .collect()
    }

    /// A topological order of the tasks.
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] if the dependencies are cyclic.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, GraphError> {
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        for outs in &self.edges {
            for t in outs {
                indegree[t.0] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(TaskId(i));
            for t in &self.edges[i] {
                indegree[t.0] -= 1;
                if indegree[t.0] == 0 {
                    queue.push_back(t.0);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cycle)
        }
    }

    /// The critical path: the dependency chain with the largest total
    /// effort, returned as `(path, days)`. This is the shortest
    /// possible project duration with unlimited designers.
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] if the dependencies are cyclic.
    pub fn critical_path(&self) -> Result<(Vec<TaskId>, f64), GraphError> {
        let order = self.topological_order()?;
        let n = self.tasks.len();
        // finish[i] = earliest completion of i; pred for reconstruction.
        let mut finish = vec![0.0f64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        for &TaskId(i) in &order {
            finish[i] += self.tasks[i].days;
            for &TaskId(j) in &self.edges[i] {
                if finish[i] > finish[j] {
                    finish[j] = finish[i];
                    pred[j] = Some(i);
                }
            }
        }
        let (mut at, &total) = finish
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty graph");
        let mut path = vec![TaskId(at)];
        while let Some(p) = pred[at] {
            path.push(TaskId(p));
            at = p;
        }
        path.reverse();
        Ok((path, total))
    }

    /// Greedy list-schedule makespan with `designers` people: at any
    /// time each free designer takes the ready task with the most
    /// downstream work. Returns total calendar days.
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] if the dependencies are cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `designers` is zero.
    pub fn makespan(&self, designers: usize) -> Result<f64, GraphError> {
        assert!(designers > 0, "need at least one designer");
        let order = self.topological_order()?;
        let n = self.tasks.len();

        // Priority: critical-path-to-sink length from each task.
        let mut rank = vec![0.0f64; n];
        for &TaskId(i) in order.iter().rev() {
            let down = self.edges[i].iter().map(|t| rank[t.0]).fold(0.0, f64::max);
            rank[i] = self.tasks[i].days + down;
        }

        let mut indegree = vec![0usize; n];
        for outs in &self.edges {
            for t in outs {
                indegree[t.0] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut running: Vec<(f64, usize)> = Vec::new(); // (finish time, task)
        let mut clock = 0.0f64;
        let mut done = 0usize;

        while done < n {
            while running.len() < designers && !ready.is_empty() {
                // Pick the highest-rank ready task.
                let best = ready
                    .iter()
                    .enumerate()
                    .max_by(|a, b| rank[*a.1].total_cmp(&rank[*b.1]))
                    .map(|(idx, _)| idx)
                    .expect("ready non-empty");
                let task = ready.swap_remove(best);
                running.push((clock + self.tasks[task].days, task));
            }
            // Advance to the next completion.
            let (idx, &(finish, task)) = running
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                .expect("something must be running");
            clock = finish;
            running.swap_remove(idx);
            done += 1;
            for &TaskId(j) in &self.edges[task] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        Ok(clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 2.0);
        let c = g.add_task("c", 3.0);
        let d = g.add_task("d", 1.0);
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        g.add_dependency(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topological_order().unwrap();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, a).unwrap();
        assert_eq!(g.topological_order(), Err(GraphError::Cycle));
        assert_eq!(g.critical_path().map(|_| ()), Err(GraphError::Cycle));
    }

    #[test]
    fn critical_path_takes_longest_chain() {
        let (g, [a, _b, c, d]) = diamond();
        let (path, days) = g.critical_path().unwrap();
        assert_eq!(path, vec![a, c, d]);
        assert!((days - 5.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_bounds() {
        let (g, _) = diamond();
        // One designer: serial total = 7 days.
        assert!((g.makespan(1).unwrap() - 7.0).abs() < 1e-12);
        // Unlimited designers: the critical path, 5 days.
        assert!((g.makespan(10).unwrap() - 5.0).abs() < 1e-12);
        // Two designers can overlap b with c.
        let two = g.makespan(2).unwrap();
        assert!((5.0..=7.0).contains(&two));
    }

    #[test]
    fn unknown_task_edge_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let bogus = TaskId(99);
        assert_eq!(g.add_dependency(a, bogus), Err(GraphError::UnknownTask));
    }

    #[test]
    fn dot_export_lists_every_task_and_edge() {
        let (g, _) = crate::figure41::figure_4_1();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert_eq!(
            dot.matches(" -> ").count(),
            crate::figure41::DesignTask::dependencies().len()
        );
        assert!(dot.contains("Algorithm (15 d)"));
    }

    #[test]
    fn accessors() {
        let (g, [a, ..]) = diamond();
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.name(a), "a");
        assert!((g.days(a) - 1.0).abs() < 1e-12);
        assert!((g.total_days() - 7.0).abs() < 1e-12);
    }
}
