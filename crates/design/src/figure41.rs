//! The paper's own task dependency graph (Figure 4-1).
//!
//! Each subtask "deals with the design of one geometric area at one
//! level of abstraction"; the arrows carry exactly the information the
//! §4 prose enumerates. Effort estimates are calibrated to the paper's
//! statement that the whole design "took only about two man-months",
//! with the algorithm task dominating — the paper's central claim
//! being that everything below the algorithm level "is relatively
//! routine".

use crate::taskgraph::{TaskGraph, TaskId};

/// The nine design subtasks of Figure 4-1, in the order the paper
/// presents them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DesignTask {
    /// Algorithm design: data flow, geometry, cell functions.
    Algorithm,
    /// Cell combinations and placements (skeleton layout).
    CellCombinations,
    /// Data-flow control circuit (clocking, shift registers).
    DataFlowControl,
    /// Cell logic circuits.
    CellLogicCircuits,
    /// Cell timing signals (intra-beat sequencing).
    CellTimingSignals,
    /// Communication sticks (global routing topology).
    CommunicationSticks,
    /// Cell stick diagrams.
    CellSticks,
    /// Cell layouts (λ-dimensioned).
    CellLayouts,
    /// Cell boundary layouts and pads (completes the mask set).
    CellBoundaryLayouts,
}

impl DesignTask {
    /// All tasks in presentation order.
    pub fn all() -> [DesignTask; 9] {
        use DesignTask::*;
        [
            Algorithm,
            CellCombinations,
            DataFlowControl,
            CellLogicCircuits,
            CellTimingSignals,
            CommunicationSticks,
            CellSticks,
            CellLayouts,
            CellBoundaryLayouts,
        ]
    }

    /// Task name as the figure labels it.
    pub fn name(self) -> &'static str {
        match self {
            DesignTask::Algorithm => "Algorithm",
            DesignTask::CellCombinations => "Cell Combinations and Placements",
            DesignTask::DataFlowControl => "Data Flow Control Circuit",
            DesignTask::CellLogicCircuits => "Cell Logic Circuits",
            DesignTask::CellTimingSignals => "Cell Timing Signals",
            DesignTask::CommunicationSticks => "Communication Sticks",
            DesignTask::CellSticks => "Cell Sticks",
            DesignTask::CellLayouts => "Cell Layouts",
            DesignTask::CellBoundaryLayouts => "Cell Boundary Layouts",
        }
    }

    /// Effort estimate in designer-days (two designers × one month ≈
    /// 42 working days total, §5).
    pub fn days(self) -> f64 {
        match self {
            // "A large portion of the design time should … be devoted
            // to algorithm design."
            DesignTask::Algorithm => 15.0,
            DesignTask::CellCombinations => 2.0,
            DesignTask::DataFlowControl => 3.0,
            DesignTask::CellLogicCircuits => 5.0,
            DesignTask::CellTimingSignals => 1.0,
            DesignTask::CommunicationSticks => 3.0,
            DesignTask::CellSticks => 4.0,
            DesignTask::CellLayouts => 6.0,
            DesignTask::CellBoundaryLayouts => 3.0,
        }
    }

    /// The information-flow arrows of Figure 4-1: `(from, to)` pairs as
    /// described in the §4 prose.
    pub fn dependencies() -> Vec<(DesignTask, DesignTask)> {
        use DesignTask::*;
        vec![
            // The algorithm supplies the data flow pattern and the cell
            // functions.
            (Algorithm, CellCombinations),
            (Algorithm, DataFlowControl),
            (Algorithm, CellLogicCircuits),
            // Cell combination informs the control circuit and the cell
            // circuits.
            (CellCombinations, DataFlowControl),
            (CellCombinations, CellLogicCircuits),
            // "We are now in possession of the three pieces of
            // information needed to design circuits for the cells."
            (DataFlowControl, CellLogicCircuits),
            // "Any such signals should be identified as soon as the
            // cell circuits are all complete."
            (CellLogicCircuits, CellTimingSignals),
            // "When the circuitry of the data flow control is complete
            // we can draw its stick diagram."
            (DataFlowControl, CommunicationSticks),
            (CellTimingSignals, CommunicationSticks),
            // "The relative locations of power, ground, and all inputs
            // and outputs are known from the communication sticks."
            (CommunicationSticks, CellSticks),
            (CellLogicCircuits, CellSticks),
            // Sticks → layouts → boundary layouts.
            (CellSticks, CellLayouts),
            (CellLayouts, CellBoundaryLayouts),
            (CommunicationSticks, CellBoundaryLayouts),
        ]
    }
}

/// Builds Figure 4-1 as a [`TaskGraph`], returning the graph and the
/// id of each design task.
pub fn figure_4_1() -> (TaskGraph, Vec<(DesignTask, TaskId)>) {
    let mut g = TaskGraph::new();
    let ids: Vec<(DesignTask, TaskId)> = DesignTask::all()
        .into_iter()
        .map(|t| (t, g.add_task(t.name(), t.days())))
        .collect();
    let lookup = |t: DesignTask| {
        ids.iter()
            .find(|(dt, _)| *dt == t)
            .expect("all tasks added")
            .1
    };
    for (from, to) in DesignTask::dependencies() {
        g.add_dependency(lookup(from), lookup(to))
            .expect("valid ids");
    }
    (g, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_acyclic_with_algorithm_first_and_masks_last() {
        let (g, ids) = figure_4_1();
        let order = g.topological_order().expect("Figure 4-1 is a DAG");
        assert_eq!(order.len(), 9);
        let pos = |t: DesignTask| {
            let id = ids.iter().find(|(dt, _)| *dt == t).unwrap().1;
            order.iter().position(|&x| x == id).unwrap()
        };
        assert_eq!(pos(DesignTask::Algorithm), 0, "the algorithm comes first");
        assert_eq!(
            pos(DesignTask::CellBoundaryLayouts),
            8,
            "the mask assembly comes last"
        );
    }

    #[test]
    fn two_man_month_budget() {
        let (g, _) = figure_4_1();
        // §5: "took only about two man-months" — 42 designer-days.
        assert!((g.total_days() - 42.0).abs() < 1e-9, "{}", g.total_days());
    }

    #[test]
    fn algorithm_dominates_the_critical_path() {
        let (g, ids) = figure_4_1();
        let (path, days) = g.critical_path().unwrap();
        let algorithm = ids[0].1;
        assert_eq!(path[0], algorithm);
        // The algorithm is more than a third of the whole critical path.
        assert!(g.days(algorithm) / days > 0.33);
    }

    #[test]
    fn information_flow_serialises_the_project() {
        // The §4 discipline — each subtask consumes the previous one's
        // outputs — makes Figure 4-1's critical path pass through every
        // task: extra designers cannot shorten the project. (The paper
        // worked "one subtask at a time" and still finished in two
        // man-months, because no task ever waits on a missing input.)
        let (g, _) = figure_4_1();
        let one = g.makespan(1).unwrap();
        let many = g.makespan(9).unwrap();
        let (path, cp) = g.critical_path().unwrap();
        assert_eq!(path.len(), g.len(), "critical path covers every task");
        assert!((one - cp).abs() < 1e-9);
        assert!((many - cp).abs() < 1e-9);
    }

    #[test]
    fn every_task_has_a_distinct_name() {
        let mut names: Vec<&str> = DesignTask::all().iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
