//! # pm-design — the chip-design methodology of paper §4
//!
//! Section 4 argues that VLSI design becomes tractable when decomposed
//! into subtasks with explicit information flow, captured in a *task
//! dependency graph* (Figure 4-1): "The purpose of the task dependency
//! graph is to make sure that no more than a small amount of knowledge
//! is required for any subtask."
//!
//! [`taskgraph`] is a small scheduling engine for such graphs —
//! topological ordering, cycle detection, critical path, and bounded-
//! designer list scheduling. [`rework`] adds §4's design-iteration
//! model: slips force prerequisites to be redone, and narrow
//! interfaces keep that cheap. [`figure41`] encodes the paper's own
//! graph for the pattern-matching chip and reproduces its headline
//! project estimate: "the design of the pattern matching chip … took
//! only about two man-months", dominated by the algorithm task.

//! ```
//! use pm_design::prelude::*;
//!
//! let (graph, _) = figure_4_1();
//! let (_, days) = graph.critical_path().unwrap();
//! assert_eq!(days, 42.0); // "about two man-months"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure41;
pub mod rework;
pub mod taskgraph;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::figure41::{figure_4_1, DesignTask};
    pub use crate::rework::{expected_days, simulate, tangled_version, ProjectOutcome};
    pub use crate::taskgraph::{GraphError, TaskGraph, TaskId};
}
