//! Property tests over random task DAGs: scheduling invariants that
//! must hold for any project, not just Figure 4-1.

use pm_design::prelude::*;
use proptest::prelude::*;

/// A random DAG: task efforts plus forward-only edges (i → j, i < j),
/// which guarantees acyclicity by construction.
fn dag() -> impl Strategy<Value = (Vec<f64>, Vec<(usize, usize)>)> {
    (2usize..10).prop_flat_map(|n| {
        let days = proptest::collection::vec(1.0f64..20.0, n);
        let edges = proptest::collection::vec(
            (0..n, 0..n).prop_filter_map("forward edges", |(a, b)| {
                if a < b {
                    Some((a, b))
                } else if b < a {
                    Some((b, a))
                } else {
                    None
                }
            }),
            0..12,
        );
        (days, edges)
    })
}

fn build(days: &[f64], edges: &[(usize, usize)]) -> (TaskGraph, Vec<TaskId>) {
    let mut g = TaskGraph::new();
    let ids: Vec<TaskId> = days
        .iter()
        .enumerate()
        .map(|(i, &d)| g.add_task(format!("t{i}"), d))
        .collect();
    for &(a, b) in edges {
        g.add_dependency(ids[a], ids[b]).expect("valid ids");
    }
    (g, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn topological_order_respects_every_edge((days, edges) in dag()) {
        let (g, ids) = build(&days, &edges);
        let order = g.topological_order().expect("forward edges are acyclic");
        prop_assert_eq!(order.len(), days.len());
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        for &(a, b) in &edges {
            prop_assert!(pos(ids[a]) < pos(ids[b]), "edge {a}->{b} violated");
        }
    }

    #[test]
    fn critical_path_bounds_the_schedule((days, edges) in dag()) {
        let (g, _) = build(&days, &edges);
        let serial = g.total_days();
        let (_, cp) = g.critical_path().unwrap();
        let one = g.makespan(1).unwrap();
        let many = g.makespan(days.len()).unwrap();
        // Serial execution spends exactly the total.
        prop_assert!((one - serial).abs() < 1e-6);
        // No schedule beats the critical path; unlimited staff meets it
        // for list scheduling on these small graphs only up to the
        // greedy bound, but can never go below.
        prop_assert!(many >= cp - 1e-9);
        prop_assert!(many <= serial + 1e-9);
        prop_assert!(cp <= serial + 1e-9);
    }

    #[test]
    fn more_designers_never_hurt((days, edges) in dag()) {
        let (g, _) = build(&days, &edges);
        let mut last = f64::INFINITY;
        for workers in 1..=days.len() {
            let m = g.makespan(workers).unwrap();
            prop_assert!(m <= last + 1e-9, "{workers} workers worsened the schedule");
            last = m;
        }
    }

    #[test]
    fn prerequisites_invert_edges((days, edges) in dag()) {
        let (g, ids) = build(&days, &edges);
        for (i, &id) in ids.iter().enumerate() {
            let pres = g.prerequisites(id);
            for &(a, b) in &edges {
                if b == i {
                    prop_assert!(pres.contains(&ids[a]));
                }
            }
        }
    }

    #[test]
    fn rework_is_bounded_and_monotone_at_extremes((days, edges) in dag(), seed in 0u64..500) {
        let (g, _) = build(&days, &edges);
        let none = pm_design::rework::simulate(&g, 0.0, 32, seed).unwrap();
        let all = pm_design::rework::simulate(&g, 1.0, 32, seed).unwrap();
        prop_assert!((none.days - g.total_days()).abs() < 1e-9);
        prop_assert!(all.days >= none.days);
        // Rework can at most triple any task (itself + one prerequisite
        // per slip, each at most the largest task).
        let max_task = days.iter().cloned().fold(0.0, f64::max);
        prop_assert!(all.days <= g.total_days() + 2.0 * max_task * days.len() as f64);
    }
}
