//! Property tests for the switch-level simulator: arbitrary ratioed
//! complex gates must compute exactly their AND-OR-INVERT function, and
//! the relaxation must be confluent (input order never matters).

use pm_nmos::netlist::{Netlist, NodeId};
use pm_nmos::sim::Sim;
use proptest::prelude::*;

/// A random pulldown network: up to 4 chains of up to 3 gate inputs,
/// each input drawn from a pool of up to 4 primary inputs.
fn network() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (1usize..=4).prop_flat_map(|inputs| {
        (
            Just(inputs),
            proptest::collection::vec(proptest::collection::vec(0..inputs, 1..=3), 1..=4),
        )
    })
}

/// Evaluate a 4-bit arithmetic circuit for given operand values.
fn eval_buses(
    build: impl Fn(&mut Netlist, &[NodeId], &[NodeId]) -> Vec<NodeId>,
    a: i64,
    b: i64,
) -> i64 {
    let mut nl = Netlist::new();
    let mk = |nl: &mut Netlist, tag: &str| -> Vec<NodeId> {
        (0..4)
            .map(|w| {
                let n = nl.node(format!("{tag}{w}"));
                nl.input(n);
                n
            })
            .collect()
    };
    let bus_a = mk(&mut nl, "a");
    let bus_b = mk(&mut nl, "b");
    let out = build(&mut nl, &bus_a, &bus_b);
    let mut sim = pm_nmos::sim::Sim::new(nl);
    for (w, &n) in bus_a.iter().enumerate() {
        sim.set(n, (a >> w) & 1 == 1);
    }
    for (w, &n) in bus_b.iter().enumerate() {
        sim.set(n, (b >> w) & 1 == 1);
    }
    sim.settle().unwrap();
    let mut got = 0i64;
    for (w, &n) in out.iter().enumerate() {
        if sim.get_bool(n).unwrap() {
            got |= 1 << w;
        }
    }
    got
}

/// Reference: out = NOT (OR over chains of AND over gates).
fn aoi(values: &[bool], chains: &[Vec<usize>]) -> bool {
    !chains.iter().any(|chain| chain.iter().all(|&g| values[g]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_gate_computes_aoi((inputs, chains) in network(), assignment in proptest::collection::vec(any::<bool>(), 4)) {
        let mut nl = Netlist::new();
        let pins: Vec<NodeId> = (0..inputs).map(|i| {
            let n = nl.node(format!("in{i}"));
            nl.input(n);
            n
        }).collect();
        let chain_nodes: Vec<Vec<NodeId>> =
            chains.iter().map(|c| c.iter().map(|&g| pins[g]).collect()).collect();
        let chain_refs: Vec<&[NodeId]> = chain_nodes.iter().map(Vec::as_slice).collect();
        let out = nl.complex_gate("g", &chain_refs);

        let mut sim = Sim::new(nl);
        for (i, &pin) in pins.iter().enumerate() {
            sim.set(pin, assignment[i]);
        }
        sim.settle().unwrap();
        let values = &assignment[..inputs];
        prop_assert_eq!(sim.get(out).to_bool(), Some(aoi(values, &chains)));
    }

    #[test]
    fn four_bit_adder_matches_integers(a in 0i64..16, b in 0i64..16) {
        let got = eval_buses(
            |nl, x, y| {
                let gnd = nl.gnd();
                pm_nmos::arith::adder(nl, "add", x, y, gnd).0
            },
            a,
            b,
        );
        prop_assert_eq!(got, (a + b) % 16);
    }

    #[test]
    fn four_bit_multiplier_matches_integers(a in 0i64..16, b in 0i64..16) {
        let got = eval_buses(
            |nl, x, y| pm_nmos::arith::multiplier(nl, "mul", x, y),
            a,
            b,
        );
        prop_assert_eq!(got, a * b);
    }

    #[test]
    fn settling_is_confluent((inputs, chains) in network(), a in proptest::collection::vec(any::<bool>(), 4), b in proptest::collection::vec(any::<bool>(), 4)) {
        // Settle to assignment `a` directly, or via `b` first: the
        // final state must be identical (combinational network).
        let build = |nl: &mut Netlist| -> (Vec<NodeId>, NodeId) {
            let pins: Vec<NodeId> = (0..inputs).map(|i| {
                let n = nl.node(format!("in{i}"));
                nl.input(n);
                n
            }).collect();
            let chain_nodes: Vec<Vec<NodeId>> =
                chains.iter().map(|c| c.iter().map(|&g| pins[g]).collect()).collect();
            let chain_refs: Vec<&[NodeId]> = chain_nodes.iter().map(Vec::as_slice).collect();
            let out = nl.complex_gate("g", &chain_refs);
            (pins, out)
        };

        let mut nl1 = Netlist::new();
        let (pins1, out1) = build(&mut nl1);
        let mut direct = Sim::new(nl1);
        for (i, &p) in pins1.iter().enumerate() {
            direct.set(p, a[i]);
        }
        direct.settle().unwrap();

        let mut nl2 = Netlist::new();
        let (pins2, out2) = build(&mut nl2);
        let mut detour = Sim::new(nl2);
        for (i, &p) in pins2.iter().enumerate() {
            detour.set(p, b[i]);
        }
        detour.settle().unwrap();
        for (i, &p) in pins2.iter().enumerate() {
            detour.set(p, a[i]);
        }
        detour.settle().unwrap();

        prop_assert_eq!(direct.get(out1), detour.get(out2));
    }
}
