//! E7: the transistor-level chip and the behavioural models agree on
//! randomised workloads (kept small — every beat is a full switch-level
//! relaxation of the netlist).

use pm_nmos::prelude::*;
use pm_systolic::bitserial::BitSerialMatcher;
use pm_systolic::prelude::*;
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = (u32, Vec<Option<u8>>, Vec<u8>)> {
    (1u32..=2).prop_flat_map(|bits| {
        let max = (1u16 << bits) as u8 - 1;
        let pat_sym = prop_oneof![
            4 => (0..=max).prop_map(Some),
            1 => Just(None),
        ];
        (
            Just(bits),
            proptest::collection::vec(pat_sym, 1..=5),
            proptest::collection::vec(0..=max, 0..=10),
        )
    })
}

fn build(bits: u32, pat: &[Option<u8>]) -> Pattern {
    let alphabet = Alphabet::new(bits).unwrap();
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, alphabet).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn silicon_equals_spec_and_behavioural((bits, pat, text) in workload()) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let chip = PatternChip::new(pattern.len(), bits);
        let silicon = chip.match_pattern(&pattern, &symbols).unwrap();
        prop_assert_eq!(&silicon, &match_spec(&symbols, &pattern));
        let behavioural = BitSerialMatcher::new(&pattern).unwrap();
        let soft = behavioural.match_symbols(&symbols);
        prop_assert_eq!(silicon.as_slice(), soft.bits());
    }

    #[test]
    fn char_level_silicon_equals_spec((bits, pat, text) in workload()) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let chip = pm_nmos::charchip::CharChip::new(pattern.len(), bits);
        let silicon = chip.match_pattern(&pattern, &symbols).unwrap();
        prop_assert_eq!(&silicon, &match_spec(&symbols, &pattern));
    }

    #[test]
    fn counting_silicon_equals_count_spec((bits, pat, text) in workload()) {
        let pattern = build(bits, &pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        // Width large enough to never wrap (patterns here are ≤ 5).
        let chip = pm_nmos::countchip::CountChip::new(pattern.len(), bits, 3);
        let silicon = chip.count(&pattern, &symbols).unwrap();
        prop_assert_eq!(&silicon, &pm_systolic::spec::count_spec(&symbols, &pattern));
    }
}

#[test]
fn prototype_device_budget() {
    // The 1979 prototype fit in a multi-project-chip slot; our netlist
    // for the same 8-cell, 2-bit configuration should be of the same
    // order (hundreds of devices, not thousands).
    let chip = PatternChip::new(8, 2);
    let devices = chip.device_count();
    assert!(
        (200..2000).contains(&devices),
        "8x2 chip uses {devices} devices"
    );
}
