//! Ternary signal levels.

use std::fmt;

/// The value on a net: driven/stored low, driven/stored high, or
/// unknown (`X`). `X` arises at power-up (uninitialised charge), from
/// charge sharing between nodes holding different values, and from
/// decayed dynamic storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Ground.
    Low,
    /// The supply voltage `Vdd`.
    High,
    /// Unknown or invalid.
    #[default]
    X,
}

impl Level {
    /// Converts a boolean (true = `High`).
    pub fn from_bool(b: bool) -> Self {
        if b {
            Level::High
        } else {
            Level::Low
        }
    }

    /// The boolean value, if known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Level::Low => Some(false),
            Level::High => Some(true),
            Level::X => None,
        }
    }

    /// Whether the level is known (not `X`).
    pub fn is_known(self) -> bool {
        self != Level::X
    }

    /// Merge of two levels sharing charge: agreement keeps the value,
    /// disagreement or any `X` yields `X`.
    pub fn merge(self, other: Level) -> Level {
        if self == other {
            self
        } else {
            Level::X
        }
    }
}

impl From<bool> for Level {
    fn from(b: bool) -> Self {
        Level::from_bool(b)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Level::Low => '0',
            Level::High => '1',
            Level::X => 'X',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_roundtrip() {
        assert_eq!(Level::from_bool(true).to_bool(), Some(true));
        assert_eq!(Level::from_bool(false).to_bool(), Some(false));
        assert_eq!(Level::X.to_bool(), None);
    }

    #[test]
    fn merge_rules() {
        assert_eq!(Level::High.merge(Level::High), Level::High);
        assert_eq!(Level::Low.merge(Level::Low), Level::Low);
        assert_eq!(Level::High.merge(Level::Low), Level::X);
        assert_eq!(Level::High.merge(Level::X), Level::X);
    }

    #[test]
    fn display() {
        assert_eq!(Level::Low.to_string(), "0");
        assert_eq!(Level::High.to_string(), "1");
        assert_eq!(Level::X.to_string(), "X");
    }
}
