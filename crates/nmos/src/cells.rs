//! The chip's two cell types at transistor level (§3.2.2, Plate 1).
//!
//! ## One-bit comparator (Figure 3-6)
//!
//! Three pass transistors gated by the cell's clock phase latch `p`,
//! `s` and `d` onto storage nodes; two inverters regenerate (and
//! invert) `p` and `s` for the neighbours; an XNOR tests equality and a
//! NAND folds it into the descending comparison result:
//!
//! ```text
//! p_out ← NOT p_in    s_out ← NOT s_in    d_out ← d_in NAND (p_in = s_in)
//! ```
//!
//! Because every cell inverts on the way through, two *twins* exist.
//! The horizontal `p`/`s` polarity never changes the circuit (XNOR of
//! two inverted inputs equals XNOR of the originals), so the twins
//! differ only in the `d` path: the **positive** comparator takes true
//! `d` and emits `d̄` (NAND), the **negative** twin takes `d̄` and emits
//! true `d` (`NOR(d̄, p XOR s)`).
//!
//! ## Accumulator
//!
//! Implements the cell algorithm of §3.2.1 (with the completed result
//! including the final comparison, matching
//! [`BooleanMatch`](pm_systolic::semantics::BooleanMatch)):
//!
//! ```text
//! λout ← λin;  xout ← xin
//! m    = t AND (x OR d)
//! IF λin THEN rout ← m; t ← TRUE   ELSE rout ← rin; t ← m
//! ```
//!
//! as ratioed complex gates with a dynamic `t` loop refreshed through a
//! pass transistor on every active beat — dynamic storage "refreshed
//! only by shifting it", per §3.3.3. The builder is parameterised over
//! the polarities of its horizontal (`λ`/`x`/`r`) and vertical (`d`)
//! inputs, covering all four twin combinations that occur in the array.

use crate::error::SimError;
use crate::netlist::{Netlist, NodeId};
use crate::sim::Sim;

/// Output bundle of a comparator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparatorOutputs {
    /// Regenerated (inverted) pattern bit for the right neighbour.
    pub p_out: NodeId,
    /// Regenerated (inverted) text bit for the left neighbour.
    pub s_out: NodeId,
    /// Comparison result for the cell below (polarity opposite to the
    /// `d` input).
    pub d_out: NodeId,
}

/// Builds a one-bit comparator into `nl`.
///
/// `d_in_inverted` selects the twin: `false` = the positive comparator
/// of Figure 3-6 (true `d` in, `d̄` out), `true` = the negative twin.
pub fn build_comparator(
    nl: &mut Netlist,
    name: &str,
    clk: NodeId,
    p_in: NodeId,
    s_in: NodeId,
    d_in: NodeId,
    d_in_inverted: bool,
) -> ComparatorOutputs {
    // Storage nodes behind pass transistors (the three at the top of
    // Plate 1).
    let sp = nl.node(format!("{name}.sp"));
    let ss = nl.node(format!("{name}.ss"));
    let sd = nl.node(format!("{name}.sd"));
    nl.pass(clk, p_in, sp);
    nl.pass(clk, s_in, ss);
    nl.pass(clk, d_in, sd);

    // Regenerating inverters; their outputs double as the complements
    // the XNOR/XOR pulldown networks need.
    let p_out = nl.inverter(&format!("{name}.pq"), sp);
    let s_out = nl.inverter(&format!("{name}.sq"), ss);

    let d_out = if d_in_inverted {
        // Negative twin: d_out = NOT(d̄ OR (p XOR s)) = d AND (p = s).
        let xor = nl.xor(&format!("{name}.xor"), sp, p_out, ss, s_out);
        nl.nor2(&format!("{name}.dq"), sd, xor)
    } else {
        // Positive comparator: d_out = NOT(d AND (p = s)).
        let eq = nl.xnor(&format!("{name}.eq"), sp, p_out, ss, s_out);
        nl.nand2(&format!("{name}.dq"), sd, eq)
    };

    ComparatorOutputs {
        p_out,
        s_out,
        d_out,
    }
}

/// Output bundle of an accumulator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccumulatorOutputs {
    /// `λ` for the right neighbour (inverted relative to the input).
    pub lambda_out: NodeId,
    /// `x` for the right neighbour (inverted relative to the input).
    pub x_out: NodeId,
    /// Result for the left neighbour (inverted relative to the input).
    pub r_out: NodeId,
    /// The internal temporary-result node `t` (exposed for tests).
    pub t_state: NodeId,
}

/// Builds an accumulator cell into `nl`.
///
/// * `clk` — the cell's own phase (inputs latch on it).
/// * `clk_b` — the opposite phase; the `t` state updates on it, which
///   sequences `rout ← …t…` before `t ← …` exactly as §4's "Cell Timing
///   Signals" subsection requires ("the assignments `r_out ← t; t ←
///   TRUE` must take place in the correct order").
/// * `horiz_inverted` — true if `λ`/`x`/`r` arrive inverted (odd
///   columns).
/// * `d_inverted` — true if the comparison result from the row above
///   arrives inverted (odd comparator row count).
#[allow(clippy::too_many_arguments)]
pub fn build_accumulator(
    nl: &mut Netlist,
    name: &str,
    clk: NodeId,
    clk_b: NodeId,
    lambda_in: NodeId,
    x_in: NodeId,
    d_in: NodeId,
    r_in: NodeId,
    horiz_inverted: bool,
    d_inverted: bool,
) -> AccumulatorOutputs {
    // Input storage, latched on the cell's own phase.
    let sl = nl.node(format!("{name}.sl"));
    let sx = nl.node(format!("{name}.sx"));
    let sd = nl.node(format!("{name}.sd"));
    let sr = nl.node(format!("{name}.sr"));
    nl.pass(clk, lambda_in, sl);
    nl.pass(clk, x_in, sx);
    nl.pass(clk, d_in, sd);
    nl.pass(clk, r_in, sr);

    // Horizontal outputs always invert once on the way through.
    let lambda_out = nl.inverter(&format!("{name}.lq"), sl);
    let x_out = nl.inverter(&format!("{name}.xq"), sx);

    // True-polarity views of the stored inputs.
    let (lam_t, lam_f) = if horiz_inverted {
        (lambda_out, sl)
    } else {
        (sl, lambda_out)
    };
    let x_t = if horiz_inverted { x_out } else { sx };
    let d_t = if d_inverted {
        nl.inverter(&format!("{name}.dn"), sd)
    } else {
        sd
    };
    // Complement of the true result value.
    let r_f = if horiz_inverted {
        sr
    } else {
        nl.inverter(&format!("{name}.rn"), sr)
    };

    // m = t AND (x OR d); t is stable during the cell's own phase
    // because its register commits on the opposite one. `st` here is the
    // *slave* storage node; the complex gate reads the true t through
    // the slave inverter's complement trick below, so build the m gate
    // against the driven t rail `t_rail`.
    let slave = nl.node(format!("{name}.ts")); // holds t̄ (one inversion from master)
    let t_rail = nl.inverter(&format!("{name}.tq"), slave); // driven true t
    let m_bar = nl.complex_gate(&format!("{name}.mb"), &[&[t_rail, x_t], &[t_rail, d_t]]);
    let m = nl.inverter(&format!("{name}.m"), m_bar);

    // t_next = λ OR m, through a two-phase master/slave register: the
    // new value is staged on the cell's phase (master) and committed on
    // the opposite phase (slave), so the result selection below always
    // sees the *old* t — the `r_out ← t; t ← …` sequencing that §4's
    // "Cell Timing Signals" subsection calls for. Each hand-off is
    // buffered by an inverter so a driven node, never bare charge, feeds
    // every pass transistor; charge is refreshed each cycle (§3.3.3).
    let t_next_bar = nl.nor2(&format!("{name}.tnb"), lam_t, m);
    let t_next = nl.inverter(&format!("{name}.tn"), t_next_bar);
    let master = nl.node(format!("{name}.tm"));
    nl.pass(clk, t_next, master);
    let master_bar = nl.inverter(&format!("{name}.tmb"), master); // = t̄_next, driven
    nl.pass(clk_b, master_bar, slave);

    // Result selection, true polarity: r_sel = λ·m + λ̄·r, built as
    // NOT(λ·m̄ + λ̄·r̄). Latched into an output register on the cell's
    // phase so the neighbour sees a stable level on its own phase.
    let r_sel = nl.complex_gate(&format!("{name}.rs"), &[&[lam_t, m_bar], &[lam_f, r_f]]);
    let r_store = nl.node(format!("{name}.rst"));
    nl.pass(clk, r_sel, r_store);
    let r_out_bar = nl.inverter(&format!("{name}.rq"), r_store);
    let r_out = if horiz_inverted {
        // Input was r̄, output must be true r.
        nl.inverter(&format!("{name}.rqq"), r_out_bar)
    } else {
        r_out_bar
    };

    AccumulatorOutputs {
        lambda_out,
        x_out,
        r_out,
        t_state: t_rail,
    }
}

/// A single clocked comparator cell with pads, for exhaustive testing.
#[derive(Debug, Clone)]
pub struct ComparatorCell {
    sim: Sim,
    clk: NodeId,
    p_in: NodeId,
    s_in: NodeId,
    d_in: NodeId,
    out: ComparatorOutputs,
    d_in_inverted: bool,
}

impl ComparatorCell {
    /// Builds a lone comparator of the requested twin.
    pub fn new(d_in_inverted: bool) -> Self {
        let mut nl = Netlist::new();
        let clk = nl.node("clk");
        let p_in = nl.node("p_in");
        let s_in = nl.node("s_in");
        let d_in = nl.node("d_in");
        for n in [clk, p_in, s_in, d_in] {
            nl.input(n);
        }
        let out = build_comparator(&mut nl, "cmp", clk, p_in, s_in, d_in, d_in_inverted);
        let mut sim = Sim::new(nl);
        sim.set(clk, false);
        ComparatorCell {
            sim,
            clk,
            p_in,
            s_in,
            d_in,
            out,
            d_in_inverted,
        }
    }

    /// Device count of the cell (the paper notes the cells "contain only
    /// four gates each").
    pub fn device_count(&self) -> usize {
        self.sim.netlist().device_count()
    }

    /// Applies inputs (true polarity), pulses the clock, and returns
    /// `(p_out, s_out, d_out)` normalised back to true polarity.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; `X` outputs become
    /// [`SimError::UnknownOutput`].
    pub fn step(&mut self, p: bool, s: bool, d: bool) -> Result<(bool, bool, bool), SimError> {
        self.sim.set(self.p_in, p);
        self.sim.set(self.s_in, s);
        // The twin receives its d input in its native polarity.
        self.sim
            .set(self.d_in, if self.d_in_inverted { !d } else { d });
        self.sim.set(self.clk, true);
        self.sim.settle()?;
        self.sim.set(self.clk, false);
        self.sim.settle()?;
        self.sim.end_beat();
        let p_out = !self.sim.get_bool(self.out.p_out)?;
        let s_out = !self.sim.get_bool(self.out.s_out)?;
        let d_raw = self.sim.get_bool(self.out.d_out)?;
        let d_out = if self.d_in_inverted { d_raw } else { !d_raw };
        Ok((p_out, s_out, d_out))
    }
}

/// A single clocked accumulator cell with pads, for sequence testing.
#[derive(Debug, Clone)]
pub struct AccumulatorCell {
    sim: Sim,
    clk: NodeId,
    clk_b: NodeId,
    lambda_in: NodeId,
    x_in: NodeId,
    d_in: NodeId,
    r_in: NodeId,
    out: AccumulatorOutputs,
    horiz_inverted: bool,
    d_inverted: bool,
}

impl AccumulatorCell {
    /// Builds a lone accumulator of the requested twin combination.
    pub fn new(horiz_inverted: bool, d_inverted: bool) -> Self {
        let mut nl = Netlist::new();
        let clk = nl.node("clk");
        let clk_b = nl.node("clk_b");
        let lambda_in = nl.node("l_in");
        let x_in = nl.node("x_in");
        let d_in = nl.node("d_in");
        let r_in = nl.node("r_in");
        for n in [clk, clk_b, lambda_in, x_in, d_in, r_in] {
            nl.input(n);
        }
        let out = build_accumulator(
            &mut nl,
            "acc",
            clk,
            clk_b,
            lambda_in,
            x_in,
            d_in,
            r_in,
            horiz_inverted,
            d_inverted,
        );
        let mut sim = Sim::new(nl);
        sim.set(clk, false);
        sim.set(clk_b, false);
        AccumulatorCell {
            sim,
            clk,
            clk_b,
            lambda_in,
            x_in,
            d_in,
            r_in,
            out,
            horiz_inverted,
            d_inverted,
        }
    }

    /// Device count of the cell.
    pub fn device_count(&self) -> usize {
        self.sim.netlist().device_count()
    }

    /// Applies inputs (true polarity), pulses the clock, and returns
    /// `(λ_out, x_out, r_out)` normalised to true polarity. `r_out` is
    /// `None` while it carries power-on `X` (before the first λ flush).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; unknown `λ`/`x` outputs become
    /// [`SimError::UnknownOutput`].
    pub fn step(
        &mut self,
        lambda: bool,
        x: bool,
        d: bool,
        r: bool,
    ) -> Result<(bool, bool, Option<bool>), SimError> {
        let h = self.horiz_inverted;
        self.sim
            .set(self.lambda_in, if h { !lambda } else { lambda });
        self.sim.set(self.x_in, if h { !x } else { x });
        self.sim.set(self.r_in, if h { !r } else { r });
        self.sim
            .set(self.d_in, if self.d_inverted { !d } else { d });
        // The cell's own phase latches inputs and stages t/r updates…
        self.sim.set(self.clk, true);
        self.sim.settle()?;
        self.sim.set(self.clk, false);
        self.sim.settle()?;
        self.sim.end_beat();
        // …and the opposite phase commits the staged t.
        self.sim.set(self.clk_b, true);
        self.sim.settle()?;
        self.sim.set(self.clk_b, false);
        self.sim.settle()?;
        self.sim.end_beat();
        // Outputs flip polarity relative to inputs.
        let lam_out = self.sim.get_bool(self.out.lambda_out)? == h;
        let x_out = self.sim.get_bool(self.out.x_out)? == h;
        let r_out = self
            .sim
            .get(self.out.r_out)
            .to_bool()
            .map(|raw| if h { raw } else { !raw });
        Ok((lam_out, x_out, r_out))
    }

    /// The current internal `t` (true polarity), if known.
    pub fn t_state(&self) -> Option<bool> {
        self.sim.get(self.out.t_state).to_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_truth_table_both_twins() {
        for twin in [false, true] {
            let mut cell = ComparatorCell::new(twin);
            for p in [false, true] {
                for s in [false, true] {
                    for d in [false, true] {
                        let (p_out, s_out, d_out) = cell.step(p, s, d).unwrap();
                        assert_eq!(p_out, p, "p passes through");
                        assert_eq!(s_out, s, "s passes through");
                        assert_eq!(d_out, d && (p == s), "twin={twin} p={p} s={s} d={d}");
                    }
                }
            }
        }
    }

    #[test]
    fn comparator_is_four_gates() {
        // Plate 1: two inverters, an XNOR, a NAND, three pass
        // transistors. 3 pass + 2×2 inverter + 5 XNOR + 3 NAND = 15.
        let cell = ComparatorCell::new(false);
        assert_eq!(cell.device_count(), 15);
    }

    /// Behavioural reference for the accumulator twins.
    fn acc_reference(seq: &[(bool, bool, bool, bool)]) -> Vec<(bool, bool, Option<bool>)> {
        let mut t = true;
        seq.iter()
            .map(|&(lambda, x, d, r)| {
                let m = t && (x || d);
                let r_out = if lambda { m } else { r };
                t = if lambda { true } else { m };
                (lambda, x, Some(r_out))
            })
            .collect()
    }

    #[test]
    fn accumulator_matches_reference_all_twins() {
        // A sequence exercising every input combination, with λ beats
        // interleaved so t resets mid-stream. The first beat carries λ
        // so the X initial charge on t flushes deterministically.
        let seq: Vec<(bool, bool, bool, bool)> = vec![
            (true, false, true, false),
            (false, false, true, false),
            (false, true, false, true),
            (true, false, true, true),
            (false, false, false, false),
            (true, true, false, false),
            (false, true, true, true),
            (false, false, true, true),
            (true, false, false, true),
            (true, true, true, false),
        ];
        let expected = acc_reference(&seq);
        for horiz in [false, true] {
            for dinv in [false, true] {
                let mut cell = AccumulatorCell::new(horiz, dinv);
                // Flush the unknown initial t with one λ beat.
                cell.step(true, true, true, false).unwrap();
                assert_eq!(cell.t_state(), Some(true));
                for (i, (&inp, &exp)) in seq.iter().zip(&expected).enumerate() {
                    let got = cell.step(inp.0, inp.1, inp.2, inp.3).unwrap();
                    assert_eq!(got, exp, "horiz={horiz} dinv={dinv} beat {i}");
                }
            }
        }
    }

    #[test]
    fn accumulator_t_survives_between_beats() {
        let mut cell = AccumulatorCell::new(false, false);
        cell.step(true, false, true, false).unwrap(); // reset: t ← TRUE
        cell.step(false, false, true, false).unwrap(); // match: t stays
        assert_eq!(cell.t_state(), Some(true));
        cell.step(false, false, false, false).unwrap(); // mismatch
        assert_eq!(cell.t_state(), Some(false));
        cell.step(false, true, false, false).unwrap(); // wild card: ignore d
        assert_eq!(cell.t_state(), Some(false), "once false, stays false");
        cell.step(true, false, true, false).unwrap(); // λ: emit and reset
        assert_eq!(cell.t_state(), Some(true));
    }
}
