//! Static timing analysis over the netlist.
//!
//! The clock budget in `pm-chip` lists the comparator and accumulator
//! critical paths by hand; this module derives them from the actual
//! transistor netlist, so the 250 ns story is anchored to the same
//! structure the switch-level simulator executes.
//!
//! The model is logic-level: every ratioed gate (a pulled-up node)
//! is one stage; its inputs are the gate terminals of its pulldown
//! network and of any pass transistors feeding it. Storage nodes, pads
//! and rails have depth zero — they are stable when the phase begins.
//! Feedback loops are cut exactly where the hardware cuts them: at
//! pass-transistor storage nodes, which only change while their clock
//! phase conducts.

use crate::netlist::Netlist;

/// Per-stage delay assumptions, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageDelays {
    /// Propagation of one ratioed gate stage (pullup fighting its
    /// pulldown network).
    pub gate_ns: f64,
    /// Extra charge time when a stage drives through a pass transistor.
    pub pass_ns: f64,
    /// Clock margin (skew, non-overlap dead time).
    pub margin_ns: f64,
}

impl Default for StageDelays {
    /// Calibrated so the accumulator's derived depth lands on the
    /// paper's 125 ns phase (see `phase_estimate_matches_the_paper`).
    fn default() -> Self {
        StageDelays {
            gate_ns: 20.0,
            pass_ns: 10.0,
            margin_ns: 15.0,
        }
    }
}

/// The result of a depth analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Logic depth (gate stages) of the deepest combinational path.
    pub depth: usize,
    /// Number of ratioed gates analysed.
    pub gates: usize,
    /// Estimated minimum phase length under the given delays.
    pub phase_ns: f64,
}

/// Computes gate depths for every pulled-up node: `depth(out) = 1 +
/// max(depth of driving gate outputs)`, storage/pads/rails = 0.
pub fn gate_depths(nl: &Netlist) -> Vec<usize> {
    let n = nl.node_count();
    let mut pulled = vec![false; n];
    for p in nl.pullups() {
        pulled[p.index()] = true;
    }

    // Channel adjacency, used to find each gate's pulldown/pass region.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (gate, other)
    for fet in nl.fets() {
        adj[fet.a.index()].push((fet.gate.index(), fet.b.index()));
        adj[fet.b.index()].push((fet.gate.index(), fet.a.index()));
    }

    // Inputs of each pulled-up node: gates of every transistor in the
    // channel-connected region around it (stopping at other pulled-up
    // nodes and rails).
    let rails = [nl.vdd().index(), nl.gnd().index()];
    let inputs_of = |out: usize| -> Vec<usize> {
        let mut seen = vec![out];
        let mut stack = vec![out];
        let mut gates = Vec::new();
        while let Some(u) = stack.pop() {
            for &(gate, other) in &adj[u] {
                gates.push(gate);
                if !seen.contains(&other) && !pulled[other] && !rails.contains(&other) {
                    seen.push(other);
                    stack.push(other);
                }
            }
        }
        gates.sort_unstable();
        gates.dedup();
        gates
    };

    // Memoised depth with cycle guard (cycles can only arise through
    // analysis artifacts; real loops pass through storage = depth 0).
    let mut depth = vec![usize::MAX; n];
    fn solve(
        node: usize,
        pulled: &[bool],
        inputs_of: &dyn Fn(usize) -> Vec<usize>,
        depth: &mut Vec<usize>,
        visiting: &mut Vec<bool>,
    ) -> usize {
        if !pulled[node] {
            return 0;
        }
        if depth[node] != usize::MAX {
            return depth[node];
        }
        if visiting[node] {
            return 0; // cut unexpected cycles conservatively
        }
        visiting[node] = true;
        let mut best = 0;
        for input in inputs_of(node) {
            best = best.max(solve(input, pulled, inputs_of, depth, visiting));
        }
        visiting[node] = false;
        depth[node] = best + 1;
        depth[node]
    }

    let mut visiting = vec![false; n];
    for i in 0..n {
        if pulled[i] {
            solve(i, &pulled, &inputs_of, &mut depth, &mut visiting);
        }
    }
    depth
        .iter()
        .map(|&d| if d == usize::MAX { 0 } else { d })
        .collect()
}

/// Analyses the whole netlist: deepest path and phase estimate.
pub fn analyse(nl: &Netlist, delays: &StageDelays) -> TimingReport {
    let depths = gate_depths(nl);
    let depth = depths.iter().copied().max().unwrap_or(0);
    let gates = nl.pullup_count();
    // One pass-transistor charge at the latch plus the gate chain.
    let phase_ns = delays.pass_ns + depth as f64 * delays.gate_ns + delays.margin_ns;
    TimingReport {
        depth,
        gates,
        phase_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{build_accumulator, build_comparator};
    use crate::netlist::Netlist;

    fn comparator_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let clk = nl.node("clk");
        let p = nl.node("p");
        let s = nl.node("s");
        let d = nl.node("d");
        for x in [clk, p, s, d] {
            nl.input(x);
        }
        build_comparator(&mut nl, "cmp", clk, p, s, d, false);
        nl
    }

    fn accumulator_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let clk = nl.node("clk");
        let clk_b = nl.node("clk_b");
        let l = nl.node("l");
        let x = nl.node("x");
        let d = nl.node("d");
        let r = nl.node("r");
        for n in [clk, clk_b, l, x, d, r] {
            nl.input(n);
        }
        build_accumulator(&mut nl, "acc", clk, clk_b, l, x, d, r, false, false);
        nl
    }

    #[test]
    fn inverter_chain_depth() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.input(a);
        let n1 = nl.inverter("n1", a);
        let n2 = nl.inverter("n2", n1);
        let n3 = nl.inverter("n3", n2);
        let depths = gate_depths(&nl);
        assert_eq!(depths[n1.index()], 1);
        assert_eq!(depths[n2.index()], 2);
        assert_eq!(depths[n3.index()], 3);
    }

    #[test]
    fn comparator_depth_is_three() {
        // pass→(inverter)→XNOR→NAND: the d output sits three gate
        // stages deep, exactly the path ClockModel lists by hand.
        let report = analyse(&comparator_netlist(), &StageDelays::default());
        assert_eq!(report.depth, 3, "{report:?}");
    }

    #[test]
    fn accumulator_is_the_critical_cell() {
        let cmp = analyse(&comparator_netlist(), &StageDelays::default());
        let acc = analyse(&accumulator_netlist(), &StageDelays::default());
        assert!(
            acc.depth > cmp.depth,
            "accumulator ({}) must out-depth comparator ({})",
            acc.depth,
            cmp.depth
        );
    }

    #[test]
    fn phase_estimate_matches_the_paper() {
        // The netlist-derived accumulator path under the default stage
        // delays lands on the prototype's 125 ns phase.
        let acc = analyse(&accumulator_netlist(), &StageDelays::default());
        assert!(
            (acc.phase_ns - 125.0).abs() < 20.0,
            "derived phase {} ns vs paper 125 ns",
            acc.phase_ns
        );
    }

    #[test]
    fn whole_chip_depth_equals_worst_cell() {
        // Assembling many cells must not deepen the combinational logic:
        // every inter-cell signal crosses a clocked latch.
        let chip = crate::chip::PatternChip::new(4, 2);
        let chip_report = analyse(chip.netlist(), &StageDelays::default());
        let acc = analyse(&accumulator_netlist(), &StageDelays::default());
        assert_eq!(
            chip_report.depth, acc.depth,
            "chip depth must equal the deepest single cell"
        );
    }
}
