//! # pm-nmos — switch-level NMOS simulation of the pattern-matching chip
//!
//! Foster & Kung fabricated their matcher in silicon-gate NMOS (§3.2.2,
//! Plates 1–2). We obviously cannot re-fabricate it, so this crate
//! substitutes the next best thing: a switch-level simulator faithful to
//! the circuit techniques the paper describes, plus the actual cell
//! circuits and full-chip netlist, co-simulated against the behavioural
//! model of `pm-systolic`.
//!
//! The simulator captures exactly the phenomena §3.2.2/§3.3.3 discuss:
//!
//! * **Ratioed logic** — depletion-mode pullups fight enhancement-mode
//!   pulldown paths; a conducting path to ground always wins.
//! * **Pass transistors** — a gate at `Vdd` connects source and drain;
//!   at ground it isolates them.
//! * **Dynamic charge storage** — an isolated node holds its last driven
//!   value, but only for a limited number of beats; stop the clock and
//!   the data rots (the ~1 ms limit of §3.3.3, failure-injected in the
//!   tests).
//! * **Two-phase non-overlapping clocking** — adjacent shift-register
//!   stages are gated by opposite phases, so "there is never a closed
//!   path between inverters that are separated by two transistors".
//!
//! Modules:
//!
//! * [`level`] — ternary signal levels (`Low`, `High`, unknown `X`).
//! * [`netlist`] — nodes, transistors, pullups and a gate-level builder
//!   (inverter, NAND, NOR, and series/parallel *complex gates*).
//! * [`sim`] — the relaxation solver with charge storage and decay.
//! * [`shiftreg`] — the dynamic shift register of Figure 3-5.
//! * [`cells`] — the one-bit comparator of Figure 3-6/Plate 1 (both
//!   polarity twins) and the accumulator cell (both twins).
//! * [`chip`] — the full prototype chip (Plate 2): a bit-serial
//!   comparator grid over an accumulator row, with a host driver that
//!   matches text exactly like the behavioural array.
//! * [`charchip`] — the undivided character-level organisation of
//!   Figure 3-3, for comparing the two comparator structures.
//! * [`faults`] — single-stuck-at fault simulation and test-vector
//!   coverage (§4's "how the chip will be tested after fabrication").
//! * [`clockgen`] — an on-chip two-phase non-overlapping clock
//!   generator, with the non-overlap property proven by simulation.
//! * [`countchip`] — the §3.4 counting extension in silicon: the same
//!   comparator grid over W-bit counting cells.
//! * [`timing`] — static timing analysis deriving the clock-phase
//!   budget (and hence the 250 ns/char rate) from the netlist itself.

//! ```
//! use pm_nmos::prelude::*;
//!
//! // A NAND gate at switch level: ratioed pullup vs a 2-chain pulldown.
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! let b = nl.node("b");
//! let out = nl.nand2("nab", a, b);
//! let mut sim = Sim::new(nl);
//! sim.set(a, true);
//! sim.set(b, true);
//! sim.settle().unwrap();
//! assert_eq!(sim.get(out).to_bool(), Some(false));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod cells;
pub mod charchip;
pub mod chip;
pub mod clockgen;
pub mod corrchip;
pub mod countchip;
pub mod error;
pub mod faults;
pub mod level;
pub mod netlist;
pub mod shiftreg;
pub mod sim;
pub mod timing;

pub use error::SimError;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::cells::{AccumulatorCell, ComparatorCell};
    pub use crate::chip::PatternChip;
    pub use crate::error::SimError;
    pub use crate::level::Level;
    pub use crate::netlist::{Netlist, NodeId};
    pub use crate::shiftreg::DynamicShiftRegister;
    pub use crate::sim::Sim;
}
