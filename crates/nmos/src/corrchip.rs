//! The correlation chip at transistor level (paper §3.4).
//!
//! "Correlations can be computed by a machine with identical data flow
//! to the string matching chip, except that all streams contain
//! numbers. The comparator is replaced by a difference cell … An adder
//! cell replaces the accumulator." This module performs that
//! replacement in silicon, using the arithmetic library of
//! [`crate::arith`]:
//!
//! * the **difference-square cell** latches `W`-bit two's-complement
//!   `p` and `s` buses and computes `(s−p)²` combinationally (ripple
//!   subtractor → conditional negate → array multiplier);
//! * the **adder cell** below accumulates into an `R`-bit register
//!   under the same two-phase master/slave discipline as the boolean
//!   accumulator, with `λ` emitting the finished sum-of-squared-
//!   differences onto the `R`-bit result bus.
//!
//! The difference path is sign-extended internally, so any pair of
//! `W`-bit samples subtracts exactly; the host's only contract is that
//! each window's `Σ d²` fits the `R`-bit accumulator.

use crate::arith::{adder, mux2, square, subtractor};
use crate::error::SimError;
use crate::netlist::{Netlist, NodeId};
use crate::sim::Sim;

/// A transistor-level sum-of-squared-differences correlator.
#[derive(Debug, Clone)]
pub struct CorrChip {
    netlist: Netlist,
    columns: usize,
    width: usize,
    phi: [NodeId; 2],
    p_pads: Vec<NodeId>,
    s_pads: Vec<NodeId>,
    lam_pad: NodeId,
    r_pads: Vec<NodeId>,
    r_out: Vec<NodeId>,
}

/// A latched bus: stored nodes and their regenerating (inverted)
/// outputs.
struct LatchedBus {
    stored: Vec<NodeId>,
    inverted_out: Vec<NodeId>,
}

/// Latches `inputs` through pass transistors on `clk`; returns storage
/// nodes and per-bit output inverters.
fn latch_bus(nl: &mut Netlist, name: &str, clk: NodeId, inputs: &[NodeId]) -> LatchedBus {
    let mut stored = Vec::with_capacity(inputs.len());
    let mut inverted_out = Vec::with_capacity(inputs.len());
    for (w, &i) in inputs.iter().enumerate() {
        let s = nl.node(format!("{name}.s{w}"));
        nl.pass(clk, i, s);
        stored.push(s);
        inverted_out.push(nl.inverter(&format!("{name}.q{w}"), s));
    }
    LatchedBus {
        stored,
        inverted_out,
    }
}

impl LatchedBus {
    /// The true-polarity view of the stored bus.
    fn true_view(&self, arrived_inverted: bool) -> Vec<NodeId> {
        if arrived_inverted {
            self.inverted_out.clone()
        } else {
            self.stored.clone()
        }
    }
}

impl CorrChip {
    /// Builds a correlator: `columns` cells, `width`-bit samples,
    /// `acc_width`-bit accumulators/results.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `acc_width < 2·(width+1)`.
    pub fn new(columns: usize, width: usize, acc_width: usize) -> Self {
        assert!(columns > 0 && width > 0, "chip needs cells and sample bits");
        assert!(
            acc_width >= 2 * (width + 1),
            "accumulator must hold one square"
        );
        let mut nl = Netlist::new();
        let phi0 = nl.node("phi0");
        let phi1 = nl.node("phi1");
        nl.input(phi0);
        nl.input(phi1);
        let phi = [phi0, phi1];
        let vdd = nl.vdd();
        let gnd = nl.gnd();

        let make_pads = |nl: &mut Netlist, tag: &str, n: usize| -> Vec<NodeId> {
            (0..n)
                .map(|w| {
                    let p = nl.node(format!("pad.{tag}{w}"));
                    nl.input(p);
                    p
                })
                .collect()
        };
        let p_pads = make_pads(&mut nl, "p", width);
        let s_pads = make_pads(&mut nl, "s", width);
        let r_pads = make_pads(&mut nl, "r", acc_width);
        let lam_pad = nl.node("pad.lam");
        nl.input(lam_pad);

        // Difference-square row.
        let mut p_prev = p_pads.clone();
        let mut diff_cells: Vec<(Vec<NodeId>, Vec<NodeId>, Vec<NodeId>)> = Vec::new();
        for c in 0..columns {
            let clk = phi[c % 2];
            let inverted = c % 2 == 1;
            let s_in: Vec<NodeId> = (0..width).map(|w| nl.node(format!("w.s{w}.{c}"))).collect();
            let p_bus = latch_bus(&mut nl, &format!("dc{c}.p"), clk, &p_prev);
            let s_bus = latch_bus(&mut nl, &format!("dc{c}.s"), clk, &s_in);
            // Sign-extend by one bit so the difference of any two W-bit
            // two's-complement samples is exact.
            let mut p_true = p_bus.true_view(inverted);
            let mut s_true = s_bus.true_view(inverted);
            p_true.push(*p_true.last().expect("non-empty"));
            s_true.push(*s_true.last().expect("non-empty"));
            let d = subtractor(&mut nl, &format!("dc{c}.sub"), &s_true, &p_true);
            let sq = square(&mut nl, &format!("dc{c}.sq"), &d);
            p_prev = p_bus.inverted_out.clone();
            diff_cells.push((s_in, s_bus.inverted_out.clone(), sq));
        }
        // Strap s chains right-to-left.
        #[allow(clippy::needless_range_loop)]
        for c in 0..columns {
            for w in 0..width {
                let src = if c + 1 < columns {
                    diff_cells[c + 1].1[w]
                } else {
                    s_pads[w]
                };
                nl.pass(vdd, src, diff_cells[c].0[w]);
            }
        }

        // Adder row (phase +1 per column).
        let mut lam_prev = lam_pad;
        let mut acc_cells: Vec<(Vec<NodeId>, Vec<NodeId>, NodeId)> = Vec::new();
        for c in 0..columns {
            let clk = phi[(1 + c) % 2];
            let clk_b = phi[c % 2];
            let inverted = c % 2 == 1;
            let name = format!("ac{c}");

            // λ and r/sq latches.
            let sl = nl.node(format!("{name}.sl"));
            nl.pass(clk, lam_prev, sl);
            let lambda_out = nl.inverter(&format!("{name}.lq"), sl);
            let lam_t = if inverted { lambda_out } else { sl };
            let lam_f = if inverted { sl } else { lambda_out };

            // sq arrives true-polarity (combinational within the column),
            // zero-extended to the accumulator width.
            let mut sq_in = diff_cells[c].2.clone();
            sq_in.resize(acc_width, gnd);
            let sq_bus = latch_bus(&mut nl, &format!("{name}.sq"), clk, &sq_in);
            let sq_true = sq_bus.true_view(false);

            let r_in: Vec<NodeId> = (0..acc_width)
                .map(|w| nl.node(format!("w.r{w}.{c}")))
                .collect();
            let r_bus = latch_bus(&mut nl, &format!("{name}.r"), clk, &r_in);
            let r_true = r_bus.true_view(inverted);

            // t register (slave holds t̄) and incsum = t + sq.
            let slaves: Vec<NodeId> = (0..acc_width)
                .map(|w| nl.node(format!("{name}.ts{w}")))
                .collect();
            let t_true: Vec<NodeId> = slaves
                .iter()
                .enumerate()
                .map(|(w, &s)| nl.inverter(&format!("{name}.tq{w}"), s))
                .collect();
            let (incsum, _) = adder(&mut nl, &format!("{name}.add"), &t_true, &sq_true, gnd);

            let mut r_out = Vec::with_capacity(acc_width);
            for w in 0..acc_width {
                // t_next = λ̄ AND incsum.
                let inc_bar = nl.inverter(&format!("{name}.ib{w}"), incsum[w]);
                let t_next = nl.nor2(&format!("{name}.tn{w}"), lam_t, inc_bar);
                let master = nl.node(format!("{name}.tm{w}"));
                nl.pass(clk, t_next, master);
                let master_bar = nl.inverter(&format!("{name}.tmb{w}"), master);
                nl.pass(clk_b, master_bar, slaves[w]);

                // r_sel = λ ? incsum : r, into an output register.
                let sel = mux2(
                    &mut nl,
                    &format!("{name}.mx{w}"),
                    lam_t,
                    incsum[w],
                    r_true[w],
                );
                let _ = lam_f; // polarity handled by true views
                let r_store = nl.node(format!("{name}.rst{w}"));
                nl.pass(clk, sel, r_store);
                let out_bar = nl.inverter(&format!("{name}.rq{w}"), r_store);
                r_out.push(if inverted {
                    nl.inverter(&format!("{name}.rqq{w}"), out_bar)
                } else {
                    out_bar
                });
            }
            lam_prev = lambda_out;
            acc_cells.push((r_in, r_out, sl));
        }
        #[allow(clippy::needless_range_loop)]
        for c in 0..columns {
            for w in 0..acc_width {
                let src = if c + 1 < columns {
                    acc_cells[c + 1].1[w]
                } else {
                    r_pads[w]
                };
                nl.pass(vdd, src, acc_cells[c].0[w]);
            }
        }
        let r_out = acc_cells[0].1.clone();

        CorrChip {
            netlist: nl,
            columns,
            width,
            phi,
            p_pads,
            s_pads,
            lam_pad,
            r_pads,
            r_out,
        }
    }

    /// Sample width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total device count.
    pub fn device_count(&self) -> usize {
        self.netlist.device_count()
    }

    /// Correlates `signal` against `reference` (the paper's `r_i =
    /// Σ (s−p)²`), at transistor level.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] or [`SimError::UnknownOutput`] on
    /// netlist misbehaviour.
    ///
    /// # Panics
    ///
    /// Panics if the reference exceeds the array, or any value breaks
    /// the range contract.
    pub fn correlate(&self, reference: &[i64], signal: &[i64]) -> Result<Vec<i64>, SimError> {
        assert!(
            !reference.is_empty() && reference.len() <= self.columns,
            "reference must fit the array"
        );
        let half = 1i64 << (self.width - 1);
        for &v in reference.iter().chain(signal) {
            assert!((-half..half).contains(&v), "sample {v} outside W-bit range");
        }
        let n = self.columns;
        let plen = reference.len();
        let k = plen - 1;
        let phi_off = ((n - 1) % 2) as u64;
        let warmup = 2 * (plen as u64);
        let right_flip = (n - 1) % 2 == 1;

        let mut sim = Sim::new(self.netlist.clone());
        sim.set(self.phi[0], false);
        sim.set(self.phi[1], false);
        for &pad in &self.r_pads {
            sim.set(pad, right_flip);
        }

        let set_bus = |sim: &mut Sim, pads: &[NodeId], value: i64, flip: bool| {
            for (w, &pad) in pads.iter().enumerate() {
                let bit = (value >> w) & 1 == 1;
                sim.set(pad, bit ^ flip);
            }
        };

        let mut out = vec![0i64; signal.len()];
        let total = (n as u64) + phi_off + warmup + 2 * (signal.len() as u64) + 6;

        for t in 0..total {
            if t % 2 == 0 {
                let j = (t / 2) as usize % plen;
                set_bus(&mut sim, &self.p_pads, reference[j], false);
            }
            if let Some(i) = t
                .checked_sub(phi_off + warmup)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
            {
                let v = signal.get(i as usize).copied().unwrap_or(0);
                set_bus(&mut sim, &self.s_pads, v, right_flip);
            }
            if let Some(j) = t.checked_sub(1).filter(|d| d % 2 == 0).map(|d| d / 2) {
                sim.set(self.lam_pad, (j as usize) % plen == k);
            }

            let phase = self.phi[(t % 2) as usize];
            sim.set(phase, true);
            sim.settle()?;
            sim.set(phase, false);
            sim.settle()?;
            sim.end_beat();

            if let Some(i) = t
                .checked_sub((n as u64) - 1 + phi_off + warmup + 1)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
            {
                let i = i as usize;
                if i < signal.len() && i >= k {
                    let mut value = 0i64;
                    for (w, &node) in self.r_out.iter().enumerate() {
                        let raw =
                            sim.get(node)
                                .to_bool()
                                .ok_or_else(|| SimError::UnknownOutput {
                                    node: format!("r_out[{w}] (result {i})"),
                                })?;
                        if !raw {
                            value |= 1 << w; // column-0 output is inverted
                        }
                    }
                    out[i] = value;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::correlation_spec;

    #[test]
    fn two_cell_correlator_matches_spec() {
        let chip = CorrChip::new(2, 3, 8);
        let reference = vec![1, -2];
        let signal = vec![1, -2, 3, 0, -4];
        let got = chip.correlate(&reference, &signal).unwrap();
        assert_eq!(got, correlation_spec(&signal, &reference));
    }

    #[test]
    fn perfect_match_scores_zero() {
        let chip = CorrChip::new(3, 3, 9);
        let reference = vec![3, -1, 2];
        let mut signal = vec![0, 0];
        signal.extend(&reference);
        signal.push(1);
        let got = chip.correlate(&reference, &signal).unwrap();
        assert_eq!(got, correlation_spec(&signal, &reference));
        assert_eq!(got[4], 0, "planted copy must score zero");
    }

    #[test]
    fn single_cell_is_a_squarer() {
        let chip = CorrChip::new(1, 3, 8);
        let got = chip.correlate(&[2], &[-3, 2, 0]).unwrap();
        assert_eq!(got, vec![25, 0, 4]);
    }

    #[test]
    #[should_panic(expected = "outside W-bit range")]
    fn range_contract_enforced() {
        let chip = CorrChip::new(1, 3, 8);
        let _ = chip.correlate(&[1], &[9]);
    }

    #[test]
    fn device_count_reflects_the_arithmetic() {
        // The difference-square cell is an order of magnitude bigger
        // than a boolean comparator — the price of §3.4's "streams of
        // numbers".
        let boolean = crate::chip::PatternChip::new(2, 2).device_count();
        let corr = CorrChip::new(2, 3, 8).device_count();
        assert!(corr > 5 * boolean, "corr {corr} vs boolean {boolean}");
    }
}
