//! Stuck-at fault simulation and test-vector coverage.
//!
//! §4, on the cell-logic task: "In designing the circuits,
//! consideration must be given to how the chip will be tested after
//! fabrication." This module does that consideration's arithmetic:
//! enumerate single stuck-at faults over the netlist, run a candidate
//! test (a pattern and a text) against each faulty chip, and report
//! which faults the test detects — the classic single-stuck-at
//! coverage metric.
//!
//! The regularity argument of §2 shows up concretely: because every
//! cell is a copy, one test sequence that exercises a cell's full
//! behaviour tends to cover the corresponding faults in *all* cells as
//! the data streams through.

use crate::chip::PatternChip;
use crate::level::Level;
use crate::netlist::NodeId;
use pm_systolic::symbol::{Pattern, Symbol};
use std::collections::HashSet;
use std::fmt;

/// One single-stuck-at fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The shorted net.
    pub node: NodeId,
    /// The level it is stuck at.
    pub level: Level,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node #{} stuck-at-{}", self.node.index(), self.level)
    }
}

/// Enumerates both stuck-at faults for every internal net of the chip
/// (rails and pads excluded — shorting an input is a different failure
/// class). `sample_every` thins the list for tractable simulation:
/// 1 = exhaustive.
///
/// ```
/// use pm_nmos::chip::PatternChip;
/// use pm_nmos::faults::enumerate_faults;
///
/// let chip = PatternChip::new(2, 1);
/// let all = enumerate_faults(&chip, 1); // exhaustive
/// assert!(all.len() % 2 == 0); // stuck-at-0 and stuck-at-1 per net
/// let sampled = enumerate_faults(&chip, 10); // every tenth, for speed
/// assert!(sampled.len() <= all.len() / 10 + 1);
/// ```
///
/// # Panics
///
/// Panics if `sample_every` is zero.
pub fn enumerate_faults(chip: &PatternChip, sample_every: usize) -> Vec<Fault> {
    assert!(sample_every > 0, "sampling step must be positive");
    let nl = chip.netlist();
    // HashSet rather than a Vec skip-list: the pad count grows with the
    // chip's pin-out, and the membership probe runs once per net.
    let skip: HashSet<usize> = nl
        .inputs()
        .iter()
        .map(|n| n.index())
        .chain([nl.vdd().index(), nl.gnd().index()])
        .collect();
    let mut faults = Vec::new();
    for i in 0..nl.node_count() {
        if skip.contains(&i) {
            continue;
        }
        faults.push(Fault {
            node: NodeId(i as u32),
            level: Level::Low,
        });
        faults.push(Fault {
            node: NodeId(i as u32),
            level: Level::High,
        });
    }
    faults.into_iter().step_by(sample_every).collect()
}

/// The outcome of running one test against a fault list.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Faults simulated.
    pub total: usize,
    /// Faults whose output differed from the fault-free chip (or that
    /// drove a result slot to `X`, equally observable on a tester).
    pub detected: usize,
    /// The faults the test missed.
    pub escapes: Vec<Fault>,
}

impl CoverageReport {
    /// Detected / total, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} single-stuck-at faults detected ({:.0}%)",
            self.detected,
            self.total,
            100.0 * self.coverage()
        )
    }
}

/// Runs `(pattern, text)` as a production test: simulates the fault-free
/// chip, then every chip in `faults`, and compares outputs.
///
/// # Panics
///
/// Panics if the fault-free simulation itself fails (a harness bug, not
/// a detected fault).
pub fn coverage(
    chip: &PatternChip,
    pattern: &Pattern,
    text: &[Symbol],
    faults: &[Fault],
) -> CoverageReport {
    coverage_multi(chip, &[(pattern.clone(), text.to_vec())], faults)
}

/// Runs a whole test *program* — several (pattern, text) vectors — and
/// credits a fault as detected if any vector catches it, the way a
/// production tester applies its full sequence.
///
/// # Panics
///
/// Panics if a fault-free simulation fails (a harness bug, not a
/// detected fault).
pub fn coverage_multi(
    chip: &PatternChip,
    tests: &[(Pattern, Vec<Symbol>)],
    faults: &[Fault],
) -> CoverageReport {
    let goldens: Vec<Vec<bool>> = tests
        .iter()
        .map(|(p, t)| {
            chip.match_pattern(p, t)
                .expect("fault-free chip must simulate cleanly")
        })
        .collect();

    // Fault campaigns are embarrassingly parallel: each faulty chip is
    // an independent simulation.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let chunk = faults.len().div_ceil(workers.max(1)).max(1);
    let verdicts: Vec<(Fault, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = faults
            .chunks(chunk)
            .map(|batch| {
                let goldens = &goldens;
                scope.spawn(move || {
                    batch
                        .iter()
                        .map(|&fault| {
                            let caught = tests.iter().zip(goldens).any(|((p, t), golden)| {
                                match chip.match_pattern_with_faults(
                                    p,
                                    t,
                                    &[(fault.node, fault.level)],
                                ) {
                                    Ok(bits) => &bits != golden,
                                    // An X reaching a result slot or an
                                    // oscillating (shorted-loop) netlist:
                                    // equally observable.
                                    Err(_) => true,
                                }
                            });
                            (fault, caught)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let detected = verdicts.iter().filter(|(_, caught)| *caught).count();
    let escapes = verdicts
        .iter()
        .filter(|(_, c)| !c)
        .map(|&(f, _)| f)
        .collect();
    CoverageReport {
        total: faults.len(),
        detected,
        escapes,
    }
}

/// A compact production test for an `n`-cell, `b`-bit chip: a pattern
/// with a wild card and a text that exercises match, mismatch and the
/// wild card in every cell as the streams slide past each other.
pub fn standard_test(columns: usize, bits: u32) -> (Pattern, Vec<Symbol>) {
    use pm_systolic::symbol::{Alphabet, PatSym};
    let alphabet = Alphabet::new(bits).expect("valid width");
    let m = alphabet.size() as u8;
    // Pattern: 0, 1, …, wild, …, cycling through the alphabet.
    let symbols: Vec<PatSym> = (0..columns)
        .map(|j| {
            if j == columns / 2 {
                PatSym::Wild
            } else {
                PatSym::Lit(Symbol::new((j as u8) % m))
            }
        })
        .collect();
    let pattern = Pattern::new(symbols, alphabet).expect("non-empty");
    // Text: two pattern images separated by deliberate mismatches.
    let mut text = Vec::new();
    for rep in 0..3 {
        for j in 0..columns {
            let v = if rep == 1 {
                (j as u8 + 1) % m
            } else {
                (j as u8) % m
            };
            text.push(Symbol::new(v));
        }
    }
    (pattern, text)
}

/// A fuller test program: the [`standard_test`] plus a literal-only
/// vector (no wild card: exercises the x=0 accumulator path), an
/// all-match vector and an all-mismatch vector, together toggling every
/// data path both ways.
pub fn standard_test_program(columns: usize, bits: u32) -> Vec<(Pattern, Vec<Symbol>)> {
    use pm_systolic::symbol::{Alphabet, PatSym};
    let alphabet = Alphabet::new(bits).expect("valid width");
    let m = alphabet.size() as u8;
    let mut program = vec![standard_test(columns, bits)];

    // Literal alternating pattern over text that matches everywhere,
    // then nowhere.
    let lit: Vec<PatSym> = (0..columns)
        .map(|j| PatSym::Lit(Symbol::new((j as u8) % 2 % m)))
        .collect();
    let pattern = Pattern::new(lit, alphabet).expect("non-empty");
    let all_match: Vec<Symbol> = (0..3 * columns)
        .map(|j| Symbol::new((j as u8) % 2 % m))
        .collect();
    let inverted: Vec<Symbol> = all_match
        .iter()
        .map(|s| Symbol::new((s.value() + 1) % m.max(2) % m.max(1)))
        .collect();
    program.push((pattern.clone(), all_match));
    program.push((pattern, inverted));
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_skips_rails_and_pads() {
        let chip = PatternChip::new(2, 1);
        let faults = enumerate_faults(&chip, 1);
        let nl = chip.netlist();
        for f in &faults {
            assert_ne!(f.node, nl.vdd());
            assert_ne!(f.node, nl.gnd());
            assert!(!nl.inputs().contains(&f.node));
        }
        // Two faults per eligible node.
        assert!(faults.len() > 2 * 10);
    }

    #[test]
    fn enumeration_never_touches_rails_or_pads_at_any_size_or_stride() {
        for (columns, bits) in [(1, 1), (2, 1), (2, 2), (3, 2)] {
            let chip = PatternChip::new(columns, bits);
            let nl = chip.netlist();
            let pads: Vec<_> = nl.inputs().to_vec();
            for stride in [1usize, 2, 3, 7] {
                for f in enumerate_faults(&chip, stride) {
                    assert_ne!(f.node, nl.vdd(), "{columns}x{bits}b stride {stride}");
                    assert_ne!(f.node, nl.gnd(), "{columns}x{bits}b stride {stride}");
                    assert!(
                        !pads.contains(&f.node),
                        "{columns}x{bits}b stride {stride}: pad {f}"
                    );
                }
            }
            // Exhaustive enumeration is exactly two faults per
            // non-rail, non-pad net — nothing dropped, nothing extra.
            let eligible = nl.node_count() - pads.len() - 2;
            assert_eq!(enumerate_faults(&chip, 1).len(), 2 * eligible);
        }
    }

    #[test]
    fn standard_test_detects_most_sampled_faults() {
        // A 2-cell, 1-bit chip, every 5th fault: the streaming test
        // should catch the clear majority of stuck-ats.
        let chip = PatternChip::new(2, 1);
        let (pattern, text) = standard_test(2, 1);
        let faults = enumerate_faults(&chip, 5);
        let report = coverage(&chip, &pattern, &text, &faults);
        assert!(
            report.total >= 10,
            "need a meaningful sample: {}",
            report.total
        );
        assert!(
            report.coverage() > 0.6,
            "coverage only {:.0}% — escapes: {:?}",
            100.0 * report.coverage(),
            report.escapes
        );
    }

    #[test]
    fn known_fault_is_detected() {
        // Stick the result output low: every match disappears.
        let chip = PatternChip::new(2, 1);
        let (pattern, text) = standard_test(2, 1);
        let golden = chip.match_pattern(&pattern, &text).unwrap();
        assert!(golden.iter().any(|&b| b), "test must produce matches");
        // Find a net whose forcing kills the output: force each result
        // wire until the output changes. (The r_out node is private, so
        // probe by effect.)
        let faults = enumerate_faults(&chip, 1);
        let detected_somewhere = faults.iter().any(|f| {
            chip.match_pattern_with_faults(&pattern, &text, &[(f.node, f.level)])
                .map(|bits| bits != golden)
                .unwrap_or(true)
        });
        assert!(detected_somewhere);
    }

    #[test]
    fn report_display() {
        let r = CoverageReport {
            total: 10,
            detected: 9,
            escapes: vec![],
        };
        assert!(r.to_string().contains("9/10"));
        assert!((r.coverage() - 0.9).abs() < 1e-12);
    }
}
