//! Netlist construction: nodes, transistors, pullups, and the small
//! gate library of §3.2.2.
//!
//! Silicon-gate NMOS offers exactly two active elements:
//!
//! * the **enhancement-mode transistor** ([`Netlist::nfet`]) — a switch
//!   whose channel conducts when its gate is high; used both as a logic
//!   pulldown and as a *pass transistor* isolating storage nodes;
//! * the **depletion-mode pullup** ([`Netlist::pullup`]) — a resistor to
//!   `Vdd` (the yellow ion-implant squares of Plate 1).
//!
//! Logic gates are ratioed: a pullup plus a pulldown network. The
//! general form is the *complex gate* ([`Netlist::complex_gate`]): the
//! output is low iff some series chain of the pulldown network conducts,
//! i.e. `out = NOT(OR over chains of AND over chain gates)`. Inverter,
//! NAND, NOR, XOR and XNOR are all instances.

/// Identifies a net (an electrical node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The index of this node in the netlist's tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An enhancement-mode NMOS transistor: `a` and `b` are connected while
/// `gate` is high.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nfet {
    /// Gate net.
    pub gate: NodeId,
    /// One channel terminal.
    pub a: NodeId,
    /// The other channel terminal.
    pub b: NodeId,
}

/// A complete circuit description.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    names: Vec<String>,
    fets: Vec<Nfet>,
    /// Nodes tied to Vdd through a depletion load.
    pullups: Vec<NodeId>,
    /// Nodes driven externally (pads and rails); the simulator treats
    /// their values as inputs rather than computing them.
    inputs: Vec<NodeId>,
    vdd: Option<NodeId>,
    gnd: Option<NodeId>,
}

impl Netlist {
    /// An empty netlist with `vdd` and `gnd` rails pre-created.
    pub fn new() -> Self {
        let mut nl = Netlist::default();
        let vdd = nl.node("vdd");
        let gnd = nl.node("gnd");
        nl.vdd = Some(vdd);
        nl.gnd = Some(gnd);
        nl
    }

    /// Creates a named node.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The positive supply rail.
    pub fn vdd(&self) -> NodeId {
        self.vdd.expect("netlists are created with rails")
    }

    /// The ground rail.
    pub fn gnd(&self) -> NodeId {
        self.gnd.expect("netlists are created with rails")
    }

    /// Number of nodes (including rails).
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of transistors (pass + pulldown), excluding pullups.
    pub fn fet_count(&self) -> usize {
        self.fets.len()
    }

    /// Number of depletion pullups.
    pub fn pullup_count(&self) -> usize {
        self.pullups.len()
    }

    /// Total device count (transistors + depletion loads), the number a
    /// 1979 designer would quote for die-size estimates.
    pub fn device_count(&self) -> usize {
        self.fets.len() + self.pullups.len()
    }

    /// The name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// The transistors.
    pub fn fets(&self) -> &[Nfet] {
        &self.fets
    }

    /// The pulled-up nodes.
    pub fn pullups(&self) -> &[NodeId] {
        &self.pullups
    }

    /// The externally driven nodes.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Adds an enhancement transistor.
    pub fn nfet(&mut self, gate: NodeId, a: NodeId, b: NodeId) {
        self.fets.push(Nfet { gate, a, b });
    }

    /// Adds a depletion pullup on `node`.
    pub fn pullup(&mut self, node: NodeId) {
        self.pullups.push(node);
    }

    /// Marks `node` as externally driven (an input pad or generated
    /// clock). Rails are implicit inputs and need not be marked.
    pub fn input(&mut self, node: NodeId) {
        self.inputs.push(node);
    }

    /// A pass transistor gating `from` onto `to` while `clk` is high —
    /// the storage element of every dynamic register (Figure 3-5).
    pub fn pass(&mut self, clk: NodeId, from: NodeId, to: NodeId) {
        self.nfet(clk, from, to);
    }

    /// A ratioed complex gate: `out = NOT(Σ chains Π gates)`. Each chain
    /// is a series pulldown path from `out` to ground; the chains are in
    /// parallel. Returns `out`.
    ///
    /// # Panics
    ///
    /// Panics if `chains` is empty or any chain is empty (that would be
    /// a bare pullup, which is a constant, not a gate).
    pub fn complex_gate(&mut self, name: &str, chains: &[&[NodeId]]) -> NodeId {
        assert!(
            !chains.is_empty() && chains.iter().all(|c| !c.is_empty()),
            "complex gate must have at least one non-empty pulldown chain"
        );
        let out = self.node(name);
        self.pullup(out);
        let gnd = self.gnd();
        for chain in chains {
            // Series path: out -- fet -- n1 -- fet -- … -- gnd.
            let mut from = out;
            for (i, &gate) in chain.iter().enumerate() {
                let to = if i == chain.len() - 1 {
                    gnd
                } else {
                    self.node(format!("{name}#ch{i}"))
                };
                self.nfet(gate, from, to);
                from = to;
            }
        }
        out
    }

    /// `out = NOT a`.
    pub fn inverter(&mut self, name: &str, a: NodeId) -> NodeId {
        self.complex_gate(name, &[&[a]])
    }

    /// `out = NOT (a AND b)`.
    pub fn nand2(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        self.complex_gate(name, &[&[a, b]])
    }

    /// `out = NOT (a OR b)`.
    pub fn nor2(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        self.complex_gate(name, &[&[a], &[b]])
    }

    /// `out = a XNOR b`, given both polarities of the inputs
    /// (`out = NOT(a·nb OR na·b)`).
    pub fn xnor(&mut self, name: &str, a: NodeId, na: NodeId, b: NodeId, nb: NodeId) -> NodeId {
        self.complex_gate(name, &[&[a, nb], &[na, b]])
    }

    /// `out = a XOR b`, given both polarities (`NOT(a·b OR na·nb)`).
    pub fn xor(&mut self, name: &str, a: NodeId, na: NodeId, b: NodeId, nb: NodeId) -> NodeId {
        self.complex_gate(name, &[&[a, b], &[na, nb]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rails_exist() {
        let nl = Netlist::new();
        assert_eq!(nl.name(nl.vdd()), "vdd");
        assert_eq!(nl.name(nl.gnd()), "gnd");
        assert_eq!(nl.node_count(), 2);
    }

    #[test]
    fn inverter_is_one_pullup_one_fet() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let _out = nl.inverter("na", a);
        assert_eq!(nl.fet_count(), 1);
        assert_eq!(nl.pullup_count(), 1);
        assert_eq!(nl.device_count(), 2);
    }

    #[test]
    fn xnor_device_count() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let na = nl.node("na");
        let b = nl.node("b");
        let nb = nl.node("nb");
        nl.xnor("eq", a, na, b, nb);
        // Two chains of two series transistors plus a pullup.
        assert_eq!(nl.fet_count(), 4);
        assert_eq!(nl.pullup_count(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty pulldown chain")]
    fn empty_chain_panics() {
        let mut nl = Netlist::new();
        nl.complex_gate("bad", &[]);
    }
}
