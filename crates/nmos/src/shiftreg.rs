//! The dynamic shift register of Figure 3-5.
//!
//! "In NMOS … a shift register is composed of a chain of inverters
//! separated by pass transistors. … A clock with two non-overlapping
//! phases controls the pass transistors. Adjacent transistors are turned
//! on by opposite phases of the clock, so that there is never a closed
//! path between inverters that are separated by two transistors.
//! Alternate inverters can therefore store independent data bits."
//!
//! One *beat* is one clock phase: even-indexed stages latch on φ1 beats,
//! odd-indexed stages on φ2 beats, so a bit advances one stage per beat
//! and is inverted at every stage. Because storage is dynamic, stalling
//! the clock long enough rots the data — the §3.3.3 trade-off, verified
//! by failure injection in the tests.

use crate::error::SimError;
use crate::level::Level;
use crate::netlist::{Netlist, NodeId};
use crate::sim::Sim;

/// A dynamic NMOS shift register with one storage stage per beat of
/// delay.
#[derive(Debug, Clone)]
pub struct DynamicShiftRegister {
    sim: Sim,
    input: NodeId,
    phi1: NodeId,
    phi2: NodeId,
    /// Inverter output of each stage.
    taps: Vec<NodeId>,
    beat: u64,
}

impl DynamicShiftRegister {
    /// Builds a register of `stages` pass-transistor/inverter stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn new(stages: usize) -> Self {
        assert!(stages > 0, "a shift register needs at least one stage");
        let mut nl = Netlist::new();
        let input = nl.node("in");
        nl.input(input);
        let phi1 = nl.node("phi1");
        let phi2 = nl.node("phi2");
        nl.input(phi1);
        nl.input(phi2);

        let mut taps = Vec::with_capacity(stages);
        let mut from = input;
        for i in 0..stages {
            let clk = if i % 2 == 0 { phi1 } else { phi2 };
            let store = nl.node(format!("s{i}"));
            nl.pass(clk, from, store);
            let out = nl.inverter(&format!("q{i}"), store);
            taps.push(out);
            from = out;
        }

        let mut sim = Sim::new(nl);
        sim.set(phi1, false);
        sim.set(phi2, false);
        DynamicShiftRegister {
            sim,
            input,
            phi1,
            phi2,
            taps,
            beat: 0,
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.taps.len()
    }

    /// Device count of the underlying netlist.
    pub fn device_count(&self) -> usize {
        self.sim.netlist().device_count()
    }

    /// Direct access to the simulator (for decay configuration).
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Performs one beat: pulses the phase whose stages latch this beat,
    /// with `bit` presented at the input pad. Returns the level at the
    /// final tap *after* the beat.
    ///
    /// The value emerging at the last tap is the input of `stages` beats
    /// ago, inverted once per stage — callers must re-invert for odd
    /// stage counts, exactly as the chip's neighbouring cells do.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] if the netlist fails to settle.
    pub fn shift(&mut self, bit: bool) -> Result<Level, SimError> {
        let phase = if self.beat.is_multiple_of(2) {
            self.phi1
        } else {
            self.phi2
        };
        self.sim.set(self.input, bit);
        self.sim.set(phase, true);
        self.sim.settle()?;
        self.sim.set(phase, false);
        self.sim.settle()?;
        self.sim.end_beat();
        self.beat += 1;
        Ok(self.sim.get(*self.taps.last().expect("stages > 0")))
    }

    /// A beat with the clock stopped: nothing latches, charge ages.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] if the netlist fails to settle.
    pub fn stall(&mut self) -> Result<(), SimError> {
        self.sim.settle()?;
        self.sim.end_beat();
        self.beat += 1;
        Ok(())
    }

    /// The level at stage `i`'s inverter output.
    pub fn tap(&self, i: usize) -> Level {
        self.sim.get(self.taps[i])
    }

    /// Fault injection: drives **both** clock phases high at once,
    /// violating the non-overlap requirement of §3.2.2 ("there is never
    /// a closed path between inverters that are separated by two
    /// transistors"). With the overlap, every pass transistor conducts
    /// and the register degenerates into a combinational inverter
    /// chain — all stored bits are destroyed by the value at the input
    /// pad racing through. Returns the level at the last tap after the
    /// violation.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] if the netlist fails to settle.
    pub fn inject_clock_overlap(&mut self, input: bool) -> Result<Level, SimError> {
        self.sim.set(self.input, input);
        self.sim.set(self.phi1, true);
        self.sim.set(self.phi2, true);
        self.sim.settle()?;
        self.sim.set(self.phi1, false);
        self.sim.set(self.phi2, false);
        self.sim.settle()?;
        self.sim.end_beat();
        self.beat += 1;
        Ok(self.sim.get(*self.taps.last().expect("stages > 0")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Re-invert a tap reading for the number of inversions it suffered.
    fn normalise(level: Level, stages: usize) -> Option<bool> {
        level
            .to_bool()
            .map(|b| if stages % 2 == 1 { !b } else { b })
    }

    #[test]
    fn data_propagates_with_per_stage_inversion() {
        // New bits enter on φ1 beats only (stage 0's phase); a bit
        // injected at beat 2i reaches the last of 4 stages at beat 2i+3.
        let mut sr = DynamicShiftRegister::new(4);
        let bits = [true, false, false, true, true, false, true, false];
        let mut got = Vec::new();
        for (beat, _) in (0..2 * bits.len()).enumerate() {
            let inject = bits[beat / 2]; // held across both phases
            got.push(sr.shift(inject).unwrap());
        }
        for (i, &b) in bits.iter().enumerate() {
            let exit_beat = 2 * i + 3;
            if exit_beat < got.len() {
                assert_eq!(normalise(got[exit_beat], 4), Some(b), "bit {i}");
            }
        }
    }

    #[test]
    fn odd_stage_count_inverts() {
        let mut sr = DynamicShiftRegister::new(3);
        for _ in 0..3 {
            sr.shift(true).unwrap();
        }
        // true through 3 inverters → Low at the tap.
        assert_eq!(sr.shift(true).unwrap(), Level::Low);
    }

    #[test]
    fn alternate_stages_hold_independent_bits() {
        // The Figure 3-5 claim: two independent bits live in the four
        // stages, one per pair of alternate inverters.
        let mut sr = DynamicShiftRegister::new(4);
        sr.shift(true).unwrap(); // beat 0: b0=true enters stage 0
        sr.shift(true).unwrap(); // beat 1: b0 advances to stage 1
        sr.shift(false).unwrap(); // beat 2: b1=false enters stage 0
        sr.shift(false).unwrap(); // beat 3: b0 at stage 3, b1 at stage 1
        assert_eq!(sr.tap(3).to_bool(), Some(true), "b0 after four inversions");
        assert_eq!(sr.tap(1).to_bool(), Some(false), "b1 after two inversions");
        assert_eq!(sr.tap(0).to_bool(), Some(true), "stage 0 holds !b1");
    }

    #[test]
    fn stalled_clock_rots_data() {
        let mut sr = DynamicShiftRegister::new(2);
        sr.sim_mut().set_max_hold_beats(5);
        sr.shift(true).unwrap();
        sr.shift(false).unwrap();
        // Data survives a short stall…
        for _ in 0..4 {
            sr.stall().unwrap();
        }
        assert!(sr.tap(1).is_known());
        // …but not a long one: "data is refreshed only by shifting it".
        for _ in 0..4 {
            sr.stall().unwrap();
        }
        assert_eq!(sr.tap(1), Level::X);
    }

    #[test]
    fn device_count_is_two_per_stage_plus_pass() {
        // Each stage: 1 pass fet + 1 pulldown fet + 1 pullup = 3.
        let sr = DynamicShiftRegister::new(8);
        assert_eq!(sr.device_count(), 24);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        let _ = DynamicShiftRegister::new(0);
    }

    #[test]
    fn overlapping_clocks_destroy_the_pipeline() {
        // Load distinct bits into a healthy register…
        let mut sr = DynamicShiftRegister::new(4);
        sr.shift(true).unwrap();
        sr.shift(true).unwrap();
        sr.shift(false).unwrap();
        sr.shift(false).unwrap();
        assert_eq!(sr.tap(3).to_bool(), Some(true));
        assert_eq!(sr.tap(1).to_bool(), Some(false));
        // …then violate the two-phase discipline: with both phases high
        // the chain is transparent and the input races to the end in
        // zero beats, obliterating both stored bits.
        let end = sr.inject_clock_overlap(true).unwrap();
        assert_eq!(end.to_bool(), Some(true), "input raced through 4 inverters");
        for i in 0..4 {
            // Every tap is now a function of the single input value
            // (true through i+1 inverters) — the two independent bits
            // are gone.
            assert_eq!(sr.tap(i).to_bool(), Some(i % 2 == 1));
        }
    }
}
