//! The switch-level relaxation solver.
//!
//! A settled NMOS network is a fixpoint: every net's level is consistent
//! with the conduction state of every transistor, whose gates are nets
//! themselves. [`Sim::settle`] finds that fixpoint by relaxation:
//!
//! 1. From the current net levels, classify each transistor as
//!    conducting (gate high), off (gate low) or *maybe* (gate `X`).
//! 2. Group nets into components connected by conducting channels and
//!    assign each component a level by strength: a path to ground (or a
//!    low-driving pad) wins over `Vdd`/pullups/high pads — that is what
//!    makes ratioed logic work — and any driven level wins over stored
//!    charge. An undriven component keeps its charge; nets whose stored
//!    charges disagree go to `X` (charge sharing).
//! 3. `maybe` transistors are handled conservatively by solving twice —
//!    all-off and all-on — and `X`-ing nets where the solutions differ.
//! 4. Repeat until nothing changes (or give up and report oscillation).
//!
//! Dynamic storage and its decay (§3.3.3) are modelled per *beat*: after
//! each clock phase the host calls [`Sim::end_beat`]; nets that were not
//! driven accumulate age and eventually rot to `X`, reproducing the
//! "about 1 ms without shifting" limit of the paper's dynamic registers.

use crate::error::SimError;
use crate::level::Level;
use crate::netlist::{Netlist, NodeId};

/// How many beats an isolated node holds its charge before decaying,
/// by default. At the prototype's 250 ns beat this corresponds to the
/// ~1 ms retention the paper quotes (§3.3.3).
pub const DEFAULT_MAX_HOLD_BEATS: u32 = 4000;

/// Relaxation pass limit before declaring oscillation.
const MAX_ITERATIONS: usize = 256;

/// A switch-level simulator for one [`Netlist`].
#[derive(Debug, Clone)]
pub struct Sim {
    nl: Netlist,
    /// Current level of each net.
    values: Vec<Level>,
    /// Last driven (or shared) charge on each net.
    stored: Vec<Level>,
    /// Beats since each net was last driven.
    age: Vec<u32>,
    /// Whether the net was driven (not charge-retained) at last settle.
    driven: Vec<bool>,
    /// Externally imposed levels (pads, rails, clocks).
    pins: Vec<Option<Level>>,
    /// Adjacency: for each net, the (gate, other-end) channel list.
    adj: Vec<Vec<(NodeId, NodeId)>>,
    /// Whether each net has a depletion pullup.
    pulled_up: Vec<bool>,
    /// Absolute overrides for fault injection (stuck-at faults).
    forced: Vec<Option<Level>>,
    max_hold_beats: u32,
}

impl Sim {
    /// Wraps a netlist; all storage starts as `X` (uninitialised
    /// charge), rails are pre-driven.
    pub fn new(nl: Netlist) -> Self {
        let n = nl.node_count();
        let mut adj: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); n];
        for fet in nl.fets() {
            adj[fet.a.index()].push((fet.gate, fet.b));
            adj[fet.b.index()].push((fet.gate, fet.a));
        }
        let mut pins = vec![None; n];
        pins[nl.vdd().index()] = Some(Level::High);
        pins[nl.gnd().index()] = Some(Level::Low);
        let mut pulled_up = vec![false; n];
        for p in nl.pullups() {
            pulled_up[p.index()] = true;
        }
        Sim {
            values: vec![Level::X; n],
            stored: vec![Level::X; n],
            age: vec![0; n],
            driven: vec![false; n],
            pins,
            adj,
            pulled_up,
            forced: vec![None; n],
            nl,
            max_hold_beats: DEFAULT_MAX_HOLD_BEATS,
        }
    }

    /// The wrapped netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Overrides the charge-retention limit (beats).
    pub fn set_max_hold_beats(&mut self, beats: u32) {
        self.max_hold_beats = beats;
    }

    /// Drives an external node (pad or clock). Takes effect at the next
    /// [`settle`](Sim::settle).
    pub fn set(&mut self, node: NodeId, level: impl Into<Level>) {
        self.pins[node.index()] = Some(level.into());
    }

    /// Stops driving an external node (tri-states the pad).
    pub fn release(&mut self, node: NodeId) {
        self.pins[node.index()] = None;
    }

    /// Injects a stuck-at fault: the node reads `level` no matter what
    /// drives it, modelling a hard short. Used by the test-vector and
    /// fault-coverage machinery of [`crate::faults`].
    pub fn force(&mut self, node: NodeId, level: Level) {
        self.forced[node.index()] = Some(level);
    }

    /// Removes an injected fault.
    pub fn unforce(&mut self, node: NodeId) {
        self.forced[node.index()] = None;
    }

    /// The current level of a node.
    pub fn get(&self, node: NodeId) -> Level {
        self.values[node.index()]
    }

    /// The current level as a boolean.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownOutput`] if the node is `X`.
    pub fn get_bool(&self, node: NodeId) -> Result<bool, SimError> {
        self.values[node.index()]
            .to_bool()
            .ok_or_else(|| SimError::UnknownOutput {
                node: self.nl.name(node).to_string(),
            })
    }

    /// Solves the network for the current pin levels.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] if no fixpoint is reached.
    pub fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_ITERATIONS {
            let (next, driven) = self.solve_once();
            let changed = next != self.values;
            self.values = next;
            self.driven = driven;
            if !changed {
                // Commit charge: every net remembers its settled level.
                self.stored.copy_from_slice(&self.values);
                return Ok(());
            }
        }
        Err(SimError::Oscillation {
            iterations: MAX_ITERATIONS,
        })
    }

    /// Ends a beat: isolated nets age and eventually decay to `X`.
    pub fn end_beat(&mut self) {
        for i in 0..self.values.len() {
            if self.driven[i] {
                self.age[i] = 0;
            } else {
                self.age[i] = self.age[i].saturating_add(1);
                if self.age[i] > self.max_hold_beats {
                    self.stored[i] = Level::X;
                    self.values[i] = Level::X;
                }
            }
        }
    }

    /// One relaxation pass: returns (levels, driven flags).
    fn solve_once(&self) -> (Vec<Level>, Vec<bool>) {
        let (mut values, mut driven) = self.solve_unforced();
        for (i, f) in self.forced.iter().enumerate() {
            if let Some(level) = f {
                values[i] = *level;
                driven[i] = true;
            }
        }
        (values, driven)
    }

    /// Relaxation without fault overrides.
    fn solve_unforced(&self) -> (Vec<Level>, Vec<bool>) {
        let certain = self.flood(false);
        let has_maybe = self
            .nl
            .fets()
            .iter()
            .any(|f| self.values[f.gate.index()] == Level::X);
        if !has_maybe {
            return certain;
        }
        let optimistic = self.flood(true);
        let merged = certain
            .0
            .iter()
            .zip(&optimistic.0)
            .map(|(&a, &b)| if a == b { a } else { Level::X })
            .collect();
        let driven = certain
            .1
            .iter()
            .zip(&optimistic.1)
            .map(|(&a, &b)| a && b)
            .collect();
        (merged, driven)
    }

    /// Component analysis with `maybe` transistors treated as conducting
    /// (`maybe_on`) or off.
    fn flood(&self, maybe_on: bool) -> (Vec<Level>, Vec<bool>) {
        let n = self.values.len();
        let mut comp = vec![usize::MAX; n];
        let mut levels: Vec<Level> = Vec::new();
        let mut drivens: Vec<bool> = Vec::new();

        let conducts = |gate: NodeId| -> bool {
            match self.values[gate.index()] {
                Level::High => true,
                Level::Low => false,
                Level::X => maybe_on,
            }
        };

        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let cid = levels.len();
            // Gather the component.
            let mut members = Vec::new();
            stack.push(start);
            comp[start] = cid;
            while let Some(u) = stack.pop() {
                members.push(u);
                for &(gate, other) in &self.adj[u] {
                    if conducts(gate) && comp[other.index()] == usize::MAX {
                        comp[other.index()] = cid;
                        stack.push(other.index());
                    }
                }
            }
            // Classify by strength: low drive > high drive > charge.
            let mut has_low = false;
            let mut has_high = false;
            let mut has_x_drive = false;
            let mut charge = None::<Level>;
            for &m in &members {
                // A forced (stuck) node drives its component like a rail.
                match self.forced[m].or(self.pins[m]) {
                    Some(Level::Low) => has_low = true,
                    Some(Level::High) => has_high = true,
                    Some(Level::X) => has_x_drive = true,
                    None => {}
                }
                if self.pulled_up[m] {
                    has_high = true;
                }
            }
            let driven = has_low || has_high || has_x_drive;
            if !driven {
                for &m in &members {
                    charge = Some(match charge {
                        None => self.stored[m],
                        Some(c) => c.merge(self.stored[m]),
                    });
                }
            }
            let level = if has_low {
                Level::Low
            } else if has_x_drive {
                Level::X
            } else if has_high {
                Level::High
            } else {
                charge.unwrap_or(Level::X)
            };
            levels.push(level);
            drivens.push(driven);
        }

        let values = (0..n).map(|i| levels[comp[i]]).collect();
        let driven = (0..n).map(|i| drivens[comp[i]]).collect();
        (values, driven)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build, drive, settle, read — one gate at a time.
    fn eval(build: impl Fn(&mut Netlist) -> (Vec<NodeId>, NodeId), inputs: &[bool]) -> Level {
        let mut nl = Netlist::new();
        let (ins, out) = build(&mut nl);
        let mut sim = Sim::new(nl);
        for (&node, &val) in ins.iter().zip(inputs) {
            sim.set(node, val);
        }
        sim.settle().unwrap();
        sim.get(out)
    }

    #[test]
    fn inverter_truth_table() {
        let build = |nl: &mut Netlist| {
            let a = nl.node("a");
            let out = nl.inverter("na", a);
            (vec![a], out)
        };
        assert_eq!(eval(build, &[false]), Level::High);
        assert_eq!(eval(build, &[true]), Level::Low);
    }

    #[test]
    fn nand_truth_table() {
        let build = |nl: &mut Netlist| {
            let a = nl.node("a");
            let b = nl.node("b");
            let out = nl.nand2("nab", a, b);
            (vec![a, b], out)
        };
        assert_eq!(eval(build, &[false, false]), Level::High);
        assert_eq!(eval(build, &[false, true]), Level::High);
        assert_eq!(eval(build, &[true, false]), Level::High);
        assert_eq!(eval(build, &[true, true]), Level::Low);
    }

    #[test]
    fn nor_truth_table() {
        let build = |nl: &mut Netlist| {
            let a = nl.node("a");
            let b = nl.node("b");
            let out = nl.nor2("nab", a, b);
            (vec![a, b], out)
        };
        assert_eq!(eval(build, &[false, false]), Level::High);
        assert_eq!(eval(build, &[true, false]), Level::Low);
        assert_eq!(eval(build, &[false, true]), Level::Low);
        assert_eq!(eval(build, &[true, true]), Level::Low);
    }

    #[test]
    fn xnor_truth_table() {
        let build = |nl: &mut Netlist| {
            let a = nl.node("a");
            let b = nl.node("b");
            let na = nl.inverter("na", a);
            let nb = nl.inverter("nb", b);
            let out = nl.xnor("eq", a, na, b, nb);
            (vec![a, b], out)
        };
        assert_eq!(eval(build, &[false, false]), Level::High);
        assert_eq!(eval(build, &[true, true]), Level::High);
        assert_eq!(eval(build, &[true, false]), Level::Low);
        assert_eq!(eval(build, &[false, true]), Level::Low);
    }

    #[test]
    fn two_inverter_chain() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let n1 = nl.inverter("n1", a);
        let n2 = nl.inverter("n2", n1);
        let mut sim = Sim::new(nl);
        sim.set(a, true);
        sim.settle().unwrap();
        assert_eq!(sim.get(n1), Level::Low);
        assert_eq!(sim.get(n2), Level::High);
    }

    #[test]
    fn pass_transistor_stores_charge() {
        let mut nl = Netlist::new();
        let clk = nl.node("clk");
        let pad = nl.node("pad");
        let store = nl.node("store");
        nl.pass(clk, pad, store);
        let out = nl.inverter("out", store);
        let mut sim = Sim::new(nl);

        // Clock high: pad drives the storage node.
        sim.set(clk, true);
        sim.set(pad, true);
        sim.settle().unwrap();
        assert_eq!(sim.get(store), Level::High);
        assert_eq!(sim.get(out), Level::Low);

        // Clock low, pad changes: storage holds its charge.
        sim.set(clk, false);
        sim.set(pad, false);
        sim.settle().unwrap();
        assert_eq!(sim.get(store), Level::High, "dynamic node must hold charge");
        assert_eq!(sim.get(out), Level::Low);
    }

    #[test]
    fn stored_charge_decays_after_max_hold() {
        let mut nl = Netlist::new();
        let clk = nl.node("clk");
        let pad = nl.node("pad");
        let store = nl.node("store");
        nl.pass(clk, pad, store);
        let mut sim = Sim::new(nl);
        sim.set_max_hold_beats(3);
        sim.set(clk, true);
        sim.set(pad, true);
        sim.settle().unwrap();
        sim.end_beat();
        sim.set(clk, false);
        for _ in 0..3 {
            sim.settle().unwrap();
            sim.end_beat();
            assert_eq!(sim.get(store), Level::High);
        }
        // One beat past the limit: the charge has leaked away.
        sim.settle().unwrap();
        sim.end_beat();
        assert_eq!(
            sim.get(store),
            Level::X,
            "charge must decay without refresh"
        );
    }

    #[test]
    fn charge_sharing_of_conflicting_values_is_x() {
        let mut nl = Netlist::new();
        let clk = nl.node("clk");
        let a = nl.node("a");
        let b = nl.node("b");
        let sa = nl.node("sa");
        let sb = nl.node("sb");
        let join = nl.node("join");
        nl.pass(clk, a, sa);
        nl.pass(clk, b, sb);
        nl.pass(join, sa, sb);
        let mut sim = Sim::new(nl);
        // Store opposite values.
        sim.set(clk, true);
        sim.set(a, true);
        sim.set(b, false);
        sim.set(join, false);
        sim.settle().unwrap();
        // Isolate from pads, then connect the two storage nodes.
        sim.set(clk, false);
        sim.set(join, true);
        sim.settle().unwrap();
        assert_eq!(sim.get(sa), Level::X);
        assert_eq!(sim.get(sb), Level::X);
    }

    #[test]
    fn ring_oscillator_reports_oscillation() {
        // Three inverters in a ring, closed through an enable pass
        // transistor. Seed the loop while it is open, then close it.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let en = nl.node("en");
        let n1 = nl.inverter("n1", a);
        let n2 = nl.inverter("n2", n1);
        let n3 = nl.inverter("n3", n2);
        nl.pass(en, n3, a);
        let mut sim = Sim::new(nl);
        sim.set(en, false);
        sim.set(a, true);
        sim.settle().unwrap();
        sim.release(a);
        sim.set(en, true);
        assert!(matches!(sim.settle(), Err(SimError::Oscillation { .. })));
    }

    #[test]
    fn unknown_output_error_names_node() {
        let mut nl = Netlist::new();
        let a = nl.node("floaty");
        let mut sim = Sim::new(nl);
        sim.settle().unwrap();
        let err = sim.get_bool(a).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownOutput {
                node: "floaty".into()
            }
        );
    }
}
