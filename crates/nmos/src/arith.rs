//! Combinational arithmetic in ratioed NMOS.
//!
//! §3.4 replaces the comparator with "a difference cell" and the
//! accumulator with "an adder cell" whose temporary accumulates `d²`.
//! Building that in silicon needs word-level arithmetic; this module is
//! the cell library: full adders, ripple-carry adders/subtractors,
//! two's-complement negation, multiplexers and an array multiplier —
//! all as pullup/pulldown complex gates, all exhaustively verified
//! against integer arithmetic through the switch-level simulator.
//!
//! Constants are the rails: a gate terminal tied to `gnd` never
//! conducts (logic 0), one tied to `vdd` always does (logic 1).

use crate::netlist::{Netlist, NodeId};

/// `out = a XOR b` (builds the complements it needs; 2 inverters + one
/// complex gate).
pub fn xor2(nl: &mut Netlist, name: &str, a: NodeId, b: NodeId) -> NodeId {
    let na = nl.inverter(&format!("{name}.na"), a);
    let nb = nl.inverter(&format!("{name}.nb"), b);
    nl.xor(&format!("{name}.x"), a, na, b, nb)
}

/// `out = sel ? a : b` (a 2:1 multiplexer as an AOI pair).
pub fn mux2(nl: &mut Netlist, name: &str, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
    let nsel = nl.inverter(&format!("{name}.ns"), sel);
    let na = nl.inverter(&format!("{name}.na"), a);
    let nb = nl.inverter(&format!("{name}.nb"), b);
    // out = NOT(sel·ā + sel̄·b̄).
    nl.complex_gate(&format!("{name}.m"), &[&[sel, na], &[nsel, nb]])
}

/// A full adder: returns `(sum, carry_out)`.
pub fn full_adder(
    nl: &mut Netlist,
    name: &str,
    a: NodeId,
    b: NodeId,
    cin: NodeId,
) -> (NodeId, NodeId) {
    let ab = xor2(nl, &format!("{name}.ab"), a, b);
    let sum = xor2(nl, &format!("{name}.s"), ab, cin);
    // carry = majority(a, b, cin).
    let maj_bar = nl.complex_gate(&format!("{name}.cb"), &[&[a, b], &[a, cin], &[b, cin]]);
    let carry = nl.inverter(&format!("{name}.c"), maj_bar);
    (sum, carry)
}

/// A ripple-carry adder over equal-width buses (LSB first); returns
/// the sum bus (same width — overflow wraps) and the carry out.
///
/// # Panics
///
/// Panics on width mismatch or empty buses.
pub fn adder(
    nl: &mut Netlist,
    name: &str,
    a: &[NodeId],
    b: &[NodeId],
    cin: NodeId,
) -> (Vec<NodeId>, NodeId) {
    assert!(!a.is_empty() && a.len() == b.len(), "equal non-empty buses");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (w, (&ab, &bb)) in a.iter().zip(b).enumerate() {
        let (s, c) = full_adder(nl, &format!("{name}.fa{w}"), ab, bb, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// `a − b` over equal-width buses (two's complement, wrapping).
pub fn subtractor(nl: &mut Netlist, name: &str, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let nb: Vec<NodeId> = b
        .iter()
        .enumerate()
        .map(|(w, &x)| nl.inverter(&format!("{name}.nb{w}"), x))
        .collect();
    let vdd = nl.vdd();
    adder(nl, &format!("{name}.add"), a, &nb, vdd).0
}

/// Two's-complement negation of a bus.
pub fn negate(nl: &mut Netlist, name: &str, a: &[NodeId]) -> Vec<NodeId> {
    let gnd = nl.gnd();
    let zeros = vec![gnd; a.len()];
    subtractor(nl, name, &zeros, a)
}

/// `|a|` of a two's-complement bus (MSB last): negates when the sign
/// bit is set.
pub fn absolute(nl: &mut Netlist, name: &str, a: &[NodeId]) -> Vec<NodeId> {
    let sign = *a.last().expect("non-empty bus");
    let neg = negate(nl, &format!("{name}.neg"), a);
    a.iter()
        .zip(&neg)
        .enumerate()
        .map(|(w, (&pos, &n))| mux2(nl, &format!("{name}.m{w}"), sign, n, pos))
        .collect()
}

/// An unsigned array multiplier: `a × b` with a `2·width`-bit product
/// (never overflows).
///
/// # Panics
///
/// Panics on width mismatch or empty buses.
pub fn multiplier(nl: &mut Netlist, name: &str, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert!(!a.is_empty() && a.len() == b.len(), "equal non-empty buses");
    let width = a.len();
    let gnd = nl.gnd();

    // Partial products pp[i][j] = a_j AND b_i.
    let and2 = |nl: &mut Netlist, n: String, x: NodeId, y: NodeId| {
        let nand = nl.nand2(&format!("{n}.na"), x, y);
        nl.inverter(&format!("{n}.a"), nand)
    };

    // Accumulate row by row: acc holds the running product, 2W bits.
    let mut acc: Vec<NodeId> = vec![gnd; 2 * width];
    for (i, &bi) in b.iter().enumerate() {
        // Row i: pp shifted left by i.
        let mut row: Vec<NodeId> = vec![gnd; 2 * width];
        for (j, &aj) in a.iter().enumerate() {
            row[i + j] = and2(nl, format!("{name}.pp{i}_{j}"), aj, bi);
        }
        let (sum, _) = adder(nl, &format!("{name}.r{i}"), &acc, &row, gnd);
        acc = sum;
    }
    acc
}

/// Squares a two's-complement bus: `|a|²`, `2·width` bits.
pub fn square(nl: &mut Netlist, name: &str, a: &[NodeId]) -> Vec<NodeId> {
    let mag = absolute(nl, &format!("{name}.abs"), a);
    multiplier(nl, &format!("{name}.mul"), &mag, &mag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;

    /// Evaluate a bus-level circuit for every input assignment.
    fn eval<F>(width: usize, inputs: usize, build: F) -> Vec<(Vec<i64>, i64)>
    where
        F: Fn(&mut Netlist, &[Vec<NodeId>]) -> Vec<NodeId>,
    {
        let mut nl = Netlist::new();
        let buses: Vec<Vec<NodeId>> = (0..inputs)
            .map(|i| {
                (0..width)
                    .map(|w| {
                        let n = nl.node(format!("in{i}_{w}"));
                        nl.input(n);
                        n
                    })
                    .collect()
            })
            .collect();
        let out = build(&mut nl, &buses);
        let mut sim = Sim::new(nl);
        let mut results = Vec::new();
        let combos = 1usize << (width * inputs);
        for assignment in 0..combos {
            let mut values = Vec::new();
            for (i, bus) in buses.iter().enumerate() {
                let v = (assignment >> (i * width)) & ((1 << width) - 1);
                for (w, &node) in bus.iter().enumerate() {
                    sim.set(node, (v >> w) & 1 == 1);
                }
                values.push(v as i64);
            }
            sim.settle().expect("combinational logic settles");
            let mut got = 0i64;
            for (w, &node) in out.iter().enumerate() {
                if sim.get_bool(node).expect("defined output") {
                    got |= 1 << w;
                }
            }
            results.push((values, got));
        }
        results
    }

    #[test]
    fn adder_is_exhaustively_correct() {
        for (vals, got) in eval(3, 2, |nl, buses| {
            let gnd = nl.gnd();
            adder(nl, "add", &buses[0], &buses[1], gnd).0
        }) {
            assert_eq!(got, (vals[0] + vals[1]) % 8, "{vals:?}");
        }
    }

    #[test]
    fn subtractor_wraps_correctly() {
        for (vals, got) in eval(3, 2, |nl, buses| {
            subtractor(nl, "sub", &buses[0], &buses[1])
        }) {
            assert_eq!(got, (vals[0] - vals[1]).rem_euclid(8), "{vals:?}");
        }
    }

    #[test]
    fn negate_and_absolute() {
        for (vals, got) in eval(3, 1, |nl, buses| negate(nl, "neg", &buses[0])) {
            assert_eq!(got, (-vals[0]).rem_euclid(8), "{vals:?}");
        }
        for (vals, got) in eval(3, 1, |nl, buses| absolute(nl, "abs", &buses[0])) {
            // Interpret the 3-bit input as two's complement.
            let signed = if vals[0] >= 4 { vals[0] - 8 } else { vals[0] };
            assert_eq!(got, signed.abs().rem_euclid(8), "{vals:?}");
        }
    }

    #[test]
    fn multiplier_is_exhaustively_correct() {
        for (vals, got) in eval(3, 2, |nl, buses| {
            multiplier(nl, "mul", &buses[0], &buses[1])
        }) {
            assert_eq!(got, vals[0] * vals[1], "{vals:?}");
        }
    }

    #[test]
    fn square_of_signed_values() {
        for (vals, got) in eval(3, 1, |nl, buses| square(nl, "sq", &buses[0])) {
            let signed = if vals[0] >= 4 { vals[0] - 8 } else { vals[0] };
            assert_eq!(got, signed * signed, "{vals:?}");
        }
    }

    #[test]
    fn mux_selects() {
        let mut nl = Netlist::new();
        let sel = nl.node("sel");
        let a = nl.node("a");
        let b = nl.node("b");
        for n in [sel, a, b] {
            nl.input(n);
        }
        let out = mux2(&mut nl, "m", sel, a, b);
        let mut sim = Sim::new(nl);
        for (s, x, y, want) in [
            (false, false, true, true),
            (true, false, true, false),
            (true, true, false, true),
        ] {
            sim.set(sel, s);
            sim.set(a, x);
            sim.set(b, y);
            sim.settle().unwrap();
            assert_eq!(sim.get_bool(out).unwrap(), want);
        }
    }
}
