//! An on-chip two-phase non-overlapping clock generator.
//!
//! §4's data-flow-control task: "If a clock is to be used we decide
//! whether to generate it on the chip or externally." The prototype
//! took external phases; this module builds the classic on-chip
//! alternative — a cross-coupled NOR pair with delay chains — and
//! *proves the non-overlap property by simulation*:
//!
//! ```text
//!          ┌─────┐
//!  clk ───▸│ NOR ├──▸ delay ──▸ φ1
//!     ┌───▸└─────┘                │ (cross-coupled)
//!     │    ┌─────┐                │
//!  ¬clk ──▸│ NOR ├──▸ delay ──▸ φ2
//!          └─────┘
//! ```
//!
//! Each NOR is blocked while the *other* phase is still high, so the
//! rising edge of one phase always waits for the falling edge of the
//! other — the "never a closed path between inverters that are
//! separated by two transistors" guarantee of Figure 3-5.

use crate::error::SimError;
use crate::level::Level;
use crate::netlist::{Netlist, NodeId};
use crate::sim::Sim;

/// A simulated two-phase clock generator.
#[derive(Debug, Clone)]
pub struct ClockGenerator {
    sim: Sim,
    clk_in: NodeId,
    phi1: NodeId,
    phi2: NodeId,
}

impl ClockGenerator {
    /// Builds the generator with a delay chain of `delay_stages`
    /// inverter pairs on each phase output.
    ///
    /// # Panics
    ///
    /// Panics if `delay_stages` is zero (some delay is required for
    /// the feedback to be meaningful).
    pub fn new(delay_stages: usize) -> Self {
        assert!(delay_stages > 0, "the generator needs a delay chain");
        let mut nl = Netlist::new();
        let clk_in = nl.node("clk_in");
        nl.input(clk_in);
        let clk_bar = nl.inverter("clk_bar", clk_in);

        // Cross-coupled NORs; the feedback inputs are patched in with
        // always-on straps after the delay chains exist.
        let fb1 = nl.node("fb1");
        let fb2 = nl.node("fb2");
        let nor1 = nl.nor2("nor1", clk_bar, fb1);
        let nor2 = nl.nor2("nor2", clk_in, fb2);

        // Delay chains (pairs of inverters keep polarity).
        let mut phi1 = nor1;
        let mut phi2 = nor2;
        for i in 0..delay_stages {
            let a = nl.inverter(&format!("d1a{i}"), phi1);
            phi1 = nl.inverter(&format!("d1b{i}"), a);
            let a = nl.inverter(&format!("d2a{i}"), phi2);
            phi2 = nl.inverter(&format!("d2b{i}"), a);
        }
        // Cross-couple: each NOR is held low while the *other* phase is
        // high.
        let vdd = nl.vdd();
        nl.pass(vdd, phi2, fb1);
        nl.pass(vdd, phi1, fb2);

        let mut sim = Sim::new(nl);
        sim.set(clk_in, false);
        ClockGenerator {
            sim,
            clk_in,
            phi1,
            phi2,
        }
    }

    /// Applies one input-clock level and settles; returns `(φ1, φ2)`.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] if the feedback fails to settle (it
    /// must not, for any delay length).
    pub fn drive(&mut self, clk: bool) -> Result<(Level, Level), SimError> {
        self.sim.set(self.clk_in, clk);
        self.sim.settle()?;
        Ok((self.sim.get(self.phi1), self.sim.get(self.phi2)))
    }

    /// Device count of the generator.
    pub fn device_count(&self) -> usize {
        self.sim.netlist().device_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_complementary_and_never_both_high() {
        let mut gen = ClockGenerator::new(2);
        // Drive several input cycles; φ1 and φ2 must never both be
        // high in any settled state.
        let mut saw_phi1 = false;
        let mut saw_phi2 = false;
        for cycle in 0..6 {
            for &level in &[true, false] {
                let (p1, p2) = gen.drive(level).unwrap();
                assert!(
                    !(p1 == Level::High && p2 == Level::High),
                    "overlap at cycle {cycle}: {p1} {p2}"
                );
                saw_phi1 |= p1 == Level::High;
                saw_phi2 |= p2 == Level::High;
            }
        }
        assert!(saw_phi1 && saw_phi2, "both phases must actually pulse");
    }

    #[test]
    fn phase_follows_input_polarity() {
        let mut gen = ClockGenerator::new(1);
        // Flush start-up X.
        let _ = gen.drive(true).unwrap();
        let _ = gen.drive(false).unwrap();
        let (p1, p2) = gen.drive(true).unwrap();
        assert_eq!(p1, Level::High, "clk high selects φ1");
        assert_eq!(p2, Level::Low);
        let (p1, p2) = gen.drive(false).unwrap();
        assert_eq!(p1, Level::Low);
        assert_eq!(p2, Level::High, "clk low selects φ2");
    }

    #[test]
    fn longer_delay_chains_cost_devices() {
        let short = ClockGenerator::new(1).device_count();
        let long = ClockGenerator::new(4).device_count();
        assert_eq!(
            long - short,
            3 * 2 * 2 * 2,
            "two inverters per stage per phase"
        );
    }
}
