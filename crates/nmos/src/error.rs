//! Simulation errors.

use std::fmt;

/// Errors raised by the switch-level simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The relaxation loop failed to reach a fixpoint — the netlist
    /// contains an unstable feedback loop (e.g. a ring oscillator or a
    /// gated loop enabled on the wrong phase).
    Oscillation {
        /// Iterations attempted before giving up.
        iterations: usize,
    },
    /// An output that must be valid carried `X` — typically stale or
    /// decayed dynamic charge reaching an observable pin.
    UnknownOutput {
        /// Name of the observed node.
        node: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Oscillation { iterations } => {
                write!(
                    f,
                    "netlist failed to settle after {iterations} relaxation passes"
                )
            }
            SimError::UnknownOutput { node } => {
                write!(f, "output node {node:?} carries an unknown (X) level")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::Oscillation { iterations: 64 }
            .to_string()
            .contains("64"));
        assert!(SimError::UnknownOutput {
            node: "d_out".into()
        }
        .to_string()
        .contains("d_out"));
    }
}
