//! The character-level chip organisation (Figure 3-3).
//!
//! Before dividing the comparators into one-bit cells (Figure 3-4),
//! the paper presents the array as whole-character comparators over
//! accumulators: "Rather than using one large circuit to compare whole
//! characters, we can divide each comparator into modules that can
//! compare single bits." This module builds the *undivided* version,
//! so the two organisations can be compared at transistor level:
//!
//! * a character comparator latches all `b` bits of `p` and `s` at
//!   once and computes full equality in a single ratioed complex gate
//!   (`eq = NOT Σ_v p_v ⊕ s_v`, one pulldown chain pair per bit);
//! * the accumulator below is the same cell as in the bit-serial chip,
//!   receiving `d` one beat after the comparator latches — there is no
//!   descending `d` pipeline and no bit staggering;
//! * the trade-off the paper implies: a shorter pipeline (latency
//!   `1` instead of `b` beats to the accumulator) against a wider,
//!   slower cell — quantified in [`CharChip::device_count`] and the
//!   comparison tests.

use crate::cells::build_accumulator;
use crate::error::SimError;
use crate::netlist::{Netlist, NodeId};
use crate::sim::Sim;
use pm_systolic::symbol::{Pattern, Symbol};

/// A transistor-level pattern matcher with whole-character comparators.
#[derive(Debug, Clone)]
pub struct CharChip {
    netlist: Netlist,
    columns: usize,
    bits: u32,
    phi: [NodeId; 2],
    /// Pattern bit pads (one per alphabet bit, left edge).
    p_pads: Vec<NodeId>,
    /// Text bit pads (right edge).
    s_pads: Vec<NodeId>,
    lam_pad: NodeId,
    x_pad: NodeId,
    r_pad: NodeId,
    r_out: NodeId,
}

/// Outputs of one character comparator column.
struct CharComparator {
    p_out: Vec<NodeId>,
    s_out: Vec<NodeId>,
    /// `eq` — true character equality.
    d_out: NodeId,
}

/// Builds one whole-character comparator.
fn build_char_comparator(
    nl: &mut Netlist,
    name: &str,
    clk: NodeId,
    p_in: &[NodeId],
    s_in: &[NodeId],
) -> CharComparator {
    let bits = p_in.len();
    let mut sp = Vec::with_capacity(bits);
    let mut ss = Vec::with_capacity(bits);
    let mut p_out = Vec::with_capacity(bits);
    let mut s_out = Vec::with_capacity(bits);
    for v in 0..bits {
        let spv = nl.node(format!("{name}.sp{v}"));
        let ssv = nl.node(format!("{name}.ss{v}"));
        nl.pass(clk, p_in[v], spv);
        nl.pass(clk, s_in[v], ssv);
        p_out.push(nl.inverter(&format!("{name}.pq{v}"), spv));
        s_out.push(nl.inverter(&format!("{name}.sq{v}"), ssv));
        sp.push(spv);
        ss.push(ssv);
    }
    // eq = NOT(OR over bits of p XOR s) — one ratioed complex gate
    // with a chain pair per bit computes full-character equality.
    let mut chains: Vec<Vec<NodeId>> = Vec::with_capacity(2 * bits);
    for v in 0..bits {
        chains.push(vec![sp[v], s_out[v]]); // p·s̄
        chains.push(vec![p_out[v], ss[v]]); // p̄·s
    }
    let chain_refs: Vec<&[NodeId]> = chains.iter().map(Vec::as_slice).collect();
    let d_out = nl.complex_gate(&format!("{name}.eq"), &chain_refs);
    CharComparator {
        p_out,
        s_out,
        d_out,
    }
}

impl CharChip {
    /// Builds the Figure 3-3 organisation: `columns` character
    /// comparators over `columns` accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `columns` or `bits` is zero.
    pub fn new(columns: usize, bits: u32) -> Self {
        assert!(
            columns > 0 && bits > 0,
            "chip needs at least one cell and one bit"
        );
        let b = bits as usize;
        let mut nl = Netlist::new();
        let phi0 = nl.node("phi0");
        let phi1 = nl.node("phi1");
        nl.input(phi0);
        nl.input(phi1);
        let phi = [phi0, phi1];
        let vdd = nl.vdd();

        let p_pads: Vec<NodeId> = (0..b)
            .map(|v| {
                let n = nl.node(format!("pad.p{v}"));
                nl.input(n);
                n
            })
            .collect();
        let s_pads: Vec<NodeId> = (0..b)
            .map(|v| {
                let n = nl.node(format!("pad.s{v}"));
                nl.input(n);
                n
            })
            .collect();
        let lam_pad = nl.node("pad.lam");
        let x_pad = nl.node("pad.x");
        let r_pad = nl.node("pad.r");
        for n in [lam_pad, x_pad, r_pad] {
            nl.input(n);
        }

        // Comparator row.
        let mut p_prev: Vec<NodeId> = p_pads.clone();
        let mut columns_built = Vec::with_capacity(columns);
        for c in 0..columns {
            let clk = phi[c % 2];
            let s_in: Vec<NodeId> = (0..b).map(|v| nl.node(format!("w.s{v}.{c}"))).collect();
            let cmp = build_char_comparator(&mut nl, &format!("cmp.{c}"), clk, &p_prev, &s_in);
            p_prev = cmp.p_out.clone();
            columns_built.push((s_in, cmp));
        }
        // Strap the s chains right-to-left.
        #[allow(clippy::needless_range_loop)]
        for c in 0..columns {
            for v in 0..b {
                let src = if c + 1 < columns {
                    columns_built[c + 1].1.s_out[v]
                } else {
                    s_pads[v]
                };
                nl.pass(vdd, src, columns_built[c].0[v]);
            }
        }

        // Accumulator row: phase (1 + c) % 2 so d (latched by the
        // comparator at phase c%2) arrives one beat later.
        let mut lam_prev = lam_pad;
        let mut x_prev = x_pad;
        let mut acc = Vec::with_capacity(columns);
        for c in 0..columns {
            let clk = phi[(1 + c) % 2];
            let clk_b = phi[c % 2];
            let r_in = nl.node(format!("w.r.{c}"));
            let out = build_accumulator(
                &mut nl,
                &format!("acc.{c}"),
                clk,
                clk_b,
                lam_prev,
                x_prev,
                columns_built[c].1.d_out,
                r_in,
                c % 2 == 1,
                false, // the comparator emits true equality
            );
            lam_prev = out.lambda_out;
            x_prev = out.x_out;
            acc.push((r_in, out));
        }
        for c in 0..columns {
            let src = if c + 1 < columns {
                acc[c + 1].1.r_out
            } else {
                r_pad
            };
            nl.pass(vdd, src, acc[c].0);
        }
        let r_out = acc[0].1.r_out;

        CharChip {
            netlist: nl,
            columns,
            bits,
            phi,
            p_pads,
            s_pads,
            lam_pad,
            x_pad,
            r_pad,
            r_out,
        }
    }

    /// Number of character cells.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Alphabet width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total device count (the organisational comparison with the
    /// bit-serial [`PatternChip`](crate::chip::PatternChip)).
    pub fn device_count(&self) -> usize {
        self.netlist.device_count()
    }

    /// Matches `text` against `pattern` at transistor level. Same host
    /// protocol as the bit-serial chip, minus the bit staggering: a
    /// whole character is presented per injection beat.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] or [`SimError::UnknownOutput`] on
    /// netlist misbehaviour.
    ///
    /// # Panics
    ///
    /// Panics if the pattern exceeds the array or the alphabet width.
    pub fn match_pattern(&self, pattern: &Pattern, text: &[Symbol]) -> Result<Vec<bool>, SimError> {
        assert!(pattern.len() <= self.columns, "pattern exceeds array");
        assert!(pattern.alphabet().bits() <= self.bits, "alphabet too wide");
        let n = self.columns;
        let b = self.bits;
        let plen = pattern.len();
        let k = plen - 1;
        let phi_off = ((n - 1) % 2) as u64;
        let warmup = 2 * (plen as u64);
        let right_flip = (n - 1) % 2 == 1;

        let mut sim = Sim::new(self.netlist.clone());
        sim.set(self.phi[0], false);
        sim.set(self.phi[1], false);
        sim.set(self.r_pad, right_flip);

        let mut out = vec![false; text.len()];
        let total = (n as u64) + phi_off + warmup + 2 * (text.len() as u64) + 6;

        for t in 0..total {
            // Pattern char j on all bit pads at beat 2j.
            if t % 2 == 0 {
                let j = (t / 2) as usize;
                let idx = j % plen;
                let sym = pattern.symbols()[idx];
                for v in 0..b {
                    let bit = sym
                        .literal()
                        .map(|s| s.bit_msb_first(v, b))
                        .unwrap_or(false);
                    sim.set(self.p_pads[v as usize], bit);
                }
            }
            // Text char i at beat 2i + φ + warmup.
            if let Some(i) = t
                .checked_sub(phi_off + warmup)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
            {
                for v in 0..b {
                    let bit = if (i as usize) < text.len() {
                        text[i as usize].bit_msb_first(v, b)
                    } else {
                        false
                    };
                    sim.set(self.s_pads[v as usize], bit ^ right_flip);
                }
            }
            // λ/x arrive at the accumulator one beat after the char.
            if let Some(j) = t.checked_sub(1).filter(|d| d % 2 == 0).map(|d| d / 2) {
                let idx = (j as usize) % plen;
                sim.set(self.lam_pad, idx == k);
                sim.set(self.x_pad, pattern.symbols()[idx].is_wild());
            }

            let phase = self.phi[(t % 2) as usize];
            sim.set(phase, true);
            sim.settle()?;
            sim.set(phase, false);
            sim.settle()?;
            sim.end_beat();

            // r_i appears at the result pad at beat n−1+φ+warmup+2i+1.
            if let Some(i) = t
                .checked_sub((n as u64) - 1 + phi_off + warmup + 1)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
            {
                let i = i as usize;
                if i < text.len() && i >= k {
                    let raw =
                        sim.get(self.r_out)
                            .to_bool()
                            .ok_or_else(|| SimError::UnknownOutput {
                                node: format!("r_out (result {i})"),
                            })?;
                    out[i] = !raw; // column-0 accumulator output is inverted
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::PatternChip;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn co_sim(pattern: &str, text: &str, columns: usize) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        let chip = CharChip::new(columns, p.alphabet().bits());
        let got = chip.match_pattern(&p, &t).unwrap();
        assert_eq!(got, match_spec(&t, &p), "pattern={pattern} text={text}");
    }

    #[test]
    fn char_level_chip_matches_spec() {
        co_sim("AB", "ABAB", 2);
        co_sim("AXC", "ABCAACCAB", 3);
        co_sim("ABCA", "ABCAABCA", 4);
    }

    #[test]
    fn prototype_size_char_level() {
        co_sim("ABCDABCD", "ABCDABCDABCDABCD", 8);
    }

    #[test]
    fn organisations_agree_at_transistor_level() {
        let p = Pattern::parse("AXBA").unwrap();
        let t = text_from_letters("ABBAAXBACBBA".replace('X', "C").as_str()).unwrap();
        let bit_serial = PatternChip::new(4, 2);
        let char_level = CharChip::new(4, 2);
        assert_eq!(
            bit_serial.match_pattern(&p, &t).unwrap(),
            char_level.match_pattern(&p, &t).unwrap()
        );
    }

    #[test]
    fn char_comparator_is_wider_than_bit_serial_column() {
        // The organisational trade-off: per column, the character-level
        // comparator (2b latches + one 2b-chain gate) is a different
        // balance from b one-bit cells; for b=2 the bit-serial column is
        // at least as large because of the duplicated d plumbing.
        let bit_serial = PatternChip::new(8, 2).device_count();
        let char_level = CharChip::new(8, 2).device_count();
        assert_ne!(bit_serial, char_level);
        // Both are in the same few-hundred-device class.
        assert!((300..1200).contains(&bit_serial));
        assert!((300..1200).contains(&char_level));
    }
}
