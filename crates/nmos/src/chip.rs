//! The full pattern-matching chip at transistor level (Plate 2).
//!
//! The fabricated prototype handled "patterns containing up to eight
//! two-bit characters": a grid of 8 columns × 2 one-bit comparator rows
//! over an accumulator row. [`PatternChip`] assembles that netlist for
//! any column/bit count from the cells of [`crate::cells`] and drives it
//! from a host model with the exact injection schedule of the
//! behavioural bit-serial array (`pm_systolic::bitserial`):
//!
//! * cell `(row v, column c)` is clocked by phase `(v+c) mod 2` — the
//!   two-phase checkerboard of Figure 3-4;
//! * pattern bits enter row `v` at the left pad on beats `2j+v` (MSB
//!   row first), text bits at the right pads on beats `2i+φ+v`;
//! * the `λ`/`x` control bits enter the accumulator row `b` beats after
//!   their pattern character;
//! * comparator rows alternate polarity twins down the `d` chain, and
//!   accumulator columns alternate twins along the `λ`/`x`/`r` chain;
//! * the result `r_i` is sampled at the left result pad at beat
//!   `n−1+φ+2i+b` (it rides the same stream slot as `s_i`).
//!
//! Co-simulation against the behavioural model is the E7 experiment:
//! same streams in, identical result bits out.

use crate::cells::{build_accumulator, build_comparator};
use crate::error::SimError;
use crate::netlist::{Netlist, NodeId};
use crate::sim::Sim;
use pm_systolic::symbol::{Pattern, Symbol};

/// A transistor-level pattern-matching chip.
#[derive(Debug, Clone)]
pub struct PatternChip {
    netlist: Netlist,
    columns: usize,
    bits: u32,
    phi: [NodeId; 2],
    /// Pattern-bit pads, one per comparator row (left edge).
    p_pads: Vec<NodeId>,
    /// Text-bit pads, one per comparator row (right edge).
    s_pads: Vec<NodeId>,
    /// End-of-pattern pad (left edge of the accumulator row).
    lam_pad: NodeId,
    /// Wild-card pad (left edge of the accumulator row).
    x_pad: NodeId,
    /// Result input pad (right edge; grounded on a lone chip).
    r_pad: NodeId,
    /// Result output (left edge of the accumulator row).
    r_out: NodeId,
    /// True if the result output is inverted relative to true polarity.
    r_out_inverted: bool,
}

impl PatternChip {
    /// Builds a chip with `columns` character cells for a `bits`-bit
    /// alphabet. The fabricated prototype is `PatternChip::new(8, 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `columns` or `bits` is zero.
    pub fn new(columns: usize, bits: u32) -> Self {
        assert!(
            columns > 0 && bits > 0,
            "chip needs at least one cell and one bit"
        );
        let b = bits as usize;
        let mut nl = Netlist::new();
        let phi0 = nl.node("phi0");
        let phi1 = nl.node("phi1");
        nl.input(phi0);
        nl.input(phi1);
        let phi = [phi0, phi1];
        let vdd = nl.vdd();

        let p_pads: Vec<NodeId> = (0..b)
            .map(|v| {
                let n = nl.node(format!("pad.p{v}"));
                nl.input(n);
                n
            })
            .collect();
        let s_pads: Vec<NodeId> = (0..b)
            .map(|v| {
                let n = nl.node(format!("pad.s{v}"));
                nl.input(n);
                n
            })
            .collect();
        let lam_pad = nl.node("pad.lam");
        let x_pad = nl.node("pad.x");
        let r_pad = nl.node("pad.r");
        for n in [lam_pad, x_pad, r_pad] {
            nl.input(n);
        }

        // Comparator grid. p wires run left→right within a row, s wires
        // right→left, d wires top→bottom within a column.
        // comp_out[v][c] = (p_out, s_out, d_out).
        let mut d_below: Vec<NodeId> = vec![vdd; columns]; // row 0 d_in = TRUE
        let mut s_chain_out: Vec<NodeId> = Vec::new();
        for v in 0..b {
            // Build the row right-to-left for s, left-to-right for p:
            // create cells first with placeholder wires is awkward, so
            // run two passes: first the cells' p chain left→right needs
            // p_in known; s chain needs s_in from the right. We build
            // columns in order and patch s inputs via dedicated nodes.
            // Simpler: s enters column c from column c+1's s_out; build
            // right-to-left would break p. Instead give every cell an
            // explicit s_in node and strap it afterwards with an
            // always-on pass transistor (zero-delay wire).
            let mut p_prev = p_pads[v];
            let mut cells = Vec::with_capacity(columns);
            for c in 0..columns {
                let clk = phi[(v + c) % 2];
                let s_in = nl.node(format!("w.s{v}.{c}"));
                let out = build_comparator(
                    &mut nl,
                    &format!("cmp{v}.{c}"),
                    clk,
                    p_prev,
                    s_in,
                    d_below[c],
                    v % 2 == 1,
                );
                p_prev = out.p_out;
                cells.push((s_in, out));
            }
            // Strap the s chain: cell c's s_in is cell c+1's s_out; the
            // rightmost cell reads the pad.
            for c in 0..columns {
                let src = if c + 1 < columns {
                    cells[c + 1].1.s_out
                } else {
                    s_pads[v]
                };
                nl.pass(vdd, src, cells[c].0);
            }
            for c in 0..columns {
                d_below[c] = cells[c].1.d_out;
            }
            s_chain_out.push(cells[0].1.s_out);
        }

        // Accumulator row: λ/x left→right, r right→left, d from above.
        let d_inverted = bits % 2 == 1;
        let mut lam_prev = lam_pad;
        let mut x_prev = x_pad;
        let mut acc = Vec::with_capacity(columns);
        for c in 0..columns {
            let clk = phi[(b + c) % 2];
            let clk_b = phi[(b + c + 1) % 2];
            let r_in = nl.node(format!("w.r.{c}"));
            let out = build_accumulator(
                &mut nl,
                &format!("acc.{c}"),
                clk,
                clk_b,
                lam_prev,
                x_prev,
                d_below[c],
                r_in,
                c % 2 == 1,
                d_inverted,
            );
            lam_prev = out.lambda_out;
            x_prev = out.x_out;
            acc.push((r_in, out));
        }
        for c in 0..columns {
            let src = if c + 1 < columns {
                acc[c + 1].1.r_out
            } else {
                r_pad
            };
            nl.pass(vdd, src, acc[c].0);
        }

        // Column 0's accumulator receives true-polarity λ/x/r, so its
        // r_out is inverted.
        let r_out = acc[0].1.r_out;

        PatternChip {
            netlist: nl,
            columns,
            bits,
            phi,
            p_pads,
            s_pads,
            lam_pad,
            x_pad,
            r_pad,
            r_out,
            r_out_inverted: true,
        }
    }

    /// Number of character-cell columns.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Alphabet width (comparator rows).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total device count of the netlist (transistors + pullups),
    /// excluding pads.
    pub fn device_count(&self) -> usize {
        self.netlist.device_count()
    }

    /// Matches `text` against `pattern` by simulating the chip beat by
    /// beat from power-on. Returns one result bit per text position
    /// (`false` for incomplete windows, as the host discards those
    /// slots).
    ///
    /// # Errors
    ///
    /// * [`SimError::Oscillation`] if the netlist misbehaves (a bug).
    /// * [`SimError::UnknownOutput`] if a result slot for a complete
    ///   window carries `X`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is longer than the array or its alphabet
    /// is wider than the chip's.
    pub fn match_pattern(&self, pattern: &Pattern, text: &[Symbol]) -> Result<Vec<bool>, SimError> {
        self.match_pattern_with_faults(pattern, text, &[])
    }

    /// The underlying netlist (for fault enumeration and statistics).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Like [`match_pattern`](Self::match_pattern) with stuck-at faults
    /// injected: each `(node, level)` pair shorts a net to a rail for
    /// the whole run. Used by [`crate::faults`] to measure test-vector
    /// coverage.
    ///
    /// # Errors
    ///
    /// As [`match_pattern`](Self::match_pattern); a faulty chip may
    /// additionally yield [`SimError::UnknownOutput`] when the fault
    /// corrupts a result slot into `X`.
    ///
    /// # Panics
    ///
    /// As [`match_pattern`](Self::match_pattern).
    pub fn match_pattern_with_faults(
        &self,
        pattern: &Pattern,
        text: &[Symbol],
        faults: &[(NodeId, crate::level::Level)],
    ) -> Result<Vec<bool>, SimError> {
        assert!(
            pattern.len() <= self.columns,
            "pattern of {} chars exceeds {} cells",
            pattern.len(),
            self.columns
        );
        assert!(
            pattern.alphabet().bits() <= self.bits,
            "alphabet too wide for this chip"
        );
        let n = self.columns;
        let b = self.bits as usize;
        let plen = pattern.len();
        let k = plen - 1;
        let phi_off = ((n - 1) % 2) as u64;
        // Host warm-up protocol: circulate the pattern once through the
        // array before the first text character, so every accumulator's
        // dynamic t node sees a λ flush before it touches a real window
        // (power-on charge is undefined; §3.3.3).
        let warmup = 2 * (plen as u64);

        // Parity correction: a signal entering from the right passes
        // through n−1−c inverters before meeting one that entered from
        // the left (c inverters). For even n the parities differ by one,
        // so the host feeds the right-edge streams (text bits, result
        // slots) pre-inverted — a constant, per the chip's data sheet.
        let right_flip = (n - 1) % 2 == 1;

        let mut sim = Sim::new(self.netlist.clone());
        sim.set(self.phi[0], false);
        sim.set(self.phi[1], false);
        sim.set(self.r_pad, right_flip);
        for &(node, level) in faults {
            sim.force(node, level);
        }

        let mut out = vec![false; text.len()];
        let total_beats = (n as u64) + phi_off + warmup + 2 * (text.len() as u64) + (b as u64) + 4;

        for t in 0..total_beats {
            // --- pads for this beat.
            for v in 0..b {
                // Pattern char j's bit v enters row v at beat 2j+v.
                if let Some(j) = t
                    .checked_sub(v as u64)
                    .filter(|d| d % 2 == 0)
                    .map(|d| d / 2)
                {
                    let idx = (j as usize) % plen;
                    let sym = pattern.symbols()[idx];
                    let bit = sym
                        .literal()
                        .map(|s| s.bit_msb_first(v as u32, self.bits))
                        .unwrap_or(false);
                    sim.set(self.p_pads[v], bit);
                }
                // Text char i's bit v enters row v at beat 2i+φ+v.
                if let Some(i) = t
                    .checked_sub(phi_off + warmup + v as u64)
                    .filter(|d| d % 2 == 0)
                    .map(|d| d / 2)
                {
                    let bit = if (i as usize) < text.len() {
                        text[i as usize].bit_msb_first(v as u32, self.bits)
                    } else {
                        false
                    };
                    sim.set(self.s_pads[v], bit ^ right_flip);
                }
            }
            // λ/x for char j enter the accumulator row at beat 2j+b.
            if let Some(j) = t
                .checked_sub(b as u64)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
            {
                let idx = (j as usize) % plen;
                sim.set(self.lam_pad, idx == k);
                sim.set(self.x_pad, pattern.symbols()[idx].is_wild());
            }

            // --- pulse this beat's phase.
            let phase = self.phi[(t % 2) as usize];
            sim.set(phase, true);
            sim.settle()?;
            sim.set(phase, false);
            sim.settle()?;
            sim.end_beat();

            // --- sample the result pad: r_i is present from beat
            // n−1+φ+2i+b (it rides the slot of s_i).
            if let Some(i) = t
                .checked_sub((n as u64) - 1 + phi_off + warmup + b as u64)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
            {
                let i = i as usize;
                if i < text.len() {
                    let level = sim.get(self.r_out);
                    if i >= k {
                        let raw = level.to_bool().ok_or_else(|| SimError::UnknownOutput {
                            node: format!("r_out (result {i})"),
                        })?;
                        out[i] = raw != self.r_out_inverted; // normalise
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn co_sim(pattern: &str, text: &str, columns: usize) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        let chip = PatternChip::new(columns, p.alphabet().bits());
        let got = chip.match_pattern(&p, &t).unwrap();
        assert_eq!(got, match_spec(&t, &p), "pattern={pattern} text={text}");
    }

    #[test]
    fn two_cell_chip_matches() {
        co_sim("AB", "ABAB", 2);
    }

    #[test]
    fn figure_3_1_on_silicon() {
        co_sim("AXC", "ABCAACCAB", 3);
    }

    #[test]
    fn prototype_chip_eight_cells_two_bits() {
        // The fabricated configuration of Plate 2.
        co_sim("ABCDABCD", "ABCDABCDABCDABCD", 8);
    }

    #[test]
    fn oversized_array_on_silicon() {
        co_sim("AB", "ABBABA", 5);
    }

    #[test]
    fn wildcards_on_silicon() {
        co_sim("XX", "ABC", 2);
        co_sim("AXA", "ABACADA", 3);
    }

    #[test]
    fn device_count_scales_linearly() {
        let c4 = PatternChip::new(4, 2).device_count();
        let c8 = PatternChip::new(8, 2).device_count();
        let c12 = PatternChip::new(12, 2).device_count();
        assert_eq!(c8 - c4, c12 - c8, "per-column cost must be constant");
        assert!(c8 > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn pattern_longer_than_array_panics() {
        let p = Pattern::parse("ABCAB").unwrap();
        let t = text_from_letters("AB").unwrap();
        let chip = PatternChip::new(4, 2);
        let _ = chip.match_pattern(&p, &t);
    }
}
