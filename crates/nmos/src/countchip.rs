//! The match-*counting* chip at transistor level (paper §3.4).
//!
//! "This problem can be solved by replacing the result bit stream by a
//! stream of integers, and replacing the accumulator cell by a counting
//! cell." This module performs exactly that modification on the NMOS
//! design: the comparator grid is untouched, the one-bit accumulator
//! becomes a `W`-bit counting cell —
//!
//! ```text
//! a    = x OR d                      (does this position agree?)
//! inc  = t + a                       (ripple-carry incrementer)
//! IF λ THEN rout ← inc; t ← 0  ELSE rout ← rin; t ← inc
//! ```
//!
//! — and the result stream widens to a `W`-bit bus. The counter `t`
//! lives in `W` two-phase master/slave registers (the same timing
//! discipline as the boolean cell); counts wrap modulo `2^W`, so the
//! host sizes `W` to the pattern length.

use crate::error::SimError;
use crate::netlist::{Netlist, NodeId};
use crate::sim::Sim;
use pm_systolic::symbol::{Pattern, Symbol};

/// Outputs of one counting-accumulator instance.
#[derive(Debug, Clone)]
pub struct CounterOutputs {
    /// `λ` for the right neighbour (inverted relative to the input).
    pub lambda_out: NodeId,
    /// `x` for the right neighbour (inverted relative to the input).
    pub x_out: NodeId,
    /// Result bus for the left neighbour (each bit inverted relative to
    /// the input bus).
    pub r_out: Vec<NodeId>,
    /// The true-polarity counter bits (LSB first), for testing.
    pub t_bits: Vec<NodeId>,
}

/// Builds a `width`-bit counting cell.
///
/// Polarity conventions as
/// [`build_accumulator`](crate::cells::build_accumulator): `clk` is the
/// cell's own phase, `clk_b` the opposite; `horiz_inverted` if
/// `λ`/`x`/`r` arrive inverted; `d_inverted` if the comparison result
/// arrives inverted.
#[allow(clippy::too_many_arguments)]
pub fn build_counter_accumulator(
    nl: &mut Netlist,
    name: &str,
    clk: NodeId,
    clk_b: NodeId,
    lambda_in: NodeId,
    x_in: NodeId,
    d_in: NodeId,
    r_in: &[NodeId],
    horiz_inverted: bool,
    d_inverted: bool,
) -> CounterOutputs {
    let width = r_in.len();
    // Input storage.
    let sl = nl.node(format!("{name}.sl"));
    let sx = nl.node(format!("{name}.sx"));
    let sd = nl.node(format!("{name}.sd"));
    nl.pass(clk, lambda_in, sl);
    nl.pass(clk, x_in, sx);
    nl.pass(clk, d_in, sd);
    let sr: Vec<NodeId> = (0..width)
        .map(|w| {
            let n = nl.node(format!("{name}.sr{w}"));
            nl.pass(clk, r_in[w], n);
            n
        })
        .collect();

    let lambda_out = nl.inverter(&format!("{name}.lq"), sl);
    let x_out = nl.inverter(&format!("{name}.xq"), sx);
    let (lam_t, lam_f) = if horiz_inverted {
        (lambda_out, sl)
    } else {
        (sl, lambda_out)
    };
    let x_t = if horiz_inverted { x_out } else { sx };
    let d_t = if d_inverted {
        nl.inverter(&format!("{name}.dn"), sd)
    } else {
        sd
    };

    // a = x OR d — the agreement bit to add.
    let a_bar = nl.nor2(&format!("{name}.ab"), x_t, d_t);
    let a = nl.inverter(&format!("{name}.a"), a_bar);

    // Counter bits: slave_w holds t̄_w; t_rail_w is the driven true bit.
    let slaves: Vec<NodeId> = (0..width)
        .map(|w| nl.node(format!("{name}.ts{w}")))
        .collect();
    let t_rails: Vec<NodeId> = slaves
        .iter()
        .enumerate()
        .map(|(w, &s)| nl.inverter(&format!("{name}.tq{w}"), s))
        .collect();

    // Ripple-carry increment: sum_w = t_w XOR c_{w-1}, c_w = t_w AND
    // c_{w-1}, with c_{-1} = a.
    let mut carry = a;
    let mut carry_bar = a_bar;
    let mut r_out = Vec::with_capacity(width);
    let mut t_bits = Vec::with_capacity(width);
    for w in 0..width {
        let t = t_rails[w];
        let t_bar = slaves[w];
        // sum̄ = XNOR(t, c) = NOT(t·c̄ + t̄·c).
        let sum_bar = nl.complex_gate(
            &format!("{name}.snb{w}"),
            &[&[t, carry_bar], &[t_bar, carry]],
        );
        // t_next = λ̄ AND sum = NOR(λ, sum̄).
        let t_next = nl.nor2(&format!("{name}.tn{w}"), lam_t, sum_bar);
        let master = nl.node(format!("{name}.tm{w}"));
        nl.pass(clk, t_next, master);
        let master_bar = nl.inverter(&format!("{name}.tmb{w}"), master);
        nl.pass(clk_b, master_bar, slaves[w]);

        // Result-bit selection: r_sel = λ·sum + λ̄·r = NOT(λ·sum̄ + λ̄·r̄).
        let r_f = if horiz_inverted {
            sr[w]
        } else {
            nl.inverter(&format!("{name}.rn{w}"), sr[w])
        };
        let r_sel = nl.complex_gate(
            &format!("{name}.rs{w}"),
            &[&[lam_t, sum_bar], &[lam_f, r_f]],
        );
        let r_store = nl.node(format!("{name}.rst{w}"));
        nl.pass(clk, r_sel, r_store);
        let r_out_bar = nl.inverter(&format!("{name}.rq{w}"), r_store);
        r_out.push(if horiz_inverted {
            nl.inverter(&format!("{name}.rqq{w}"), r_out_bar)
        } else {
            r_out_bar
        });
        t_bits.push(t_rails[w]);

        // Next carry: c_w = t_w AND c_{w-1}.
        let next_carry_bar = nl.nand2(&format!("{name}.cb{w}"), t, carry);
        let next_carry = nl.inverter(&format!("{name}.c{w}"), next_carry_bar);
        carry = next_carry;
        carry_bar = next_carry_bar;
    }

    CounterOutputs {
        lambda_out,
        x_out,
        r_out,
        t_bits,
    }
}

/// A transistor-level match-counting chip: the bit-serial comparator
/// grid of [`crate::chip`] over a row of counting cells.
#[derive(Debug, Clone)]
pub struct CountChip {
    netlist: Netlist,
    columns: usize,
    bits: u32,
    width: usize,
    phi: [NodeId; 2],
    p_pads: Vec<NodeId>,
    s_pads: Vec<NodeId>,
    lam_pad: NodeId,
    x_pad: NodeId,
    r_pads: Vec<NodeId>,
    r_out: Vec<NodeId>,
}

impl CountChip {
    /// Builds a counting chip: `columns` cells, `bits`-bit alphabet,
    /// `width`-bit counters (size `width ≥ ⌈log₂(pattern_len+1)⌉` to
    /// avoid wrap-around).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(columns: usize, bits: u32, width: usize) -> Self {
        assert!(
            columns > 0 && bits > 0 && width > 0,
            "chip needs cells, bits and width"
        );
        let b = bits as usize;
        let mut nl = Netlist::new();
        let phi0 = nl.node("phi0");
        let phi1 = nl.node("phi1");
        nl.input(phi0);
        nl.input(phi1);
        let phi = [phi0, phi1];
        let vdd = nl.vdd();

        let p_pads: Vec<NodeId> = (0..b)
            .map(|v| {
                let n = nl.node(format!("pad.p{v}"));
                nl.input(n);
                n
            })
            .collect();
        let s_pads: Vec<NodeId> = (0..b)
            .map(|v| {
                let n = nl.node(format!("pad.s{v}"));
                nl.input(n);
                n
            })
            .collect();
        let lam_pad = nl.node("pad.lam");
        let x_pad = nl.node("pad.x");
        nl.input(lam_pad);
        nl.input(x_pad);
        let r_pads: Vec<NodeId> = (0..width)
            .map(|w| {
                let n = nl.node(format!("pad.r{w}"));
                nl.input(n);
                n
            })
            .collect();

        // Comparator grid, identical to the boolean chip.
        let mut d_below: Vec<NodeId> = vec![vdd; columns];
        for v in 0..b {
            let mut p_prev = p_pads[v];
            let mut cells = Vec::with_capacity(columns);
            for c in 0..columns {
                let clkc = phi[(v + c) % 2];
                let s_in = nl.node(format!("w.s{v}.{c}"));
                let out = crate::cells::build_comparator(
                    &mut nl,
                    &format!("cmp{v}.{c}"),
                    clkc,
                    p_prev,
                    s_in,
                    d_below[c],
                    v % 2 == 1,
                );
                p_prev = out.p_out;
                cells.push((s_in, out));
            }
            for c in 0..columns {
                let src = if c + 1 < columns {
                    cells[c + 1].1.s_out
                } else {
                    s_pads[v]
                };
                nl.pass(vdd, src, cells[c].0);
            }
            for c in 0..columns {
                d_below[c] = cells[c].1.d_out;
            }
        }

        // Counting row.
        let d_inverted = bits % 2 == 1;
        let mut lam_prev = lam_pad;
        let mut x_prev = x_pad;
        let mut acc: Vec<(Vec<NodeId>, CounterOutputs)> = Vec::with_capacity(columns);
        for c in 0..columns {
            let clkc = phi[(b + c) % 2];
            let clkb = phi[(b + c + 1) % 2];
            let r_in: Vec<NodeId> = (0..width).map(|w| nl.node(format!("w.r{w}.{c}"))).collect();
            let out = build_counter_accumulator(
                &mut nl,
                &format!("cnt.{c}"),
                clkc,
                clkb,
                lam_prev,
                x_prev,
                d_below[c],
                &r_in,
                c % 2 == 1,
                d_inverted,
            );
            lam_prev = out.lambda_out;
            x_prev = out.x_out;
            acc.push((r_in, out));
        }
        #[allow(clippy::needless_range_loop)]
        for c in 0..columns {
            for w in 0..width {
                let src = if c + 1 < columns {
                    acc[c + 1].1.r_out[w]
                } else {
                    r_pads[w]
                };
                nl.pass(vdd, src, acc[c].0[w]);
            }
        }
        let r_out = acc[0].1.r_out.clone();

        CountChip {
            netlist: nl,
            columns,
            bits,
            width,
            phi,
            p_pads,
            s_pads,
            lam_pad,
            x_pad,
            r_pads,
            r_out,
        }
    }

    /// Counter width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total device count.
    pub fn device_count(&self) -> usize {
        self.netlist.device_count()
    }

    /// Counts per-window agreements at transistor level; behaviour
    /// matches [`pm_systolic::matcher::SystolicCounter`] modulo `2^W`.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] or [`SimError::UnknownOutput`] on
    /// netlist misbehaviour.
    ///
    /// # Panics
    ///
    /// Panics if the pattern exceeds the array or the alphabet width.
    pub fn count(&self, pattern: &Pattern, text: &[Symbol]) -> Result<Vec<u32>, SimError> {
        assert!(pattern.len() <= self.columns, "pattern exceeds array");
        assert!(pattern.alphabet().bits() <= self.bits, "alphabet too wide");
        let n = self.columns;
        let b = self.bits as usize;
        let plen = pattern.len();
        let k = plen - 1;
        let phi_off = ((n - 1) % 2) as u64;
        let warmup = 2 * (plen as u64);
        let right_flip = (n - 1) % 2 == 1;

        let mut sim = Sim::new(self.netlist.clone());
        sim.set(self.phi[0], false);
        sim.set(self.phi[1], false);
        for &pad in &self.r_pads {
            sim.set(pad, right_flip);
        }

        let mut out = vec![0u32; text.len()];
        let total = (n as u64) + phi_off + warmup + 2 * (text.len() as u64) + (b as u64) + 4;

        for t in 0..total {
            for v in 0..b as u32 {
                if let Some(j) = t
                    .checked_sub(u64::from(v))
                    .filter(|d| d % 2 == 0)
                    .map(|d| d / 2)
                {
                    let idx = (j as usize) % plen;
                    let sym = pattern.symbols()[idx];
                    let bit = sym
                        .literal()
                        .map(|s| s.bit_msb_first(v, self.bits))
                        .unwrap_or(false);
                    sim.set(self.p_pads[v as usize], bit);
                }
                if let Some(i) = t
                    .checked_sub(phi_off + warmup + u64::from(v))
                    .filter(|d| d % 2 == 0)
                    .map(|d| d / 2)
                {
                    let bit = if (i as usize) < text.len() {
                        text[i as usize].bit_msb_first(v, self.bits)
                    } else {
                        false
                    };
                    sim.set(self.s_pads[v as usize], bit ^ right_flip);
                }
            }
            if let Some(j) = t
                .checked_sub(b as u64)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
            {
                let idx = (j as usize) % plen;
                sim.set(self.lam_pad, idx == k);
                sim.set(self.x_pad, pattern.symbols()[idx].is_wild());
            }

            let phase = self.phi[(t % 2) as usize];
            sim.set(phase, true);
            sim.settle()?;
            sim.set(phase, false);
            sim.settle()?;
            sim.end_beat();

            if let Some(i) = t
                .checked_sub((n as u64) - 1 + phi_off + warmup + b as u64)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
            {
                let i = i as usize;
                if i < text.len() && i >= k {
                    let mut value = 0u32;
                    for (w, &node) in self.r_out.iter().enumerate() {
                        let raw =
                            sim.get(node)
                                .to_bool()
                                .ok_or_else(|| SimError::UnknownOutput {
                                    node: format!("r_out[{w}] (result {i})"),
                                })?;
                        // Column-0 output is inverted.
                        if !raw {
                            value |= 1 << w;
                        }
                    }
                    out[i] = value;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::count_spec;
    use pm_systolic::symbol::text_from_letters;

    fn co_sim(pattern: &str, text: &str, columns: usize, width: usize) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        let chip = CountChip::new(columns, p.alphabet().bits(), width);
        let got = chip.count(&p, &t).unwrap();
        assert_eq!(got, count_spec(&t, &p), "pattern={pattern} text={text}");
    }

    #[test]
    fn two_cell_counter_matches_spec() {
        co_sim("AB", "ABAB", 2, 2);
    }

    #[test]
    fn counting_with_wildcards() {
        co_sim("AXC", "ABCAACCAB", 3, 2);
    }

    #[test]
    fn four_cell_counter() {
        co_sim("ABCA", "ABCAABCAABDA", 4, 3);
    }

    #[test]
    fn counter_wraps_modulo_width() {
        // A 1-bit counter counting up to 2 agreements wraps: the chip
        // reports counts mod 2 — the host's responsibility to size W.
        let p = Pattern::parse("AA").unwrap();
        let t = text_from_letters("AAA").unwrap();
        let chip = CountChip::new(2, 2, 1);
        let got = chip.count(&p, &t).unwrap();
        let spec: Vec<u32> = count_spec(&t, &p).iter().map(|c| c % 2).collect();
        assert_eq!(got, spec);
    }

    #[test]
    fn device_cost_of_the_extension() {
        // The §3.4 modification is purely in the accumulator row: the
        // counting chip costs more devices than the boolean one, and
        // the increment per counter bit is visible.
        let boolean = crate::chip::PatternChip::new(4, 2).device_count();
        let w2 = CountChip::new(4, 2, 2).device_count();
        let w4 = CountChip::new(4, 2, 4).device_count();
        assert!(w2 > boolean);
        assert!(w4 > w2);
        let per_bit = (w4 - w2) / 2 / 4; // per bit per cell
        assert!(
            (10..40).contains(&per_bit),
            "devices per counter bit: {per_bit}"
        );
    }
}
