//! `atomic-ordering-audit` — orderings are a contract between sites,
//! not a per-line choice.
//!
//! Two checks:
//!
//! 1. **No `Ordering::SeqCst`.** The workspace's hot paths (the
//!    scheduler's in-flight accounting, the serve admission counters,
//!    every telemetry counter) deliberately use the weakest ordering
//!    their invariant allows — `Relaxed` for statistics,
//!    acquire/release for handoffs. `SeqCst` in this codebase is
//!    almost always a "wasn't sure" marker that costs a full fence on
//!    the hottest loops; where a genuine total order is needed, say so
//!    with an `allow` and its justification.
//!
//! 2. **Release/acquire pairing.** For each atomic field (grouped by
//!    receiver name within a crate), if any load expects `Acquire`
//!    semantics, then *every* write site must publish with `Release`
//!    (or stronger). A `Relaxed` store paired with an `Acquire` load
//!    is the classic silent bug: it compiles, it works on x86, and it
//!    reorders on ARM. The serve shutdown flag
//!    (`stop.store(true, Release)` / `stop.load(Acquire)`) is the
//!    motivating in-tree pairing.
//!
//! The grouping is lexical (receiver identifier within one crate) —
//! aliases through clones of one `Arc<AtomicBool>` under *different*
//! names are not connected, and same-named fields of different structs
//! in one crate are conflated. Both are acceptable for an audit whose
//! job is to force a human to look.

use super::Rule;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// See the module docs.
pub struct AtomicOrderingAudit;

/// Atomic method names that read, write, or both.
const LOADS: &[&str] = &["load"];
const STORES: &[&str] = &["store"];
const RMWS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One atomic operation site.
#[derive(Debug)]
struct Site {
    file_idx: usize,
    line: u32,
    op: &'static str,
    /// The success/first ordering named in the call.
    ordering: String,
}

impl Rule for AtomicOrderingAudit {
    fn name(&self) -> &'static str {
        "atomic-ordering-audit"
    }

    fn description(&self) -> &'static str {
        "no SeqCst on hot paths; every write to a field with Acquire loads \
         must publish with Release or stronger"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // Check 1: SeqCst anywhere in workspace code.
        for file in &ws.files {
            let toks = &file.lexed.tokens;
            for i in 0..toks.len() {
                if super::seq_at(toks, i, &["Ordering", "::", "SeqCst"]) {
                    out.push(Finding {
                        rule: self.name(),
                        file: file.rel.clone(),
                        line: toks[i].line,
                        message: "Ordering::SeqCst costs a full fence; use the weakest \
                                  ordering the invariant allows, or keep it with an \
                                  `allow` naming the total-order requirement"
                            .to_string(),
                    });
                }
            }
        }

        // Check 2: per-(crate, receiver) release/acquire pairing.
        let mut groups: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
        for (file_idx, file) in ws.files.iter().enumerate() {
            collect_sites(&file.lexed.tokens, file_idx, &file.crate_name, &mut groups);
        }
        for ((_, receiver), sites) in &groups {
            let acquire_load = sites
                .iter()
                .any(|s| s.op == "load" && matches!(s.ordering.as_str(), "Acquire" | "SeqCst"));
            if !acquire_load {
                continue;
            }
            for s in sites {
                let writes = s.op != "load";
                let releases = matches!(s.ordering.as_str(), "Release" | "AcqRel" | "SeqCst");
                if writes && !releases {
                    out.push(Finding {
                        rule: self.name(),
                        file: ws.files[s.file_idx].rel.clone(),
                        line: s.line,
                        message: format!(
                            "`{receiver}.{op}(…, Ordering::{ord})` is a non-Release \
                             write, but `{receiver}` has Acquire loads in this crate; \
                             the publish is not ordered before the observe",
                            receiver = receiver,
                            op = s.op,
                            ord = s.ordering
                        ),
                    });
                }
            }
        }
    }
}

/// Collects `recv.op(… Ordering::X …)` sites.
fn collect_sites(
    toks: &[Token],
    file_idx: usize,
    crate_name: &str,
    groups: &mut BTreeMap<(String, String), Vec<Site>>,
) {
    for i in 2..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let Some(op) = LOADS
            .iter()
            .chain(STORES)
            .chain(RMWS)
            .find(|&&o| o == t.text)
        else {
            continue;
        };
        // Receiver: `<ident-or-num> . op (`.
        if toks[i - 1].text != "." {
            continue;
        }
        let recv = &toks[i - 2];
        if !matches!(recv.kind, TokenKind::Ident | TokenKind::Num) {
            continue;
        }
        if toks.get(i + 1).map(|o| o.text.as_str()) != Some("(") {
            continue;
        }
        let Some(close) = super::matching_close(toks, i + 1) else {
            continue;
        };
        // First `Ordering::X` inside the call is the success/primary
        // ordering (fetch_update and compare_exchange name a failure
        // ordering after it; the success side is what publishes).
        let Some(ord_at) = super::find_seq(&toks[i + 2..close], 0, &["Ordering", "::"]) else {
            continue; // not an atomic call (e.g. Vec::swap, io load)
        };
        let Some(ord) = toks.get(i + 2 + ord_at + 2) else {
            continue;
        };
        groups
            .entry((crate_name.to_string(), recv.text.clone()))
            .or_default()
            .push(Site {
                file_idx,
                line: t.line,
                op,
                ordering: ord.text.clone(),
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        use crate::workspace::Workspace;
        let dir = std::env::temp_dir().join(format!(
            "pm_lint_atomics_{}_{:p}",
            std::process::id(),
            src.as_ptr()
        ));
        std::fs::create_dir_all(dir.join("crates/demo/src")).unwrap();
        let f = dir.join("crates/demo/src/lib.rs");
        std::fs::write(&f, src).unwrap();
        let ws = Workspace::from_files(&dir, &[f]).unwrap();
        let mut out = Vec::new();
        AtomicOrderingAudit.check(&ws, &mut out);
        out
    }

    #[test]
    fn seqcst_fires_and_strings_do_not() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); let s = \"Ordering::SeqCst\"; }";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("SeqCst"));
    }

    #[test]
    fn relaxed_store_with_acquire_load_fires() {
        let src = "fn f(stop: &AtomicBool) { stop.store(true, Ordering::Relaxed); if stop.load(Ordering::Acquire) {} }";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("non-Release write"));
    }

    #[test]
    fn release_store_with_acquire_load_is_clean() {
        let src = "fn f(stop: &AtomicBool) { stop.store(true, Ordering::Release); if stop.load(Ordering::Acquire) {} }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn relaxed_counters_are_clean() {
        let src =
            "fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::Relaxed); n.load(Ordering::Relaxed); }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn rmw_with_acqrel_counts_as_release() {
        let src =
            "fn f(n: &AtomicU64) { n.fetch_sub(1, Ordering::AcqRel); n.load(Ordering::Acquire); }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn non_atomic_swap_is_ignored() {
        let src = "fn f(v: &mut Vec<u8>, w: &mut Vec<u8>) { v.swap(0, 1); std::mem::swap(v, w); }";
        assert!(run_on(src).is_empty());
    }
}
