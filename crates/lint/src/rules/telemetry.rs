//! `telemetry-completeness` — every observable event is kept, and
//! every kept metric is documented.
//!
//! The workspace splits observability in two: `pm_systolic::telemetry`
//! owns the `TraceEvent` taxonomy (*what can be observed*) and
//! `pm_chip::telemetry`'s `MetricsRegistry` folds the stream into
//! counters (*what is kept*). Nothing but convention ties them
//! together: the registry's fold is a `match` with a `_ => {}` arm, so
//! adding a `TraceEvent` variant without a fold arm compiles cleanly
//! and silently drops the new signal — the exact drift this rule
//! forbids. PR 8 added five serve events and seven counters by hand;
//! the next person gets a diagnostic instead of a review comment.
//!
//! Checks:
//!
//! 1. every variant of the `enum TraceEvent` declaration is named as a
//!    `TraceEvent::Variant` pattern in the file that implements
//!    `TraceSink for MetricsRegistry`;
//! 2. every exported metric name (a string literal of the shape
//!    `pm_[a-z0-9_]+` in the registry file — counter rows, gauges and
//!    histogram prefixes alike) appears in `ARCHITECTURE.md`, so the
//!    Prometheus page and the documentation can't drift apart. (The
//!    Prometheus exposition itself is generated from the same
//!    `counter_rows()` table it is checked against, so exposition
//!    coverage is structural; the doc is the part that needs proving.)
//!
//! Both halves locate their subjects by content, so fixtures model the
//! contract in one file.

use super::{enum_variants, find_seq, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

/// See the module docs.
pub struct TelemetryCompleteness;

impl Rule for TelemetryCompleteness {
    fn name(&self) -> &'static str {
        "telemetry-completeness"
    }

    fn description(&self) -> &'static str {
        "every TraceEvent variant folds into the MetricsRegistry and every \
         exported pm_* metric name is documented in ARCHITECTURE.md"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // The taxonomy: the file declaring `enum TraceEvent`.
        let decl = ws
            .files
            .iter()
            .find_map(|f| find_seq(&f.lexed.tokens, 0, &["enum", "TraceEvent"]).map(|kw| (f, kw)));
        // The fold: the file implementing `TraceSink for MetricsRegistry`.
        let fold = ws.files.iter().find(|f| {
            find_seq(&f.lexed.tokens, 0, &["TraceSink", "for", "MetricsRegistry"]).is_some()
        });
        if let (Some((decl_file, kw)), Some(fold_file)) = (decl, fold) {
            for (variant, line) in enum_variants(&decl_file.lexed.tokens, kw) {
                if find_seq(&fold_file.lexed.tokens, 0, &["TraceEvent", "::", &variant]).is_none() {
                    out.push(Finding {
                        rule: self.name(),
                        file: decl_file.rel.clone(),
                        line,
                        message: format!(
                            "TraceEvent::{variant} has no fold arm in {}; the registry \
                             silently drops it (add a counter or an explicit arm)",
                            fold_file.rel
                        ),
                    });
                }
            }
        }

        // Metric-name documentation coverage.
        let Some(arch) = ws.doc("ARCHITECTURE.md") else {
            return; // fixture mode: no doc to check against
        };
        let Some(fold_file) = fold else { return };
        for t in &fold_file.lexed.tokens {
            if t.kind != TokenKind::Str || !is_metric_name(&t.text) {
                continue;
            }
            if !arch.contains(&t.text) {
                out.push(Finding {
                    rule: self.name(),
                    file: fold_file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "exported metric `{}` is not documented in ARCHITECTURE.md's \
                         metrics table",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Whether a string literal is exactly a metric name (`pm_` + lowercase
/// snake) — filters out exposition fragments and test assertions that
/// merely contain one.
fn is_metric_name(s: &str) -> bool {
    s.strip_prefix("pm_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_shape() {
        assert!(is_metric_name("pm_chars_total"));
        assert!(is_metric_name("pm_batch_micros"));
        assert!(!is_metric_name("pm_chars_total 42")); // exposition row
        assert!(!is_metric_name("pm_")); // empty tail
        assert!(!is_metric_name("PM_SIMD")); // env var
        assert!(!is_metric_name("pm_chars_total\": 1")); // JSON fragment
    }
}
