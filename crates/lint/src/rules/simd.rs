//! `simd-dispatch-soundness` — the PR 5 bug class, machine-checked.
//!
//! History: PR 4 shipped `run_wide_avx512` with
//! `#[target_feature(enable = "avx512f,avx512bw")]` while the runtime
//! guard only ever proved `avx512f` (`detect_level` checks
//! `is_x86_feature_detected!("avx512f")` and nothing else). On an
//! AVX-512F-without-BW part the dispatch would have executed BW
//! instructions the CPU does not have — undefined behaviour. A human
//! reviewer caught it in PR 5; this rule makes the reviewer
//! mechanical.
//!
//! For every `#[target_feature(enable = …)]` function the rule
//! requires:
//!
//! 1. the function is declared `unsafe` (calling it is a promise about
//!    the CPU, and safe Rust must not be able to make that promise);
//! 2. at least one call site exists in the same crate, and every call
//!    site sits directly behind a `SimdLevel` match arm of a
//!    `match simd_level()` dispatch (the only guard the workspace
//!    recognises as proof);
//! 3. the features the attribute enables are a subset of what the
//!    guarding arm *proves*: `SimdLevel::Avx2` proves `avx2`,
//!    `SimdLevel::Avx512` proves `avx512f` — exactly the features
//!    `detect_level` detects, nothing inferred. `avx512bw` under an
//!    `Avx512` arm is precisely the PR 5 bug and fires.

use super::{find_seq, matching_close, seq_at, Rule};
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::workspace::{SourceFile, Workspace};

/// See the module docs.
pub struct SimdDispatchSoundness;

/// What each `SimdLevel` arm proves about the CPU: the feature its
/// `detect_level` branch actually tested, nothing more. Extending the
/// dispatch (say with a `Neon` level) means extending this table *and*
/// `detect_level` together.
const PROVEN: &[(&str, &[&str])] = &[("Avx2", &["avx2"]), ("Avx512", &["avx512f"])];

/// One `#[target_feature]` function found in a file.
struct TargetFn {
    name: String,
    line: u32,
    features: Vec<String>,
    is_unsafe: bool,
}

impl Rule for SimdDispatchSoundness {
    fn name(&self) -> &'static str {
        "simd-dispatch-soundness"
    }

    fn description(&self) -> &'static str {
        "#[target_feature] fns must be unsafe, reachable only behind a matching \
         simd_level() guard, and must enable no feature the guard does not prove"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            for tf in target_feature_fns(&file.lexed.tokens) {
                if !tf.is_unsafe {
                    out.push(Finding {
                        rule: self.name(),
                        file: file.rel.clone(),
                        line: tf.line,
                        message: format!(
                            "`{}` has #[target_feature(enable = \"{}\")] but is not \
                             declared `unsafe fn`; a safe caller could run it on a CPU \
                             without those features",
                            tf.name,
                            tf.features.join(",")
                        ),
                    });
                }
                self.check_call_sites(ws, file, &tf, out);
            }
        }
    }
}

impl SimdDispatchSoundness {
    /// Verifies every same-crate call site of `tf` is guarded and that
    /// the guard proves the enabled feature set.
    fn check_call_sites(
        &self,
        ws: &Workspace,
        decl_file: &SourceFile,
        tf: &TargetFn,
        out: &mut Vec<Finding>,
    ) {
        let mut call_sites = 0usize;
        for file in ws.crate_files(&decl_file.crate_name) {
            let toks = &file.lexed.tokens;
            for i in 0..toks.len() {
                if !is_call_site(toks, i, &tf.name) {
                    continue;
                }
                call_sites += 1;
                match guard_arm(toks, i) {
                    Some((level, arm_line)) => {
                        let proven = PROVEN
                            .iter()
                            .find(|(l, _)| *l == level)
                            .map(|(_, f)| *f)
                            .unwrap_or(&[]);
                        for feat in &tf.features {
                            if !proven.contains(&feat.as_str()) {
                                out.push(Finding {
                                    rule: self.name(),
                                    file: file.rel.clone(),
                                    line: toks[i].line,
                                    message: format!(
                                        "`{}` enables \"{feat}\" but the guarding \
                                         `SimdLevel::{level}` arm (line {arm_line}) only \
                                         proves {:?}; running it here is UB on a CPU with \
                                         {} but not {feat}",
                                        tf.name,
                                        proven,
                                        proven.join("+"),
                                    ),
                                });
                            }
                        }
                    }
                    None => out.push(Finding {
                        rule: self.name(),
                        file: file.rel.clone(),
                        line: toks[i].line,
                        message: format!(
                            "call to `#[target_feature]` fn `{}` is not directly behind \
                             a `SimdLevel::…` arm of a `match simd_level()` dispatch",
                            tf.name
                        ),
                    }),
                }
            }
        }
        if call_sites == 0 {
            out.push(Finding {
                rule: self.name(),
                file: decl_file.rel.clone(),
                line: tf.line,
                message: format!(
                    "`{}` is never called in crate `{}`; a #[target_feature] fn with no \
                     guarded dispatch call site has no proof it only runs on capable CPUs",
                    tf.name, decl_file.crate_name
                ),
            });
        }
    }
}

/// Extracts every `#[target_feature(enable = …)]` function header.
fn target_feature_fns(tokens: &[Token]) -> Vec<TargetFn> {
    let mut found = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // `#[target_feature(…)]`
        if !(seq_at(tokens, i, &["#", "["]) && seq_at(tokens, i + 2, &["target_feature"])) {
            i += 1;
            continue;
        }
        let attr_close = match matching_close(tokens, i + 1) {
            Some(c) => c,
            None => break,
        };
        let mut features = Vec::new();
        for t in &tokens[i + 2..attr_close] {
            if t.kind == TokenKind::Str {
                for feat in t.text.split(',') {
                    let feat = feat.trim();
                    if !feat.is_empty() {
                        features.push(feat.to_string());
                    }
                }
            }
        }
        // Skip any further attributes between target_feature and `fn`.
        let mut j = attr_close + 1;
        while seq_at(tokens, j, &["#", "["]) {
            match matching_close(tokens, j + 1) {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // Header modifiers until `fn`.
        let mut is_unsafe = false;
        let header_line = tokens[i].line;
        let mut name = None;
        for k in j..(j + 12).min(tokens.len()) {
            let t = &tokens[k];
            if t.kind == TokenKind::Ident && t.text == "unsafe" {
                is_unsafe = true;
            }
            if t.kind == TokenKind::Ident && t.text == "fn" {
                if let Some(n) = tokens.get(k + 1) {
                    if n.kind == TokenKind::Ident {
                        name = Some(n.text.clone());
                    }
                }
                break;
            }
        }
        if let Some(name) = name {
            found.push(TargetFn {
                name,
                line: header_line,
                features,
                is_unsafe,
            });
        }
        i = attr_close + 1;
    }
    found
}

/// Whether `tokens[i]` is a *call* of `name` (ident followed by `(` or
/// turbofish), not its definition (`fn name`) or a path segment.
fn is_call_site(tokens: &[Token], i: usize, name: &str) -> bool {
    let t = &tokens[i];
    if t.kind != TokenKind::Ident || t.text != name {
        return false;
    }
    if i > 0 && tokens[i - 1].kind == TokenKind::Ident && tokens[i - 1].text == "fn" {
        return false;
    }
    match tokens.get(i + 1) {
        Some(n) if n.kind == TokenKind::Punct && n.text == "(" => true,
        Some(n) if n.kind == TokenKind::Punct && n.text == "::" => {
            // turbofish: name::<W>(…)
            matches!(tokens.get(i + 2), Some(lt) if lt.text == "<")
        }
        _ => false,
    }
}

/// Searches backwards from a call site for the `SimdLevel::X =>` arm
/// that guards it, and checks the arm belongs to a `match simd_level()`.
/// Returns the proving level's name and the arm's line.
///
/// The window is deliberately small (an arm body here is `unsafe {
/// call(…) }` plus cfg attributes): a call 40 tokens past its arm is
/// no longer "directly behind" the guard and should be restructured
/// rather than accommodated.
fn guard_arm(tokens: &[Token], call: usize) -> Option<(String, u32)> {
    let window_start = call.saturating_sub(40);
    // Nearest `=>` before the call.
    let arrow = (window_start..call)
        .rev()
        .find(|&k| tokens[k].kind == TokenKind::Punct && tokens[k].text == "=>")?;
    // Pattern must end `SimdLevel :: Level`.
    if arrow < 3 {
        return None;
    }
    if !seq_at(tokens, arrow - 3, &["SimdLevel", "::"]) {
        return None;
    }
    let level = &tokens[arrow - 1];
    if level.kind != TokenKind::Ident {
        return None;
    }
    // The arm must sit inside a `match simd_level()` — look back a
    // bounded window for the dispatch header.
    let match_start = arrow.saturating_sub(220);
    let dispatch = find_seq(
        &tokens[match_start..arrow],
        0,
        &["match", "simd_level", "("],
    )
    .is_some();
    if !dispatch {
        return None;
    }
    Some((level.text.clone(), level.line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn extracts_target_feature_headers() {
        let src = r#"
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn wide<const W: usize>(x: u32) {}
#[target_feature(enable = "avx2")]
fn not_unsafe() {}
"#;
        let fns = target_feature_fns(&lex(src).tokens);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "wide");
        assert_eq!(fns[0].features, ["avx512f", "avx512bw"]);
        assert!(fns[0].is_unsafe);
        assert_eq!(fns[1].name, "not_unsafe");
        assert!(!fns[1].is_unsafe);
    }

    #[test]
    fn guard_arm_recognises_the_dispatch_idiom() {
        let src = r#"
fn run() {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { kernel_avx512(planes) },
        _ => kernel_generic(planes),
    }
}
"#;
        let toks = lex(src).tokens;
        let call = (0..toks.len())
            .find(|&i| is_call_site(&toks, i, "kernel_avx512"))
            .unwrap();
        let (level, _) = guard_arm(&toks, call).unwrap();
        assert_eq!(level, "Avx512");
        let unguarded = (0..toks.len())
            .find(|&i| is_call_site(&toks, i, "kernel_generic"))
            .unwrap();
        assert!(guard_arm(&toks, unguarded).is_none());
    }
}
