//! `error-taxonomy` — no dead or mute error variants.
//!
//! The workspace carries eight hand-rolled error enums (`Error`,
//! `HostError`, `CodecError`, `ClientError`, `GraphError`,
//! `FaultError`, `SimError`, `MatchError`) because it takes no
//! dependency on `thiserror`. Hand-rolled means hand-drifted: a
//! variant added for one code path keeps compiling after that path is
//! deleted, and a variant without a `Display` arm renders as nothing
//! useful at the one moment someone is reading a failure. For every
//! `pub enum` named `Error` or `*Error` the rule requires:
//!
//! 1. a `Display` impl for the enum exists in its declaring file, and
//!    every variant is named inside it (matched or delegated — the
//!    check is presence of `Variant` as a code token in the impl
//!    body, so `Self::Io(e) => …` and `Error::Io(e) => …` both
//!    count);
//! 2. every variant is *constructed or matched somewhere else*: a
//!    `TypeName::Variant` path (any file, `From` impls and `?`
//!    desugaring included) or `Self::Variant` outside both the enum
//!    body and the Display impl. A variant nobody produces is either
//!    dead taxonomy or a missing error path — both worth a look.

use super::{body_range, find_seq, seq_at, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

/// See the module docs.
pub struct ErrorTaxonomy;

impl Rule for ErrorTaxonomy {
    fn name(&self) -> &'static str {
        "error-taxonomy"
    }

    fn description(&self) -> &'static str {
        "every public *Error enum variant has a Display arm and a construction \
         site outside the enum and its Display impl"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (fi, file) in ws.files.iter().enumerate() {
            let toks = &file.lexed.tokens;
            let mut i = 0;
            while i < toks.len() {
                // `pub enum <Name>` where Name is Error or *Error.
                if !seq_at(toks, i, &["pub", "enum"]) {
                    i += 1;
                    continue;
                }
                let Some(name_tok) = toks.get(i + 2) else {
                    break;
                };
                let name = name_tok.text.clone();
                if name_tok.kind != TokenKind::Ident || !name.ends_with("Error") && name != "Error"
                {
                    i += 3;
                    continue;
                }
                let kw = i + 1; // the `enum` keyword
                let variants = super::enum_variants(toks, kw);
                let enum_body = body_range(toks, kw, 64);
                let display = display_impl(toks, &name);

                if display.is_none() {
                    out.push(Finding {
                        rule: self.name(),
                        file: file.rel.clone(),
                        line: name_tok.line,
                        message: format!(
                            "`pub enum {name}` has no `impl Display for {name}` in its \
                             declaring file; its failures render nothing human-readable"
                        ),
                    });
                }

                for (variant, line) in &variants {
                    if let Some((ds, de)) = display {
                        let shown = (ds..de)
                            .any(|k| toks[k].kind == TokenKind::Ident && toks[k].text == *variant);
                        if !shown {
                            out.push(Finding {
                                rule: self.name(),
                                file: file.rel.clone(),
                                line: *line,
                                message: format!(
                                    "`{name}::{variant}` is not covered by the Display \
                                     impl; this failure prints without its case"
                                ),
                            });
                        }
                    }
                    if !constructed(ws, fi, &name, variant, enum_body, display) {
                        out.push(Finding {
                            rule: self.name(),
                            file: file.rel.clone(),
                            line: *line,
                            message: format!(
                                "`{name}::{variant}` is never constructed or matched \
                                 outside its declaration and Display impl; dead taxonomy \
                                 or a missing error path"
                            ),
                        });
                    }
                }
                i = enum_body.map(|(_, e)| e).unwrap_or(i + 3);
            }
        }
    }
}

/// Token range of the `impl … Display for <name>` body in the same
/// file, if any.
fn display_impl(toks: &[crate::lexer::Token], name: &str) -> Option<(usize, usize)> {
    let mut from = 0;
    while let Some(at) = find_seq(toks, from, &["Display", "for", name]) {
        // Must be an impl header, not e.g. a doc sentence (comments are
        // already stripped, so any match is code; just find the body).
        if let Some(range) = body_range(toks, at, 24) {
            return Some(range);
        }
        from = at + 1;
    }
    None
}

/// Whether `name::variant` (any file) or `Self::variant` (declaring
/// file) appears outside the enum body and the Display impl.
fn constructed(
    ws: &Workspace,
    decl_idx: usize,
    name: &str,
    variant: &str,
    enum_body: Option<(usize, usize)>,
    display: Option<(usize, usize)>,
) -> bool {
    for (fi, file) in ws.files.iter().enumerate() {
        let toks = &file.lexed.tokens;
        let mut from = 0;
        loop {
            let qualified = find_seq(toks, from, &[name, "::", variant]);
            let selfed = if fi == decl_idx {
                find_seq(toks, from, &["Self", "::", variant])
            } else {
                None
            };
            let at = match (qualified, selfed) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            let inside = |r: Option<(usize, usize)>| {
                fi == decl_idx && r.is_some_and(|(s, e)| at >= s && at < e)
            };
            if !inside(enum_body) && !inside(display) {
                return true;
            }
            from = at + 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let dir = std::env::temp_dir().join(format!(
            "pm_lint_errors_{}_{:p}",
            std::process::id(),
            files.as_ptr()
        ));
        std::fs::create_dir_all(dir.join("crates/demo/src")).unwrap();
        let paths: Vec<_> = files
            .iter()
            .map(|(rel, src)| {
                let p = dir.join("crates/demo/src").join(rel);
                std::fs::write(&p, src).unwrap();
                p
            })
            .collect();
        let ws = crate::workspace::Workspace::from_files(&dir, &paths).unwrap();
        let mut out = Vec::new();
        ErrorTaxonomy.check(&ws, &mut out);
        out
    }

    const GOOD: &str = r#"
pub enum DemoError { Io, Full }
impl fmt::Display for DemoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self { Self::Io => write!(f, "io"), Self::Full => write!(f, "full") }
    }
}
fn open() -> Result<(), DemoError> { Err(DemoError::Io) }
fn push() -> Result<(), DemoError> { Err(DemoError::Full) }
"#;

    #[test]
    fn covered_enum_is_clean() {
        assert!(run_on(&[("lib.rs", GOOD)]).is_empty());
    }

    #[test]
    fn missing_display_arm_fires() {
        let src = r#"
pub enum DemoError { Io, Full }
impl fmt::Display for DemoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self { Self::Io => write!(f, "io"), _ => write!(f, "?") }
    }
}
fn open() -> Result<(), DemoError> { Err(DemoError::Io) }
fn push() -> Result<(), DemoError> { Err(DemoError::Full) }
"#;
        let findings = run_on(&[("lib.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("Display"));
    }

    #[test]
    fn unconstructed_variant_fires() {
        let src = r#"
pub enum DemoError { Io, Full }
impl fmt::Display for DemoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self { Self::Io => write!(f, "io"), Self::Full => write!(f, "full") }
    }
}
fn open() -> Result<(), DemoError> { Err(DemoError::Io) }
"#;
        let findings = run_on(&[("lib.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("never constructed"));
    }

    #[test]
    fn construction_in_sibling_file_counts() {
        let decl = r#"
pub enum DemoError { Io }
impl fmt::Display for DemoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self { Self::Io => write!(f, "io") }
    }
}
"#;
        let user = "fn open() -> Result<(), DemoError> { Err(DemoError::Io) }";
        assert!(run_on(&[("err.rs", decl), ("lib.rs", user)]).is_empty());
    }

    #[test]
    fn non_error_enums_are_ignored() {
        let src = "pub enum Mode { Fast, Slow }";
        assert!(run_on(&[("lib.rs", src)]).is_empty());
    }
}
