//! The rule registry and the token-pattern helpers every rule builds
//! on.
//!
//! Each rule is a pure function over the [`Workspace`]: it sees every
//! file's token stream (comments and string bodies already peeled off
//! by the lexer) and appends [`Finding`]s. Rules discover their
//! subjects *by content*, not by hard-coded path — the file that
//! declares `enum TraceEvent` is the telemetry source of truth
//! wherever it lives — so the same rules run unchanged over the real
//! tree and over single-file fixture corpora.

use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::workspace::Workspace;

mod atomics;
mod errors;
mod frames;
mod simd;
mod telemetry;

pub use atomics::AtomicOrderingAudit;
pub use errors::ErrorTaxonomy;
pub use frames::FrameExhaustiveness;
pub use simd::SimdDispatchSoundness;
pub use telemetry::TelemetryCompleteness;

/// One machine-checked invariant.
pub trait Rule {
    /// Stable kebab-case name (what `allow(...)` cites).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Appends findings for every violation in the workspace.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every shipped rule, in documentation order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(SimdDispatchSoundness),
        Box::new(TelemetryCompleteness),
        Box::new(FrameExhaustiveness),
        Box::new(AtomicOrderingAudit),
        Box::new(ErrorTaxonomy),
    ]
}

// ---------------------------------------------------------------------
// Token-pattern helpers.
// ---------------------------------------------------------------------

/// Whether `tokens[i..]` matches `pat` textually, restricted to code
/// tokens (idents, puncts, numbers) — a string literal whose body
/// happens to spell `Ordering` can never match.
pub(crate) fn seq_at(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    if i + pat.len() > tokens.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, want)| {
        let t = &tokens[i + k];
        matches!(t.kind, TokenKind::Ident | TokenKind::Punct | TokenKind::Num) && t.text == *want
    })
}

/// First index at or after `from` where `pat` matches.
pub(crate) fn find_seq(tokens: &[Token], from: usize, pat: &[&str]) -> Option<usize> {
    (from..tokens.len()).find(|&i| seq_at(tokens, i, pat))
}

/// Whether the token is an opening delimiter.
fn opens(t: &Token) -> bool {
    t.kind == TokenKind::Punct && matches!(t.text.as_str(), "{" | "(" | "[")
}

/// Whether the token is a closing delimiter.
fn closes(t: &Token) -> bool {
    t.kind == TokenKind::Punct && matches!(t.text.as_str(), "}" | ")" | "]")
}

/// Index of the delimiter matching the opener at `open`, treating all
/// bracket kinds as one family (the lexer guarantees literals can't
/// desynchronise the count).
pub(crate) fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    debug_assert!(opens(&tokens[open]));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if opens(t) {
            depth += 1;
        } else if closes(t) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// The token range of the body `{ … }` of the item whose header starts
/// at `header`: finds the first `{` at header level and returns the
/// exclusive-interior range. Bails (None) if no body opens within
/// `limit` tokens (e.g. a trait fn with `;`).
pub(crate) fn body_range(tokens: &[Token], header: usize, limit: usize) -> Option<(usize, usize)> {
    let mut i = header;
    let end = (header + limit).min(tokens.len());
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct && t.text == "{" {
            let close = matching_close(tokens, i)?;
            return Some((i + 1, close));
        }
        if t.kind == TokenKind::Punct && t.text == ";" {
            return None;
        }
        // Skip nested delimiters in the header (generics render as
        // `<`/`>` puncts and don't nest for our purposes; parens do).
        if opens(t) {
            i = matching_close(tokens, i)? + 1;
            continue;
        }
        i += 1;
    }
    None
}

/// Variant names (with definition lines) of the enum whose `enum Name`
/// keyword pair starts at `kw` (`tokens[kw].text == "enum"`).
pub(crate) fn enum_variants(tokens: &[Token], kw: usize) -> Vec<(String, u32)> {
    let Some((start, end)) = body_range(tokens, kw, 64) else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut expecting = true;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if opens(t) {
            depth += 1;
        } else if closes(t) {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            if t.kind == TokenKind::Punct && t.text == "," {
                expecting = true;
            } else if expecting && t.kind == TokenKind::Ident {
                variants.push((t.text.clone(), t.line));
                expecting = false;
            }
        }
        i += 1;
    }
    variants
}

/// Converts a SCREAMING_SNAKE constant name to the CamelCase variant
/// name it conventionally maps to (`HELLO_OK` → `HelloOk`).
pub(crate) fn camel(name: &str) -> String {
    name.split('_')
        .map(|part| {
            let mut cs = part.chars();
            match cs.next() {
                Some(first) => {
                    first.to_ascii_uppercase().to_string() + &cs.as_str().to_ascii_lowercase()
                }
                None => String::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn seq_ignores_literals() {
        let lexed = lex("let a = \"Ordering\"; Ordering::SeqCst");
        let toks = &lexed.tokens;
        assert!(find_seq(toks, 0, &["Ordering", "::", "SeqCst"]).is_some());
        let only_str = lex("let a = \"Ordering::SeqCst\";");
        assert!(find_seq(&only_str.tokens, 0, &["Ordering", "::", "SeqCst"]).is_none());
    }

    #[test]
    fn enum_variant_extraction_handles_payloads_and_attrs() {
        let src = "pub enum E {\n  Unit,\n  #[cfg(test)]\n  Tuple(u32, Vec<u8>),\n  Struct { a: u64, b: B },\n  Last = 7,\n}";
        let lexed = lex(src);
        let kw = find_seq(&lexed.tokens, 0, &["enum", "E"]).unwrap();
        let names: Vec<_> = enum_variants(&lexed.tokens, kw)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["Unit", "Tuple", "Struct", "Last"]);
    }

    #[test]
    fn camel_case_mapping() {
        assert_eq!(camel("HELLO"), "Hello");
        assert_eq!(camel("HELLO_OK"), "HelloOk");
        assert_eq!(camel("ADD_PATTERN"), "AddPattern");
    }

    #[test]
    fn body_range_finds_fn_bodies() {
        let src = "fn f(a: (u32, u32)) -> Vec<u8> { inner(); { nested } } fn g();";
        let lexed = lex(src);
        let (s, e) = body_range(&lexed.tokens, 0, 64).unwrap();
        let texts: Vec<_> = lexed.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"inner"));
        let g = find_seq(&lexed.tokens, e, &["fn", "g"]).unwrap();
        assert!(body_range(&lexed.tokens, g, 64).is_none());
    }
}
