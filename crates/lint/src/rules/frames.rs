//! `frame-exhaustiveness` — the wire protocol has no half-plumbed
//! frames.
//!
//! `crates/serve/src/protocol.rs` declares the frame vocabulary three
//! times over: the `mod kind` wire bytes, the `Frame` enum, and the
//! `kind()`/`encode()`/`decode()` trios that map between them. The
//! session state machine then has to *react* to each frame. All four
//! places are hand-maintained `match`es; `decode` in particular has a
//! catch-all `other =>` arm, so a new kind constant with a missing
//! decode arm compiles and simply rejects the frame at runtime as
//! `UnknownKind` — a protocol bug the type system never sees.
//!
//! For every `pub const NAME: u8` in the protocol file's `mod kind`,
//! the rule requires:
//!
//! 1. a `kind::NAME` reference inside `fn kind` (the Frame→byte map);
//! 2. a `kind::NAME` reference inside `fn encode`;
//! 3. a `kind::NAME` match arm inside `fn decode`;
//! 4. a `Frame::CamelName` reference in at least one *other* file of
//!    the same crate — the session/server/client layer actually
//!    handling or producing the frame. (Skipped when the crate has no
//!    other files, which is the single-file fixture case.)

use super::{body_range, camel, find_seq, seq_at, Rule};
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::workspace::Workspace;

/// See the module docs.
pub struct FrameExhaustiveness;

impl Rule for FrameExhaustiveness {
    fn name(&self) -> &'static str {
        "frame-exhaustiveness"
    }

    fn description(&self) -> &'static str {
        "every frame-kind constant has an encode path, a decode arm, and a \
         session-layer handler"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // The protocol file: declares both `mod kind` and `enum Frame`.
        let Some(proto) = ws.files.iter().find(|f| {
            find_seq(&f.lexed.tokens, 0, &["mod", "kind"]).is_some()
                && find_seq(&f.lexed.tokens, 0, &["enum", "Frame"]).is_some()
        }) else {
            return;
        };
        let toks = &proto.lexed.tokens;
        let consts = kind_consts(toks);
        if consts.is_empty() {
            return;
        }

        let regions: Vec<(&str, Option<(usize, usize)>)> = vec![
            ("fn kind()", fn_body(toks, "kind")),
            ("fn encode()", fn_body(toks, "encode")),
            ("fn decode()", fn_body(toks, "decode")),
        ];
        for (what, region) in &regions {
            if region.is_none() {
                out.push(Finding {
                    rule: self.name(),
                    file: proto.rel.clone(),
                    line: 1,
                    message: format!(
                        "protocol file declares `mod kind` but has no {what} to check \
                         frame coverage against"
                    ),
                });
            }
        }

        let others: Vec<_> = ws
            .crate_files(&proto.crate_name)
            .filter(|f| f.rel != proto.rel)
            .collect();

        for (name, line) in &consts {
            for (what, region) in &regions {
                let Some((start, end)) = region else { continue };
                if find_seq(&toks[*start..*end], 0, &["kind", "::", name]).is_none() {
                    out.push(Finding {
                        rule: self.name(),
                        file: proto.rel.clone(),
                        line: *line,
                        message: format!(
                            "frame kind `{name}` has no `kind::{name}` reference in \
                             {what}; the frame cannot cross the wire in that direction"
                        ),
                    });
                }
            }
            if !others.is_empty() {
                let variant = camel(name);
                let handled = others
                    .iter()
                    .any(|f| find_seq(&f.lexed.tokens, 0, &["Frame", "::", &variant]).is_some());
                if !handled {
                    out.push(Finding {
                        rule: self.name(),
                        file: proto.rel.clone(),
                        line: *line,
                        message: format!(
                            "no file in crate `{}` besides the protocol definition \
                             references `Frame::{variant}`; the frame has no session \
                             handler or producer",
                            proto.crate_name
                        ),
                    });
                }
            }
        }
    }
}

/// `pub const NAME: u8 = …;` declarations inside `mod kind { … }`.
fn kind_consts(tokens: &[Token]) -> Vec<(String, u32)> {
    let Some(kw) = find_seq(tokens, 0, &["mod", "kind"]) else {
        return Vec::new();
    };
    let Some((start, end)) = body_range(tokens, kw, 8) else {
        return Vec::new();
    };
    let mut consts = Vec::new();
    let mut i = start;
    while i < end {
        if seq_at(tokens, i, &["const"]) {
            if let Some(name) = tokens.get(i + 1) {
                if name.kind == TokenKind::Ident {
                    consts.push((name.text.clone(), name.line));
                }
            }
        }
        i += 1;
    }
    consts
}

/// Body range of the first `fn <name>` in the file.
fn fn_body(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    let at = find_seq(tokens, 0, &["fn", name])?;
    body_range(tokens, at, 96)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn kind_consts_extracted_from_module() {
        let src = "mod kind { pub const HELLO: u8 = 0x01; pub const HELLO_OK: u8 = 0x81; } const OUTSIDE: u8 = 0;";
        let lexed = lex(src);
        let names: Vec<_> = kind_consts(&lexed.tokens)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["HELLO", "HELLO_OK"]);
    }

    #[test]
    fn fn_body_scopes_the_search() {
        let src = "fn kind(&self) -> u8 { kind::HELLO } fn encode(&self) { other::thing() }";
        let lexed = lex(src);
        let (s, e) = fn_body(&lexed.tokens, "kind").unwrap();
        assert!(find_seq(&lexed.tokens[s..e], 0, &["kind", "::", "HELLO"]).is_some());
        let (s2, e2) = fn_body(&lexed.tokens, "encode").unwrap();
        assert!(find_seq(&lexed.tokens[s2..e2], 0, &["kind", "::", "HELLO"]).is_none());
    }
}
