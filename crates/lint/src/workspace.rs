//! Workspace discovery: which files the analyzer reads and how they
//! are presented to the rules.
//!
//! The scan set is every `.rs` file under the workspace's own code —
//! `src/`, `tests/`, `examples/`, `benches/` at the root and under
//! each `crates/*` member. The vendored dependency stubs (`vendor/`),
//! build output (`target/`) and the lint crate's own fixture corpus
//! (`crates/lint/tests/fixtures/`, which is known-bad *on purpose*)
//! are excluded. `ARCHITECTURE.md` rides along as auxiliary doc text
//! for the telemetry-completeness rule's "every exported metric is
//! documented" half.

use crate::diag::{parse_suppressions, Finding, Suppression};
use crate::lexer::{lex, Lexed};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lexed source file plus its suppressions.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (diagnostics and
    /// JSON use this form).
    pub rel: String,
    /// The crate the file belongs to (`crates/<name>/…` → `<name>`,
    /// root files → `systolic-pm`).
    pub crate_name: String,
    /// Raw text (rules that need layout, like next-code-line lookup,
    /// read this).
    pub text: String,
    /// Token and comment streams.
    pub lexed: Lexed,
    /// Parsed `pm-lint: allow(...)` comments.
    pub suppressions: Vec<Suppression>,
}

/// Everything a rule can see.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All scanned files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Auxiliary documents by file name (`ARCHITECTURE.md`).
    pub docs: Vec<(String, String)>,
    /// Malformed suppressions discovered during loading.
    pub grammar_findings: Vec<Finding>,
}

impl Workspace {
    /// Loads the full workspace rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from directory walks and file reads
    /// (nonexistent optional directories are skipped, not errors).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        for top in ["src", "tests", "examples", "benches"] {
            collect_rs(&root.join(top), &mut paths)?;
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .collect::<io::Result<Vec<_>>>()?
                .into_iter()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            members.sort();
            for member in members {
                for sub in ["src", "tests", "examples", "benches"] {
                    collect_rs(&member.join(sub), &mut paths)?;
                }
            }
        }
        paths.sort();
        let mut ws = Workspace::default();
        for path in paths {
            ws.add_file(root, &path)?;
        }
        let doc = "ARCHITECTURE.md";
        let p = root.join(doc);
        if p.is_file() {
            ws.docs.push((doc.to_string(), fs::read_to_string(p)?));
        }
        Ok(ws)
    }

    /// Loads just the given files (the fixture self-tests and the CLI's
    /// explicit-file mode). Cross-file rules see only what's passed,
    /// so a fixture can model a whole mini-workspace in one file.
    pub fn from_files(root: &Path, files: &[PathBuf]) -> io::Result<Workspace> {
        let mut ws = Workspace::default();
        for f in files {
            ws.add_file(root, f)?;
        }
        Ok(ws)
    }

    fn add_file(&mut self, root: &Path, path: &Path) -> io::Result<()> {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("systolic-pm")
            .to_string();
        let lexed = lex(&text);
        let (suppressions, mut bad) =
            parse_suppressions(&rel, &lexed.comments, |line| next_code_line(&text, line));
        self.grammar_findings.append(&mut bad);
        self.files.push(SourceFile {
            rel,
            crate_name,
            text,
            lexed,
            suppressions,
        });
        Ok(())
    }

    /// The named auxiliary document, if present.
    pub fn doc(&self, name: &str) -> Option<&str> {
        self.docs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }

    /// Files belonging to one crate.
    pub fn crate_files<'a>(
        &'a self,
        crate_name: &'a str,
    ) -> impl Iterator<Item = &'a SourceFile> + 'a {
        self.files
            .iter()
            .filter(move |f| f.crate_name == crate_name)
    }
}

/// Recursively collects `.rs` files under `dir`, skipping the fixture
/// corpus (deliberately rule-violating) and anything under a `target`
/// or `vendor` component.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The first line after `line` that carries code (not blank, not
/// comment-only). Block comments spanning lines are handled well
/// enough for the suppression use case: a line starting inside a
/// window of `//`-style standalone comments is skipped.
fn next_code_line(text: &str, line: u32) -> Option<u32> {
    for (idx, l) in text.lines().enumerate().skip(line as usize) {
        let trimmed = l.trim_start();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        return Some(idx as u32 + 1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_code_line_skips_blanks_and_comments() {
        let text = "let a = 1;\n// note\n\n// more\nlet b = 2;\n";
        assert_eq!(next_code_line(text, 1), Some(5));
        assert_eq!(next_code_line(text, 5), None);
    }

    #[test]
    fn crate_name_extraction() {
        let dir = std::env::temp_dir().join("pm_lint_ws_test");
        let nested = dir.join("crates/demo/src");
        fs::create_dir_all(&nested).unwrap();
        let file = nested.join("lib.rs");
        fs::write(&file, "fn ok() {}\n").unwrap();
        let ws = Workspace::from_files(&dir, &[file]).unwrap();
        assert_eq!(ws.files[0].crate_name, "demo");
        assert_eq!(ws.files[0].rel, "crates/demo/src/lib.rs");
    }
}
