//! The workspace's own static analyzer (`pm-lint`).
//!
//! Five rules, each grounded in a bug this repository actually shipped
//! or reviewed away, checked by tokenizing every workspace source file
//! with a hand-rolled, comment- and string-aware lexer (no `syn`, no
//! dependencies — the tool must build in the same offline sandbox as
//! the workspace it checks):
//!
//! | rule | invariant |
//! |---|---|
//! | `simd-dispatch-soundness` | `#[target_feature]` fns are `unsafe`, called only behind a `simd_level()` guard that proves every enabled feature |
//! | `telemetry-completeness` | every `TraceEvent` variant folds into the `MetricsRegistry`; every exported `pm_*` metric is documented |
//! | `frame-exhaustiveness` | every wire frame kind has encode, decode and a session-layer handler |
//! | `atomic-ordering-audit` | no `SeqCst`; Acquire loads are paired with Release writes |
//! | `error-taxonomy` | every public `*Error` variant has a Display arm and a construction site |
//!
//! Findings are suppressed inline with
//! `// pm-lint: allow(rule): justification` (see [`diag`]); a
//! malformed suppression is itself a finding under the reserved rule
//! name `suppression-grammar`, and that rule cannot be allowed —
//! otherwise one typo'd comment could silence the auditor auditing the
//! comments.

#![deny(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use diag::{Report, Suppressed};
use workspace::Workspace;

/// Runs every rule over the workspace, applies the suppressions, and
/// returns the report. Suppressions that matched are marked `used` on
/// the workspace so stale allows can be audited.
pub fn run(ws: &mut Workspace) -> Report {
    let mut raw: Vec<diag::Finding> = Vec::new();
    for rule in rules::all_rules() {
        rule.check(ws, &mut raw);
    }

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        match suppression_for(ws, &f) {
            Some(justification) => suppressed.push(Suppressed {
                finding: f,
                justification,
            }),
            None => findings.push(f),
        }
    }
    // Grammar findings bypass suppression by construction.
    findings.extend(ws.grammar_findings.iter().cloned());
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Report {
        findings,
        suppressed,
        files_scanned: ws.files.len(),
    }
}

/// Finds (and marks used) a suppression covering the finding: same
/// file, same rule, and either file-wide or covering the finding's
/// line.
fn suppression_for(ws: &mut Workspace, f: &diag::Finding) -> Option<String> {
    let file = ws.files.iter_mut().find(|sf| sf.rel == f.file)?;
    let sup = file.suppressions.iter_mut().find(|s| {
        s.rule == f.rule && (s.covered_line.is_none() || s.covered_line == Some(f.line))
    })?;
    sup.used = true;
    Some(sup.justification.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn mini_workspace(files: &[(&str, &str)]) -> Workspace {
        let dir = std::env::temp_dir().join(format!(
            "pm_lint_engine_{}_{:p}",
            std::process::id(),
            files.as_ptr()
        ));
        let src = dir.join("crates/demo/src");
        fs::create_dir_all(&src).unwrap();
        let paths: Vec<_> = files
            .iter()
            .map(|(rel, text)| {
                let p = src.join(rel);
                fs::write(&p, text).unwrap();
                p
            })
            .collect();
        Workspace::from_files(&dir, &paths).unwrap()
    }

    #[test]
    fn allow_moves_finding_to_suppressed() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); // pm-lint: allow(atomic-ordering-audit): test needs a total order\n}";
        let mut ws = mini_workspace(&[("lib.rs", src)]);
        let report = run(&mut ws);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert!(report.suppressed[0].justification.contains("total order"));
        assert!(ws.files[0].suppressions[0].used);
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_cover() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); // pm-lint: allow(error-taxonomy): wrong rule\n}";
        let mut ws = mini_workspace(&[("lib.rs", src)]);
        let report = run(&mut ws);
        assert_eq!(report.findings.len(), 1);
        assert!(report.suppressed.is_empty());
    }

    #[test]
    fn malformed_suppression_is_an_unsuppressible_finding() {
        let src = "// pm-lint: allow(atomic-ordering-audit)\nfn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }";
        let mut ws = mini_workspace(&[("lib.rs", src)]);
        let report = run(&mut ws);
        // The malformed allow never parsed, so the SeqCst finding is
        // live too: one grammar finding + one rule finding.
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "suppression-grammar"));
    }

    #[test]
    fn allow_file_covers_all_lines() {
        let src = "// pm-lint: allow-file(atomic-ordering-audit): demo file models a seqcst queue\nfn f(a: &AtomicU64) { a.load(Ordering::SeqCst); a.store(1, Ordering::SeqCst); }";
        let mut ws = mini_workspace(&[("lib.rs", src)]);
        let report = run(&mut ws);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 2);
    }
}
