//! Findings, the inline-suppression grammar and the two report
//! renderers (human diagnostics and the machine-readable JSON the CI
//! `static-analysis` job uploads).
//!
//! # Suppression grammar
//!
//! A finding is suppressed by a comment, and only by a comment — the
//! lexer guarantees a string containing the magic words changes
//! nothing. The marker must *open* the comment (doc-comment markers
//! and whitespace aside), so prose that merely mentions the grammar —
//! like this paragraph — is inert. Two forms:
//!
//! ```text
//! // pm-lint: allow(rule-name): justification text
//! // pm-lint: allow-file(rule-name): justification text
//! ```
//!
//! The justification is **mandatory and non-empty**: a suppression
//! without one is itself a finding (rule `suppression-grammar`), so an
//! allow can never silently decay into "someone turned the rule off".
//! `allow(…)` covers the comment's own line when it trails code, and
//! the next line carrying code when it stands alone; `allow-file(…)`
//! covers the whole file. Block comments work the same way.

use crate::lexer::Comment;
use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable kebab-case rule name (`simd-dispatch-soundness`, …).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable statement of the violated invariant.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `pm-lint: allow(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// The line whose findings are covered (`comment_line` for a
    /// trailing comment, the next code line for a standalone one);
    /// `None` for `allow-file`.
    pub covered_line: Option<u32>,
    /// The mandatory justification text.
    pub justification: String,
    /// Whether any finding actually used this suppression (reported so
    /// stale allows are visible in the JSON).
    pub used: bool,
}

/// The marker every suppression comment starts with.
const MARKER: &str = "pm-lint:";

/// Parses the suppressions out of a file's comments. `next_code_line`
/// maps a comment's line to the following line that carries code (the
/// caller computes it from the raw text, since the lexer has already
/// discarded layout). Malformed suppressions come back as findings.
pub fn parse_suppressions(
    file: &str,
    comments: &[Comment],
    next_code_line: impl Fn(u32) -> Option<u32>,
) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // The marker must open the comment: strip doc-comment sigils
        // (`///`, `//!`, `*` continuation lines) and whitespace, then
        // require `pm-lint:` immediately. A mid-sentence mention is
        // documentation, not a directive.
        let opener = c.text.trim_start_matches(['/', '!', '*', ' ', '\t']);
        let Some(after) = opener.strip_prefix(MARKER) else {
            continue;
        };
        let rest = after.trim_start();
        match parse_allow(rest) {
            Ok((rule, file_wide, justification)) => {
                let covered_line = if file_wide {
                    None
                } else if c.trailing {
                    Some(c.line)
                } else {
                    // A standalone comment covers the next code line;
                    // if none follows it covers nothing (and will show
                    // up as unused).
                    next_code_line(c.line)
                };
                sups.push(Suppression {
                    rule,
                    comment_line: c.line,
                    covered_line,
                    justification,
                    used: false,
                });
            }
            Err(why) => bad.push(Finding {
                rule: "suppression-grammar",
                file: file.to_string(),
                line: c.line,
                message: format!(
                    "malformed suppression ({why}); the grammar is \
                     `pm-lint: allow(rule-name): justification` and the \
                     justification is mandatory"
                ),
            }),
        }
    }
    (sups, bad)
}

/// Parses `allow(rule): justification` / `allow-file(rule): justification`.
fn parse_allow(rest: &str) -> Result<(String, bool, String), &'static str> {
    let (file_wide, after) = if let Some(a) = rest.strip_prefix("allow-file(") {
        (true, a)
    } else if let Some(a) = rest.strip_prefix("allow(") {
        (false, a)
    } else {
        return Err("expected `allow(` or `allow-file(`");
    };
    let close = after.find(')').ok_or("unclosed rule name")?;
    let rule = after[..close].trim();
    if rule.is_empty() {
        return Err("empty rule name");
    }
    let tail = after[close + 1..].trim_start();
    let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err("missing justification");
    }
    Ok((rule.to_string(), file_wide, justification.to_string()))
}

/// A suppressed finding, kept for the JSON report so allows stay
/// auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The finding that fired.
    pub finding: Finding,
    /// The justification that silenced it.
    pub justification: String,
}

/// Everything one run produced.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// Live findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified allow.
    pub suppressed: Vec<Suppressed>,
    /// Files the workspace loader scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Per-rule live-finding counts, sorted by rule name (the E35
    /// findings-by-rule table).
    pub fn counts_by_rule(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.findings {
            match counts.iter_mut().find(|(r, _)| *r == f.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.rule, 1)),
            }
        }
        counts.sort_by_key(|&(r, _)| r);
        counts
    }

    /// Human diagnostics: one `file:line: [rule] message` per finding,
    /// then a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{f}");
        }
        let _ = writeln!(
            out,
            "pm-lint: {} finding(s), {} suppressed, {} file(s) scanned",
            self.findings.len(),
            self.suppressed.len(),
            self.files_scanned
        );
        out
    }

    /// The machine-readable report (hand-rolled JSON; the workspace is
    /// offline and carries no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                escape(f.rule),
                escape(&f.file),
                f.line,
                escape(&f.message)
            );
        }
        out.push_str("\n  ],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"justification\": \"{}\"}}",
                escape(s.finding.rule),
                escape(&s.finding.file),
                s.finding.line,
                escape(&s.justification)
            );
        }
        out.push_str("\n  ],\n  \"counts\": {");
        for (i, (rule, n)) in self.counts_by_rule().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", escape(rule), n);
        }
        let _ = write!(
            out,
            "\n  }},\n  \"files_scanned\": {}\n}}\n",
            self.files_scanned
        );
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn comment(src: &str) -> Vec<Comment> {
        lex(src).comments
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let c = comment("let x = 1; // pm-lint: allow(atomic-ordering-audit): stats only");
        let (sups, bad) = parse_suppressions("f.rs", &c, |_| None);
        assert!(bad.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, "atomic-ordering-audit");
        assert_eq!(sups[0].covered_line, Some(1));
        assert_eq!(sups[0].justification, "stats only");
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let c = comment("// pm-lint: allow(error-taxonomy): constructed by macro\nlet y = 2;");
        let (sups, bad) = parse_suppressions("f.rs", &c, |l| Some(l + 1));
        assert!(bad.is_empty());
        assert_eq!(sups[0].covered_line, Some(2));
    }

    #[test]
    fn allow_file_covers_everything() {
        let c = comment("// pm-lint: allow-file(frame-exhaustiveness): fixture corpus");
        let (sups, _) = parse_suppressions("f.rs", &c, |_| None);
        assert_eq!(sups[0].covered_line, None);
    }

    #[test]
    fn missing_justification_is_a_finding() {
        for bad_src in [
            "// pm-lint: allow(some-rule)",
            "// pm-lint: allow(some-rule):",
            "// pm-lint: allow(some-rule):   ",
            "// pm-lint: allow()",
            "// pm-lint: deny(some-rule): nope",
        ] {
            let c = comment(bad_src);
            let (sups, bad) = parse_suppressions("f.rs", &c, |_| None);
            assert!(sups.is_empty(), "{bad_src}");
            assert_eq!(bad.len(), 1, "{bad_src}");
            assert_eq!(bad[0].rule, "suppression-grammar");
        }
    }

    #[test]
    fn marker_inside_a_string_is_inert() {
        let src = r#"let s = "// pm-lint: allow(x)";"#;
        let (sups, bad) = parse_suppressions("f.rs", &comment(src), |_| None);
        assert!(sups.is_empty() && bad.is_empty());
    }

    #[test]
    fn json_report_is_balanced_and_escaped() {
        let report = Report {
            findings: vec![Finding {
                rule: "error-taxonomy",
                file: "a\"b.rs".into(),
                line: 3,
                message: "quote \" and\nnewline".into(),
            }],
            suppressed: vec![],
            files_scanned: 1,
        };
        let json = report.render_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"error-taxonomy\": 1"));
    }
}
