//! The `pm-lint` CLI.
//!
//! ```text
//! pm-lint [--root DIR] [--json PATH] [--deny-all] [--list-rules] [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace under `--root`
//! (default: the current directory) is scanned; with explicit files
//! only those are loaded — that is the fixture mode the self-tests
//! and the CI gate's bad-fixture assertions use.
//!
//! Exit codes: `0` clean (or findings present but `--deny-all` not
//! given — the default mode is advisory so a work-in-progress tree can
//! still be inspected), `1` findings under `--deny-all`, `2` usage or
//! I/O error.

#![deny(unsafe_code)]

use pm_lint::workspace::Workspace;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    json: Option<PathBuf>,
    deny_all: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: None,
        deny_all: false,
        list_rules: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory argument")?);
            }
            "--json" => {
                opts.json = Some(PathBuf::from(
                    args.next().ok_or("--json needs a file argument")?,
                ));
            }
            "--deny-all" => opts.deny_all = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: pm-lint [--root DIR] [--json PATH] [--deny-all] \
                            [--list-rules] [FILE...]"
                    .to_string())
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"))
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("pm-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in pm_lint::rules::all_rules() {
            println!("{:<28} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let loaded = if opts.files.is_empty() {
        Workspace::load(&opts.root)
    } else {
        Workspace::from_files(&opts.root, &opts.files)
    };
    let mut ws = match loaded {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("pm-lint: failed to load workspace: {e}");
            return ExitCode::from(2);
        }
    };
    if ws.files.is_empty() {
        eprintln!(
            "pm-lint: no .rs files found under {} (wrong --root?)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let report = pm_lint::run(&mut ws);
    print!("{}", report.render_human());

    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("pm-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.deny_all && !report.findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
