//! A hand-rolled Rust lexer: just enough tokenization to check
//! invariants, with the one property the rule engine lives or dies by —
//! **nothing inside a comment, string, raw string, byte string or char
//! literal ever leaks into the code-token stream**.
//!
//! The workspace is offline and carries no `syn`/`proc-macro2`, and the
//! rules don't need a syntax tree: every invariant in
//! [`crate::rules`] is expressible over a flat token stream with
//! brace-matching (find the `#[target_feature]` attribute, find the
//! `enum TraceEvent` body, find `Ordering::SeqCst`). What they *do*
//! need is for `// pm-lint: allow(...)` to be recognised only in real
//! comments and for `"Ordering::SeqCst"` inside a string (this file
//! contains several) to never look like the real thing — hence a
//! lexer that is fully comment/string/char/raw-string aware, including
//! nested block comments and `r#"…"#` hashes, but deliberately ignorant
//! of everything else (keywords are just idents, numbers are opaque).
//!
//! ```
//! use pm_lint::lexer::{lex, TokenKind};
//! let lexed = lex("let s = \"fn not_a_fn()\"; // fn also_not_a_fn()");
//! let idents: Vec<&str> = lexed
//!     .tokens
//!     .iter()
//!     .filter(|t| t.kind == TokenKind::Ident)
//!     .map(|t| t.text.as_str())
//!     .collect();
//! assert_eq!(idents, ["let", "s"]);
//! assert_eq!(lexed.comments.len(), 1);
//! ```

/// What a token is, at the resolution the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `TraceEvent`, …).
    Ident,
    /// Punctuation. Multi-character for the three sequences rules
    /// match on (`::`, `=>`, `->`); single characters otherwise.
    Punct,
    /// `"…"` or `b"…"` literal; `text` is the *body* (quotes and
    /// prefix stripped, escapes left as written).
    Str,
    /// `r"…"`/`r#"…"#`/`br#"…"#` literal; `text` is the body.
    RawStr,
    /// `'x'` or `b'x'` literal; `text` is the body.
    Char,
    /// `'a` lifetime; `text` includes the quote.
    Lifetime,
    /// Numeric literal, opaque (`0x1F`, `1_000u64`, …).
    Num,
}

/// One code token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token's text (see [`TokenKind`] for what literals carry).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// One comment, kept out-of-band so suppressions can be parsed from
/// real comments and only real comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body with the `//`/`/*…*/` markers stripped.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether anything other than whitespace precedes the comment on
    /// its line (a trailing comment suppresses its own line; a
    /// standalone one suppresses the next code line).
    pub trailing: bool,
}

/// The two output streams of [`lex`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// The lexer state: a byte cursor with a line counter. Operating on
/// bytes is sound because every delimiter the lexer dispatches on is
/// ASCII and UTF-8 continuation bytes are ≥ 0x80 (treated as opaque
/// ident/literal content).
struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.i + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn eof(&self) -> bool {
        self.i >= self.src.len()
    }

    /// Consumes bytes through the closing `"` of a (non-raw) string
    /// body starting after the opening quote; returns the body.
    fn string_body(&mut self) -> String {
        let start = self.i;
        while !self.eof() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if !self.eof() {
                        self.bump();
                    }
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let body = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        if !self.eof() {
            self.bump(); // closing quote
        }
        body
    }

    /// Consumes a raw-string body: `hashes` is the number of `#` after
    /// the `r`; the cursor sits after the opening `"`.
    fn raw_string_body(&mut self, hashes: usize) -> String {
        let start = self.i;
        let mut end = self.i;
        while !self.eof() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    end = self.i;
                    self.bump(); // closing quote
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return String::from_utf8_lossy(&self.src[start..end]).into_owned();
                }
            }
            self.bump();
            end = self.i;
        }
        String::from_utf8_lossy(&self.src[start..end]).into_owned()
    }
}

/// Tokenizes `src`. Never fails: unterminated literals and comments
/// lex as running to end-of-file (the rules operate on what's there,
/// and `rustc` will reject the file anyway).
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        i: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    // Whether any non-whitespace token/comment has occurred on the
    // current line (to classify trailing comments).
    let mut line_has_code = false;
    let mut last_line = 1u32;

    while !c.eof() {
        if c.line != last_line {
            line_has_code = false;
            last_line = c.line;
        }
        let line = c.line;
        let b = c.peek(0);

        // Whitespace.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        // Comments.
        if b == b'/' && c.peek(1) == b'/' {
            c.bump();
            c.bump();
            let start = c.i;
            while !c.eof() && c.peek(0) != b'\n' {
                c.bump();
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&c.src[start..c.i]).into_owned(),
                line,
                trailing: line_has_code,
            });
            continue;
        }
        if b == b'/' && c.peek(1) == b'*' {
            c.bump();
            c.bump();
            let start = c.i;
            let mut depth = 1usize;
            let mut end = c.i;
            while !c.eof() && depth > 0 {
                if c.peek(0) == b'/' && c.peek(1) == b'*' {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
                    depth -= 1;
                    end = c.i;
                    c.bump();
                    c.bump();
                } else {
                    c.bump();
                    end = c.i;
                }
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&c.src[start..end]).into_owned(),
                line,
                trailing: line_has_code,
            });
            // A block comment does not count as code for the trailing
            // classification of a following `//` on the same line.
            continue;
        }

        line_has_code = true;

        // Raw strings and byte strings: r"…", r#"…"#, b"…", br"…", b'…'.
        if b == b'r' || b == b'b' {
            let (prefix_len, raw, quote) = raw_prefix(&c);
            match quote {
                Quote::Raw(hashes) => {
                    for _ in 0..prefix_len {
                        c.bump();
                    }
                    let body = c.raw_string_body(hashes);
                    out.tokens.push(Token {
                        kind: if raw {
                            TokenKind::RawStr
                        } else {
                            TokenKind::Str
                        },
                        text: body,
                        line,
                    });
                    continue;
                }
                Quote::Double => {
                    for _ in 0..prefix_len {
                        c.bump();
                    }
                    let body = c.string_body();
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: body,
                        line,
                    });
                    continue;
                }
                Quote::Single => {
                    for _ in 0..prefix_len {
                        c.bump();
                    }
                    let body = char_body(&mut c);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: body,
                        line,
                    });
                    continue;
                }
                Quote::None => {} // plain identifier starting with r/b
            }
        }

        // Plain string literals.
        if b == b'"' {
            c.bump(); // opening quote
            let body = c.string_body();
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: body,
                line,
            });
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(b) {
            let start = c.i;
            while !c.eof() && is_ident_continue(c.peek(0)) {
                c.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: String::from_utf8_lossy(&c.src[start..c.i]).into_owned(),
                line,
            });
            continue;
        }

        // Numbers (opaque: suffixes and radix prefixes ride along).
        if b.is_ascii_digit() {
            let start = c.i;
            while !c.eof() && (is_ident_continue(c.peek(0))) {
                c.bump();
            }
            // Fractional part, but never a `..` range.
            if c.peek(0) == b'.' && c.peek(1).is_ascii_digit() {
                c.bump();
                while !c.eof() && is_ident_continue(c.peek(0)) {
                    c.bump();
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: String::from_utf8_lossy(&c.src[start..c.i]).into_owned(),
                line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            // A lifetime is `'` + ident run NOT followed by `'`.
            let mut j = 1;
            while is_ident_continue(c.peek(j)) {
                j += 1;
            }
            if j > 1 && c.peek(j) != b'\'' {
                let start = c.i;
                for _ in 0..j {
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: String::from_utf8_lossy(&c.src[start..c.i]).into_owned(),
                    line,
                });
                continue;
            }
            c.bump(); // opening quote
            let body = char_body(&mut c);
            out.tokens.push(Token {
                kind: TokenKind::Char,
                text: body,
                line,
            });
            continue;
        }

        // Punctuation; `::`, `=>` and `->` kept whole because rules
        // match on them.
        let two = [b, c.peek(1)];
        let pair = match &two {
            b"::" => Some("::"),
            b"=>" => Some("=>"),
            b"->" => Some("->"),
            _ => None,
        };
        if let Some(p) = pair {
            c.bump();
            c.bump();
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: p.to_string(),
                line,
            });
            continue;
        }
        c.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: (b as char).to_string(),
            line,
        });
    }
    out
}

/// What follows a potential `r`/`b`/`br` literal prefix.
enum Quote {
    /// `r`/`br` followed by `#…#"`: raw string with that many hashes.
    Raw(usize),
    /// `b"`: byte string (escapes like a normal string).
    Double,
    /// `b'`: byte char.
    Single,
    /// Not a literal prefix after all (an ident like `run` or `bits`).
    None,
}

/// Classifies the bytes at the cursor as a literal prefix, returning
/// `(prefix length through the opening quote, is_raw, kind)`.
fn raw_prefix(c: &Cursor<'_>) -> (usize, bool, Quote) {
    let b0 = c.peek(0);
    let mut k = 1;
    let mut raw = b0 == b'r';
    if b0 == b'b' && c.peek(1) == b'r' {
        raw = true;
        k = 2;
    }
    if raw {
        let mut hashes = 0;
        while c.peek(k + hashes) == b'#' {
            hashes += 1;
        }
        if c.peek(k + hashes) == b'"' {
            return (k + hashes + 1, true, Quote::Raw(hashes));
        }
        return (0, false, Quote::None);
    }
    // b"…" or b'…'
    if b0 == b'b' {
        if c.peek(1) == b'"' {
            return (2, false, Quote::Double);
        }
        if c.peek(1) == b'\'' {
            return (2, false, Quote::Single);
        }
    }
    (0, false, Quote::None)
}

/// Consumes a char-literal body after the opening quote; returns the
/// body. Escapes are honoured so `'\''` and `'\\'` terminate correctly.
fn char_body(c: &mut Cursor<'_>) -> String {
    let start = c.i;
    while !c.eof() {
        match c.peek(0) {
            b'\\' => {
                c.bump();
                if !c.eof() {
                    c.bump();
                }
            }
            b'\'' => break,
            _ => {
                c.bump();
            }
        }
    }
    let body = String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
    if !c.eof() {
        c.bump();
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_never_leak_tokens() {
        let src = r##"let x = "fn evil() { Ordering::SeqCst }"; let y = r#"enum TraceEvent"#;"##;
        assert_eq!(idents(src), ["let", "x", "let", "y"]);
    }

    #[test]
    fn comments_are_out_of_band_and_classified() {
        let src = "let a = 1; // trailing note\n// standalone pm-lint: allow(x): y\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let src = "/* outer /* inner */ still */ fn after() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            ["fn", "after", "(", ")", "{", "}"]
        );
        let src2 = "line1\n\"multi\nline\nstring\"\nfn f() {}";
        let lexed2 = lex(src2);
        let f = lexed2.tokens.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 5);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let u = '_'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["x", "\\'", "_"]);
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_literals() {
        let src = r####"let a = r#"quote " inside"#; let b = br##"double ## "# inside"##; let c = b"bytes"; let d = b'z';"####;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::RawStr | TokenKind::Char))
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            strs,
            ["quote \" inside", "double ## \"# inside", "bytes", "z"]
        );
    }

    #[test]
    fn multi_char_puncts_kept_whole() {
        let src = "a::b => c -> d";
        let puncts: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, ["::", "=>", "->"]);
    }

    #[test]
    fn numbers_are_opaque_and_ranges_survive() {
        let src = "0x1F_u64 1_000 3.25 0..n";
        let lexed = lex(src);
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0x1F_u64", "1_000", "3.25", "0"]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"never closed", "r#\"never closed", "/* never closed", "'"] {
            let _ = lex(src);
        }
    }
}
