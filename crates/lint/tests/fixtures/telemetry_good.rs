//! GOOD fixture for `telemetry-completeness`: every variant of the
//! taxonomy is named in the fold, so nothing can be dropped silently.

pub enum TraceEvent {
    Clock { phase: u8 },
    Dropped,
}

pub struct MetricsRegistry {
    clock: u64,
    dropped: u64,
}

pub trait TraceSink {
    fn record(&mut self, ev: &TraceEvent);
}

impl TraceSink for MetricsRegistry {
    fn record(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Clock { .. } => self.clock += 1,
            TraceEvent::Dropped => self.dropped += 1,
        }
    }
}
