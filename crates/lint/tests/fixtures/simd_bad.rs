//! BAD fixture for `simd-dispatch-soundness`: all three violation
//! shapes in one file — a safe `#[target_feature]` fn, an unguarded
//! call, and the PR 5 bug itself (avx512bw enabled under an arm that
//! only proves avx512f).

pub enum SimdLevel {
    Portable,
    Avx2,
    Avx512,
}

fn simd_level() -> SimdLevel {
    SimdLevel::Portable
}

// Violation 1: not declared `unsafe fn`.
#[target_feature(enable = "avx2")]
fn kernel_avx2(x: &mut [u8]) {
    x[0] = 1;
}

// Violation 3 fires at the call site below: "avx512bw" is not proven
// by the SimdLevel::Avx512 arm.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn kernel_avx512(x: &mut [u8]) {
    x[0] = 2;
}

pub fn run(x: &mut [u8]) {
    // Violation 2: call site with no simd_level() guard at all.
    unsafe { kernel_avx2(x) };
    match simd_level() {
        SimdLevel::Avx512 => unsafe { kernel_avx512(x) },
        _ => {}
    }
}
