//! BAD fixture for `frame-exhaustiveness`: the `DATA` frame kind can
//! be decoded but never encoded — `fn encode` has no `kind::DATA`
//! path, so one side of the wire is mute and nothing fails to compile.

pub mod kind {
    pub const HELLO: u8 = 0x01;
    pub const DATA: u8 = 0x02;
}

pub enum Frame {
    Hello,
    Data(Vec<u8>),
}

impl Frame {
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello => kind::HELLO,
            Frame::Data(_) => kind::DATA,
        }
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello => out.push(kind::HELLO),
            Frame::Data(_) => out.push(0xff),
        }
    }

    pub fn decode(kind_byte: u8, body: &[u8]) -> Option<Frame> {
        match kind_byte {
            kind::HELLO => Some(Frame::Hello),
            kind::DATA => Some(Frame::Data(body.to_vec())),
            _ => None,
        }
    }
}
