//! GOOD fixture for `simd-dispatch-soundness`: the workspace's
//! dispatch idiom — every kernel `unsafe`, every call behind the arm
//! that proves exactly its enabled features.

pub enum SimdLevel {
    Portable,
    Avx2,
    Avx512,
}

fn simd_level() -> SimdLevel {
    SimdLevel::Portable
}

#[target_feature(enable = "avx2")]
unsafe fn kernel_avx2(x: &mut [u8]) {
    x[0] = 1;
}

#[target_feature(enable = "avx512f")]
unsafe fn kernel_avx512(x: &mut [u8]) {
    x[0] = 2;
}

fn kernel_portable(x: &mut [u8]) {
    x[0] = 3;
}

pub fn run(x: &mut [u8]) {
    match simd_level() {
        SimdLevel::Avx2 => unsafe { kernel_avx2(x) },
        SimdLevel::Avx512 => unsafe { kernel_avx512(x) },
        _ => kernel_portable(x),
    }
}
