//! BAD fixture for `error-taxonomy`: `Truncated` hides behind the
//! Display `_` arm (it prints without its case), and nothing in the
//! file ever constructs it — dead taxonomy.

use std::fmt;

pub enum ParseError {
    Io,
    Truncated,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io => write!(f, "i/o failed"),
            _ => write!(f, "parse error"),
        }
    }
}

pub fn parse(input: &[u8]) -> Result<(), ParseError> {
    if input.is_empty() {
        return Err(ParseError::Io);
    }
    Ok(())
}
