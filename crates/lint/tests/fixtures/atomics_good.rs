//! GOOD fixture for `atomic-ordering-audit`: the shutdown flag
//! publishes with `Release` and is observed with `Acquire`; the
//! statistics counter stays `Relaxed` end to end, which is exactly as
//! strong as a counter needs to be.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn shutdown(stop: &AtomicBool, count: &AtomicU64) {
    count.fetch_add(1, Ordering::Relaxed);
    stop.store(true, Ordering::Release);
}

pub fn worker(stop: &AtomicBool, count: &AtomicU64) {
    while !stop.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
    let _ = count.load(Ordering::Relaxed);
}
