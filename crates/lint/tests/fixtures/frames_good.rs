//! GOOD fixture for `frame-exhaustiveness`: every kind constant is
//! referenced in all three of `fn kind`, `fn encode` and `fn decode`.
//! (The session-handler half of the rule needs a second file in the
//! crate and is exercised against the real `pm-serve` tree.)

pub mod kind {
    pub const HELLO: u8 = 0x01;
    pub const DATA: u8 = 0x02;
}

pub enum Frame {
    Hello,
    Data(Vec<u8>),
}

impl Frame {
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello => kind::HELLO,
            Frame::Data(_) => kind::DATA,
        }
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello => out.push(kind::HELLO),
            Frame::Data(body) => {
                out.push(kind::DATA);
                out.extend_from_slice(body);
            }
        }
    }

    pub fn decode(kind_byte: u8, body: &[u8]) -> Option<Frame> {
        match kind_byte {
            kind::HELLO => Some(Frame::Hello),
            kind::DATA => Some(Frame::Data(body.to_vec())),
            _ => None,
        }
    }
}
