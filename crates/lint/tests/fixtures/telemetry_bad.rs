//! BAD fixture for `telemetry-completeness`: the `Dropped` variant has
//! no fold arm — the `_ => {}` catch-all swallows it silently, which
//! is exactly the drift the rule exists to catch.

pub enum TraceEvent {
    Clock { phase: u8 },
    Dropped,
}

pub struct MetricsRegistry {
    clock: u64,
}

pub trait TraceSink {
    fn record(&mut self, ev: &TraceEvent);
}

impl TraceSink for MetricsRegistry {
    fn record(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Clock { .. } => self.clock += 1,
            _ => {}
        }
    }
}
