//! GOOD fixture for `error-taxonomy`: every variant has a Display arm
//! and a construction site outside the enum and its Display impl.

use std::fmt;

pub enum ParseError {
    Io,
    Truncated,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io => write!(f, "i/o failed"),
            Self::Truncated => write!(f, "input truncated"),
        }
    }
}

pub fn parse(input: &[u8]) -> Result<(), ParseError> {
    if input.is_empty() {
        return Err(ParseError::Io);
    }
    if input.len() < 4 {
        return Err(ParseError::Truncated);
    }
    Ok(())
}
