//! BAD fixture for `atomic-ordering-audit`: one gratuitous `SeqCst`
//! on a statistics counter, and the classic silent bug — a `Relaxed`
//! store paired with an `Acquire` load, which works on x86 and
//! reorders on ARM.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn shutdown(stop: &AtomicBool, count: &AtomicU64) {
    count.fetch_add(1, Ordering::SeqCst);
    stop.store(true, Ordering::Relaxed);
}

pub fn worker(stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
}
