//! Property tests for the one guarantee the rule engine rests on:
//! arbitrary comment and string *bodies* can never confuse the lexer —
//! nothing inside a literal or comment ever reaches the code-token
//! stream, and no suppression can be smuggled in through a string.

use pm_lint::diag::parse_suppressions;
use pm_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Body text for a `"…"` string: any printable junk with quotes and
/// backslashes escaped so the literal stays well-formed (the lexer's
/// behaviour on *malformed* input is covered by the unit tests).
fn escaped_body() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            6 => (32u8..=126).prop_map(|b| (b as char).to_string()),
            1 => Just("\\\"".to_string()),
            1 => Just("\\\\".to_string()),
            1 => Just("\\n".to_string()),
            1 => Just("Ordering::SeqCst ".to_string()),
            1 => Just("pm-lint: allow(x): y ".to_string()),
            1 => Just("enum TraceEvent { ".to_string()),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat().replace('\\', "\\\\").replace('"', "\\\""))
}

/// Body text for a `// …` line comment: anything without a newline.
fn comment_body() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            6 => (32u8..=126).prop_map(|b| (b as char).to_string()),
            1 => Just("\" unclosed quote ".to_string()),
            1 => Just("r#\" raw opener ".to_string()),
            1 => Just("/* block opener ".to_string()),
            1 => Just("Ordering::SeqCst ".to_string()),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

/// Body for a raw string `r#"…"#`: anything not containing the closing
/// guard `"#`.
fn raw_body() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            6 => (32u8..=126).prop_map(|b| (b as char).to_string()),
            1 => Just("\\".to_string()),
            1 => Just("\" not a close ".to_string()),
            1 => Just("// pm-lint: allow(x): y ".to_string()),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat().replace("\"#", "\" #"))
}

proptest! {
    /// A string literal's body never contributes code tokens: the
    /// program `let before = "<junk>"; fn after() {}` always lexes to
    /// exactly the same ident stream.
    #[test]
    fn string_bodies_never_leak(body in escaped_body()) {
        let src = format!("let before = \"{body}\"; fn after() {{}}");
        let lexed = lex(&src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["let", "before", "fn", "after"]);
        prop_assert!(lexed.comments.is_empty());
        // And no suppression can be smuggled in through a string.
        let (sups, bad) = parse_suppressions("f.rs", &lexed.comments, |_| None);
        prop_assert!(sups.is_empty() && bad.is_empty());
    }

    /// A line comment's body never contributes code tokens, however
    /// many unclosed quotes or block-comment openers it contains, and
    /// the code after the newline survives intact.
    #[test]
    fn comment_bodies_never_leak(body in comment_body()) {
        let src = format!("let a = 1; // {body}\nfn after() {{}}");
        let lexed = lex(&src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["let", "a", "fn", "after"]);
        prop_assert_eq!(lexed.comments.len(), 1);
        prop_assert!(lexed.comments[0].trailing);
    }

    /// A raw string body — backslashes are literal there — never leaks,
    /// and a `pm-lint:` marker inside one never parses as a
    /// suppression.
    #[test]
    fn raw_string_bodies_never_leak(body in raw_body()) {
        let src = format!("let before = r#\"{body}\"#; fn after() {{}}");
        let lexed = lex(&src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["let", "before", "fn", "after"]);
        let (sups, bad) = parse_suppressions("f.rs", &lexed.comments, |_| None);
        prop_assert!(sups.is_empty() && bad.is_empty());
    }

    /// Round-trip stability: lexing is deterministic and total — any
    /// ASCII soup lexes without panicking, twice, to the same streams.
    #[test]
    fn lexing_is_total_and_deterministic(
        soup in proptest::collection::vec(32u8..=126, 0..64)
    ) {
        let src = String::from_utf8(soup).unwrap();
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a, b);
    }
}
