//! Fixture self-tests: every rule must fire on its bad fixture and
//! stay silent on its good one. This is the corpus the CI
//! `static-analysis` job also drives through the `pm-lint` binary
//! (bad fixture + `--deny-all` ⇒ exit 1), so a rule that silently
//! stops matching cannot pass the gate.

use pm_lint::diag::Report;
use pm_lint::workspace::Workspace;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn report_for(name: &str) -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    let mut ws = Workspace::from_files(&root, &[fixture(name)]).unwrap();
    pm_lint::run(&mut ws)
}

/// Asserts the bad fixture yields `expected` findings, all under
/// `rule`, each carrying the fixture's path and a real line number.
fn assert_bad(name: &str, rule: &str, expected: usize) {
    let report = report_for(name);
    assert_eq!(
        report.findings.len(),
        expected,
        "{name}: wanted {expected} findings, got {:#?}",
        report.findings
    );
    for f in &report.findings {
        assert_eq!(f.rule, rule, "{name}: unexpected rule in {f}");
        assert!(f.file.ends_with(name), "{name}: finding names {}", f.file);
        assert!(f.line > 0, "{name}: finding has no line: {f}");
    }
}

fn assert_good(name: &str) {
    let report = report_for(name);
    assert!(
        report.findings.is_empty(),
        "{name}: expected silence, got {:#?}",
        report.findings
    );
}

#[test]
fn simd_fixtures() {
    // Safe target_feature fn + unguarded call + unproven avx512bw.
    assert_bad("simd_bad.rs", "simd-dispatch-soundness", 3);
    assert_good("simd_good.rs");
}

#[test]
fn telemetry_fixtures() {
    // `Dropped` has no fold arm.
    assert_bad("telemetry_bad.rs", "telemetry-completeness", 1);
    assert_good("telemetry_good.rs");
}

#[test]
fn frames_fixtures() {
    // `DATA` has no encode path.
    assert_bad("frames_bad.rs", "frame-exhaustiveness", 1);
    assert_good("frames_good.rs");
}

#[test]
fn atomics_fixtures() {
    // One SeqCst + one Relaxed store against an Acquire load.
    assert_bad("atomics_bad.rs", "atomic-ordering-audit", 2);
    assert_good("atomics_good.rs");
}

#[test]
fn errors_fixtures() {
    // `Truncated`: hidden behind Display's `_` arm and never built.
    assert_bad("errors_bad.rs", "error-taxonomy", 2);
    assert_good("errors_good.rs");
}

#[test]
fn suppression_covers_a_bad_fixture_line() {
    // Drive the suppression path end to end on real fixture content:
    // append a justified allow-file and the findings move to
    // `suppressed` with their justification attached.
    let text = std::fs::read_to_string(fixture("atomics_bad.rs")).unwrap();
    let dir = std::env::temp_dir().join(format!("pm_lint_fix_sup_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let patched = dir.join("atomics_suppressed.rs");
    std::fs::write(
        &patched,
        format!(
            "// pm-lint: allow-file(atomic-ordering-audit): fixture models a seqcst queue\n{text}"
        ),
    )
    .unwrap();
    let mut ws = Workspace::from_files(&dir, &[patched]).unwrap();
    let report = pm_lint::run(&mut ws);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.suppressed.len(), 2);
    for s in &report.suppressed {
        assert_eq!(s.justification, "fixture models a seqcst queue");
    }
}

#[test]
fn unjustified_suppression_is_a_finding_not_a_silencer() {
    let text = std::fs::read_to_string(fixture("atomics_bad.rs")).unwrap();
    let dir = std::env::temp_dir().join(format!("pm_lint_fix_nojust_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let patched = dir.join("atomics_nojust.rs");
    std::fs::write(
        &patched,
        format!("// pm-lint: allow-file(atomic-ordering-audit)\n{text}"),
    )
    .unwrap();
    let mut ws = Workspace::from_files(&dir, &[patched]).unwrap();
    let report = pm_lint::run(&mut ws);
    // The malformed allow never parses: both original findings stay
    // live and the grammar violation is a third.
    assert_eq!(report.findings.len(), 3, "{:#?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "suppression-grammar"));
}

#[test]
fn json_report_names_rules_and_counts() {
    let report = report_for("simd_bad.rs");
    let json = report.render_json();
    assert!(json.contains("\"simd-dispatch-soundness\": 3"), "{json}");
    assert!(json.contains("simd_bad.rs"), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
