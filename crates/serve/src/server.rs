//! The TCP front door: acceptor plus thread-per-core workers.
//!
//! `std::net` only (the workspace is offline): the listener and every
//! accepted socket run nonblocking, and each worker thread multiplexes
//! its share of connections with a read → decode → handle → flush loop
//! — the same discipline as the scheduler's work loop, applied to
//! sockets. Thousands of sessions ride on far fewer connections (the
//! protocol multiplexes sessions within a connection), so a handful of
//! workers saturates the matcher long before the poll loop is the
//! bottleneck; the paper's §5 argument, host-side.
//!
//! Lifecycle: [`MatchServer::start`] binds and spawns, `local_addr`
//! tells tests the ephemeral port, [`MatchServer::shutdown`] stops the
//! loops and joins every thread. The stall watchdog reaps connections
//! that stay silent past `idle_timeout_ms`, returning their sessions
//! to the admission cap.

use crate::config::ServeConfig;
use crate::protocol::{Decoder, ErrorCode, Frame};
use crate::session::{Conn, Shared};
use pm_chip::telemetry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the acceptor and idle workers nap between polls.
const IDLE_NAP: Duration = Duration::from_micros(200);

/// Read buffer per poll per connection.
const READ_BUF: usize = 64 << 10;

/// A running front door. Dropping without [`shutdown`](Self::shutdown)
/// detaches the threads (tests should shut down explicitly).
#[derive(Debug)]
pub struct MatchServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// One socket mid-conversation, owned by a worker.
struct Wire {
    stream: TcpStream,
    decoder: Decoder,
    /// Encoded responses not yet accepted by the socket.
    outbox: Vec<u8>,
    conn: Conn,
    last_activity: Instant,
    /// Set on hangup, codec poison or `BYE`; the worker drops the
    /// wire once the outbox drains (or immediately if unwritable).
    closing: bool,
}

impl MatchServer {
    /// Binds `config.addr` and spawns the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Any socket error from binding.
    pub fn start(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers_n = config.effective_workers();
        let shared = Shared::new(config);
        let stop = Arc::new(AtomicBool::new(false));

        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers_n);
        let mut workers = Vec::with_capacity(workers_n);
        for w in 0..workers_n {
            let (tx, rx) = channel::<TcpStream>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pm-serve-worker-{w}"))
                    .spawn(move || worker_loop(rx, shared, stop))
                    .expect("spawn worker"),
            );
        }

        let stop_acceptor = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("pm-serve-acceptor".into())
            .spawn(move || {
                let mut next = 0usize;
                while !stop_acceptor.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if stream.set_nonblocking(true).is_ok()
                                && senders[next % senders.len()].send(stream).is_err()
                            {
                                return; // workers gone: shutting down
                            }
                            next = next.wrapping_add(1);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(IDLE_NAP);
                        }
                        Err(_) => std::thread::sleep(IDLE_NAP),
                    }
                }
            })
            .expect("spawn acceptor");

        Ok(MatchServer {
            addr,
            shared,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (what METRICS frames snapshot).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        self.shared.registry.clone()
    }

    /// Sessions currently open across all connections.
    pub fn open_sessions(&self) -> usize {
        self.shared.open_sessions.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains the workers and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One worker: adopt incoming sockets, then multiplex reads, protocol
/// handling and writes across every connection it owns.
fn worker_loop(rx: Receiver<TcpStream>, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    let idle_timeout = match shared.config.idle_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let mut wires: Vec<Wire> = Vec::new();
    let mut buf = vec![0u8; READ_BUF];
    loop {
        // Adopt new connections.
        loop {
            match rx.try_recv() {
                Ok(stream) => wires.push(Wire {
                    stream,
                    decoder: Decoder::new(),
                    outbox: Vec::new(),
                    conn: Conn::new(Arc::clone(&shared)),
                    last_activity: Instant::now(),
                    closing: false,
                }),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    if wires.is_empty() {
                        return;
                    }
                    break;
                }
            }
        }
        if stop.load(Ordering::Acquire) {
            return; // drop wires: Conn::drop releases their sessions
        }

        let mut progressed = false;
        for wire in &mut wires {
            progressed |= wire.poll(&mut buf);
            if let Some(timeout) = idle_timeout {
                if !wire.closing && wire.last_activity.elapsed() > timeout {
                    // Stall watchdog: the peer has gone quiet.
                    wire.closing = true;
                }
            }
        }
        wires.retain(|w| !(w.closing && w.outbox.is_empty()));
        if !progressed {
            std::thread::sleep(IDLE_NAP);
        }
    }
}

impl Wire {
    /// One multiplexer turn: read what's there, handle complete
    /// frames, flush what the socket will take. Returns whether any
    /// byte moved (the worker sleeps only when nothing does).
    fn poll(&mut self, buf: &mut [u8]) -> bool {
        let mut progressed = false;

        // Read until the socket runs dry (or errors/hangs up).
        loop {
            match self.stream.read(buf) {
                Ok(0) => {
                    self.closing = true;
                    self.outbox.clear(); // peer is gone; nothing to flush
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    self.last_activity = Instant::now();
                    self.decoder.push(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closing = true;
                    self.outbox.clear();
                    break;
                }
            }
        }

        // Decode and handle every complete frame.
        let mut responses = Vec::new();
        loop {
            match self.decoder.next() {
                Ok(Some(frame)) => {
                    self.conn.handle(frame, &mut responses);
                    if self.conn.finished() {
                        self.closing = true;
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is lost: answer once, then hang up.
                    responses.push(Frame::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string().into_bytes(),
                    });
                    self.closing = true;
                    break;
                }
            }
        }
        for r in &responses {
            r.encode(&mut self.outbox);
        }

        // Flush as much as the socket will take.
        while !self.outbox.is_empty() {
            match self.stream.write(&self.outbox) {
                Ok(0) => {
                    self.closing = true;
                    self.outbox.clear();
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    self.outbox.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closing = true;
                    self.outbox.clear();
                    break;
                }
            }
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::MatchClient;
    use crate::protocol::Match;

    #[test]
    fn server_round_trips_one_session() {
        let server = MatchServer::start(ServeConfig::default()).unwrap();
        let mut client = MatchClient::connect(server.local_addr()).unwrap();
        let id = client.add_pattern(b"abc", None).unwrap();
        assert_eq!(id, 0);
        let session = client.open_session().unwrap();
        let (events, consumed) = client.feed(session, b"xxabcxx").unwrap();
        assert_eq!(consumed, 7);
        assert_eq!(events, vec![Match { pattern: 0, end: 4 }]);
        let (chars, delivered) = client.close_session(session).unwrap();
        assert_eq!((chars, delivered), (7, 1));
        let metrics = client.metrics().unwrap();
        assert!(metrics.contains("pm_sessions_closed_total 1"), "{metrics}");
        client.bye().unwrap();
        server.shutdown();
    }

    #[test]
    fn garbage_header_gets_an_error_then_hangup() {
        let server = MatchServer::start(ServeConfig::default()).unwrap();
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let frame = crate::protocol::read_frame(&mut raw).unwrap();
        assert!(matches!(
            frame,
            Frame::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
        // The server hangs up after poisoned framing.
        let mut rest = Vec::new();
        let _ = raw.read_to_end(&mut rest);
        assert!(rest.is_empty());
        server.shutdown();
    }

    #[test]
    fn watchdog_reaps_idle_connections() {
        let server = MatchServer::start(ServeConfig {
            idle_timeout_ms: 50,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = MatchClient::connect(server.local_addr()).unwrap();
        let _session = client.open_session().unwrap();
        assert_eq!(server.open_sessions(), 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.open_sessions() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.open_sessions(), 0, "idle session never reaped");
        server.shutdown();
    }
}
