//! The wire protocol: length-prefixed binary frames.
//!
//! Every frame is `[u32 LE length][u8 kind][body]`, where `length`
//! counts the kind byte plus the body. The length field is validated
//! against [`MAX_FRAME`] *before* any buffering decision, so a garbage
//! or hostile header can never provoke an unbounded allocation; an
//! unknown kind or a malformed body is a [`CodecError`], never a
//! panic.
//!
//! The frame vocabulary is deliberately small — the paper's §5 opinion
//! is that a special-purpose engine earns its keep only if the host
//! interface stays simple enough to keep it saturated:
//!
//! | client → server | server → client |
//! |---|---|
//! | `HELLO` | `HELLO_OK` |
//! | `ADD_PATTERN` | `PATTERN_ADDED` |
//! | `OPEN_SESSION` | `SESSION_OPENED` |
//! | `FEED` | `MATCH_EVENTS`\* then `FEED_OK` |
//! | `CLOSE` | `CLOSED` |
//! | `METRICS` | `METRICS_TEXT` |
//! | `BYE` | — |
//! | — | `SERVER_BUSY` (admission control / backpressure) |
//! | — | `ERROR` |
//!
//! \* zero or more, each carrying a batch of `(pattern_id, end)`
//! events whose `end` offsets are global across every chunk fed so
//! far — the chunked-feed path of `DictionaryMatcher` keeps matches
//! spanning chunk boundaries exact.
//!
//! [`Decoder`] is the incremental half (the server reads nonblocking
//! sockets, so frames arrive split at arbitrary byte boundaries);
//! [`read_frame`]/[`write_frame`] are the blocking half for clients.

use std::io::{self, Read, Write};

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on `length` (kind byte + body), bounding what a single
/// frame can make either side buffer: 1 MiB.
pub const MAX_FRAME: u32 = 1 << 20;

/// One match event on the wire: pattern id and the global text offset
/// of the match's last character.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Match {
    /// Id assigned by `PATTERN_ADDED`.
    pub pattern: u32,
    /// Offset of the match's last character, global across all chunks
    /// fed to the session.
    pub end: u64,
}

/// Why the server turned a request away. Carried in `SERVER_BUSY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The global session cap is reached; retry after backoff.
    Sessions,
    /// The global byte budget (batch-slot pool) is exhausted; retry
    /// after backoff.
    GlobalBudget,
}

impl BusyReason {
    fn code(self) -> u8 {
        match self {
            BusyReason::Sessions => 0,
            BusyReason::GlobalBudget => 1,
        }
    }

    fn from_code(code: u8) -> Result<Self, CodecError> {
        match code {
            0 => Ok(BusyReason::Sessions),
            1 => Ok(BusyReason::GlobalBudget),
            _ => Err(CodecError::BadBody("unknown busy reason")),
        }
    }
}

/// Hard protocol failures carried in `ERROR` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or out-of-order frame.
    Protocol,
    /// `FEED`/`CLOSE` named a session this connection doesn't own.
    UnknownSession,
    /// `ADD_PATTERN` was rejected (bad bytes, too long, or over the
    /// per-connection pattern cap).
    BadPattern,
    /// A `FEED` chunk exceeded the per-session byte budget; no retry
    /// will ever fit, split the chunk instead.
    ChunkTooLarge,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            ErrorCode::Protocol => 0,
            ErrorCode::UnknownSession => 1,
            ErrorCode::BadPattern => 2,
            ErrorCode::ChunkTooLarge => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, CodecError> {
        match code {
            0 => Ok(ErrorCode::Protocol),
            1 => Ok(ErrorCode::UnknownSession),
            2 => Ok(ErrorCode::BadPattern),
            3 => Ok(ErrorCode::ChunkTooLarge),
            _ => Err(CodecError::BadBody("unknown error code")),
        }
    }
}

/// A decoded protocol frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client greeting; the server answers `HelloOk`.
    Hello {
        /// Protocol version the client speaks.
        version: u32,
    },
    /// Server greeting: the negotiated version and frame ceiling.
    HelloOk {
        /// Protocol version the server speaks.
        version: u32,
        /// The server's `MAX_FRAME`.
        max_frame: u32,
    },
    /// Declare one pattern for this connection's dictionary.
    AddPattern {
        /// Wildcard byte, if the pattern uses one.
        wild: Option<u8>,
        /// Raw pattern bytes (EIGHT_BIT alphabet).
        bytes: Vec<u8>,
    },
    /// The pattern was compiled in; events cite this id.
    PatternAdded {
        /// Dictionary id (dense, per connection, starting at 0).
        id: u32,
    },
    /// Open a streaming session over the connection's dictionary.
    OpenSession,
    /// The session was admitted.
    SessionOpened {
        /// Server-assigned session id.
        session: u64,
    },
    /// Stream the next text chunk of a session.
    Feed {
        /// Session id from `SessionOpened`.
        session: u64,
        /// Text bytes (EIGHT_BIT alphabet: any byte is valid).
        bytes: Vec<u8>,
    },
    /// A batch of match events whose windows end inside the chunk(s)
    /// just fed.
    MatchEvents {
        /// Session id.
        session: u64,
        /// The events, ordered by `(end, pattern)`.
        events: Vec<Match>,
    },
    /// The chunk was consumed; all its events have been sent.
    FeedOk {
        /// Session id.
        session: u64,
        /// Total characters consumed by the session so far.
        consumed: u64,
    },
    /// Close a session.
    Close {
        /// Session id.
        session: u64,
    },
    /// The session is gone; final accounting.
    Closed {
        /// Session id.
        session: u64,
        /// Characters the session streamed.
        chars: u64,
        /// Events the session was delivered.
        events: u64,
    },
    /// Ask for the server's metrics.
    Metrics,
    /// Prometheus text exposition (the `/metrics` page, in a frame).
    MetricsText {
        /// UTF-8 exposition bytes.
        text: Vec<u8>,
    },
    /// Admission control or backpressure: retry after the hint.
    ServerBusy {
        /// What was exhausted.
        reason: BusyReason,
        /// Milliseconds to back off before retrying, paced by the
        /// host `RetryPolicy`.
        retry_after_ms: u32,
    },
    /// Hard failure; the request will not succeed on retry.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (UTF-8, best effort).
        message: Vec<u8>,
    },
    /// Client is done; the server closes after flushing.
    Bye,
}

/// Frame kind bytes on the wire.
mod kind {
    pub const HELLO: u8 = 0x01;
    pub const ADD_PATTERN: u8 = 0x02;
    pub const OPEN_SESSION: u8 = 0x03;
    pub const FEED: u8 = 0x04;
    pub const CLOSE: u8 = 0x05;
    pub const METRICS: u8 = 0x06;
    pub const BYE: u8 = 0x07;
    pub const HELLO_OK: u8 = 0x81;
    pub const PATTERN_ADDED: u8 = 0x82;
    pub const SESSION_OPENED: u8 = 0x83;
    pub const MATCH_EVENTS: u8 = 0x84;
    pub const FEED_OK: u8 = 0x85;
    pub const CLOSED: u8 = 0x86;
    pub const METRICS_TEXT: u8 = 0x87;
    pub const SERVER_BUSY: u8 = 0x88;
    pub const ERROR: u8 = 0x89;
}

/// What can go wrong while decoding. Encoding is infallible (the
/// encoder refuses to build oversized frames by construction: pattern
/// and chunk limits sit far below [`MAX_FRAME`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The length field is zero or exceeds [`MAX_FRAME`].
    BadLength {
        /// The offending length value.
        len: u32,
    },
    /// The kind byte is not in the vocabulary.
    UnknownKind(u8),
    /// The body's layout doesn't match its kind.
    BadBody(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadLength { len } => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME}")
            }
            CodecError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            CodecError::BadBody(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Strict little-endian body reader: every decode consumes exactly the
/// body, and trailing bytes are an error.
struct Body<'a> {
    buf: &'a [u8],
}

impl<'a> Body<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Body { buf }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let (&b, rest) = self
            .buf
            .split_first()
            .ok_or(CodecError::BadBody("truncated u8"))?;
        self.buf = rest;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        if self.buf.len() < 4 {
            return Err(CodecError::BadBody("truncated u32"));
        }
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        if self.buf.len() < 8 {
            return Err(CodecError::BadBody("truncated u64"));
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::BadBody("truncated bytes"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.buf)
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::BadBody("trailing bytes"))
        }
    }
}

impl Frame {
    /// The frame's wire kind byte (telemetry labels frames by it).
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => kind::HELLO,
            Frame::HelloOk { .. } => kind::HELLO_OK,
            Frame::AddPattern { .. } => kind::ADD_PATTERN,
            Frame::PatternAdded { .. } => kind::PATTERN_ADDED,
            Frame::OpenSession => kind::OPEN_SESSION,
            Frame::SessionOpened { .. } => kind::SESSION_OPENED,
            Frame::Feed { .. } => kind::FEED,
            Frame::MatchEvents { .. } => kind::MATCH_EVENTS,
            Frame::FeedOk { .. } => kind::FEED_OK,
            Frame::Close { .. } => kind::CLOSE,
            Frame::Closed { .. } => kind::CLOSED,
            Frame::Metrics => kind::METRICS,
            Frame::MetricsText { .. } => kind::METRICS_TEXT,
            Frame::ServerBusy { .. } => kind::SERVER_BUSY,
            Frame::Error { .. } => kind::ERROR,
            Frame::Bye => kind::BYE,
        }
    }

    /// Appends the encoded frame (length prefix included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let at = out.len();
        put_u32(out, 0); // placeholder; patched below
        match self {
            Frame::Hello { version } => {
                out.push(kind::HELLO);
                put_u32(out, *version);
            }
            Frame::HelloOk { version, max_frame } => {
                out.push(kind::HELLO_OK);
                put_u32(out, *version);
                put_u32(out, *max_frame);
            }
            Frame::AddPattern { wild, bytes } => {
                out.push(kind::ADD_PATTERN);
                out.push(u8::from(wild.is_some()));
                out.push(wild.unwrap_or(0));
                put_u32(out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Frame::PatternAdded { id } => {
                out.push(kind::PATTERN_ADDED);
                put_u32(out, *id);
            }
            Frame::OpenSession => out.push(kind::OPEN_SESSION),
            Frame::SessionOpened { session } => {
                out.push(kind::SESSION_OPENED);
                put_u64(out, *session);
            }
            Frame::Feed { session, bytes } => {
                out.push(kind::FEED);
                put_u64(out, *session);
                out.extend_from_slice(bytes);
            }
            Frame::MatchEvents { session, events } => {
                out.push(kind::MATCH_EVENTS);
                put_u64(out, *session);
                put_u32(out, events.len() as u32);
                for e in events {
                    put_u32(out, e.pattern);
                    put_u64(out, e.end);
                }
            }
            Frame::FeedOk { session, consumed } => {
                out.push(kind::FEED_OK);
                put_u64(out, *session);
                put_u64(out, *consumed);
            }
            Frame::Close { session } => {
                out.push(kind::CLOSE);
                put_u64(out, *session);
            }
            Frame::Closed {
                session,
                chars,
                events,
            } => {
                out.push(kind::CLOSED);
                put_u64(out, *session);
                put_u64(out, *chars);
                put_u64(out, *events);
            }
            Frame::Metrics => out.push(kind::METRICS),
            Frame::MetricsText { text } => {
                out.push(kind::METRICS_TEXT);
                out.extend_from_slice(text);
            }
            Frame::ServerBusy {
                reason,
                retry_after_ms,
            } => {
                out.push(kind::SERVER_BUSY);
                out.push(reason.code());
                put_u32(out, *retry_after_ms);
            }
            Frame::Error { code, message } => {
                out.push(kind::ERROR);
                out.push(code.code());
                out.extend_from_slice(message);
            }
            Frame::Bye => out.push(kind::BYE),
        }
        let len = (out.len() - at - 4) as u32;
        debug_assert!((1..=MAX_FRAME).contains(&len), "encoder built a bad frame");
        out[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// The encoded frame as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one frame from its kind byte plus body (no length
    /// prefix — the caller has already framed it).
    pub fn decode(payload: &[u8]) -> Result<Frame, CodecError> {
        let (&k, body) = payload
            .split_first()
            .ok_or(CodecError::BadLength { len: 0 })?;
        let mut b = Body::new(body);
        let frame = match k {
            kind::HELLO => Frame::Hello { version: b.u32()? },
            kind::HELLO_OK => Frame::HelloOk {
                version: b.u32()?,
                max_frame: b.u32()?,
            },
            kind::ADD_PATTERN => {
                let has_wild = match b.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::BadBody("wild flag not 0/1")),
                };
                let wild_byte = b.u8()?;
                let len = b.u32()? as usize;
                let bytes = b.take(len)?.to_vec();
                Frame::AddPattern {
                    wild: has_wild.then_some(wild_byte),
                    bytes,
                }
            }
            kind::PATTERN_ADDED => Frame::PatternAdded { id: b.u32()? },
            kind::OPEN_SESSION => Frame::OpenSession,
            kind::SESSION_OPENED => Frame::SessionOpened { session: b.u64()? },
            kind::FEED => Frame::Feed {
                session: b.u64()?,
                bytes: b.rest().to_vec(),
            },
            kind::MATCH_EVENTS => {
                let session = b.u64()?;
                let count = b.u32()? as usize;
                // 12 bytes per event; the count must agree with the
                // body length exactly, so a lying count can't force a
                // huge reservation.
                let mut events = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    events.push(Match {
                        pattern: b.u32()?,
                        end: b.u64()?,
                    });
                }
                Frame::MatchEvents { session, events }
            }
            kind::FEED_OK => Frame::FeedOk {
                session: b.u64()?,
                consumed: b.u64()?,
            },
            kind::CLOSE => Frame::Close { session: b.u64()? },
            kind::CLOSED => Frame::Closed {
                session: b.u64()?,
                chars: b.u64()?,
                events: b.u64()?,
            },
            kind::METRICS => Frame::Metrics,
            kind::METRICS_TEXT => Frame::MetricsText {
                text: b.rest().to_vec(),
            },
            kind::SERVER_BUSY => Frame::ServerBusy {
                reason: BusyReason::from_code(b.u8()?)?,
                retry_after_ms: b.u32()?,
            },
            kind::ERROR => Frame::Error {
                code: ErrorCode::from_code(b.u8()?)?,
                message: b.rest().to_vec(),
            },
            kind::BYE => Frame::Bye,
            other => return Err(CodecError::UnknownKind(other)),
        };
        b.finish()?;
        Ok(frame)
    }
}

/// Incremental frame decoder for nonblocking reads: push bytes as they
/// arrive, pop complete frames. Split points are arbitrary — a frame
/// may arrive one byte at a time or many frames in one read.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames; compacted
    /// lazily so steady streaming doesn't memmove per frame.
    read: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing, once the dead prefix dominates.
        if self.read > 0 && self.read >= self.buf.len() / 2 {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed. After an `Err` the stream is poisoned — the connection
    /// should be dropped (framing has been lost).
    ///
    /// Deliberately named like `Iterator::next` (it is the pull side
    /// of the decoder) but kept inherent: the fallible
    /// `Result<Option<_>, _>` shape doesn't fit the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, CodecError> {
        let avail = &self.buf[self.read..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME {
            // Checked before waiting for (or buffering) a body, so a
            // hostile header can't demand a giant allocation.
            return Err(CodecError::BadLength { len });
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode(&avail[4..total])?;
        self.read += total;
        Ok(Some(frame))
    }
}

/// Blocking read of one frame (for clients and tests).
///
/// # Errors
///
/// I/O errors pass through; codec violations surface as
/// `InvalidData`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut head = [0u8; 4];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head);
    if len == 0 || len > MAX_FRAME {
        return Err(CodecError::BadLength { len }.into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame::decode(&payload)?)
}

/// Blocking write of one frame.
///
/// # Errors
///
/// I/O errors pass through.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Hello { version: 1 },
            Frame::HelloOk {
                version: 1,
                max_frame: MAX_FRAME,
            },
            Frame::AddPattern {
                wild: Some(b'?'),
                bytes: b"needle".to_vec(),
            },
            Frame::AddPattern {
                wild: None,
                bytes: vec![],
            },
            Frame::PatternAdded { id: 7 },
            Frame::OpenSession,
            Frame::SessionOpened { session: 99 },
            Frame::Feed {
                session: 99,
                bytes: b"haystack with a needle in it".to_vec(),
            },
            Frame::MatchEvents {
                session: 99,
                events: vec![
                    Match {
                        pattern: 7,
                        end: 21,
                    },
                    Match {
                        pattern: 0,
                        end: u64::MAX,
                    },
                ],
            },
            Frame::FeedOk {
                session: 99,
                consumed: 28,
            },
            Frame::Close { session: 99 },
            Frame::Closed {
                session: 99,
                chars: 28,
                events: 2,
            },
            Frame::Metrics,
            Frame::MetricsText {
                text: b"# HELP pm_chars_total ...\n".to_vec(),
            },
            Frame::ServerBusy {
                reason: BusyReason::GlobalBudget,
                retry_after_ms: 12,
            },
            Frame::Error {
                code: ErrorCode::ChunkTooLarge,
                message: b"split the chunk".to_vec(),
            },
            Frame::Bye,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in frames() {
            let bytes = f.to_bytes();
            let mut d = Decoder::new();
            d.push(&bytes);
            assert_eq!(d.next().unwrap(), Some(f.clone()), "{f:?}");
            assert_eq!(d.next().unwrap(), None);
            assert_eq!(d.pending(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_and_all_at_once_agree() {
        let mut wire = Vec::new();
        for f in frames() {
            f.encode(&mut wire);
        }
        let mut d = Decoder::new();
        let mut one_by_one = Vec::new();
        for &b in &wire {
            d.push(&[b]);
            while let Some(f) = d.next().unwrap() {
                one_by_one.push(f);
            }
        }
        assert_eq!(one_by_one, frames());
    }

    #[test]
    fn blocking_io_round_trips() {
        let mut wire = Vec::new();
        for f in frames() {
            write_frame(&mut wire, &f).unwrap();
        }
        let mut cursor = io::Cursor::new(wire);
        for f in frames() {
            assert_eq!(read_frame(&mut cursor).unwrap(), f);
        }
    }

    #[test]
    fn oversized_length_rejected_before_buffering() {
        let mut d = Decoder::new();
        d.push(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(d.next(), Err(CodecError::BadLength { len: MAX_FRAME + 1 }));
        let mut d = Decoder::new();
        d.push(&0u32.to_le_bytes());
        assert_eq!(d.next(), Err(CodecError::BadLength { len: 0 }));
    }

    #[test]
    fn unknown_kind_and_bad_bodies_error() {
        assert_eq!(Frame::decode(&[0x55]), Err(CodecError::UnknownKind(0x55)));
        // HELLO with a short body.
        assert!(matches!(
            Frame::decode(&[kind::HELLO, 1, 2]),
            Err(CodecError::BadBody(_))
        ));
        // Trailing garbage after a complete body.
        assert!(matches!(
            Frame::decode(&[kind::OPEN_SESSION, 0xFF]),
            Err(CodecError::BadBody("trailing bytes"))
        ));
        // MATCH_EVENTS whose count outruns its body.
        let mut payload = vec![kind::MATCH_EVENTS];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&payload),
            Err(CodecError::BadBody(_))
        ));
    }

    #[test]
    fn decoder_compacts_its_buffer() {
        let mut d = Decoder::new();
        let bytes = Frame::OpenSession.to_bytes();
        for _ in 0..1000 {
            d.push(&bytes);
            assert!(d.next().unwrap().is_some());
        }
        assert!(d.buf.len() < 64, "dead prefix never reclaimed");
    }

    #[test]
    fn errors_display_and_convert() {
        let e = CodecError::BadLength { len: 0 };
        assert!(e.to_string().contains("length 0"));
        let io_err: io::Error = CodecError::UnknownKind(9).into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }
}
