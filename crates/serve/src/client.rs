//! A blocking client for the match service.
//!
//! [`MatchClient`] wraps a `TcpStream` in the blocking half of the
//! codec and exposes one method per request frame. `SERVER_BUSY`
//! answers surface as [`ClientError::Busy`] carrying the server's
//! retry hint; [`MatchClient::feed_with_retry`] and
//! [`MatchClient::open_session_with_retry`] honour the hint by
//! sleeping and retrying, which is the whole backpressure contract
//! from the client's side. Used by the e2e tests, the loadtest figure
//! and `examples/serve_client.rs`.

use crate::protocol::{
    read_frame, write_frame, BusyReason, ErrorCode, Frame, Match, PROTOCOL_VERSION,
};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What a request can come back as.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or codec failure.
    Io(io::Error),
    /// The server said `SERVER_BUSY`: retriable after the hint.
    Busy {
        /// What was exhausted.
        reason: BusyReason,
        /// The server's backoff hint, in milliseconds.
        retry_after_ms: u32,
    },
    /// The server answered `ERROR`: not retriable.
    Server {
        /// The failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a frame the request doesn't expect.
    Unexpected(Frame),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Busy {
                reason,
                retry_after_ms,
            } => write!(
                f,
                "server busy ({reason:?}), retry after {retry_after_ms} ms"
            ),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(frame) => write!(f, "unexpected frame {frame:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias for client results.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A connected, greeted client.
#[derive(Debug)]
pub struct MatchClient {
    stream: TcpStream,
    /// The server's advertised frame ceiling, from `HELLO_OK`.
    max_frame: u32,
}

impl MatchClient {
    /// Connects and performs the `HELLO`/`HELLO_OK` handshake.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = MatchClient {
            stream,
            max_frame: crate::protocol::MAX_FRAME,
        };
        match client.request(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Frame::HelloOk { max_frame, .. } => {
                client.max_frame = max_frame;
                Ok(client)
            }
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The server's `MAX_FRAME`, learned during the handshake.
    pub fn max_frame(&self) -> u32 {
        self.max_frame
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        write_frame(&mut self.stream, frame)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame> {
        match read_frame(&mut self.stream)? {
            Frame::ServerBusy {
                reason,
                retry_after_ms,
            } => Err(ClientError::Busy {
                reason,
                retry_after_ms,
            }),
            Frame::Error { code, message } => Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&message).into_owned(),
            }),
            frame => Ok(frame),
        }
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame> {
        self.send(frame)?;
        self.recv()
    }

    /// Declares one pattern; returns the id match events will cite.
    pub fn add_pattern(&mut self, bytes: &[u8], wild: Option<u8>) -> Result<u32> {
        match self.request(&Frame::AddPattern {
            wild,
            bytes: bytes.to_vec(),
        })? {
            Frame::PatternAdded { id } => Ok(id),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Opens a streaming session; fails with [`ClientError::Busy`]
    /// when admission control turns it away.
    pub fn open_session(&mut self) -> Result<u64> {
        match self.request(&Frame::OpenSession)? {
            Frame::SessionOpened { session } => Ok(session),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// [`open_session`](Self::open_session), sleeping out up to
    /// `max_retries` `SERVER_BUSY` answers using the server's hints.
    pub fn open_session_with_retry(&mut self, max_retries: u32) -> Result<u64> {
        retry_busy(max_retries, || self.open_session())
    }

    /// Feeds one chunk; returns the match events whose windows end in
    /// it (global offsets) and the session's running consumed count.
    ///
    /// A `SERVER_BUSY` answer (global budget exhausted) surfaces as
    /// [`ClientError::Busy`] and the chunk was *not* consumed — resend
    /// the same chunk after the hint.
    pub fn feed(&mut self, session: u64, bytes: &[u8]) -> Result<(Vec<Match>, u64)> {
        self.send(&Frame::Feed {
            session,
            bytes: bytes.to_vec(),
        })?;
        let mut events = Vec::new();
        loop {
            match self.recv()? {
                Frame::MatchEvents {
                    session: s,
                    events: batch,
                } if s == session => events.extend(batch),
                Frame::FeedOk {
                    session: s,
                    consumed,
                } if s == session => return Ok((events, consumed)),
                other => return Err(ClientError::Unexpected(other)),
            }
        }
    }

    /// [`feed`](Self::feed), resending the chunk through up to
    /// `max_retries` backpressure rounds, pacing each wait by the
    /// server's `retry_after_ms` hint.
    pub fn feed_with_retry(
        &mut self,
        session: u64,
        bytes: &[u8],
        max_retries: u32,
    ) -> Result<(Vec<Match>, u64)> {
        retry_busy(max_retries, || self.feed(session, bytes))
    }

    /// Closes a session; returns `(chars streamed, events delivered)`.
    pub fn close_session(&mut self, session: u64) -> Result<(u64, u64)> {
        match self.request(&Frame::Close { session })? {
            Frame::Closed { chars, events, .. } => Ok((chars, events)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fetches the server's Prometheus exposition.
    pub fn metrics(&mut self) -> Result<String> {
        match self.request(&Frame::Metrics)? {
            Frame::MetricsText { text } => Ok(String::from_utf8_lossy(&text).into_owned()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Says `BYE`; the server closes the connection after flushing.
    pub fn bye(&mut self) -> Result<()> {
        self.send(&Frame::Bye)
    }
}

/// Runs `op`, sleeping out up to `max_retries` busy answers using the
/// server's hints. Any other error passes through immediately.
fn retry_busy<T>(max_retries: u32, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Err(ClientError::Busy {
                reason,
                retry_after_ms,
            }) if attempt < max_retries => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
                let _ = reason;
            }
            other => return other,
        }
    }
}
