//! Server configuration: capacity, budgets and backpressure pacing.

use pm_chip::host::RetryPolicy;
use pm_chip::throughput::SuperWidth;
use std::net::SocketAddr;

/// Everything the front door needs to know before it binds.
///
/// The defaults are sized for a loopback load test: thousands of
/// sessions, a few megabytes of in-flight text, and millisecond-scale
/// backpressure hints. A deployment would raise the budgets to match
/// its memory and lower the session cap to match its core count — the
/// invariant the config protects is the paper's §5 one: the host side
/// must bound its buffering so the fixed-function engine, not memory
/// pressure, is the limit.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind. Port 0 picks an ephemeral port (tests).
    pub addr: SocketAddr,
    /// Worker threads multiplexing connections. 0 means one per
    /// available core (thread-per-core).
    pub workers: usize,
    /// Superplane width sessions' dictionaries are planned at.
    pub width: SuperWidth,
    /// Shards in the memory system the server routes sessions over.
    /// Each shard owns a slice of the global byte budget; sessions are
    /// pinned to a shard by id, so one hot shard backpressures only
    /// the sessions it owns. `1` (the default) keeps the whole budget
    /// in a single pool — the pre-shard behaviour, exactly.
    pub shards: usize,
    /// Global cap on concurrently open sessions; opens beyond it get
    /// `SERVER_BUSY` with a retry hint (admission control).
    pub max_sessions: usize,
    /// Per-connection cap on declared patterns.
    pub max_patterns: usize,
    /// Longest accepted pattern, in symbols.
    pub max_pattern_len: usize,
    /// Per-session byte budget: the largest `FEED` chunk a session may
    /// send in one frame. Bounds per-session buffering (chunk + the
    /// `kmax − 1` boundary carry); oversized chunks are a hard error,
    /// not a retry.
    pub session_budget_bytes: usize,
    /// Global byte budget: total `FEED` bytes in flight across all
    /// sessions, leased from a `SlotPool`. Exhaustion is retriable
    /// backpressure.
    pub global_budget_bytes: u64,
    /// Pacing for `SERVER_BUSY` retry hints and the idle watchdog —
    /// the same discipline the resilient host bus uses for sick
    /// hardware, pointed at slow clients.
    pub retry: RetryPolicy,
    /// Connections silent for this long are reaped by the stall
    /// watchdog (0 disables). Sessions they own are closed and their
    /// budget returns to the pool.
    pub idle_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            workers: 0,
            width: SuperWidth::default(),
            shards: 1,
            max_sessions: 4096,
            max_patterns: 4096,
            max_pattern_len: 64,
            session_budget_bytes: 64 << 10,
            global_budget_bytes: 8 << 20,
            retry: RetryPolicy::default(),
            idle_timeout_ms: 30_000,
        }
    }
}

impl ServeConfig {
    /// Worker threads after resolving `0` to the core count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Milliseconds a client is told to back off before retry number
    /// `attempt` (1-based): the `RetryPolicy` backoff schedule read at
    /// a 1 beat = 1 ms timescale, clamped to 10 s so a saturated
    /// schedule stays a hint rather than a ban.
    pub fn retry_after_ms(&self, attempt: u32) -> u32 {
        self.retry.backoff_beats(attempt).clamp(1, 10_000) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.effective_workers() >= 1);
        assert!(c.max_sessions >= 1000, "north star: thousands of sessions");
        assert!(c.session_budget_bytes as u64 <= c.global_budget_bytes);
    }

    #[test]
    fn retry_hints_follow_the_policy_and_clamp() {
        let c = ServeConfig {
            retry: RetryPolicy {
                backoff_base_beats: 8,
                backoff_factor: 4,
                ..RetryPolicy::default()
            },
            ..ServeConfig::default()
        };
        assert_eq!(c.retry_after_ms(1), 8);
        assert_eq!(c.retry_after_ms(2), 32);
        assert_eq!(c.retry_after_ms(u32::MAX), 10_000, "clamped, not banned");
    }
}
